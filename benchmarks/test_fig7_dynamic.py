"""Figure 7 benchmark: dynamic COO updates, cumulative time over 10 rounds.

Shape checks: the CPU baseline's cumulative time accelerates (it pays a full
COO->CSR conversion of the growing graph every round) while the PIM
implementation's per-round cost stays bounded, overtaking the CPU within the
10 updates — the paper's headline dynamic-graph result.
"""

from __future__ import annotations

from conftest import run_and_record


def test_fig7_dynamic_updates(benchmark, tier):
    table = run_and_record(benchmark, "fig7", tier)
    cpu = table.column("CPU cum ms")
    pim = table.column("PIM cum ms")
    gpu = table.column("GPU cum ms")

    # CPU cumulative time accelerates: the second half costs more than the first.
    assert cpu[-1] - cpu[len(cpu) // 2] > cpu[len(cpu) // 2] - cpu[0]

    # GPU (COO-native) stays below the CPU throughout.
    assert all(g < c for g, c in zip(gpu[2:], cpu[2:]))

    if tier != "tiny":
        # The PIM implementation ends ahead of the CPU (speedup > 1 by round 10).
        assert table.rows[-1][6] > 1.0

    # PIM's per-round cost must not accelerate like the CPU's.
    pim_first = pim[len(pim) // 2] - pim[0]
    pim_second = pim[-1] - pim[len(pim) // 2]
    cpu_ratio = (cpu[-1] - cpu[len(cpu) // 2]) / max(cpu[len(cpu) // 2] - cpu[0], 1e-9)
    pim_ratio = pim_second / max(pim_first, 1e-9)
    assert pim_ratio < cpu_ratio
