"""Table 3 benchmark: relative error under uniform edge sampling.

Shape checks: errors rise as p falls; the triangle-poor v1r graph is the
degenerate outlier exactly as in the paper (its ~50 triangles cannot survive
aggressive sparsification); sampling also delivers a real speedup.
"""

from __future__ import annotations

from conftest import run_and_record


def test_tab3_uniform_sampling_error(benchmark, tier):
    table = run_and_record(benchmark, "tab3", tier)
    rows = {r[0]: r for r in table.rows}

    def err(row, col):
        return float(row[col].rstrip("%"))

    # Errors grow from p=0.5 to p=0.01 on the triangle-rich graphs.
    for name in ("kronecker23", "humanjung", "orkut"):
        assert err(rows[name], 1) < err(rows[name], 4)

    # v1r degenerates at small p (the paper reports 100%).
    assert err(rows["v1r"], 4) >= 50.0

    # The densest graph tolerates sampling best at p=0.5.
    assert err(rows["humanjung"], 1) == min(err(r, 1) for r in table.rows)

    # Sampling down to p=0.01 speeds the run up materially.
    assert all(row[5] > 2.0 for row in table.rows)
