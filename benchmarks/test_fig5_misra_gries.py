"""Figure 5 benchmark: Misra-Gries K/t sweep.

Shape checks: the remap delivers a large counting-time win on the
hub-dominated graphs and at most marginal change (the remap pass cost) on
the dense low-max-degree control.
"""

from __future__ import annotations

from conftest import run_and_record


def test_fig5_misra_gries_sweep(benchmark, tier):
    table = run_and_record(benchmark, "fig5", tier)
    assert all(table.column("Exact?"))
    by_graph: dict[str, list] = {}
    for row in table.rows:
        by_graph.setdefault(row[0], []).append(row)

    # Hub graph: the best (K, t) must cut counting time by >= 2x.
    wiki = by_graph["wikipedia"]
    assert max(r[5] for r in wiki) >= 2.0

    # Dense low-max-degree control: no comparable win exists (< 1.5x),
    # reproducing "no advantages on graphs with lower-degree nodes".
    hj = by_graph["humanjung"]
    assert max(r[5] for r in hj) < 1.5
