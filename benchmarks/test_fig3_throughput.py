"""Figure 3 benchmark: counting throughput ordered by maximum degree.

Shape check: the hub-dominated graphs (wikipedia; at larger tiers also the
Kronecker pair) sustain materially lower edges/ms than the low-max-degree
graphs — the motivation for the Misra-Gries optimization.
"""

from __future__ import annotations

from conftest import run_and_record


def test_fig3_throughput_vs_max_degree(benchmark, tier):
    table = run_and_record(benchmark, "fig3", tier)
    assert all(table.column("Exact?"))
    tp = dict(zip(table.column("Graph"), table.column("Edges/ms")))
    # The extreme-hub graph is the slowest of all.
    assert tp["wikipedia"] == min(tp.values())
    # And by a wide margin versus the flat road-network analogue.
    assert tp["v1r"] > 2.5 * tp["wikipedia"]
