"""Cost-model sensitivity benchmark: the Fig. 3 shape must survive 0.5x/2x
perturbations of every load-bearing calibration constant (DESIGN.md Sec. 6)."""

from __future__ import annotations

from conftest import run_and_record


def test_abl_sensitivity_fig3_shape_robust(benchmark, tier):
    table = run_and_record(benchmark, "abl_sensitivity", tier)
    assert all(table.column("Holds?")), (
        "the hub-collapse shape must hold under every cost perturbation"
    )
    # 11 rows: baseline + 5 constants x 2 factors.
    assert len(table.rows) == 11
