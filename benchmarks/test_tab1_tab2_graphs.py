"""Benchmarks for Tables 1 and 2: dataset construction + statistics.

Regenerates the paper's graph-inventory tables; the benchmark time is
dominated by the exact triangle oracle, i.e. it measures the ground-truth
pipeline every other experiment leans on.
"""

from __future__ import annotations

from conftest import run_and_record


def test_tab1_graph_inventory(benchmark, tier):
    table = run_and_record(benchmark, "tab1", tier)
    assert len(table.rows) == 7
    # v1r is the triangle-poor graph at every tier.
    tri = dict(zip(table.column("Graph"), table.column("Triangles")))
    assert tri["v1r"] == min(tri.values())


def test_tab2_degree_stats(benchmark, tier):
    table = run_and_record(benchmark, "tab2", tier)
    degs = dict(zip(table.column("Graph"), table.column("Max degree")))
    # The paper's high-degree trio must sit above every other graph.
    low = max(v for k, v in degs.items() if k in ("v1r", "livejournal", "orkut", "humanjung"))
    assert degs["wikipedia"] > low
    assert degs["kronecker24"] > low
