"""Batched-ingest benchmark: bounded memory and the overlap win, asserted.

Unlike the figure benchmarks this module makes hard claims on the simulated
clock: on a stream large enough that per-batch launch/transfer latencies are
amortized, the double-buffered ingest pipeline must (a) keep the peak routed
host buffer at two chunk windows instead of the whole stream and (b) finish
no later than the monolithic pass — while producing the identical count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import PimTriangleCounter
from repro.graph.generators import erdos_renyi

COLORS = 4
EDGES = 200_000
BATCH = 50_000


@pytest.fixture(scope="module")
def stream_graph():
    rng = np.random.default_rng(0)
    return erdos_renyi(50_000, EDGES, rng, name="bench-ingest").canonicalize()


@pytest.fixture(scope="module")
def results(stream_graph):
    mono = PimTriangleCounter(num_colors=COLORS, seed=1).count(stream_graph)
    batched = PimTriangleCounter(
        num_colors=COLORS, seed=1, batch_edges=BATCH
    ).count(stream_graph)
    return mono, batched


def test_counts_identical(results):
    mono, batched = results
    assert batched.estimate == mono.estimate
    assert np.array_equal(batched.per_dpu_counts, mono.per_dpu_counts)


def test_peak_routed_bytes_is_two_windows_not_stream(results, stream_graph):
    mono, batched = results
    edge_bytes = mono.meta["peak_routed_bytes"] // (
        int(mono.edges_routed.sum()) or 1
    )
    # Monolithic: the whole C-fold routed stream resident at once.
    assert mono.meta["peak_routed_bytes"] >= stream_graph.num_edges * edge_bytes
    # Batched: at most two windows of O(batch_edges * C) copies each.
    bound = 2 * BATCH * COLORS * max(edge_bytes, 1)
    assert 0 < batched.meta["peak_routed_bytes"] <= bound
    assert batched.meta["peak_routed_bytes"] < mono.meta["peak_routed_bytes"]


def test_batched_simulated_time_no_worse_than_monolithic(results):
    mono, batched = results
    assert batched.clock.get("sample_creation") <= mono.clock.get("sample_creation")
    assert batched.total_seconds <= mono.total_seconds


def test_batch_count_matches_chunking(results):
    _, batched = results
    assert batched.meta["ingest_batches"] == -(-EDGES // BATCH)
