"""Figure 6 benchmark: static-graph comparison against CPU and GPU baselines.

Shape checks at the small/bench tiers (fixed overheads mask the ordering at
``tiny``): GPU fastest overall, the PIM implementation behind the CPU except
on the dense Human-Jung analogue, and wikipedia as the PIM worst case.
"""

from __future__ import annotations

from conftest import run_and_record


def test_fig6_static_comparison(benchmark, tier):
    table = run_and_record(benchmark, "fig6", tier)
    assert all(table.column("Exact?"))
    rows = {r[0]: r for r in table.rows}

    # wikipedia is the PIM implementation's worst case vs the CPU.
    pim_speedup = {name: r[4] for name, r in rows.items()}
    assert pim_speedup["wikipedia"] == min(pim_speedup.values())

    if tier != "tiny":
        # GPU beats CPU on the triangle-heavy graphs.
        for name in ("kronecker23", "kronecker24", "orkut", "humanjung"):
            assert rows[name][5] > 1.0, f"GPU should beat CPU on {name}"
        # PIM lags the CPU on the hub graphs...
        assert pim_speedup["wikipedia"] < 1.0
        assert pim_speedup["livejournal"] < 1.0

    if tier == "bench":
        # ...but wins on Human-Jung, against both CPU and GPU (paper Fig. 6).
        hj = rows["humanjung"]
        assert hj[4] > 1.0, "PIM must beat CPU on humanjung"
        assert hj[1] >= hj[2], "PIM must be the fastest platform on humanjung"
