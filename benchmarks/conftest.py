"""Benchmark-suite configuration.

Every paper artifact gets one benchmark module.  Each benchmark runs the
corresponding experiment exactly once per pytest-benchmark round (the
experiments are deterministic; repeating them only measures wall-clock noise
of the simulator itself, which *is* what pytest-benchmark reports — the
simulated times live in the attached ``extra_info``).

The dataset tier is selected with the ``REPRO_BENCH_TIER`` environment
variable (``tiny`` / ``small`` / ``bench``); the default ``small`` keeps the
whole suite in the minutes range.  EXPERIMENTS.md records ``bench``-tier
numbers produced via the CLI runner.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import Table, run_experiment


def bench_tier() -> str:
    tier = os.environ.get("REPRO_BENCH_TIER", "small")
    assert tier in ("tiny", "small", "bench")
    return tier


@pytest.fixture(scope="session")
def tier() -> str:
    return bench_tier()


def run_and_record(benchmark, exp_id: str, tier: str, **kw) -> Table:
    """Run one experiment under the benchmark timer and attach its table."""
    result: dict[str, Table] = {}

    def once() -> None:
        result["table"] = run_experiment(exp_id, tier=tier, **kw)

    benchmark.pedantic(once, rounds=1, iterations=1)
    table = result["table"]
    benchmark.extra_info["tier"] = tier
    benchmark.extra_info["experiment"] = exp_id
    benchmark.extra_info["rows"] = len(table.rows)
    return table
