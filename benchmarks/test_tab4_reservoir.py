"""Table 4 benchmark: relative error under per-core reservoir sampling.

Shape checks: reservoir errors stay below uniform-sampling errors at matched
budget fractions (the paper's argument for preferring it), and v1r remains
the degenerate outlier.
"""

from __future__ import annotations

from conftest import run_and_record
from repro.experiments import run_experiment


def test_tab4_reservoir_error(benchmark, tier):
    table = run_and_record(benchmark, "tab4", tier)
    rows = {r[0]: r for r in table.rows}

    def err(row, col):
        return float(row[col].rstrip("%"))

    # Half-capacity reservoirs barely perturb the count on dense graphs.
    assert err(rows["humanjung"], 1) < 2.0
    assert err(rows["kronecker23"], 1) < 5.0

    # The triangle-poor graph stays the outlier.
    assert err(rows["v1r"], 2) > err(rows["humanjung"], 2)


def test_tab4_reservoir_beats_uniform_at_equal_fraction(benchmark, tier):
    """Paper Sec. 4.5: reservoir sampling 'generally yields a lower final
    result error' than uniform sampling at the same retention level."""
    res = run_experiment("tab4", tier=tier)
    uni = run_experiment("tab3", tier=tier)

    def mean_err(table, col):
        vals = [float(r[col].rstrip("%")) for r in table.rows if r[0] != "v1r"]
        return sum(vals) / len(vals)

    def once():
        # Compare at fraction/probability 0.25 (column 2), excluding v1r.
        assert mean_err(res, 2) < mean_err(uni, 2)

    benchmark.pedantic(once, rounds=1, iterations=1)
