#!/usr/bin/env python
"""Telemetry benchmark harness: the fig3-style sweep as a perf trajectory.

Runs the paper's Figure-3 sweep (every dataset analogue, ordered by max
degree, exact counting at the tier's default ``C``) with a fresh telemetry
recorder per run and writes ``BENCH_telemetry.json`` — one stable-schema
record per graph with the phase ledger, throughput, load balance, the
deterministic metrics snapshot, and the span tree (simulated + wall clocks).

This file is the baseline future PRs diff against: a hot-path optimisation
should move ``wall_seconds`` / span wall times while leaving every simulated
number and metric snapshot bit-identical (unless it intentionally changes
the cost model, in which case the diff documents exactly what moved).

Usage::

    python benchmarks/bench_report.py                       # small tier
    python benchmarks/bench_report.py --tier tiny --out BENCH_telemetry.json

Not a pytest-benchmark module on purpose: the output is a committed-schema
JSON artifact, not a timing assertion (CI uploads it as a workflow artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

BENCH_SCHEMA = "repro-bench-telemetry/1"


def run_sweep(tier: str, seed: int, num_colors: int | None = None) -> dict:
    """Execute the sweep and return the ``BENCH_telemetry.json`` document."""
    from repro.core.api import PimTriangleCounter
    from repro.experiments.common import DEFAULT_COLORS, paper_graph_order_by_max_degree
    from repro.graph.datasets import get_dataset
    from repro.graph.stats import degree_stats
    from repro.telemetry import Telemetry

    colors = num_colors or DEFAULT_COLORS[tier]
    runs = []
    for name in paper_graph_order_by_max_degree(tier):
        graph = get_dataset(name, tier)
        max_degree, _ = degree_stats(graph)
        telemetry = Telemetry()
        counter = PimTriangleCounter(num_colors=colors, seed=seed, telemetry=telemetry)
        wall_start = time.perf_counter()
        result = counter.count(graph)
        wall_seconds = time.perf_counter() - wall_start
        runs.append(
            {
                "graph": name,
                "num_nodes": int(graph.num_nodes),
                "num_edges": int(graph.num_edges),
                "max_degree": int(max_degree),
                "count": result.count,
                "phases": {k: float(v) for k, v in result.clock.phases.items()},
                "throughput_edges_per_ms": result.throughput_edges_per_ms(),
                "load_balance": result.load_balance(),
                "wall_seconds": wall_seconds,
                "metrics": telemetry.metrics.snapshot(),
                "spans": telemetry.to_dict()["spans"],
            }
        )
    return {
        "schema": BENCH_SCHEMA,
        "tier": tier,
        "seed": seed,
        "colors": colors,
        "runs": runs,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fig3-style telemetry sweep -> BENCH_telemetry.json"
    )
    parser.add_argument("--tier", default="small", choices=("tiny", "small", "bench"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--colors", type=int, default=None,
                        help="C for every run (default: the tier's default)")
    parser.add_argument("--out", default="BENCH_telemetry.json")
    args = parser.parse_args(argv)

    document = run_sweep(args.tier, args.seed, args.colors)
    with open(args.out, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    total_wall = sum(r["wall_seconds"] for r in document["runs"])
    print(
        f"{args.out}: {len(document['runs'])} runs (tier={args.tier}, "
        f"C={document['colors']}), {total_wall:.2f}s wall total"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
