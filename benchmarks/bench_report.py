#!/usr/bin/env python
"""Telemetry benchmark harness: the fig3-style sweep as a perf trajectory.

Runs the paper's Figure-3 sweep (every dataset analogue, ordered by max
degree, exact counting at the tier's default ``C``) with a fresh telemetry
recorder per run and writes ``BENCH_telemetry.json`` — one stable-schema
record per graph with the phase ledger, throughput, load balance, the
deterministic metrics snapshot, and the span tree (simulated + wall clocks).

This file is the baseline future PRs diff against: a hot-path optimisation
should move ``wall_seconds`` / span wall times while leaving every simulated
number and metric snapshot bit-identical (unless it intentionally changes
the cost model, in which case the diff documents exactly what moved).

A second, optional artifact compares batched streaming ingestion against the
monolithic pass: ``--ingest-out BENCH_ingest.json`` re-runs every graph with
``batch_edges`` chunking and records the count-parity, the peak routed-buffer
bytes (bounded at two chunk windows), and the simulated seconds the
double-buffered overlap hides.

Usage::

    python benchmarks/bench_report.py                       # small tier
    python benchmarks/bench_report.py --tier tiny --out BENCH_telemetry.json
    python benchmarks/bench_report.py --tier tiny --ingest-out BENCH_ingest.json

Not a pytest-benchmark module on purpose: the output is a committed-schema
JSON artifact, not a timing assertion (CI uploads it as a workflow artifact).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

BENCH_SCHEMA = "repro-bench-telemetry/1"
INGEST_SCHEMA = "repro-bench-ingest/1"
IMBALANCE_SCHEMA = "repro-bench-imbalance/2"
KERNEL_SCHEMA = "repro-bench-kernel/1"


def run_sweep(
    tier: str,
    seed: int,
    num_colors: int | None = None,
    flamegraph_dir: str | None = None,
) -> dict:
    """Execute the sweep and return the ``BENCH_telemetry.json`` document.

    With ``flamegraph_dir`` set, also write one simulated-clock flamegraph
    SVG per graph into that directory (created if missing) — observation
    only, rendered from the span tree after each run finishes.
    """
    from repro.core.api import PimTriangleCounter
    from repro.experiments.common import DEFAULT_COLORS, paper_graph_order_by_max_degree
    from repro.graph.datasets import get_dataset
    from repro.graph.stats import degree_stats
    from repro.telemetry import Telemetry, write_flamegraph

    colors = num_colors or DEFAULT_COLORS[tier]
    if flamegraph_dir:
        os.makedirs(flamegraph_dir, exist_ok=True)
    runs = []
    for name in paper_graph_order_by_max_degree(tier):
        graph = get_dataset(name, tier)
        max_degree, _ = degree_stats(graph)
        telemetry = Telemetry()
        counter = PimTriangleCounter(num_colors=colors, seed=seed, telemetry=telemetry)
        wall_start = time.perf_counter()
        result = counter.count(graph)
        wall_seconds = time.perf_counter() - wall_start
        if flamegraph_dir:
            write_flamegraph(
                os.path.join(flamegraph_dir, f"{name}_{tier}.svg"),
                telemetry,
                axis="sim",
            )
        runs.append(
            {
                "graph": name,
                "num_nodes": int(graph.num_nodes),
                "num_edges": int(graph.num_edges),
                "max_degree": int(max_degree),
                "count": result.count,
                "phases": {k: float(v) for k, v in result.clock.phases.items()},
                "throughput_edges_per_ms": result.throughput_edges_per_ms(),
                "load_balance": result.load_balance(),
                "wall_seconds": wall_seconds,
                "metrics": telemetry.metrics.snapshot(),
                "spans": telemetry.to_dict()["spans"],
            }
        )
    return {
        "schema": BENCH_SCHEMA,
        "tier": tier,
        "seed": seed,
        "colors": colors,
        "runs": runs,
    }


def run_ingest_sweep(
    tier: str, seed: int, num_colors: int | None = None, batch_edges: int | None = None
) -> dict:
    """Batched-vs-monolithic ingest comparison -> ``BENCH_ingest.json``.

    One record per graph: both runs' counts (must agree), sample-creation and
    total simulated seconds, peak routed-buffer bytes, chunk count, and the
    overlap savings counter.  The batch size defaults to a quarter of the
    graph's edges (at least 1) so every tier exercises multi-chunk runs.
    """
    from repro.core.api import PimTriangleCounter
    from repro.experiments.common import DEFAULT_COLORS, paper_graph_order_by_max_degree
    from repro.graph.datasets import get_dataset
    from repro.telemetry import Telemetry

    colors = num_colors or DEFAULT_COLORS[tier]
    runs = []
    for name in paper_graph_order_by_max_degree(tier):
        graph = get_dataset(name, tier)
        batch = batch_edges or max(1, graph.num_edges // 4)
        mono = PimTriangleCounter(num_colors=colors, seed=seed).count(graph)
        telemetry = Telemetry()
        batched = PimTriangleCounter(
            num_colors=colors, seed=seed, batch_edges=batch, telemetry=telemetry
        ).count(graph)
        snap = telemetry.metrics.snapshot()
        runs.append(
            {
                "graph": name,
                "num_edges": int(graph.num_edges),
                "batch_edges": int(batch),
                "count_monolithic": mono.count,
                "count_batched": batched.count,
                "counts_match": batched.count == mono.count,
                "ingest_batches": int(batched.meta["ingest_batches"]),
                "peak_routed_bytes_monolithic": int(mono.meta["peak_routed_bytes"]),
                "peak_routed_bytes_batched": int(batched.meta["peak_routed_bytes"]),
                "sample_seconds_monolithic": float(mono.sample_creation_seconds),
                "sample_seconds_batched": float(batched.sample_creation_seconds),
                "total_seconds_monolithic": float(mono.total_seconds),
                "total_seconds_batched": float(batched.total_seconds),
                "overlap_saved_seconds": float(
                    snap["host.ingest.overlap_saved_seconds"]["value"]
                ),
            }
        )
    return {
        "schema": INGEST_SCHEMA,
        "tier": tier,
        "seed": seed,
        "colors": colors,
        "runs": runs,
    }


def run_imbalance_sweep(
    tier: str,
    seed: int,
    num_colors: int | None = None,
    mg: tuple[int, int] = (256, 16),
) -> dict:
    """Per-DPU skew comparison across balancing strategies -> ``BENCH_imbalance.json``.

    One record per graph: the baseline (hash-coloring) run's skew statistics
    (count-phase seconds and merge steps, the dimensions the paper's
    straggler story is about), its top straggler attributed to a color
    triplet and heavy node, then the same run with Misra-Gries remapping
    enabled, then the same run with the degree-aware partitioner
    (``partitioner="degree"``), and the resulting max/mean improvement
    factors.  Counts must agree on every side — remapping is a node-ID
    bijection and any partition-coloring is exact under the monochromatic
    correction, so neither ever changes the answer.
    """
    from repro.core.api import PimTriangleCounter
    from repro.experiments.common import DEFAULT_COLORS, paper_graph_order_by_max_degree
    from repro.graph.datasets import get_dataset
    from repro.graph.stats import degree_stats

    mg_k, mg_t = mg
    colors = num_colors or DEFAULT_COLORS[tier]
    runs = []
    for name in paper_graph_order_by_max_degree(tier):
        graph = get_dataset(name, tier)
        max_degree, _ = degree_stats(graph)
        base = PimTriangleCounter(num_colors=colors, seed=seed).count(graph)
        remapped = PimTriangleCounter(
            num_colors=colors, seed=seed, misra_gries_k=mg_k, misra_gries_t=mg_t
        ).count(graph)
        degreed = PimTriangleCounter(
            num_colors=colors, seed=seed, partitioner="degree"
        ).count(graph)

        def _side(result):
            ledger = result.imbalance
            top = ledger.stragglers(metric="count_seconds", k=1)
            straggler = top[0] if top else None
            return {
                "count_seconds": ledger.skew("count_seconds").to_dict(),
                "merge_steps": ledger.skew("merge_steps").to_dict(),
                "edges_routed": ledger.skew("edges_routed").to_dict(),
                "top_straggler": straggler,
            }

        base_ratio = base.imbalance.skew("count_seconds").max_over_mean
        mg_ratio = remapped.imbalance.skew("count_seconds").max_over_mean
        degree_ratio = degreed.imbalance.skew("count_seconds").max_over_mean
        runs.append(
            {
                "graph": name,
                "num_edges": int(graph.num_edges),
                "max_degree": int(max_degree),
                "count": base.count,
                "counts_match": remapped.count == base.count,
                "counts_match_degree": degreed.count == base.count,
                "misra_gries_k": mg_k,
                "misra_gries_t": mg_t,
                "baseline": _side(base),
                "misra_gries": _side(remapped),
                "degree": _side(degreed),
                "skew_improvement_max_over_mean": (
                    base_ratio / mg_ratio if mg_ratio else 1.0
                ),
                "skew_improvement_degree": (
                    base_ratio / degree_ratio if degree_ratio else 1.0
                ),
            }
        )
    return {
        "schema": IMBALANCE_SCHEMA,
        "tier": tier,
        "seed": seed,
        "colors": colors,
        "runs": runs,
    }


def run_kernel_sweep(tier: str, seed: int, num_colors: int | None = None) -> dict:
    """``fastvec``-vs-``fast`` kernel comparison -> ``BENCH_kernel.json``.

    One record per graph: both variants' counts (must agree), the simulated
    phase ledger and kernel charge aggregate of the ``merge`` run, a
    ``simulated_identical`` flag (1.0 iff *every* simulated quantity —
    phases, per-DPU counts, instruction/DMA charges — is bit-identical
    between the variants), and both wall-clocks.  bench_diff hard-gates the
    simulated side to zero drift and treats the wall-clock columns as
    warn-only: the vectorized kernel is a wall-clock optimization and must
    never move a simulated number.
    """
    import numpy as np

    from repro.core.api import PimTriangleCounter
    from repro.experiments.common import DEFAULT_COLORS, paper_graph_order_by_max_degree
    from repro.graph.datasets import get_dataset

    colors = num_colors or DEFAULT_COLORS[tier]
    runs = []
    for name in paper_graph_order_by_max_degree(tier):
        graph = get_dataset(name, tier)

        def _run(variant: str):
            counter = PimTriangleCounter(
                num_colors=colors, seed=seed, kernel_variant=variant
            )
            start = time.perf_counter()
            result = counter.count(graph)
            return result, time.perf_counter() - start

        fast, fast_s = _run("merge")
        fastvec, fastvec_s = _run("fastvec")
        k_fast, k_vec = fast.kernel, fastvec.kernel
        simulated_identical = (
            dict(fast.clock.phases) == dict(fastvec.clock.phases)
            and np.array_equal(fast.per_dpu_counts, fastvec.per_dpu_counts)
            and (k_fast.instructions, k_fast.dma_requests, k_fast.dma_bytes,
                 k_fast.max_dpu_compute_seconds)
            == (k_vec.instructions, k_vec.dma_requests, k_vec.dma_bytes,
                k_vec.max_dpu_compute_seconds)
        )
        runs.append(
            {
                "graph": name,
                "num_edges": int(graph.num_edges),
                "count": fast.count,
                "counts_match": fastvec.count == fast.count,
                "simulated_identical": float(simulated_identical),
                "phases": {k: float(v) for k, v in fast.clock.phases.items()},
                "kernel_instructions": float(k_fast.instructions),
                "kernel_dma_requests": float(k_fast.dma_requests),
                "kernel_dma_bytes": float(k_fast.dma_bytes),
                "wall_seconds_fast": fast_s,
                "wall_seconds_fastvec": fastvec_s,
                "speedup_fastvec": fast_s / fastvec_s if fastvec_s > 0 else 1.0,
            }
        )
    return {
        "schema": KERNEL_SCHEMA,
        "tier": tier,
        "seed": seed,
        "colors": colors,
        "runs": runs,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fig3-style telemetry sweep -> BENCH_telemetry.json"
    )
    parser.add_argument("--tier", default="small", choices=("tiny", "small", "bench"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--colors", type=int, default=None,
                        help="C for every run (default: the tier's default)")
    parser.add_argument("--out", default="BENCH_telemetry.json")
    parser.add_argument("--ingest-out", default=None, metavar="PATH",
                        help="also write the batched-vs-monolithic ingest "
                             "comparison artifact (BENCH_ingest.json)")
    parser.add_argument("--batch-edges", type=int, default=None, metavar="B",
                        help="chunk size for --ingest-out runs "
                             "(default: |E| / 4 per graph)")
    parser.add_argument("--imbalance-out", default=None, metavar="PATH",
                        help="also write the per-DPU skew comparison "
                             "(baseline vs Misra-Gries remap vs degree "
                             "partitioner) artifact (BENCH_imbalance.json)")
    parser.add_argument("--misra-gries", default="256:16", metavar="K:t",
                        help="summary size and remap count for the "
                             "--imbalance-out remapped runs (default 256:16)")
    parser.add_argument("--kernel-out", default=None, metavar="PATH",
                        help="also write the fastvec-vs-fast kernel "
                             "comparison artifact (BENCH_kernel.json): "
                             "wall-clock of both variants, simulated "
                             "metrics gated to zero drift")
    parser.add_argument("--flamegraph-dir", default=None, metavar="DIR",
                        help="also write one simulated-clock flamegraph SVG "
                             "per swept graph into DIR (created if missing)")
    args = parser.parse_args(argv)

    document = run_sweep(
        args.tier, args.seed, args.colors, flamegraph_dir=args.flamegraph_dir
    )
    with open(args.out, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    total_wall = sum(r["wall_seconds"] for r in document["runs"])
    print(
        f"{args.out}: {len(document['runs'])} runs (tier={args.tier}, "
        f"C={document['colors']}), {total_wall:.2f}s wall total"
    )
    if args.flamegraph_dir:
        print(
            f"{args.flamegraph_dir}/: {len(document['runs'])} flamegraph SVGs"
        )
    if args.ingest_out:
        ingest = run_ingest_sweep(args.tier, args.seed, args.colors, args.batch_edges)
        with open(args.ingest_out, "w") as fh:
            json.dump(ingest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        mismatches = [r["graph"] for r in ingest["runs"] if not r["counts_match"]]
        print(
            f"{args.ingest_out}: {len(ingest['runs'])} batched-vs-monolithic "
            f"comparisons, {len(mismatches)} count mismatches"
        )
        if mismatches:
            print(f"MISMATCHED GRAPHS: {', '.join(mismatches)}", file=sys.stderr)
            return 1
    if args.imbalance_out:
        mg_k, mg_t = (int(x) for x in args.misra_gries.split(":"))
        imbalance = run_imbalance_sweep(
            args.tier, args.seed, args.colors, mg=(mg_k, mg_t)
        )
        with open(args.imbalance_out, "w") as fh:
            json.dump(imbalance, fh, indent=2, sort_keys=True)
            fh.write("\n")
        mismatches = [
            r["graph"]
            for r in imbalance["runs"]
            if not (r["counts_match"] and r["counts_match_degree"])
        ]
        improvements = [
            f"{r['graph']} MG x{r['skew_improvement_max_over_mean']:.2f} "
            f"deg x{r['skew_improvement_degree']:.3f}"
            for r in imbalance["runs"]
        ]
        print(
            f"{args.imbalance_out}: {len(imbalance['runs'])} skew comparisons "
            f"(MG {mg_k}:{mg_t}) — max/mean improvement {', '.join(improvements)}"
        )
        if mismatches:
            print(f"MISMATCHED GRAPHS: {', '.join(mismatches)}", file=sys.stderr)
            return 1
    if args.kernel_out:
        kernel = run_kernel_sweep(args.tier, args.seed, args.colors)
        with open(args.kernel_out, "w") as fh:
            json.dump(kernel, fh, indent=2, sort_keys=True)
            fh.write("\n")
        bad = [
            r["graph"]
            for r in kernel["runs"]
            if not (r["counts_match"] and r["simulated_identical"] == 1.0)
        ]
        speedups = [
            f"{r['graph']} x{r['speedup_fastvec']:.2f}" for r in kernel["runs"]
        ]
        print(
            f"{args.kernel_out}: {len(kernel['runs'])} fastvec-vs-fast "
            f"comparisons — {', '.join(speedups)}"
        )
        if bad:
            print(f"SIMULATED DRIFT: {', '.join(bad)}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
