"""Ablation benchmarks (beyond the paper; see DESIGN.md Sec. 7)."""

from __future__ import annotations

from conftest import run_and_record


def test_abl_coloring_duplication_vs_parallelism(benchmark, tier):
    table = run_and_record(benchmark, "abl_coloring", tier)
    instr = table.column("Total instr (M)")
    max_dpu = table.column("Max-DPU ms")
    # Duplication costs bounded extra instructions (< 6x the C=1 total even
    # at the largest sweep point)...
    assert instr[-1] < 6 * instr[0]
    # ...while the critical-path DPU time keeps dropping.
    assert max_dpu[-1] < max_dpu[0]


def test_abl_uniform_reservoir_composition(benchmark, tier):
    table = run_and_record(benchmark, "abl_compose", tier)
    rows = {r[0]: r for r in table.rows}
    # Exact row really is exact.
    assert float(rows["exact"][2].rstrip("%")) == 0.0
    # Composition reduces sample-creation time vs reservoir alone
    # (uniform pre-sampling shrinks the transfer volume).
    assert rows["both"][3] <= rows["reservoir f=0.25"][3]


def test_abl_energy_ledger(benchmark, tier):
    table = run_and_record(benchmark, "abl_energy", tier)
    energy = table.column("Dynamic mJ")
    latency = table.column("Count ms")
    # More cores: more total energy (duplication), less latency.
    assert energy[-1] > energy[0]
    assert latency[-1] < latency[0]


def test_abl_merge_vs_probe_kernels(benchmark, tier):
    table = run_and_record(benchmark, "abl_kernels", tier)
    assert all(table.column("Exact?"))
    for row in table.rows:
        # Streaming merge beats random probing on every graph (DMA latency).
        assert row[1] < row[2]
    rows = {r[0]: r for r in table.rows}
    assert rows["wikipedia"][4] == "merge+MG"


def test_abl_dynamic_batch_sweep(benchmark, tier):
    table = run_and_record(benchmark, "abl_dynamic", tier)
    assert all(table.column("Exact?"))
    # Finer update granularity favors PIM over the reconverting CPU.
    speedups = table.column("PIM speedup")
    assert speedups[-1] > speedups[0]


def test_abl_tasklet_saturation(benchmark, tier):
    table = run_and_record(benchmark, "abl_tasklets", tier)
    assert all(table.column("Exact?"))
    rows = {r[0]: r for r in table.rows}
    # PrIM curve: near-linear to 11 tasklets, < 15% beyond.
    assert rows[11][2] > 5.0
    assert rows[16][2] / rows[11][2] < 1.15


def test_abl_host_threads(benchmark, tier):
    table = run_and_record(benchmark, "abl_host", tier)
    assert all(table.column("Exact?"))
    samples = table.column("Sample ms")
    assert samples[-1] <= samples[0]
    counts = table.column("Count ms")
    assert max(counts) - min(counts) < 1e-6
