"""Microbenchmarks of the library's own hot paths (real wall-clock).

Unlike the experiment benchmarks (which report *simulated* PIM time), these
measure the actual Python/NumPy throughput of the building blocks — the
numbers a user of this library cares about when scaling it up.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coloring.partition import ColoringPartitioner
from repro.common.rng import RngFactory
from repro.core.kernel_tc_fast import fast_count
from repro.core.orient import orient_and_sort
from repro.graph.datasets import get_dataset
from repro.graph.triangles import count_triangles
from repro.streaming.misra_gries import MisraGries
from repro.streaming.reservoir import EdgeReservoir

from conftest import bench_tier

TIER = bench_tier()


@pytest.fixture(scope="module")
def graph():
    return get_dataset("kronecker23", TIER)


def test_oracle_count_wallclock(benchmark, graph):
    result = benchmark(count_triangles, graph)
    assert result > 0


def test_fast_kernel_wallclock(benchmark, graph):
    result = benchmark(fast_count, graph.src, graph.dst, graph.num_nodes)
    assert result.triangles == count_triangles(graph)


def test_orient_and_sort_wallclock(benchmark, graph):
    u, v, _ = benchmark(orient_and_sort, graph.src, graph.dst)
    assert u.size == graph.num_edges


def test_partition_assign_wallclock(benchmark, graph):
    partitioner = ColoringPartitioner(8, RngFactory(0).stream("c"))
    part = benchmark(partitioner.assign, graph)
    assert part.total_routed == 8 * graph.num_edges


def test_reservoir_batch_wallclock(benchmark, graph):
    def offer():
        r = EdgeReservoir(graph.num_edges // 10, RngFactory(0).stream("r"))
        r.offer_batch(graph.src, graph.dst)
        return r

    r = benchmark(offer)
    assert r.size == graph.num_edges // 10


def test_misra_gries_batch_wallclock(benchmark, graph):
    stream = np.concatenate([graph.src, graph.dst])

    def update():
        mg = MisraGries(1024)
        mg.update_array(stream)
        return mg

    mg = benchmark(update)
    assert mg.size <= 1024


def test_color_hash_wallclock(benchmark, graph):
    from repro.common.hashing import ColorHash

    h = ColorHash.random(16, RngFactory(1).stream("h"))
    colors = benchmark(h.color_array, graph.src)
    assert colors.max() < 16
