"""Host-side executor speedup: serial vs. process engines (real wall-clock).

Unlike the experiment benchmarks (simulated PIM time), this measures the
library's own wall-clock — the quantity the execution engine exists to
shrink.  At ``C=8`` the pipeline runs ``binom(10,3) = 120`` independent DPU
kernels; the process engine chunks them over ``os.cpu_count()`` workers.

The ``>= 2x`` speedup assertion only fires on machines with 4+ usable cores
(single-core CI boxes can't exhibit parallel speedup; there the benchmark
still records both timings so ``BENCH_*.json`` tracks the trajectory).
Simulated results are asserted bit-identical regardless — the engine is a
wall-clock knob only.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.api import PimTriangleCounter
from repro.graph.datasets import get_dataset

from conftest import bench_tier

TIER = bench_tier()
COLORS = 8  # binom(10, 3) = 120 DPU kernels to spread over workers


@pytest.fixture(scope="module")
def graph():
    return get_dataset("kronecker23", TIER)


def _count_seconds(graph, executor: str, jobs: int | None = None):
    counter = PimTriangleCounter(num_colors=COLORS, seed=0, executor=executor, jobs=jobs)
    start = time.perf_counter()
    result = counter.count(graph)
    return result, time.perf_counter() - start


def test_executor_speedup_serial_vs_process(benchmark, graph):
    serial_result, serial_s = _count_seconds(graph, "serial")

    result = {}

    def process_run() -> None:
        result["r"], result["s"] = _count_seconds(graph, "process", jobs=os.cpu_count())

    benchmark.pedantic(process_run, rounds=1, iterations=1)
    process_result, process_s = result["r"], result["s"]

    # The engine must not perturb the functional result or the cost model.
    assert process_result.count == serial_result.count
    assert process_result.clock.phases == serial_result.clock.phases

    speedup = serial_s / process_s if process_s > 0 else float("inf")
    benchmark.extra_info["tier"] = TIER
    benchmark.extra_info["num_colors"] = COLORS
    benchmark.extra_info["cores"] = os.cpu_count()
    benchmark.extra_info["serial_wall_s"] = round(serial_s, 4)
    benchmark.extra_info["process_wall_s"] = round(process_s, 4)
    benchmark.extra_info["speedup"] = round(speedup, 3)

    if (os.cpu_count() or 1) >= 4 and TIER != "tiny":
        assert speedup >= 2.0, (
            f"process engine {speedup:.2f}x vs serial on {os.cpu_count()} cores; "
            "expected >= 2x with 4+ cores"
        )


def test_executor_thread_parity_wallclock(benchmark, graph):
    """Thread engine: record its wall-clock too (NumPy releases the GIL)."""
    serial_result, _ = _count_seconds(graph, "serial")

    result = {}

    def thread_run() -> None:
        result["r"], result["s"] = _count_seconds(graph, "thread", jobs=os.cpu_count())

    benchmark.pedantic(thread_run, rounds=1, iterations=1)
    assert result["r"].count == serial_result.count
    assert result["r"].clock.phases == serial_result.clock.phases
    benchmark.extra_info["tier"] = TIER
    benchmark.extra_info["thread_wall_s"] = round(result["s"], 4)
