"""Host-side wall-clock benchmarks: executor engines and kernel variants.

Unlike the experiment benchmarks (simulated PIM time), this measures the
library's own wall-clock — the quantity the execution engine and the
vectorized kernel exist to shrink.  At ``C=8`` the pipeline runs
``binom(10,3) = 120`` independent DPU kernels; the process engine chunks
them over ``os.cpu_count()`` workers.

The ``>= 2x`` speedup assertion only fires on machines with 4+ usable cores
(single-core CI boxes can't exhibit parallel speedup; there the benchmark
still records both timings so ``BENCH_*.json`` tracks the trajectory).  The
``fastvec``-vs-``fast`` kernel benchmark has no such gate: it is a
single-threaded serial comparison, so it runs — and asserts simulated parity
— everywhere, including 1-core containers where the executor benchmarks can
only record.  Simulated results are asserted bit-identical in all cases —
engines and kernel variants are wall-clock knobs only.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.api import PimTriangleCounter
from repro.graph.datasets import get_dataset

from conftest import bench_tier

TIER = bench_tier()
COLORS = 8  # binom(10, 3) = 120 DPU kernels to spread over workers


@pytest.fixture(scope="module")
def graph():
    return get_dataset("kronecker23", TIER)


def _count_seconds(graph, executor: str, jobs: int | None = None):
    counter = PimTriangleCounter(num_colors=COLORS, seed=0, executor=executor, jobs=jobs)
    start = time.perf_counter()
    result = counter.count(graph)
    return result, time.perf_counter() - start


def test_executor_speedup_serial_vs_process(benchmark, graph):
    serial_result, serial_s = _count_seconds(graph, "serial")

    result = {}

    def process_run() -> None:
        result["r"], result["s"] = _count_seconds(graph, "process", jobs=os.cpu_count())

    benchmark.pedantic(process_run, rounds=1, iterations=1)
    process_result, process_s = result["r"], result["s"]

    # The engine must not perturb the functional result or the cost model.
    assert process_result.count == serial_result.count
    assert process_result.clock.phases == serial_result.clock.phases

    speedup = serial_s / process_s if process_s > 0 else float("inf")
    benchmark.extra_info["tier"] = TIER
    benchmark.extra_info["num_colors"] = COLORS
    benchmark.extra_info["cores"] = os.cpu_count()
    benchmark.extra_info["serial_wall_s"] = round(serial_s, 4)
    benchmark.extra_info["process_wall_s"] = round(process_s, 4)
    benchmark.extra_info["speedup"] = round(speedup, 3)

    if (os.cpu_count() or 1) >= 4 and TIER != "tiny":
        assert speedup >= 2.0, (
            f"process engine {speedup:.2f}x vs serial on {os.cpu_count()} cores; "
            "expected >= 2x with 4+ cores"
        )


def test_kernel_fastvec_vs_fast_serial(benchmark, graph):
    """``fastvec`` vs ``fast``: serial wall-clock, zero simulated drift.

    Runs everywhere — no core-count or tier gate — because it compares two
    kernel implementations under the same (serial) engine.  The hard
    assertions are the metric-neutrality contract; the timings feed
    ``BENCH_kernel.json`` via ``bench_report.py --kernel-out``.
    """
    import numpy as np

    def _variant_seconds(variant: str):
        counter = PimTriangleCounter(num_colors=COLORS, seed=0, kernel_variant=variant)
        start = time.perf_counter()
        result = counter.count(graph)
        return result, time.perf_counter() - start

    fast_result, fast_s = _variant_seconds("merge")

    result = {}

    def fastvec_run() -> None:
        result["r"], result["s"] = _variant_seconds("fastvec")

    benchmark.pedantic(fastvec_run, rounds=1, iterations=1)
    vec_result, vec_s = result["r"], result["s"]

    # The vectorized kernel must not perturb anything simulated.
    assert vec_result.count == fast_result.count
    assert vec_result.clock.phases == fast_result.clock.phases
    assert np.array_equal(vec_result.per_dpu_counts, fast_result.per_dpu_counts)
    k_fast, k_vec = fast_result.kernel, vec_result.kernel
    assert (k_vec.instructions, k_vec.dma_requests, k_vec.dma_bytes) == (
        k_fast.instructions,
        k_fast.dma_requests,
        k_fast.dma_bytes,
    )

    benchmark.extra_info["tier"] = TIER
    benchmark.extra_info["num_colors"] = COLORS
    benchmark.extra_info["fast_wall_s"] = round(fast_s, 4)
    benchmark.extra_info["fastvec_wall_s"] = round(vec_s, 4)
    benchmark.extra_info["speedup_fastvec"] = round(
        fast_s / vec_s if vec_s > 0 else 1.0, 3
    )


def test_executor_thread_parity_wallclock(benchmark, graph):
    """Thread engine: record its wall-clock too (NumPy releases the GIL)."""
    serial_result, _ = _count_seconds(graph, "serial")

    result = {}

    def thread_run() -> None:
        result["r"], result["s"] = _count_seconds(graph, "thread", jobs=os.cpu_count())

    benchmark.pedantic(thread_run, rounds=1, iterations=1)
    assert result["r"].count == serial_result.count
    assert result["r"].clock.phases == serial_result.clock.phases
    benchmark.extra_info["tier"] = TIER
    benchmark.extra_info["thread_wall_s"] = round(result["s"], 4)
