"""Figure 4 benchmark: PIM-core scaling across color counts.

Shape checks mirror the paper: execution time drops with more PIM cores on
the larger graphs, while the smallest graph (livejournal) hits the point
where allocation/transfer overhead outweighs added parallelism.
"""

from __future__ import annotations

from conftest import run_and_record


def test_fig4_pim_core_scaling(benchmark, tier):
    table = run_and_record(benchmark, "fig4", tier)
    assert all(table.column("Exact?"))
    by_graph: dict[str, list] = {}
    for row in table.rows:
        by_graph.setdefault(row[0], []).append(row)

    # The big Kronecker graph keeps speeding up with more cores.
    kron = by_graph["kronecker23"]
    assert kron[-1][4] > kron[0][4]
    assert kron[-1][4] > 1.0

    # The smallest graph's best configuration is NOT the largest one
    # (the LiveJournal inversion), or at best ties within 10%.
    lj = by_graph["livejournal"]
    best = max(r[4] for r in lj)
    assert lj[-1][4] <= best * 1.1
