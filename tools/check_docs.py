#!/usr/bin/env python
"""Documentation checks: intra-repo markdown links and doc doctests.

Run from anywhere inside the repo::

    python tools/check_docs.py

Two checks over ``README.md`` and ``docs/*.md`` (CI's docs job runs both;
``tests/test_docs.py`` runs them in the tier-1 suite):

1. **Link check** — every relative markdown link ``[text](target)`` must
   resolve to a file or directory in the repo (``#anchor`` suffixes are
   stripped; ``http(s):``/``mailto:`` targets are skipped).
2. **Doctests** — every fenced ``python`` code block containing ``>>>``
   prompts is executed with :mod:`doctest`.  Blocks without prompts are
   illustrative and skipped.

Exit code 0 when everything passes; 1 with a per-finding report otherwise.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — excluding images; target captured up to the first ``)``.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"^```(\w*)\s*$")
_SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def doc_files(root: Path = REPO_ROOT) -> list[Path]:
    return [root / "README.md"] + sorted((root / "docs").glob("*.md"))


def iter_code_blocks(text: str):
    """Yield ``(language, start_line, source)`` for each fenced code block."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        match = _FENCE_RE.match(lines[i])
        if match:
            lang = match.group(1).lower()
            start = i + 1
            body = []
            i += 1
            while i < len(lines) and not lines[i].startswith("```"):
                body.append(lines[i])
                i += 1
            yield lang, start, "\n".join(body)
        i += 1


def check_links(path: Path, root: Path = REPO_ROOT) -> list[str]:
    """Return one error string per broken relative link in ``path``."""
    errors = []
    text = path.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for target in _LINK_RE.findall(line):
            if target.startswith(_SKIP_SCHEMES) or target.startswith("#"):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = (path.parent / rel).resolve()
            if not resolved.exists():
                errors.append(
                    f"{path.relative_to(root)}:{lineno}: broken link -> {target}"
                )
    return errors


def check_doctests(path: Path, root: Path = REPO_ROOT) -> list[str]:
    """Run doctest over each python code block of ``path`` that has prompts."""
    errors = []
    text = path.read_text(encoding="utf-8")
    runner = doctest.DocTestRunner(optionflags=doctest.NORMALIZE_WHITESPACE)
    parser = doctest.DocTestParser()
    for lang, start, source in iter_code_blocks(text):
        if lang not in ("python", "pycon", "py") or ">>>" not in source:
            continue
        name = f"{path.relative_to(root)}:{start}"
        test = parser.get_doctest(source, {}, name, str(path), start)
        result = runner.run(test, clear_globs=True)
        if result.failed:
            errors.append(f"{name}: {result.failed} doctest failure(s)")
    return errors


def main() -> int:
    link_errors: list[str] = []
    doctest_errors: list[str] = []
    files = doc_files()
    for path in files:
        if not path.exists():
            link_errors.append(f"missing documentation file: {path}")
            continue
        link_errors.extend(check_links(path))
        doctest_errors.extend(check_doctests(path))
    for err in link_errors + doctest_errors:
        print(f"FAIL {err}")
    if link_errors or doctest_errors:
        return 1
    print(f"docs ok: {len(files)} files, links resolved, doctests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
