#!/usr/bin/env python
"""End-to-end smoke test of ``repro-serve`` (the CI ``service-smoke`` job).

Boots a real server subprocess on an ephemeral port, drives two sessions
from concurrent client threads, and checks the service's load-bearing
promises from the outside:

* both sessions' exact counts are bit-identical to a standalone
  :class:`~repro.core.dynamic.DynamicPimCounter` replaying the same batches
  (and to the :func:`~repro.graph.triangles.count_triangles` oracle);
* a delete round reports the logical edges removed and restores the count
  of the remaining graph;
* each session's NDJSON event stream is schema-valid and join-complete
  (``repro-validate --require-complete`` exits 0).

Run it locally with ``python tools/service_smoke.py``; exits non-zero on
any violation.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import threading

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

import numpy as np  # noqa: E402

from repro.core.dynamic import DynamicPimCounter  # noqa: E402
from repro.graph.generators import erdos_renyi  # noqa: E402
from repro.graph.triangles import count_triangles  # noqa: E402
from repro.observability.validate import main as validate_main  # noqa: E402
from repro.service import ServiceClient, wait_ready  # noqa: E402

BATCH = 64
SESSIONS = (
    # name, nodes, edges, colors, seed
    ("alpha", 90, 500, 3, 11),
    ("beta", 120, 800, 4, 22),
)


def drive_session(url: str, name: str, graph, colors: int, seed: int, out: dict):
    with ServiceClient(url) as client:
        client.open_session(
            name, num_nodes=graph.num_nodes, num_colors=colors, seed=seed
        )
        client.insert_graph(name, graph, batch_edges=BATCH)
        view = client.count(name)
        half = graph.slice(0, graph.num_edges // 2)
        removed = client.delete(name, half.src, half.dst)
        after = client.count(name)
        client.close_session(name)
    out[name] = {"full": view, "removed": removed, "after": after}


def main() -> int:
    graphs = {
        name: erdos_renyi(
            n, m, np.random.default_rng(seed), name=name
        ).canonicalize()
        for name, n, m, colors, seed in SESSIONS
    }
    with tempfile.TemporaryDirectory() as tmp:
        ready = os.path.join(tmp, "addr.txt")
        events = os.path.join(tmp, "events")
        server = subprocess.Popen(
            [
                sys.executable, "-c",
                "from repro.service.server import main; raise SystemExit(main())",
                "--port", "0", "--ready-file", ready,
                "--max-sessions", "4", "--event-dir", events,
            ],
            env={**os.environ, "PYTHONPATH": os.path.join(ROOT, "src")},
        )
        try:
            deadline_url = None
            for _ in range(200):
                if os.path.exists(ready):
                    deadline_url = open(ready).read().strip()
                    break
                server.poll()
                if server.returncode is not None:
                    print("server exited before becoming ready", file=sys.stderr)
                    return 1
                threading.Event().wait(0.05)
            if not deadline_url:
                print("server never wrote its ready file", file=sys.stderr)
                return 1
            url = deadline_url
            wait_ready(url, timeout=10)

            results: dict = {}
            threads = [
                threading.Thread(
                    target=drive_session,
                    args=(url, name, graphs[name], colors, seed, results),
                )
                for name, _, _, colors, seed in SESSIONS
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            if set(results) != {name for name, *_ in SESSIONS}:
                print(f"sessions missing from results: {results}", file=sys.stderr)
                return 1

            for name, _, _, colors, seed in SESSIONS:
                graph = graphs[name]
                dyn = DynamicPimCounter(graph.num_nodes, num_colors=colors, seed=seed)
                for start in range(0, graph.num_edges, BATCH):
                    dyn.apply_update(graph.slice(start, min(start + BATCH, graph.num_edges)))
                got = results[name]
                truth = count_triangles(graph)
                assert got["full"]["triangles"] == dyn.triangles == truth, (
                    f"{name}: service={got['full']['triangles']} "
                    f"standalone={dyn.triangles} oracle={truth}"
                )
                half = graph.slice(0, graph.num_edges // 2)
                rest = graph.slice(graph.num_edges // 2, graph.num_edges)
                assert got["removed"]["removed_edges"] == half.num_edges, got["removed"]
                assert got["after"]["triangles"] == count_triangles(rest), got["after"]
                assert got["after"]["cumulative_edges"] == rest.num_edges, got["after"]
                print(
                    f"parity OK: session={name} triangles={truth} "
                    f"after-delete={got['after']['triangles']}"
                )
        finally:
            server.terminate()
            server.wait(timeout=30)

        streams = [os.path.join(events, f"{name}.ndjson") for name, *_ in SESSIONS]
        for stream in streams:
            assert os.path.exists(stream), f"missing event stream {stream}"
        rc = validate_main([*streams, "--require-complete"])
        if rc != 0:
            print("NDJSON stream validation failed", file=sys.stderr)
            return rc
        print(f"service smoke OK: {len(SESSIONS)} concurrent sessions, "
              f"streams join-complete")
    return 0


if __name__ == "__main__":
    sys.exit(main())
