#!/usr/bin/env python
"""End-to-end smoke test of ``repro-serve`` (the CI ``service-smoke`` job).

Boots a real server subprocess on an ephemeral port, drives two sessions
from concurrent client threads, and checks the service's load-bearing
promises from the outside:

* both sessions' exact counts are bit-identical to a standalone
  :class:`~repro.core.dynamic.DynamicPimCounter` replaying the same batches
  (and to the :func:`~repro.graph.triangles.count_triangles` oracle);
* a delete round reports the logical edges removed and restores the count
  of the remaining graph;
* every response echoes the request's ``trace_id``;
* the ``metrics`` op reports non-empty latency histograms, and its
  rejection counters equal the admission failures this script deliberately
  provokes (duplicate open, session-cap overflow, unknown session);
* the Prometheus text rendering of the snapshot parses cleanly, and
  ``repro-top --once`` renders a dashboard against the live server;
* each session's NDJSON event stream is schema-valid and join-complete
  (``repro-validate --require-complete`` exits 0).

Run it locally with ``python tools/service_smoke.py``; exits non-zero on
any violation.  ``--metrics-json`` / ``--metrics-prom`` save the scraped
snapshot for artifact upload and ``repro-history`` ingestion in CI.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
import threading

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

import numpy as np  # noqa: E402

from repro.core.dynamic import DynamicPimCounter  # noqa: E402
from repro.graph.generators import erdos_renyi  # noqa: E402
from repro.graph.triangles import count_triangles  # noqa: E402
from repro.observability.promtext import (  # noqa: E402
    parse_prometheus,
    render_prometheus,
    write_snapshot,
)
from repro.observability.top import main as top_main  # noqa: E402
from repro.observability.validate import main as validate_main  # noqa: E402
from repro.service import ServiceClient, ServiceError, wait_ready  # noqa: E402

BATCH = 64
SESSIONS = (
    # name, nodes, edges, colors, seed
    ("alpha", 90, 500, 3, 11),
    ("beta", 120, 800, 4, 22),
)


def drive_session(url: str, name: str, graph, colors: int, seed: int, out: dict):
    with ServiceClient(url) as client:
        responses = []
        responses.append(client.open_session(
            name, num_nodes=graph.num_nodes, num_colors=colors, seed=seed
        ))
        client.insert_graph(name, graph, batch_edges=BATCH)
        view = client.count(name)
        responses.append(view)
        half = graph.slice(0, graph.num_edges // 2)
        removed = client.delete(name, half.src, half.dst)
        after = client.count(name)
        responses.append(client.close_session(name))
        # The client already verifies each echo against the id it sent;
        # assert the field is actually present on the wire too.
        for response in responses:
            assert response.get("trace_id"), f"{name}: response missing trace_id"
        assert responses[-1]["trace_id"] == client.last_trace_id
    out[name] = {"full": view, "removed": removed, "after": after}


def provoke_rejections(url: str) -> dict[str, int]:
    """Deliberately trip admission control; returns expected counter deltas."""
    provoked = {"duplicate_session": 0, "admission_rejected": 0,
                "unknown_session": 0}
    with ServiceClient(url) as client:
        # Fill the 4-session cap (the two smoke sessions are closed by now).
        for i in range(4):
            client.open_session(f"filler{i}", num_nodes=8)
        for code, op in (
            ("duplicate_session", lambda: client.open_session("filler0", num_nodes=8)),
            ("admission_rejected", lambda: client.open_session("overflow", num_nodes=8)),
            ("unknown_session", lambda: client.count("ghost")),
        ):
            try:
                op()
            except ServiceError as exc:
                assert exc.code == code, f"expected {code}, got {exc.code}"
                assert exc.trace_id, f"{code}: rejection lost its trace_id"
                provoked[code] += 1
            else:
                raise AssertionError(f"{code}: rejection did not trigger")
        for i in range(4):
            client.close_session(f"filler{i}")
    return provoked


def check_metrics(url: str, provoked: dict[str, int], args) -> None:
    with ServiceClient(url) as client:
        doc = client.metrics()
    assert doc["schema"] == "repro-service-metrics/1", doc.get("schema")
    service = doc["service"]
    for code, expected in provoked.items():
        got = service[f"service.rejections.{code}"]["value"]
        assert got == expected, (
            f"rejections.{code}: scraped {got}, provoked {expected}"
        )
    # Non-empty latency data: both smoke sessions inserted and counted.
    for op in ("open", "insert", "count", "close"):
        hist = service[f"service.op_latency_seconds.{op}"]
        assert hist["count"] > 0, f"empty latency histogram for {op!r}"
    assert doc["latency"]["insert"]["p99"] >= doc["latency"]["insert"]["p50"] > 0
    # The Prometheus rendering must survive the strict parser.
    families = parse_prometheus(render_prometheus(doc))
    assert "repro_service_op_latency_seconds" in families
    assert any(
        name.endswith("_bucket")
        for name, _, _ in families["repro_service_op_latency_seconds"]["samples"]
    )
    if args.metrics_json:
        write_snapshot(args.metrics_json, doc)
        print(f"metrics snapshot (JSON) -> {args.metrics_json}")
    if args.metrics_prom:
        write_snapshot(args.metrics_prom, doc)
        print(f"metrics snapshot (Prometheus text) -> {args.metrics_prom}")
    print(
        "metrics OK: rejection counters match provoked failures "
        f"({sum(provoked.values())}), latency histograms non-empty"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--metrics-json", default=None, metavar="PATH",
                        help="save the scraped metrics snapshot as JSON "
                             "(the form repro-history ingests)")
    parser.add_argument("--metrics-prom", default=None, metavar="PATH",
                        help="save the snapshot in Prometheus text format")
    args = parser.parse_args(argv)

    graphs = {
        name: erdos_renyi(
            n, m, np.random.default_rng(seed), name=name
        ).canonicalize()
        for name, n, m, colors, seed in SESSIONS
    }
    with tempfile.TemporaryDirectory() as tmp:
        ready = os.path.join(tmp, "addr.txt")
        events = os.path.join(tmp, "events")
        server = subprocess.Popen(
            [
                sys.executable, "-c",
                "from repro.service.server import main; raise SystemExit(main())",
                "--port", "0", "--ready-file", ready,
                "--max-sessions", "4", "--event-dir", events,
            ],
            env={**os.environ, "PYTHONPATH": os.path.join(ROOT, "src")},
        )
        try:
            deadline_url = None
            for _ in range(200):
                if os.path.exists(ready):
                    deadline_url = open(ready).read().strip()
                    break
                server.poll()
                if server.returncode is not None:
                    print("server exited before becoming ready", file=sys.stderr)
                    return 1
                threading.Event().wait(0.05)
            if not deadline_url:
                print("server never wrote its ready file", file=sys.stderr)
                return 1
            url = deadline_url
            wait_ready(url, timeout=10)

            results: dict = {}
            threads = [
                threading.Thread(
                    target=drive_session,
                    args=(url, name, graphs[name], colors, seed, results),
                )
                for name, _, _, colors, seed in SESSIONS
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            if set(results) != {name for name, *_ in SESSIONS}:
                print(f"sessions missing from results: {results}", file=sys.stderr)
                return 1

            for name, _, _, colors, seed in SESSIONS:
                graph = graphs[name]
                dyn = DynamicPimCounter(graph.num_nodes, num_colors=colors, seed=seed)
                for start in range(0, graph.num_edges, BATCH):
                    dyn.apply_update(graph.slice(start, min(start + BATCH, graph.num_edges)))
                got = results[name]
                truth = count_triangles(graph)
                assert got["full"]["triangles"] == dyn.triangles == truth, (
                    f"{name}: service={got['full']['triangles']} "
                    f"standalone={dyn.triangles} oracle={truth}"
                )
                half = graph.slice(0, graph.num_edges // 2)
                rest = graph.slice(graph.num_edges // 2, graph.num_edges)
                assert got["removed"]["removed_edges"] == half.num_edges, got["removed"]
                assert got["after"]["triangles"] == count_triangles(rest), got["after"]
                assert got["after"]["cumulative_edges"] == rest.num_edges, got["after"]
                print(
                    f"parity OK: session={name} triangles={truth} "
                    f"after-delete={got['after']['triangles']}"
                )

            provoked = provoke_rejections(url)
            check_metrics(url, provoked, args)
            rc = top_main([url, "--once", "--event-dir", events])
            if rc != 0:
                print("repro-top --once failed against the live server",
                      file=sys.stderr)
                return rc
        finally:
            server.terminate()
            server.wait(timeout=30)

        streams = [os.path.join(events, f"{name}.ndjson") for name, *_ in SESSIONS]
        for stream in streams:
            assert os.path.exists(stream), f"missing event stream {stream}"
        rc = validate_main([*streams, "--require-complete"])
        if rc != 0:
            print("NDJSON stream validation failed", file=sys.stderr)
            return rc
        print(f"service smoke OK: {len(SESSIONS)} concurrent sessions, "
              f"streams join-complete")
    return 0


if __name__ == "__main__":
    sys.exit(main())
