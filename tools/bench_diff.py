#!/usr/bin/env python
"""Benchmark regression gate: diff two ``BENCH_*.json`` artifacts.

Compares a freshly generated benchmark artifact against a committed baseline
(``benchmarks/baselines/``) metric by metric and exits nonzero when a *hard*
metric regresses beyond its threshold — this is what makes the ROADMAP's
"as fast as the hardware allows" north star enforceable in CI instead of
aspirational.

Severity model
--------------

* **hard** — simulated-clock quantities, counts, peak-memory bounds and skew
  ratios.  These are engine-invariant, bit-identical across machines, so any
  drift is a real behavior change: the gate fails (exit 1) when the relative
  change exceeds the threshold in the bad direction (default 5%).  Exact
  metrics (triangle counts) allow no drift at all.
* **warn** — wall-clock measurements.  Honest timings vary across runners,
  so these only print a warning, never fail the gate.

Improvements (changes in the *good* direction) are reported but never fail.
A graph present in the baseline but missing from the current artifact is a
hard failure (coverage regression); new graphs only warn.

Usage::

    python tools/bench_diff.py benchmarks/baselines/BENCH_telemetry.json \
        BENCH_telemetry.json --out bench_diff_summary.json
    python tools/bench_diff.py baseline.json current.json --threshold 0.10

``--history DB`` extends the gate from point-vs-baseline to
trajectory-vs-history: the current artifact is appended to the
:class:`repro.observability.history.RunHistory` store at ``DB`` and a
rolling-window median drift check runs over the accumulated series
(warn-only until ``--trend-min-runs`` runs exist; see
``docs/observability.md`` §7).

Supported schemas: ``repro-bench-telemetry/1``, ``repro-bench-ingest/1``,
``repro-bench-imbalance/1`` and ``/2`` (see ``benchmarks/bench_report.py``;
v2 adds the degree-partitioner comparison columns), and
``repro-bench-kernel/1`` (fastvec-vs-fast: simulated metrics gated to zero
drift, wall-clock warn-only).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass

#: direction: "higher_worse" (times, bytes, skew), "lower_worse"
#: (throughput, savings), "exact" (counts — any change fails).
#: severity: "hard" fails the gate, "warn" only prints.
@dataclass(frozen=True)
class Rule:
    path: str
    direction: str
    severity: str


_TELEMETRY_RULES = (
    Rule("phases.setup", "higher_worse", "hard"),
    Rule("phases.sample_creation", "higher_worse", "hard"),
    Rule("phases.triangle_count", "higher_worse", "hard"),
    Rule("throughput_edges_per_ms", "lower_worse", "hard"),
    Rule("load_balance", "higher_worse", "hard"),
    Rule("count", "exact", "hard"),
    Rule("wall_seconds", "higher_worse", "warn"),
)

_INGEST_RULES = (
    Rule("count_batched", "exact", "hard"),
    Rule("count_monolithic", "exact", "hard"),
    Rule("sample_seconds_batched", "higher_worse", "hard"),
    Rule("total_seconds_batched", "higher_worse", "hard"),
    Rule("peak_routed_bytes_batched", "higher_worse", "hard"),
    Rule("overlap_saved_seconds", "lower_worse", "warn"),
)

_IMBALANCE_RULES = (
    Rule("count", "exact", "hard"),
    Rule("baseline.count_seconds.max", "higher_worse", "hard"),
    Rule("baseline.count_seconds.max_over_mean", "higher_worse", "hard"),
    Rule("baseline.merge_steps.max_over_mean", "higher_worse", "hard"),
    Rule("misra_gries.count_seconds.max", "higher_worse", "hard"),
    Rule("misra_gries.count_seconds.max_over_mean", "higher_worse", "hard"),
    Rule("skew_improvement_max_over_mean", "lower_worse", "warn"),
)

#: v2 extends v1 with the degree-partitioner side: counts stay exact, its
#: skew ratios are hard-gated (they are simulated-clock quantities), and the
#: hash-vs-degree improvement factor warns when it shrinks.
_IMBALANCE_RULES_V2 = _IMBALANCE_RULES + (
    Rule("counts_match_degree", "exact", "hard"),
    Rule("degree.count_seconds.max_over_mean", "higher_worse", "hard"),
    Rule("degree.edges_routed.max_over_mean", "higher_worse", "hard"),
    Rule("degree.edges_routed.p99_over_p50", "higher_worse", "hard"),
    Rule("skew_improvement_degree", "lower_worse", "warn"),
)

#: fastvec-vs-fast kernel comparison: everything simulated is hard-gated —
#: counts exactly, the ``simulated_identical`` flag exactly (any drift between
#: the variants is a cost-model bug, not noise), phase totals and charge
#: aggregates exactly (they are bit-identical across machines).  The
#: wall-clock columns are honest timings and only warn: the fastvec win must
#: *fall* (``wall_seconds_fastvec`` higher-worse, ``speedup_fastvec``
#: lower-worse) for the gate to even mention them.
_KERNEL_RULES = (
    Rule("count", "exact", "hard"),
    Rule("counts_match", "exact", "hard"),
    Rule("simulated_identical", "exact", "hard"),
    Rule("phases.setup", "exact", "hard"),
    Rule("phases.sample_creation", "exact", "hard"),
    Rule("phases.triangle_count", "exact", "hard"),
    Rule("kernel_instructions", "exact", "hard"),
    Rule("kernel_dma_requests", "exact", "hard"),
    Rule("kernel_dma_bytes", "exact", "hard"),
    Rule("wall_seconds_fast", "higher_worse", "warn"),
    Rule("wall_seconds_fastvec", "higher_worse", "warn"),
    Rule("speedup_fastvec", "lower_worse", "warn"),
)

RULES_BY_SCHEMA: dict[str, tuple[Rule, ...]] = {
    "repro-bench-telemetry/1": _TELEMETRY_RULES,
    "repro-bench-ingest/1": _INGEST_RULES,
    "repro-bench-imbalance/1": _IMBALANCE_RULES,
    "repro-bench-imbalance/2": _IMBALANCE_RULES_V2,
    "repro-bench-kernel/1": _KERNEL_RULES,
}


def _lookup(record: dict, path: str):
    """Dotted-path lookup into nested dicts; None when any hop is missing."""
    node = record
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _rel_change(base: float, cur: float) -> float:
    if base == 0:
        return 0.0 if cur == 0 else float("inf")
    return (cur - base) / abs(base)


def diff_documents(
    baseline: dict, current: dict, threshold: float = 0.05
) -> dict:
    """Compare two artifacts of the same schema; return the summary document.

    The summary carries one entry per (graph, metric) with the baseline and
    current values, the relative change, and the verdict (``ok`` /
    ``improved`` / ``warn`` / ``regression``), plus the overall ``failed``
    flag the CLI turns into the exit code.
    """
    schema = baseline.get("schema")
    entries: list[dict] = []
    failures: list[str] = []
    warnings: list[str] = []
    if schema != current.get("schema"):
        failures.append(
            f"schema mismatch: baseline {schema!r} vs current {current.get('schema')!r}"
        )
        return _summary(schema, threshold, entries, failures, warnings)
    rules = RULES_BY_SCHEMA.get(schema or "")
    if rules is None:
        failures.append(f"unknown schema {schema!r}; cannot diff")
        return _summary(schema, threshold, entries, failures, warnings)

    base_runs = {r.get("graph"): r for r in baseline.get("runs", [])}
    cur_runs = {r.get("graph"): r for r in current.get("runs", [])}
    for graph in base_runs:
        if graph not in cur_runs:
            failures.append(f"{graph}: present in baseline, missing from current")
    for graph in cur_runs:
        if graph not in base_runs:
            warnings.append(f"{graph}: new graph, no baseline to compare")

    for graph in sorted(set(base_runs) & set(cur_runs)):
        base_run, cur_run = base_runs[graph], cur_runs[graph]
        for rule in rules:
            base_val = _lookup(base_run, rule.path)
            cur_val = _lookup(cur_run, rule.path)
            if base_val is None or cur_val is None:
                # Baselines predating a metric (or vice versa) only warn:
                # schema evolution must not brick the gate.
                if base_val is not None or cur_val is not None:
                    warnings.append(f"{graph}.{rule.path}: present on one side only")
                continue
            base_val, cur_val = float(base_val), float(cur_val)
            rel = _rel_change(base_val, cur_val)
            verdict = "ok"
            if rule.direction == "exact":
                if cur_val != base_val:
                    verdict = "regression" if rule.severity == "hard" else "warn"
            else:
                bad = rel if rule.direction == "higher_worse" else -rel
                if bad > threshold:
                    verdict = "regression" if rule.severity == "hard" else "warn"
                elif bad < -threshold:
                    verdict = "improved"
            entry = {
                "graph": graph,
                "metric": rule.path,
                "severity": rule.severity,
                "baseline": base_val,
                "current": cur_val,
                "rel_change": rel,
                "verdict": verdict,
            }
            entries.append(entry)
            line = (
                f"{graph}.{rule.path}: {base_val:g} -> {cur_val:g} "
                f"({rel:+.1%})"
            )
            if verdict == "regression":
                failures.append(line)
            elif verdict == "warn":
                warnings.append(line)
    return _summary(schema, threshold, entries, failures, warnings)


def _summary(schema, threshold, entries, failures, warnings) -> dict:
    return {
        "schema": "repro-bench-diff/1",
        "compared_schema": schema,
        "threshold": threshold,
        "entries": entries,
        "failures": failures,
        "warnings": warnings,
        "failed": bool(failures),
    }


def render_summary(summary: dict) -> str:
    """Human-readable verdict table for CI logs."""
    lines = [
        f"bench diff ({summary['compared_schema']}, "
        f"threshold {summary['threshold']:.0%}):"
    ]
    interesting = [
        e for e in summary["entries"] if e["verdict"] != "ok"
    ] or summary["entries"][:5]
    for e in interesting:
        lines.append(
            f"  [{e['verdict']:<10}] {e['graph']}.{e['metric']}: "
            f"{e['baseline']:g} -> {e['current']:g} ({e['rel_change']:+.1%})"
        )
    for w in summary["warnings"]:
        lines.append(f"  [warn      ] {w}")
    for f in summary["failures"]:
        lines.append(f"  [REGRESSION] {f}")
    ok = sum(1 for e in summary["entries"] if e["verdict"] == "ok")
    lines.append(
        f"  {len(summary['entries'])} comparisons: {ok} ok, "
        f"{len(summary['warnings'])} warnings, "
        f"{len(summary['failures'])} hard failures"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json artifacts; exit 1 on hard regression"
    )
    parser.add_argument("baseline", help="committed baseline artifact")
    parser.add_argument("current", help="freshly generated artifact")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="relative-change tolerance for hard ratio "
                             "metrics (default 0.05 = 5%%)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON diff summary (CI artifact)")
    parser.add_argument("--history", default=None, metavar="DB",
                        help="append the current artifact to this run-history "
                             "store and extend the gate from point-vs-baseline "
                             "to trajectory-vs-history: a rolling-window "
                             "median drift check over the accumulated runs "
                             "(see docs/observability.md §7)")
    parser.add_argument("--trend-window", type=int, default=5, metavar="N",
                        help="median window for the --history trend check "
                             "(default 5)")
    parser.add_argument("--trend-min-runs", type=int, default=5, metavar="N",
                        help="with --history: series shorter than this only "
                             "warn, so a young history cannot fail the gate "
                             "(default 5)")
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.current) as fh:
        current = json.load(fh)
    summary = diff_documents(baseline, current, threshold=args.threshold)
    print(render_summary(summary))
    failed = summary["failed"]
    if args.history:
        from repro.observability.history import (
            RunHistory,
            detect_trends,
            render_trend_summary,
        )

        with RunHistory(args.history) as history:
            history.ingest(current, source=args.current)
            trend = detect_trends(
                history,
                schema=current.get("schema"),
                window=args.trend_window,
                threshold=args.threshold,
                min_runs=args.trend_min_runs,
            )
        print(render_trend_summary(trend))
        summary["trend"] = trend
        failed = failed or trend["failed"]
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"diff summary written to {args.out}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
