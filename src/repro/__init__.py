"""repro — reproduction of "Accelerating Triangle Counting with Real
Processing-in-Memory Systems" (IPDPS 2025).

The package implements, from scratch and in pure Python/NumPy/SciPy:

* a simulated UPMEM PIM system (:mod:`repro.pimsim`) — functional DPU
  execution plus an analytic instruction/DMA/transfer time model;
* the paper's triangle-counting algorithm (:mod:`repro.core`) — vertex-
  coloring edge partition, uniform and reservoir sampling, the merge-based
  edge-iterator kernel, and the Misra-Gries high-degree remap;
* its substrates: COO/CSR graph handling, generators and dataset analogues
  (:mod:`repro.graph`), streaming summaries (:mod:`repro.streaming`), the
  coloring algebra (:mod:`repro.coloring`);
* CPU/GPU baseline models (:mod:`repro.baselines`) and the full experiment
  harness regenerating every table and figure (:mod:`repro.experiments`).

Quickstart::

    from repro import PimTriangleCounter
    from repro.graph import get_dataset

    result = PimTriangleCounter(num_colors=5).count(get_dataset("orkut", "tiny"))
    print(result.count, result.summary())
"""

from .core import (
    DynamicPimCounter,
    PimTcOptions,
    PimTriangleCounter,
    TcResult,
)
from .pimsim import PAPER_SYSTEM, PimSystemConfig
from .telemetry import RunReport, Telemetry

__version__ = "1.0.0"

__all__ = [
    "PimTriangleCounter",
    "PimTcOptions",
    "TcResult",
    "DynamicPimCounter",
    "PimSystemConfig",
    "PAPER_SYSTEM",
    "Telemetry",
    "RunReport",
    "__version__",
]
