"""WRAM (scratchpad) model: the 64-KB working memory shared by a DPU's tasklets.

The TC kernel stages edges from MRAM into per-tasklet WRAM buffers before the
merge phase (paper Sec. 3.4).  The model's job is to enforce that the kernel's
buffer plan actually fits — the same constraint that dictates buffer sizes in
the real C kernel — and to expose the resulting per-tasklet buffer capacity to
the cost model (it determines how many DMA transfers a scan needs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import WramCapacityError
from ..common.units import fmt_bytes

__all__ = ["Wram", "WramPlan"]


@dataclass(frozen=True)
class WramPlan:
    """A static WRAM budget split for one kernel.

    Attributes
    ----------
    per_tasklet_buffers:
        Mapping of buffer name -> bytes reserved *per tasklet*.
    shared_bytes:
        Bytes reserved once per DPU (kernel globals, mutex-protected state).
    """

    per_tasklet_buffers: dict[str, int]
    shared_bytes: int = 0

    def per_tasklet_total(self) -> int:
        return sum(self.per_tasklet_buffers.values())

    def total(self, num_tasklets: int) -> int:
        return self.shared_bytes + num_tasklets * self.per_tasklet_total()


@dataclass
class Wram:
    """Scratchpad capacity checker for one DPU."""

    capacity: int
    num_tasklets: int
    plan: WramPlan | None = field(default=None)

    def apply_plan(self, plan: WramPlan) -> None:
        """Validate and install a kernel's WRAM plan.

        Raises :class:`WramCapacityError` if the plan exceeds the scratchpad,
        exactly like a real kernel failing to link its stack/buffer layout.
        """
        need = plan.total(self.num_tasklets)
        if need > self.capacity:
            raise WramCapacityError(
                f"WRAM plan needs {fmt_bytes(need)} but scratchpad is "
                f"{fmt_bytes(self.capacity)} ({self.num_tasklets} tasklets)"
            )
        self.plan = plan

    def buffer_bytes(self, name: str) -> int:
        """Per-tasklet byte size of one planned buffer."""
        if self.plan is None:
            raise WramCapacityError("no WRAM plan applied")
        return self.plan.per_tasklet_buffers[name]

    def buffer_capacity(self, name: str, itemsize: int) -> int:
        """How many ``itemsize``-byte items one planned buffer holds per tasklet."""
        return max(1, self.buffer_bytes(name) // itemsize)
