"""Kernel protocol and simulated launch clock.

A *kernel* is the unit of code loaded into every allocated DPU's IRAM and
launched by the host.  In this simulator a kernel is a Python object with a
``run(dpu)`` method that (a) computes the real result from the DPU's MRAM
symbols and (b) charges the DPU's instruction/DMA ledgers for the work the
equivalent C kernel would perform.  The SPMD model of UPMEM is preserved:
every DPU runs the same kernel over its own private data.

:class:`SimClock` is the named-phase time ledger used by the host pipeline to
produce the paper's Setup / Sample-Creation / Triangle-Count breakdown
(Sec. 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from ..common.errors import KernelLaunchError
from .dpu import Dpu
from .wram import WramPlan

__all__ = ["Kernel", "SimClock"]


@runtime_checkable
class Kernel(Protocol):
    """SPMD kernel interface: same program, per-DPU data."""

    #: Name used for diagnostics and the kernel-load phase label.
    name: str

    def wram_plan(self, dpu: Dpu) -> WramPlan:
        """Static scratchpad layout; validated against WRAM capacity at load."""
        ...

    def run(self, dpu: Dpu) -> None:
        """Execute on one DPU: read MRAM symbols, write results, charge costs."""
        ...


@dataclass
class SimClock:
    """Accumulates simulated seconds into named phases.

    The host pipeline uses the paper's three phases (``setup``,
    ``sample_creation``, ``triangle_count``); other components may add their
    own labels (the ledger is open-ended).
    """

    phases: dict[str, float] = field(default_factory=dict)

    def advance(self, phase: str, seconds: float) -> None:
        if seconds < 0:
            raise KernelLaunchError(f"cannot advance clock by {seconds} s")
        self.phases[phase] = self.phases.get(phase, 0.0) + float(seconds)

    def get(self, phase: str) -> float:
        return self.phases.get(phase, 0.0)

    def total(self) -> float:
        return float(sum(self.phases.values()))

    def merge(self, other: "SimClock") -> None:
        for phase, seconds in other.phases.items():
            self.advance(phase, seconds)

    def copy(self) -> "SimClock":
        clock = SimClock()
        clock.phases = dict(self.phases)
        return clock

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:.6f}" for k, v in self.phases.items())
        return f"SimClock({inner})"
