"""Simulated UPMEM PIM system: DPUs, MRAM/WRAM, transfers, kernels, energy.

Functional execution with analytic timing — see DESIGN.md Sec. 2 for the
substitution rationale and ``config.CostModel`` for calibration constants.
"""

from .config import (
    DEVKIT_SYSTEM,
    EXECUTOR_NAMES,
    PAPER_SYSTEM,
    CostModel,
    DpuConfig,
    PimSystemConfig,
)
from .dpu import Dpu, DpuRunStats
from .energy import EnergyModel, EnergyReport
from .executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from .kernel import Kernel, SimClock
from .mram import Mram
from .system import DpuSet, PimSystem
from .trace import Trace, TraceEvent, render_timeline
from .transfer import TransferModel, TransferStats
from .wram import Wram, WramPlan

__all__ = [
    "PimSystemConfig",
    "DpuConfig",
    "CostModel",
    "PAPER_SYSTEM",
    "DEVKIT_SYSTEM",
    "Dpu",
    "DpuRunStats",
    "Mram",
    "Wram",
    "WramPlan",
    "Kernel",
    "SimClock",
    "PimSystem",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "EXECUTOR_NAMES",
    "Trace",
    "TraceEvent",
    "render_timeline",
    "DpuSet",
    "TransferModel",
    "TransferStats",
    "EnergyModel",
    "EnergyReport",
]
