"""MRAM bank model: the 64-MB DRAM bank private to each DPU.

The model tracks named allocations with 8-byte alignment (the DMA engine's
granularity), enforces the bank capacity, and counts read/write traffic so
the DPU cost model can charge DMA time.  Data itself is held as NumPy arrays
in host memory — the simulator is functional, not bit-level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import MramCapacityError
from ..common.units import fmt_bytes

__all__ = ["Mram"]

_ALIGN = 8


def _aligned(nbytes: int) -> int:
    return (int(nbytes) + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass
class Mram:
    """One DPU's DRAM bank: a bump allocator plus traffic counters."""

    capacity: int
    used: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    _symbols: dict[str, np.ndarray] = field(default_factory=dict)
    _sizes: dict[str, int] = field(default_factory=dict)

    # -------------------------------------------------------------- allocation
    def store(self, name: str, array: np.ndarray, *, count_write: bool = True) -> None:
        """Allocate (or replace) a named MRAM buffer holding ``array``.

        Raises :class:`MramCapacityError` if the bank would overflow — the TC
        pipeline catches this case up front by sizing the reservoir instead.
        """
        nbytes = _aligned(array.nbytes)
        old = self._sizes.get(name, 0)
        new_used = self.used - old + nbytes
        if new_used > self.capacity:
            raise MramCapacityError(
                f"MRAM overflow storing {name!r}: need {fmt_bytes(new_used)} "
                f"of {fmt_bytes(self.capacity)}"
            )
        self.used = new_used
        self._symbols[name] = array
        self._sizes[name] = nbytes
        if count_write:
            self.bytes_written += int(array.nbytes)

    def load(self, name: str, *, count_read: bool = True) -> np.ndarray:
        """Fetch a named buffer (optionally charging read traffic)."""
        arr = self._symbols[name]
        if count_read:
            self.bytes_read += int(arr.nbytes)
        return arr

    def has(self, name: str) -> bool:
        return name in self._symbols

    def discard(self, name: str) -> None:
        """Free one buffer."""
        if name in self._symbols:
            self.used -= self._sizes.pop(name)
            del self._symbols[name]

    def free_all(self) -> None:
        self._symbols.clear()
        self._sizes.clear()
        self.used = 0

    # ---------------------------------------------------------------- queries
    @property
    def free(self) -> int:
        return self.capacity - self.used

    def fits(self, nbytes: int) -> bool:
        """Whether an additional allocation of ``nbytes`` would fit."""
        return _aligned(nbytes) <= self.free

    def symbols(self) -> tuple[str, ...]:
        return tuple(self._symbols)

    def reset_traffic(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0
