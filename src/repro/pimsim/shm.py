"""Zero-pickle payload transport over POSIX shared memory.

The process execution engine historically shipped every chunk — DPU objects
with their MRAM-resident edge samples, routed edge arrays, reservoir backing
arrays — to workers by pickling the whole structure through a pipe.  For
array-heavy payloads the pipe bytes dominate the dispatch cost.  This module
replaces the array bytes with one :class:`multiprocessing.shared_memory`
segment per chunk: the parent copies every large ``numpy`` array into the
segment once, and the pickled control message shrinks to the object
*skeleton* plus a ``(dtype, shape, offset)`` table — header-sized, whatever
the sample size.

The codec is structure-agnostic: a custom :class:`pickle.Pickler` intercepts
``ndarray`` objects anywhere in the payload graph via ``persistent_id`` and
spills them to the segment, so DPUs, reservoirs, routed chunks and tuples of
all of the above need no per-type handling.  The worker-side decoder attaches
the segment, **copies** each array out (making results self-contained and
writable), and detaches immediately — no view lifetime to manage, and the
worker's ``resource_tracker`` is told to forget the segment so it cannot
unlink it behind the parent's back (the attach side registers it too on
CPython ≤ 3.12).

Lifecycle: the parent owns every segment it creates.  The execution engine
unlinks a chunk's segment as soon as that chunk's future resolves (success
*or* worker crash), and :meth:`ProcessExecutor.close` unlinks any leftovers —
which ``DpuSet.free()`` triggers — so no ``/dev/shm`` entry outlives the run.
``tests/test_shared_memory_executor.py`` pins all of this.
"""

from __future__ import annotations

import io
import os
import pickle
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "SHM_MIN_ARRAY_BYTES",
    "ShmChunk",
    "ShmSegment",
    "shm_available",
    "encode_chunk",
    "decode_chunk",
]

#: Arrays smaller than this stay in the pickle stream: a table entry plus a
#: segment round-trip costs more than pickling a few hundred bytes inline.
SHM_MIN_ARRAY_BYTES = 256

#: Segment offsets are aligned like MRAM DMA transfers — cheap, and keeps
#: every array's base pointer friendly to vectorized loads.
_ALIGN = 64


@dataclass(frozen=True)
class ShmChunk:
    """The control message a worker receives instead of the raw payload.

    ``payload`` is a pickle stream whose large arrays were replaced by
    persistent IDs indexing ``table``; each table row locates one array in
    the named segment as ``(dtype_str, shape, byte_offset)``.
    """

    segment: str
    table: tuple[tuple[str, tuple[int, ...], int], ...]
    payload: bytes


class ShmSegment:
    """Parent-side owner of one segment; unlink is idempotent."""

    def __init__(self, shm: shared_memory.SharedMemory) -> None:
        self._shm: shared_memory.SharedMemory | None = shm
        self.name = shm.name

    def unlink(self) -> None:
        shm, self._shm = self._shm, None
        if shm is not None:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


_AVAILABLE: bool | None = None


def shm_available() -> bool:
    """Probe (once) whether POSIX shared memory works in this environment.

    Sandboxes that forbid ``shm_open`` make the engine fall back to the
    pickling path, mirroring the existing pool-creation fallback.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            probe = shared_memory.SharedMemory(create=True, size=8)
            probe.buf[0] = 1
            probe.close()
            probe.unlink()
            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


def _spillable(obj: object, min_bytes: int) -> bool:
    return (
        isinstance(obj, np.ndarray)
        and obj.dtype != object
        and obj.nbytes >= min_bytes
    )


def encode_chunk(
    obj: object, min_array_bytes: int = SHM_MIN_ARRAY_BYTES
) -> tuple[ShmChunk, ShmSegment] | None:
    """Encode one chunk payload; ``None`` when nothing is worth spilling.

    Walks ``obj`` via pickling with a ``persistent_id`` hook: every ndarray
    of at least ``min_array_bytes`` is spilled to a fresh shared-memory
    segment and replaced in the stream by its table index.  Returns the
    control message and the parent-side segment handle (caller owns the
    unlink); ``None`` means the plain pickle path is the better transport.
    """
    buf = io.BytesIO()
    arrays: list[np.ndarray] = []

    class _SpillingPickler(pickle.Pickler):
        def persistent_id(self, o: object):  # noqa: D102 - pickle hook
            if _spillable(o, min_array_bytes):
                arrays.append(np.ascontiguousarray(o))
                return len(arrays) - 1
            return None

    _SpillingPickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    if not arrays:
        return None

    offsets: list[int] = []
    cursor = 0
    for arr in arrays:
        cursor = (cursor + _ALIGN - 1) // _ALIGN * _ALIGN
        offsets.append(cursor)
        cursor += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(cursor, 1))
    for arr, off in zip(arrays, offsets):
        dest = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=off)
        dest[...] = arr
    table = tuple(
        (arr.dtype.str, arr.shape, off) for arr, off in zip(arrays, offsets)
    )
    return ShmChunk(segment=shm.name, table=table, payload=buf.getvalue()), ShmSegment(shm)


#: PID at import time: a *forked* worker inherits this (≠ its own PID), a
#: *spawned* worker re-imports the module (== its own PID).
_IMPORT_PID = os.getpid()


def _forget_in_tracker(shm: shared_memory.SharedMemory) -> None:
    """Stop a spawned worker's resource tracker from owning the segment.

    On CPython ≤ 3.12 *attaching* registers the segment with the attacher's
    resource tracker.  In a spawned worker that tracker is the worker's own
    and would unlink the segment at worker exit — racing the parent, who is
    the real owner — so the registration must be dropped.  In the main
    process or a forked worker the tracker is the parent's (shared), and the
    parent's eventual ``unlink`` consumes the registration: unregistering
    here too would leave the tracker with a dangling remove.
    """
    try:
        import multiprocessing

        if multiprocessing.parent_process() is None or os.getpid() != _IMPORT_PID:
            return
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary by version
        pass


def decode_chunk(chunk: ShmChunk) -> object:
    """Worker-side decode: attach, copy the arrays out, detach, reconstruct.

    The copies make the result self-contained (writable, independent of the
    segment's lifetime), so the segment can be detached before the payload is
    even unpickled and the parent may unlink it the moment the worker's
    future resolves.
    """
    shm = shared_memory.SharedMemory(name=chunk.segment)
    _forget_in_tracker(shm)
    try:
        arrays = [
            np.ndarray(shape, dtype=np.dtype(dt), buffer=shm.buf, offset=off).copy()
            for dt, shape, off in chunk.table
        ]
    finally:
        shm.close()

    class _RestoringUnpickler(pickle.Unpickler):
        def persistent_load(self, pid: int):  # noqa: D102 - pickle hook
            return arrays[pid]

    return _RestoringUnpickler(io.BytesIO(chunk.payload)).load()
