"""The PIM system: allocation, data movement, and kernel launches.

:class:`PimSystem` models the host-visible API of the UPMEM SDK that the
paper's host code uses — ``dpu_alloc``, ``dpu_load``, push/pull transfers and
``dpu_launch`` — with every operation charging simulated time to a
:class:`~repro.pimsim.kernel.SimClock`.  Launches execute each DPU's kernel
functionally through a pluggable :class:`~repro.pimsim.executor.Executor`
(serial / thread / process, selected by ``PimSystemConfig.executor``) but
always advance the clock by the *maximum* per-DPU compute time, because real
DPUs run in parallel and the host waits on the slowest one — so the engine
choice changes host wall-clock only, never simulated time.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from ..common.errors import KernelLaunchError, PimAllocationError, TransferError
from ..telemetry.spans import SpanRecord, Telemetry
from .config import PimSystemConfig
from .dpu import Dpu
from .executor import Executor, SerialExecutor, make_executor
from .kernel import Kernel, SimClock
from .trace import Trace
from .transfer import TransferModel

__all__ = ["PimSystem", "DpuSet"]


@dataclass
class PimSystem:
    """Top-level handle on the simulated machine."""

    config: PimSystemConfig = field(default_factory=PimSystemConfig)

    def allocate(
        self,
        num_dpus: int,
        clock: SimClock | None = None,
        telemetry: Telemetry | None = None,
    ) -> "DpuSet":
        """Allocate ``num_dpus`` PIM cores (the ``dpu_alloc`` analogue).

        Charges the setup phase with a base latency plus a per-rank term —
        allocating more DPUs takes longer, the overhead the paper points to
        for the LiveJournal inversion in Fig. 4.  A ``telemetry`` recorder,
        when given, receives one span per host-visible DPU operation.
        """
        if num_dpus < 1:
            raise PimAllocationError("must allocate at least one DPU")
        if num_dpus > self.config.total_dpus:
            raise PimAllocationError(
                f"requested {num_dpus} DPUs but the system has {self.config.total_dpus}"
            )
        clock = clock if clock is not None else SimClock()
        transfer = TransferModel(self.config)
        span_ctx = (
            telemetry.span("alloc", clock=clock)
            if telemetry is not None and telemetry.enabled
            else nullcontext()
        )
        with span_ctx as span:
            ranks = transfer.ranks_used(num_dpus)
            alloc_seconds = (
                self.config.cost.alloc_base_latency
                + ranks * self.config.cost.rank_alloc_latency
            )
            clock.advance("setup", alloc_seconds)
            dpus = [
                Dpu(dpu_id=i, config=self.config.dpu, cost=self.config.cost)
                for i in range(num_dpus)
            ]
            trace = Trace()
            trace.record(
                "setup", "alloc", alloc_seconds, detail=f"{num_dpus} DPUs / {ranks} ranks"
            )
            if span is not None:
                span.attrs["dpus"] = num_dpus
                span.attrs["ranks"] = ranks
        executor = make_executor(self.config.executor, self.config.jobs)
        return DpuSet(
            system=self,
            dpus=dpus,
            clock=clock,
            transfer=transfer,
            trace=trace,
            executor=executor,
            telemetry=telemetry,
        )


@dataclass
class DpuSet:
    """A set of allocated DPUs sharing one kernel and one time ledger."""

    system: PimSystem
    dpus: list[Dpu]
    clock: SimClock
    transfer: TransferModel
    trace: Trace = field(default_factory=Trace)
    kernel: Kernel | None = None
    executor: Executor = field(default_factory=SerialExecutor)
    telemetry: Telemetry | None = None
    #: Per-DPU host<->core bytes moved (work ledger for imbalance analysis);
    #: observation only — never read by the transfer cost model.
    dpu_xfer_bytes: np.ndarray | None = None
    _freed: bool = False

    def __len__(self) -> int:
        return len(self.dpus)

    def note_dpu_xfer(self, per_dpu_bytes: np.ndarray | int) -> None:
        """Accumulate host<->core payload bytes into the per-DPU work ledger.

        Accepts a per-DPU array or a scalar applied to every core (broadcast).
        Called by both the :class:`DpuSet` transfer methods and the host
        pipeline's cost-only scatter paths, so the ledger covers every payload
        an imbalance analysis wants to attribute regardless of which path
        moved it.
        """
        if self.dpu_xfer_bytes is None:
            self.dpu_xfer_bytes = np.zeros(len(self.dpus), dtype=np.int64)
        self.dpu_xfer_bytes += np.asarray(per_dpu_bytes, dtype=np.int64)

    def _check_alive(self) -> None:
        if self._freed:
            raise KernelLaunchError("DPU set has been freed")

    # -------------------------------------------------------------- telemetry
    def _span(self, name: str):
        """Open a telemetry span for one DPU operation (no-op when untracked)."""
        if self.telemetry is None or not self.telemetry.enabled:
            return nullcontext()
        return self.telemetry.span(name, clock=self.clock)

    def _count_transfer(self, kind: str, payload_bytes: int) -> None:
        if self.telemetry is None or not self.telemetry.enabled:
            return
        metrics = self.telemetry.metrics
        metrics.counter(
            f"transfer.{kind}.bytes", help=f"host<->PIM bytes moved by {kind}"
        ).inc(payload_bytes)
        metrics.counter(
            f"transfer.{kind}.ops", help=f"number of {kind} operations"
        ).inc()

    # ----------------------------------------------------------------- kernel
    def load_kernel(self, kernel: Kernel, phase: str = "setup") -> None:
        """Load a kernel into every DPU (the ``dpu_load`` analogue).

        Validates the kernel's WRAM plan against every DPU and charges a
        per-rank load latency.
        """
        self._check_alive()
        with self._span("load_kernel") as span:
            for dpu in self.dpus:
                dpu.wram.apply_plan(kernel.wram_plan(dpu))
            ranks = self.transfer.ranks_used(len(self.dpus))
            load_seconds = ranks * self.system.config.cost.kernel_load_latency
            self.clock.advance(phase, load_seconds)
            self.trace.record(phase, "load_kernel", load_seconds, detail=kernel.name)
            self.kernel = kernel
            if span is not None:
                span.attrs["kernel"] = kernel.name

    def launch(self, phase: str = "triangle_count") -> None:
        """Run the loaded kernel on every DPU; advance clock by the slowest DPU.

        The per-DPU executions go through the configured execution engine;
        regardless of engine, simulated time is the launch latency plus the
        *maximum* per-DPU compute time (real DPUs run in parallel).
        """
        self._check_alive()
        if self.kernel is None:
            raise KernelLaunchError("no kernel loaded")
        tel = self.telemetry
        with self._span("launch") as span:
            if tel is not None and tel.enabled and tel.detail:
                # Timed path: workers measure their own wall clock; the pairs
                # ride the engine's merge-back and become per-DPU child spans.
                timed = self.executor.launch_timed(self.kernel, self.dpus)
                times = [sim for sim, _ in timed]
                tel.attach_records(
                    [
                        SpanRecord(
                            name=f"dpu{dpu.dpu_id}",
                            wall_seconds=wall,
                            sim_seconds=sim,
                        )
                        for dpu, (sim, wall) in zip(self.dpus, timed)
                    ]
                )
                tel.metrics.counter(
                    "executor.worker_wall_seconds",
                    help="summed per-DPU worker wall time (all launches)",
                    volatile=True,
                ).inc(sum(wall for _, wall in timed))
            else:
                times = self.executor.launch(self.kernel, self.dpus)
            launch_seconds = self.system.config.cost.launch_latency + (
                max(times) if times else 0.0
            )
            self.clock.advance(phase, launch_seconds)
            self.trace.record(
                phase,
                "launch",
                launch_seconds,
                detail=f"{self.kernel.name} on {len(self.dpus)} DPUs",
            )
            if span is not None:
                span.attrs["kernel"] = self.kernel.name
                span.attrs["dpus"] = len(self.dpus)
            if tel is not None and tel.enabled:
                tel.metrics.counter(
                    "executor.launches", help="kernel launches issued"
                ).inc()
                tel.metrics.counter(
                    "executor.dpu_tasks", help="per-DPU kernel executions"
                ).inc(len(self.dpus))

    # -------------------------------------------------------------- transfers
    def broadcast(self, symbol: str, array: np.ndarray, phase: str = "sample_creation") -> None:
        """Copy the same buffer into every DPU's MRAM."""
        self._check_alive()
        with self._span("broadcast"):
            stats = self.transfer.broadcast(int(array.nbytes), len(self.dpus))
            self.clock.advance(phase, stats.seconds)
            self.trace.record(phase, "broadcast", stats.seconds, stats.payload_bytes, symbol)
            self._count_transfer("broadcast", stats.payload_bytes)
            self.note_dpu_xfer(int(array.nbytes))
            for dpu in self.dpus:
                dpu.mram.store(symbol, array, count_write=False)

    def scatter(
        self, symbol: str, arrays: list[np.ndarray], phase: str = "sample_creation"
    ) -> None:
        """Copy a distinct buffer into each DPU's MRAM (parallel transfer)."""
        self._check_alive()
        if len(arrays) != len(self.dpus):
            raise TransferError(
                f"scatter needs {len(self.dpus)} buffers, got {len(arrays)}"
            )
        with self._span("scatter"):
            sizes = np.array([a.nbytes for a in arrays], dtype=np.int64)
            stats = self.transfer.scatter(sizes)
            self.clock.advance(phase, stats.seconds)
            self.trace.record(phase, "scatter", stats.seconds, stats.payload_bytes, symbol)
            self._count_transfer("scatter", stats.payload_bytes)
            self.note_dpu_xfer(sizes)
            for dpu, arr in zip(self.dpus, arrays):
                dpu.mram.store(symbol, arr, count_write=False)

    def gather(self, symbol: str, phase: str = "triangle_count") -> list[np.ndarray]:
        """Pull one named buffer back from every DPU."""
        self._check_alive()
        with self._span("gather") as span:
            arrays = self.executor.gather(self.dpus, symbol)
            sizes = np.array([a.nbytes for a in arrays], dtype=np.int64)
            stats = self.transfer.gather(sizes)
            self.clock.advance(phase, stats.seconds)
            self.trace.record(phase, "gather", stats.seconds, stats.payload_bytes, symbol)
            self._count_transfer("gather", stats.payload_bytes)
            self.note_dpu_xfer(sizes)
            if span is not None:
                span.attrs["symbol"] = symbol
        return arrays

    # ------------------------------------------------------------------ free
    def free(self, phase: str = "triangle_count") -> None:
        """Release the DPUs (the paper folds this into the counting phase)."""
        self._check_alive()
        for dpu in self.dpus:
            dpu.mram.free_all()
        self.executor.close()
        self.trace.record(phase, "free", 0.0, detail=f"{len(self.dpus)} DPUs")
        self._freed = True
