"""CPU<->PIM transfer time model.

UPMEM transfers come in two flavors the paper's host code uses:

* **broadcast** — the same buffer copied to every DPU (kernel arguments,
  remap tables): one bus traversal, highest bandwidth.
* **parallel scatter/gather** — a distinct buffer per DPU.  The runtime
  moves data rank-by-rank and each rank-level transaction is padded to the
  *largest* buffer among the rank's DPUs; skewed batch sizes therefore waste
  bandwidth.  This padding is why the paper's host pads per-DPU batches and
  why uneven color loads cost real time (Sec. 3.1, "Uneven Edge Distribution").

Times are ``latency + effective_bytes / bandwidth`` with effective bytes
accounting for the rank padding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import TransferError
from .config import CostModel, PimSystemConfig

__all__ = ["TransferModel", "TransferStats"]


@dataclass(frozen=True)
class TransferStats:
    """Outcome of one modeled transfer."""

    seconds: float
    payload_bytes: int
    effective_bytes: int  # payload + rank padding


@dataclass(frozen=True)
class TransferModel:
    """Stateless calculator for transfer times under one system configuration."""

    system: PimSystemConfig

    @property
    def cost(self) -> CostModel:
        return self.system.cost

    def broadcast(self, nbytes: int, num_dpus: int) -> TransferStats:
        """Same ``nbytes`` buffer to ``num_dpus`` DPUs."""
        if nbytes < 0 or num_dpus < 1:
            raise TransferError("broadcast needs nbytes >= 0 and num_dpus >= 1")
        seconds = self.cost.transfer_latency + nbytes / self.cost.broadcast_bandwidth
        return TransferStats(seconds=seconds, payload_bytes=nbytes, effective_bytes=nbytes)

    def scatter(self, per_dpu_bytes: np.ndarray) -> TransferStats:
        """Distinct buffers, DPU ``i`` receiving ``per_dpu_bytes[i]``."""
        return self._parallel(per_dpu_bytes, self.cost.scatter_bandwidth)

    def gather(self, per_dpu_bytes: np.ndarray) -> TransferStats:
        """Distinct buffers pulled from each DPU."""
        return self._parallel(per_dpu_bytes, self.cost.gather_bandwidth)

    def _parallel(self, per_dpu_bytes: np.ndarray, bandwidth: float) -> TransferStats:
        sizes = np.asarray(per_dpu_bytes, dtype=np.int64)
        if sizes.ndim != 1 or sizes.size == 0:
            raise TransferError("per_dpu_bytes must be a non-empty 1-D array")
        if (sizes < 0).any():
            raise TransferError("per_dpu_bytes must be non-negative")
        payload = int(sizes.sum())
        # DPUs are packed into ranks in ID order; each rank transaction is
        # padded to its largest member buffer.
        per_rank = self.system.dpus_per_rank
        effective = 0
        for start in range(0, sizes.size, per_rank):
            chunk = sizes[start : start + per_rank]
            effective += int(chunk.size * chunk.max())
        seconds = self.cost.transfer_latency + effective / bandwidth
        return TransferStats(seconds=seconds, payload_bytes=payload, effective_bytes=effective)

    def ranks_used(self, num_dpus: int) -> int:
        """How many ranks an allocation of ``num_dpus`` touches."""
        return int(np.ceil(num_dpus / self.system.dpus_per_rank))
