"""Optional energy ledger for the simulated PIM system.

The paper does not report energy, but energy efficiency is the standard PIM
motivation and an easy ablation on top of the simulator's existing counters.
Constants are order-of-magnitude figures from the PIM literature (UPMEM
whitepapers and the PrIM characterization); they parameterize a linear model

``E = instr * e_instr + mram_bytes * e_mram + xfer_bytes * e_xfer``

good enough for relative comparisons between algorithm configurations (the
only use the benchmarks make of it).
"""

from __future__ import annotations

from dataclasses import dataclass

from .dpu import Dpu

__all__ = ["EnergyModel", "EnergyReport"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy constants (joules)."""

    #: Energy per DPU instruction (in-order 32-bit core, ~tens of pJ).
    instruction_j: float = 30e-12
    #: Energy per byte moved between MRAM and WRAM.
    mram_byte_j: float = 150e-12
    #: Energy per byte moved over the CPU<->DIMM bus.
    transfer_byte_j: float = 500e-12
    #: Static power per active DPU (leakage + clock), in watts.
    dpu_static_w: float = 0.05

    def dpu_energy(self, dpu: Dpu, active_seconds: float | None = None) -> float:
        """Dynamic (+ optional static) energy of one DPU's accumulated charges."""
        stats = dpu.run_stats()
        energy = (
            stats.instructions * self.instruction_j + stats.dma_bytes * self.mram_byte_j
        )
        if active_seconds is None:
            active_seconds = stats.compute_seconds
        return energy + self.dpu_static_w * active_seconds

    def transfer_energy(self, nbytes: int) -> float:
        return nbytes * self.transfer_byte_j


@dataclass(frozen=True)
class EnergyReport:
    """Aggregated energy for a whole run."""

    dpu_dynamic_j: float
    transfer_j: float

    @property
    def total_j(self) -> float:
        return self.dpu_dynamic_j + self.transfer_j
