"""Execution trace of the simulated PIM machine.

Every host-visible operation (allocation, kernel load, transfers, launches)
can append a :class:`TraceEvent`; :func:`render_timeline` prints the run the
way UPMEM's own profiling dumps read — one line per operation with its
simulated duration and payload.  Used by the ``--trace`` path of examples and
by tests asserting the pipeline's operation sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.units import fmt_bytes, fmt_time

__all__ = ["TraceEvent", "Trace", "render_timeline"]


@dataclass(frozen=True)
class TraceEvent:
    """One simulated operation."""

    phase: str
    kind: str  # alloc | load_kernel | broadcast | scatter | gather | launch | free
    seconds: float
    payload_bytes: int = 0
    detail: str = ""


@dataclass
class Trace:
    """Append-only event log with simple query helpers."""

    events: list[TraceEvent] = field(default_factory=list)
    enabled: bool = True

    def record(
        self,
        phase: str,
        kind: str,
        seconds: float,
        payload_bytes: int = 0,
        detail: str = "",
    ) -> None:
        if self.enabled:
            self.events.append(
                TraceEvent(
                    phase=phase,
                    kind=kind,
                    seconds=seconds,
                    payload_bytes=payload_bytes,
                    detail=detail,
                )
            )

    def kinds(self) -> list[str]:
        return [e.kind for e in self.events]

    def counts_by_kind(self) -> dict[str, int]:
        """Event totals per operation kind (parity checks across executors)."""
        totals: dict[str, int] = {}
        for e in self.events:
            totals[e.kind] = totals.get(e.kind, 0) + 1
        return totals

    def merge(self, other: "Trace") -> None:
        """Append another trace's events (e.g. a sub-run's ledger) in order.

        Honors ``enabled`` like :meth:`record` does — a disabled trace stays
        empty no matter how many sub-run ledgers are merged into it.
        """
        if self.enabled:
            self.events.extend(other.events)

    def total_seconds(self, kind: str | None = None) -> float:
        return sum(e.seconds for e in self.events if kind is None or e.kind == kind)

    def total_bytes(self, kind: str | None = None) -> int:
        return sum(e.payload_bytes for e in self.events if kind is None or e.kind == kind)

    def __len__(self) -> int:
        return len(self.events)


def render_timeline(trace: Trace) -> str:
    """Human-readable, time-cumulative view of a trace."""
    lines = [f"{'t (cum)':>12}  {'dt':>12}  {'phase':<16} {'op':<12} {'payload':>10}  detail"]
    cumulative = 0.0
    for event in trace.events:
        cumulative += event.seconds
        payload = fmt_bytes(event.payload_bytes) if event.payload_bytes else "-"
        lines.append(
            f"{fmt_time(cumulative):>12}  {fmt_time(event.seconds):>12}  "
            f"{event.phase:<16} {event.kind:<12} {payload:>10}  {event.detail}"
        )
    return "\n".join(lines)
