"""Pluggable host-side execution engines for the PIM simulator.

The vertex-coloring partition makes every DPU's work independent — no
inter-DPU communication (paper Sec. 3.1) — so the simulator is free to run
the ``binom(C+2, 3)`` per-DPU kernel executions on the host however it
likes: sequentially, on a thread pool, or fanned out to worker processes.
This module provides that choice behind one interface.

**The determinism contract.**  Choosing an engine changes *wall-clock* time
only.  Simulated time is ``launch_latency + max`` over per-DPU compute
seconds, every DPU's functional result and charge ledger depends only on its
own MRAM contents, and results are always merged back in DPU-ID order — so
triangle counts, per-phase simulated seconds, charge vectors, and trace
events are bit-identical across all three engines.  The parity tests in
``tests/test_pimsim_executor.py`` pin this contract.

Engines:

* :class:`SerialExecutor` — the original in-loop behavior; default, and what
  tests use.
* :class:`ThreadExecutor` — a ``ThreadPoolExecutor`` over DPUs.  Python-level
  code holds the GIL, but the kernels spend most of their time inside
  NumPy/SciPy ops that release it, so threads already overlap the heavy
  sparse-matrix work.
* :class:`ProcessExecutor` — chunks the DPU list into ``jobs`` contiguous
  batches and ships each batch (kernel + DPU objects) to a
  ``ProcessPoolExecutor`` worker.  The worker runs the kernel functionally,
  and the *mutated* DPU objects — MRAM result symbols, instruction/DMA charge
  vectors, run stats — travel back whole, so the parent merges clocks and
  traces exactly as if it had run the kernels itself.  Pays pickling +
  fork overhead; wins when per-DPU kernel work dominates (large samples,
  large ``C``).  With ``jobs=1`` (or one usable core) it degrades gracefully
  to the serial path with no pool at all.

Engines are selected via :class:`~repro.pimsim.config.PimSystemConfig`
(``executor=`` / ``jobs=``), the :class:`~repro.core.api.PimTriangleCounter`
keyword arguments, or the CLI's ``--executor/--jobs`` flags.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial
from typing import Any, Callable, Sequence

import numpy as np

from ..common.errors import ConfigurationError
from .config import EXECUTOR_NAMES
from .dpu import Dpu
from .kernel import Kernel
from .shm import ShmChunk, ShmSegment, decode_chunk, encode_chunk, shm_available

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "set_payload_pickle_hook",
    "EXECUTOR_NAMES",
]

#: A per-DPU task: receives one DPU (mutable) and one payload, returns a result.
DpuTask = Callable[[Dpu, Any], Any]


def _default_jobs() -> int:
    return max(1, os.cpu_count() or 1)


def _launch_one(dpu: Dpu, kernel: Kernel) -> float:
    """Run one kernel launch on one DPU and return its compute time."""
    dpu.reset_charges()
    kernel.run(dpu)
    return dpu.compute_seconds()


def _timed_task(fn: DpuTask, dpu: Dpu, payload: Any) -> tuple[Any, float]:
    """Run one per-DPU task and measure its wall time *where it runs*.

    The wrapper executes inside the worker (thread or process), so the
    measured seconds are the worker's own, and the float travels back over
    the same merge path as the result — the telemetry layer turns these into
    per-DPU child spans without ever sharing a span tree across workers.
    Module-level so ``partial(_timed_task, fn)`` stays picklable.
    """
    start = time.perf_counter()
    result = fn(dpu, payload)
    return result, time.perf_counter() - start


def _run_chunk(
    fn: DpuTask, dpus: list[Dpu], payloads: list[Any]
) -> tuple[list[Dpu], list[Any]]:
    """Worker-process entry point: run ``fn`` over a chunk of DPUs.

    Returns both the results *and* the mutated DPU objects so the parent can
    splice the post-run state (MRAM symbols, charge ledgers) back into its
    own DPU list.  Must stay a module-level function: it crosses the process
    boundary by pickle.
    """
    results = [fn(dpu, payload) for dpu, payload in zip(dpus, payloads)]
    return dpus, results


def _run_chunk_shm(fn: DpuTask, chunk: ShmChunk) -> tuple[list[Dpu], list[Any]]:
    """Worker entry for the shared-memory transport: decode, then run.

    The control message carries only the object skeleton; the array bytes
    (MRAM samples, routed chunks, reservoir backing stores) are copied out of
    the named segment.  Results travel back by pickle as before — post-run
    MRAM holds small result symbols, not the sample.
    """
    dpus, payloads = decode_chunk(chunk)
    return _run_chunk(fn, dpus, payloads)


#: Test hook: called with ``(pickled_bytes, transport)`` for every chunk the
#: process engine submits ("shm" or "pickle").  Measuring costs an extra
#: serialization pass, so nothing is computed unless a hook is installed.
_payload_pickle_hook: Callable[[int, str], None] | None = None


def set_payload_pickle_hook(hook: Callable[[int, str], None] | None) -> None:
    """Install (or clear, with ``None``) the per-chunk payload-bytes probe."""
    global _payload_pickle_hook
    _payload_pickle_hook = hook


def _note_payload(obj: object, transport: str) -> None:
    if _payload_pickle_hook is not None:
        size = len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
        _payload_pickle_hook(size, transport)


def _chunk_slices(n: int, parts: int) -> list[slice]:
    """Split ``range(n)`` into at most ``parts`` contiguous, balanced slices."""
    parts = max(1, min(parts, n))
    bounds = np.linspace(0, n, parts + 1).astype(np.int64)
    return [slice(int(bounds[i]), int(bounds[i + 1])) for i in range(parts)]


class Executor:
    """Common interface of the execution engines.

    The one primitive is :meth:`map_dpus`: apply a per-DPU task to every DPU,
    preserving any mutation the task makes to the DPU object, and return the
    task results in DPU order.  :meth:`launch` and :meth:`gather` are the two
    host operations built on it.
    """

    name = "abstract"

    def __init__(self, jobs: int | None = None) -> None:
        if jobs is not None and jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs) if jobs is not None else _default_jobs()

    # -------------------------------------------------------------- primitive
    def map_dpus(
        self, fn: DpuTask, dpus: list[Dpu], payloads: Sequence[Any]
    ) -> list[Any]:
        """Apply ``fn(dpu, payload)`` to every DPU; results in DPU order."""
        raise NotImplementedError

    def map_dpus_timed(
        self, fn: DpuTask, dpus: list[Dpu], payloads: Sequence[Any]
    ) -> list[tuple[Any, float]]:
        """Like :meth:`map_dpus`, returning ``(result, worker_wall_seconds)``.

        Used when a :class:`~repro.telemetry.spans.Telemetry` wants per-DPU
        detail spans; the timing wrapper rides the engine's normal merge-back
        path, so every engine supports it without special cases.
        """
        return self.map_dpus(partial(_timed_task, fn), dpus, payloads)

    def map_dpus_async(
        self, fn: DpuTask, dpus: list[Dpu], payloads: Sequence[Any]
    ) -> Callable[[], list[Any]]:
        """Dispatch a per-DPU map and return a zero-argument ``join``.

        ``join()`` blocks until every task finished, applies the engine's
        merge-back (mutated DPUs spliced by position for the process engine),
        and returns the results in DPU order — exactly what :meth:`map_dpus`
        would have returned.  Between dispatch and join the caller may do
        unrelated host work (the batched ingest loop routes the next edge
        chunk here) but must not touch the DPUs or the payloads.

        The base implementation is eager (runs the map at dispatch time), so
        poolless engines keep their semantics; pooled engines override it to
        overlap the work with the caller's.  Results are identical either
        way — only wall-clock changes, never simulated time or counts.
        """
        results = self.map_dpus(fn, dpus, payloads)
        return lambda: results

    # ------------------------------------------------------------- operations
    def launch(self, kernel: Kernel, dpus: list[Dpu]) -> list[float]:
        """Run ``kernel`` on every DPU; return per-DPU compute seconds."""
        return self.map_dpus(_launch_one, dpus, [kernel] * len(dpus))

    def launch_timed(self, kernel: Kernel, dpus: list[Dpu]) -> list[tuple[float, float]]:
        """Launch with per-DPU ``(compute_seconds, worker_wall_seconds)`` pairs."""
        return self.map_dpus_timed(_launch_one, dpus, [kernel] * len(dpus))

    def gather(self, dpus: list[Dpu], symbol: str) -> list[np.ndarray]:
        """Pull one named MRAM buffer from every DPU.

        After a launch the post-run DPU state lives in the parent process for
        every engine (the process engine merges it back), so a gather is a
        plain in-memory read; no engine ships it anywhere.
        """
        return [dpu.mram.load(symbol, count_read=False) for dpu in dpus]

    def close(self) -> None:
        """Release any worker pool.  Idempotent; a no-op for poolless engines."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(jobs={self.jobs})"


class SerialExecutor(Executor):
    """Run every per-DPU task in the calling thread (the original behavior)."""

    name = "serial"

    def map_dpus(
        self, fn: DpuTask, dpus: list[Dpu], payloads: Sequence[Any]
    ) -> list[Any]:
        return [fn(dpu, payload) for dpu, payload in zip(dpus, payloads)]


class ThreadExecutor(Executor):
    """Fan per-DPU tasks out to a thread pool.

    DPUs never share state, so in-place mutation from worker threads is safe;
    results are collected in submission (= DPU) order regardless of thread
    scheduling, keeping the merge deterministic.
    """

    name = "thread"

    def __init__(self, jobs: int | None = None) -> None:
        super().__init__(jobs)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.jobs)
        return self._pool

    def map_dpus(
        self, fn: DpuTask, dpus: list[Dpu], payloads: Sequence[Any]
    ) -> list[Any]:
        if len(dpus) <= 1 or self.jobs == 1:
            return [fn(dpu, payload) for dpu, payload in zip(dpus, payloads)]
        pool = self._ensure_pool()
        futures = [pool.submit(fn, dpu, payload) for dpu, payload in zip(dpus, payloads)]
        return [f.result() for f in futures]

    def map_dpus_async(
        self, fn: DpuTask, dpus: list[Dpu], payloads: Sequence[Any]
    ) -> Callable[[], list[Any]]:
        if len(dpus) <= 1 or self.jobs == 1:
            return super().map_dpus_async(fn, dpus, payloads)
        pool = self._ensure_pool()
        futures = [pool.submit(fn, dpu, payload) for dpu, payload in zip(dpus, payloads)]
        return lambda: [f.result() for f in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessExecutor(Executor):
    """Fan chunked per-DPU batches out to worker processes.

    Each worker receives ``(fn, dpus_chunk, payloads_chunk)`` by pickle, runs
    the tasks, and returns the results *plus the mutated DPU objects*; the
    parent splices those DPUs back into the caller's list by position.  Chunk
    boundaries are a pure function of ``(len(dpus), jobs)`` and merging is by
    index, so the engine cannot perturb results or the cost model.

    By default chunks travel through POSIX shared memory (:mod:`.shm`): the
    large arrays — DPU MRAM samples, routed edge chunks, reservoir backing
    arrays — are spilled into one segment per chunk and the pickled control
    message shrinks to the object skeleton plus a name/offset table.  Each
    segment is unlinked the moment its chunk's future resolves (success or
    worker crash); :meth:`close` — which ``DpuSet.free()`` calls — unlinks
    any leftovers, so no ``/dev/shm`` entry outlives the run.  Set
    ``REPRO_SHM=0`` (or ``shm=False``) to force the plain pickling path; the
    two transports are bit-identical by construction (the worker sees equal
    arrays either way).

    If the platform refuses to give us a process pool (sandboxes without
    semaphores, for instance), the engine warns once and falls back to serial
    execution rather than failing the run.
    """

    name = "process"

    def __init__(self, jobs: int | None = None, shm: bool | None = None) -> None:
        super().__init__(jobs)
        self._pool: ProcessPoolExecutor | None = None
        self._fallback = False
        if shm is None:
            env = os.environ.get("REPRO_SHM", "").strip().lower()
            shm = env not in ("0", "false", "off", "no")
        self._shm_wanted = bool(shm)
        self._segments: dict[str, ShmSegment] = {}

    # ------------------------------------------------------------- transport
    def _submit_chunk(
        self,
        pool: ProcessPoolExecutor,
        fn: DpuTask,
        chunk_dpus: list[Dpu],
        chunk_payloads: list[Any],
    ) -> tuple[Future, str | None]:
        """Submit one chunk, spilling its arrays to shared memory when possible.

        Returns the future plus the segment name to unlink at join (``None``
        on the plain pickling path).  Any shared-memory failure degrades to
        pickling — the transport must never change results or kill a run.
        """
        if self._shm_wanted and shm_available():
            try:
                encoded = encode_chunk((chunk_dpus, chunk_payloads))
            except OSError:
                encoded = None
            if encoded is not None:
                chunk, segment = encoded
                self._segments[segment.name] = segment
                _note_payload(chunk, "shm")
                return pool.submit(_run_chunk_shm, fn, chunk), segment.name
        _note_payload((chunk_dpus, chunk_payloads), "pickle")
        return pool.submit(_run_chunk, fn, chunk_dpus, chunk_payloads), None

    def _release_segment(self, name: str | None) -> None:
        if name is not None:
            segment = self._segments.pop(name, None)
            if segment is not None:
                segment.unlink()

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self._fallback:
            return None
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            except (OSError, PermissionError, ValueError) as exc:
                warnings.warn(
                    f"ProcessExecutor could not start a worker pool ({exc}); "
                    "falling back to serial execution",
                    RuntimeWarning,
                    stacklevel=3,
                )
                self._fallback = True
                return None
        return self._pool

    def map_dpus(
        self, fn: DpuTask, dpus: list[Dpu], payloads: Sequence[Any]
    ) -> list[Any]:
        n = len(dpus)
        # jobs=1 (or a single DPU) degrades gracefully: no pool, no pickling.
        if n <= 1 or self.jobs == 1:
            return [fn(dpu, payload) for dpu, payload in zip(dpus, payloads)]
        pool = self._ensure_pool()
        if pool is None:
            return [fn(dpu, payload) for dpu, payload in zip(dpus, payloads)]
        chunks = _chunk_slices(n, self.jobs)
        payloads = list(payloads)
        try:
            submissions = [
                self._submit_chunk(pool, fn, dpus[sl], payloads[sl]) for sl in chunks
            ]
            merged = []
            for future, segment in submissions:
                try:
                    merged.append(future.result())
                finally:
                    # The worker is done with the chunk (or died); either way
                    # its segment must not outlive the future.
                    self._release_segment(segment)
        except Exception:
            # A broken pool (killed worker, unpicklable payload) is a real
            # error for the caller to see; just don't leak the pool — close()
            # also unlinks the segments of chunks that never completed.
            self.close()
            raise
        results: list[Any] = [None] * n
        for sl, (chunk_dpus, chunk_results) in zip(chunks, merged):
            dpus[sl] = chunk_dpus  # splice post-run state back, by position
            results[sl] = chunk_results
        return results

    def map_dpus_async(
        self, fn: DpuTask, dpus: list[Dpu], payloads: Sequence[Any]
    ) -> Callable[[], list[Any]]:
        n = len(dpus)
        if n <= 1 or self.jobs == 1:
            return super().map_dpus_async(fn, dpus, payloads)
        pool = self._ensure_pool()
        if pool is None:
            return super().map_dpus_async(fn, dpus, payloads)
        chunks = _chunk_slices(n, self.jobs)
        payloads = list(payloads)
        submissions = [
            self._submit_chunk(pool, fn, dpus[sl], payloads[sl]) for sl in chunks
        ]

        def join() -> list[Any]:
            try:
                merged = []
                for future, segment in submissions:
                    try:
                        merged.append(future.result())
                    finally:
                        self._release_segment(segment)
            except Exception:
                self.close()
                raise
            results: list[Any] = [None] * n
            for sl, (chunk_dpus, chunk_results) in zip(chunks, merged):
                dpus[sl] = chunk_dpus  # deferred splice of post-run state
                results[sl] = chunk_results
            return results

        return join

    def close(self) -> None:
        # Segments first: a leftover here means a chunk never joined (error
        # path, abandoned async map, or a crashed worker) and nobody else
        # will ever unlink it.
        for name in list(self._segments):
            self._release_segment(name)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


_ENGINES: dict[str, type[Executor]] = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}
assert set(_ENGINES) == set(EXECUTOR_NAMES)


def make_executor(name: str, jobs: int | None = None) -> Executor:
    """Build an execution engine by name (``serial`` / ``thread`` / ``process``)."""
    try:
        engine = _ENGINES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown executor {name!r}; choose from {', '.join(EXECUTOR_NAMES)}"
        ) from None
    return engine(jobs)
