"""Configuration and cost model of the simulated UPMEM PIM system.

The paper's testbed is 20 PIM-enabled DIMMs (codename P21) totalling 2560
DPUs, each a 32-bit in-order core at ~350 MHz with a 64-MB DRAM bank (MRAM),
a 64-KB scratchpad (WRAM), a 24-KB instruction memory (IRAM) and 16 hardware
threads (tasklets).  We reproduce those parameters as defaults.

Because no UPMEM hardware is available here, *time* is produced by an analytic
cost model whose constants come from the public characterization literature:

* UPMEM User Manual v2023.2 (clock, memory sizes, tasklet count);
* the PrIM benchmarks characterization (Gomez-Luna et al., IEEE Access 2022):
  the DPU pipeline retires ~1 instruction/cycle once >= 11 tasklets are
  active; sustained MRAM streaming bandwidth ~628-633 MB/s per DPU; CPU->DPU
  parallel-transfer aggregate bandwidth in the several-GB/s range with rank
  padding semantics.

Every constant is a dataclass field so experiments can run sensitivity
sweeps; none of the reproduction claims depend on an exact value, only on the
orders of magnitude (see EXPERIMENTS.md, "Calibration").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..common.errors import ConfigurationError
from ..common.units import KiB, MiB

__all__ = [
    "DpuConfig",
    "CostModel",
    "PimSystemConfig",
    "PAPER_SYSTEM",
    "DEVKIT_SYSTEM",
    "EXECUTOR_NAMES",
]

#: Host-side execution engines for per-DPU kernel runs (see pimsim.executor).
#: Defined here (not in executor.py) so config stays import-cycle free.
EXECUTOR_NAMES = ("serial", "thread", "process")


@dataclass(frozen=True)
class DpuConfig:
    """Per-DPU architectural parameters (UPMEM P21 defaults)."""

    mram_bytes: int = 64 * MiB
    wram_bytes: int = 64 * KiB
    iram_bytes: int = 24 * KiB
    num_tasklets: int = 16
    clock_hz: float = 350e6
    #: Number of resident tasklets needed to keep the 14-stage pipeline full;
    #: PrIM measures full throughput at >= 11 tasklets.
    pipeline_saturation: int = 11

    def __post_init__(self) -> None:
        if self.num_tasklets < 1:
            raise ConfigurationError("num_tasklets must be >= 1")
        if self.pipeline_saturation < 1:
            raise ConfigurationError("pipeline_saturation must be >= 1")
        if min(self.mram_bytes, self.wram_bytes, self.iram_bytes) <= 0:
            raise ConfigurationError("memory sizes must be positive")


@dataclass(frozen=True)
class CostModel:
    """Analytic time constants for DPU execution, transfers, and the host.

    All bandwidths in bytes/second, latencies in seconds, per-op costs in
    cycles of the relevant clock.
    """

    # --- DPU side -----------------------------------------------------------
    #: Fixed cycles charged per MRAM<->WRAM DMA request (setup + first word).
    mram_dma_latency_cycles: float = 77.0
    #: Sustained MRAM streaming read bandwidth per DPU (PrIM: ~628 MB/s).
    mram_read_bandwidth: float = 628e6
    #: Sustained MRAM streaming write bandwidth per DPU (PrIM: ~633 MB/s).
    mram_write_bandwidth: float = 633e6

    # --- CPU <-> PIM transfers ----------------------------------------------
    #: Same-buffer broadcast to all DPUs (PrIM: ~6.7 GB/s).
    broadcast_bandwidth: float = 6.68e9
    #: Aggregate distinct-buffer scatter bandwidth across ranks (PrIM: ~4.7 GB/s).
    scatter_bandwidth: float = 4.74e9
    #: Aggregate DPU->CPU gather bandwidth (PrIM: ~4.7 GB/s, asymmetric APIs differ).
    gather_bandwidth: float = 4.74e9
    #: Fixed software latency per transfer call.
    transfer_latency: float = 20e-6

    # --- setup ----------------------------------------------------------------
    #: Per-rank DPU allocation latency (drives Fig. 4's LiveJournal inversion).
    rank_alloc_latency: float = 2.0e-3
    #: Base allocation latency independent of rank count.
    alloc_base_latency: float = 10.0e-3
    #: Kernel binary load, charged once per rank (broadcast over ranks).
    kernel_load_latency: float = 0.4e-3
    #: Fixed latency of one kernel launch + completion fence.
    launch_latency: float = 40e-6

    # --- host model -----------------------------------------------------------
    host_clock_hz: float = 2.5e9
    host_threads: int = 32
    #: Host cycles to read, hash-color and route one COO edge into its batches.
    host_edge_cycles: float = 35.0
    #: Host memory copy bandwidth for batch assembly (per socket, aggregate).
    host_memcpy_bandwidth: float = 10e9

    def __post_init__(self) -> None:
        for name in (
            "mram_read_bandwidth",
            "mram_write_bandwidth",
            "broadcast_bandwidth",
            "scatter_bandwidth",
            "gather_bandwidth",
            "host_clock_hz",
            "host_memcpy_bandwidth",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.host_threads < 1:
            raise ConfigurationError("host_threads must be >= 1")


@dataclass(frozen=True)
class PimSystemConfig:
    """Whole-system shape: ranks x DPUs-per-rank, plus DPU and cost parameters."""

    num_ranks: int = 40
    dpus_per_rank: int = 64
    dpu: DpuConfig = field(default_factory=DpuConfig)
    cost: CostModel = field(default_factory=CostModel)
    #: Host-side engine running the per-DPU kernel executions: "serial"
    #: (default, deterministic reference), "thread", or "process".  Changes
    #: wall-clock only — simulated times and counts are engine-invariant.
    executor: str = "serial"
    #: Worker count for the thread/process engines; ``None`` = os.cpu_count().
    jobs: int | None = None

    def __post_init__(self) -> None:
        if self.num_ranks < 1 or self.dpus_per_rank < 1:
            raise ConfigurationError("system must have at least one rank and one DPU")
        if self.executor not in EXECUTOR_NAMES:
            raise ConfigurationError(
                f"executor must be one of {', '.join(EXECUTOR_NAMES)}, "
                f"got {self.executor!r}"
            )
        if self.jobs is not None and self.jobs < 1:
            raise ConfigurationError("jobs must be >= 1 or None")

    @property
    def total_dpus(self) -> int:
        return self.num_ranks * self.dpus_per_rank

    def with_cost(self, **overrides) -> "PimSystemConfig":
        """Return a copy with some cost-model constants replaced (sweeps)."""
        return replace(self, cost=replace(self.cost, **overrides))

    def with_executor(self, executor: str, jobs: int | None = None) -> "PimSystemConfig":
        """Return a copy running launches on a different execution engine."""
        return replace(self, executor=executor, jobs=jobs)


#: The paper's evaluation system: 20 DIMMs x 2 ranks x 64 DPUs = 2560 DPUs.
PAPER_SYSTEM = PimSystemConfig(num_ranks=40, dpus_per_rank=64)

#: A single-DIMM developer kit: 2 ranks x 64 DPUs = 128 DPUs (supports C <= 8).
DEVKIT_SYSTEM = PimSystemConfig(num_ranks=2, dpus_per_rank=64)
