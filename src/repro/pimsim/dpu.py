"""DPU model: one in-order PIM core with fine-grained multithreading.

Kernels run *functionally* (their NumPy/Python code computes the real result)
and *charge* the DPU for the work they did: instructions per tasklet and
MRAM DMA traffic.  The DPU converts those charges into simulated time using
the pipeline model characterized by the PrIM study:

* The 14-stage pipeline interleaves tasklets round-robin; each tasklet can
  issue at most one instruction every ``pipeline_saturation`` (=11) cycles,
  so aggregate throughput is ``min(1, active/11)`` instructions per cycle.
* MRAM accesses go through a DMA engine; a transfer costs a fixed setup
  latency plus size/bandwidth, and stalls only the issuing tasklet.

Time is computed by exact water-filling over the per-tasklet cycle budgets:
while ``A`` tasklets remain active each progresses at ``clock / max(A, 11)``
cycles per second of its own budget; when the smallest remaining budget
drains, ``A`` decreases and the rate re-evaluates.  This reproduces both the
saturated regime (16 busy tasklets -> 1 instr/cycle aggregate) and the tail
(an imbalanced tasklet finishes at 1/11 of peak).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import KernelLaunchError
from .config import CostModel, DpuConfig
from .mram import Mram
from .wram import Wram

__all__ = ["Dpu", "DpuRunStats"]


@dataclass(frozen=True)
class DpuRunStats:
    """Charges accumulated by one DPU over one kernel launch."""

    instructions: int
    dma_requests: int
    dma_bytes: int
    compute_seconds: float


@dataclass
class Dpu:
    """One simulated PIM core."""

    dpu_id: int
    config: DpuConfig
    cost: CostModel
    mram: Mram = field(init=False)
    wram: Wram = field(init=False)

    def __post_init__(self) -> None:
        self.mram = Mram(capacity=self.config.mram_bytes)
        self.wram = Wram(capacity=self.config.wram_bytes, num_tasklets=self.config.num_tasklets)
        # Lifetime work ledger: accumulates across launches (reset_charges
        # does not touch it).  Pure observation for the imbalance analysis —
        # never read by the cost model, so it cannot perturb simulated time.
        self.lifetime_instructions = 0.0
        self.lifetime_dma_requests = 0
        self.lifetime_dma_bytes = 0
        self.reset_charges()

    # ----------------------------------------------------------------- charges
    def reset_charges(self) -> None:
        """Zero the per-launch instruction/DMA ledgers (lifetime totals persist)."""
        n = self.config.num_tasklets
        self._instr = np.zeros(n, dtype=np.float64)
        self._dma_seconds = np.zeros(n, dtype=np.float64)
        self._dma_requests = 0
        self._dma_bytes = 0

    def charge_instructions(self, tasklet: int, count: float) -> None:
        """Charge ``count`` instructions to one tasklet."""
        self._check_tasklet(tasklet)
        self._instr[tasklet] += float(count)
        self.lifetime_instructions += float(count)

    def charge_instructions_all(self, per_tasklet: np.ndarray) -> None:
        """Charge a whole vector of instruction counts (index = tasklet ID)."""
        arr = np.asarray(per_tasklet, dtype=np.float64)
        if arr.shape != self._instr.shape:
            raise KernelLaunchError(
                f"expected {self._instr.size} tasklet charges, got shape {arr.shape}"
            )
        self._instr += arr
        self.lifetime_instructions += float(arr.sum())

    def charge_balanced(self, total_instructions: float) -> None:
        """Charge work that the kernel splits evenly over all tasklets."""
        self._instr += float(total_instructions) / self.config.num_tasklets
        self.lifetime_instructions += float(total_instructions)

    def charge_mram_read(self, tasklet: int, nbytes: int, requests: int = 1) -> None:
        """Charge a DMA read of ``nbytes`` split over ``requests`` transfers."""
        self._charge_dma(tasklet, nbytes, requests, self.cost.mram_read_bandwidth)

    def charge_mram_write(self, tasklet: int, nbytes: int, requests: int = 1) -> None:
        self._charge_dma(tasklet, nbytes, requests, self.cost.mram_write_bandwidth)

    def _charge_dma(self, tasklet: int, nbytes: int, requests: int, bandwidth: float) -> None:
        self._check_tasklet(tasklet)
        if nbytes < 0 or requests < 0:
            raise KernelLaunchError("DMA charge must be non-negative")
        setup = requests * self.cost.mram_dma_latency_cycles / self.config.clock_hz
        self._dma_seconds[tasklet] += setup + nbytes / bandwidth
        self._dma_requests += int(requests)
        self._dma_bytes += int(nbytes)
        self.lifetime_dma_requests += int(requests)
        self.lifetime_dma_bytes += int(nbytes)

    def _check_tasklet(self, tasklet: int) -> None:
        if not (0 <= tasklet < self.config.num_tasklets):
            raise KernelLaunchError(
                f"tasklet {tasklet} out of range [0, {self.config.num_tasklets})"
            )

    # ------------------------------------------------------------------- time
    def compute_seconds(self) -> float:
        """Execution time of the charges accumulated so far.

        Two resources bound a DPU: the instruction pipeline (water-filled over
        the per-tasklet instruction budgets) and the MRAM DMA engine, whose
        streaming bandwidth is shared by *all* tasklets — DMA time therefore
        sums across tasklets instead of overlapping.  Tasklet-level fine-
        grained multithreading overlaps the two, so the DPU finishes at the
        slower of the two resources (the PrIM "pipeline-bound vs MRAM-bound"
        regimes).
        """
        pipeline = self._waterfill_seconds(self._instr)
        dma = float(self._dma_seconds.sum())
        return max(pipeline, dma)

    def _waterfill_seconds(self, budgets_in: np.ndarray) -> float:
        """Water-filled pipeline time for per-tasklet instruction budgets."""
        clock = self.config.clock_hz
        sat = self.config.pipeline_saturation
        budgets = np.sort(budgets_in[budgets_in > 0.0])
        if budgets.size == 0:
            return 0.0
        t = 0.0
        done = 0.0  # cycles already drained from every remaining tasklet
        n = budgets.size
        for i in range(n):
            active = n - i
            rate = clock / max(active, sat)  # cycles/sec each active tasklet drains
            remaining = budgets[i] - done
            if remaining > 0:
                t += remaining / rate
                done = budgets[i]
        return float(t)

    def charge_vectors(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the per-tasklet (instruction, DMA-seconds) ledgers.

        The executor parity tests compare these across execution engines:
        a process-engine worker must hand back exactly the vectors a serial
        run would have accumulated.
        """
        return self._instr.copy(), self._dma_seconds.copy()

    def run_stats(self) -> DpuRunStats:
        return DpuRunStats(
            instructions=int(self._instr.sum()),
            dma_requests=self._dma_requests,
            dma_bytes=self._dma_bytes,
            compute_seconds=self.compute_seconds(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dpu(id={self.dpu_id}, mram_used={self.mram.used})"
