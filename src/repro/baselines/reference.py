"""Tiny-graph exact references used only by the test suite.

Two independent implementations of triangle counting that share no code with
the production kernels: a dense adjacency-matrix ``trace(A^3)/6`` and a
set-intersection loop.  Slow but obviously correct — they anchor every other
counter's correctness tests.
"""

from __future__ import annotations

import numpy as np

from ..graph.coo import COOGraph

__all__ = ["count_triangles_dense", "count_triangles_sets"]


def count_triangles_dense(graph: COOGraph) -> int:
    """``trace(A^3) / 6`` over the dense adjacency matrix (n <= ~2000)."""
    g = graph if graph.is_canonical() else graph.canonicalize()
    n = g.num_nodes
    if n > 4000:
        raise ValueError("dense reference is restricted to small graphs")
    adj = np.zeros((n, n), dtype=np.int64)
    adj[g.src, g.dst] = 1
    adj[g.dst, g.src] = 1
    a2 = adj @ adj
    return int(np.einsum("ij,ji->", a2, adj)) // 6


def count_triangles_sets(graph: COOGraph) -> int:
    """Per-edge neighbor-set intersection (pure Python)."""
    g = graph if graph.is_canonical() else graph.canonicalize()
    neighbors: dict[int, set[int]] = {}
    for u, v in g.iter_edges():
        neighbors.setdefault(u, set()).add(v)
        neighbors.setdefault(v, set()).add(u)
    total = 0
    for u, v in g.iter_edges():
        total += len(neighbors[u] & neighbors[v])
    # Every triangle was counted once per edge.
    assert total % 3 == 0
    return total // 3
