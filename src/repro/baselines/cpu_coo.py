"""Naive COO-native CPU counter: the "no conversion" strawman.

Counts directly over the unsorted COO list with hashed edge-membership
probes.  It never pays the CSR conversion, but each wedge check costs a hash
probe into a table that does not fit in cache, so its per-step rate is far
below the CSR merge kernel's.  Included because it completes the design
space the paper spans (COO-native vs CSR-internal) and anchors the ablation
benchmark ``bench_ablations``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.coo import COOGraph
from ..graph.triangles import count_triangles, triangles_per_edge_budget
from .cpu_csr import BaselineResult

__all__ = ["CpuCooModel", "CpuCooCounter"]


@dataclass(frozen=True)
class CpuCooModel:
    """Constants for the hash-probe COO counter."""

    cores: int = 16
    clock_hz: float = 2.5e9
    #: Cycles per wedge probe: hash + DRAM-latency-bound table lookup.
    cycles_per_probe: float = 12.0
    parallel_efficiency: float = 0.5

    def probe_rate(self) -> float:
        return (
            self.cores
            * self.clock_hz
            * self.parallel_efficiency
            / self.cycles_per_probe
        )


@dataclass
class CpuCooCounter:
    model: CpuCooModel = field(default_factory=CpuCooModel)

    def count(self, graph: COOGraph) -> BaselineResult:
        g = graph if graph.is_canonical() else graph.canonicalize()
        triangles = count_triangles(g)
        probes = triangles_per_edge_budget(g)
        seconds = probes / self.model.probe_rate()
        return BaselineResult(
            name="cpu-coo", count=triangles, seconds=seconds, breakdown={"count": seconds}
        )
