"""Comparator implementations: CPU (CSR and COO-native), GPU-like, references."""

from .cpu_coo import CpuCooCounter, CpuCooModel
from .cpu_csr import BaselineResult, CpuCsrCounter, CpuModel
from .dynamic import CpuDynamicDriver, DynamicRound, GpuDynamicDriver
from .gpu_like import GpuCounter, GpuModel
from .reference import count_triangles_dense, count_triangles_sets

__all__ = [
    "BaselineResult",
    "CpuModel",
    "CpuCsrCounter",
    "CpuCooModel",
    "CpuCooCounter",
    "GpuModel",
    "GpuCounter",
    "DynamicRound",
    "CpuDynamicDriver",
    "GpuDynamicDriver",
    "count_triangles_dense",
    "count_triangles_sets",
]
