"""CPU baseline: the state-of-the-art shared-memory CSR triangle counter.

Models the paper's CPU comparator (Tom et al., HPEC'17 / the Bader-Research
triangle-counting code): it *accepts* COO input but internally converts to
CSR, sorts adjacency by degree order, and counts with merge-based
intersections over the forward adjacency.  Functionally we count with the
exact oracle (identical math); the time model has two parts:

* **Conversion (COO -> CSR)** — a sort-dominated pass the paper charges on
  *every dynamic update* but excludes from the static Fig. 6 comparison.
  Modeled as a largely sequential ``cycles_per_edge`` pass (sorting a raw COO
  stream parallelizes poorly), consistent with the dynamic results in Fig. 7.
* **Counting** — degree-ordered wedge work ``W`` executed at an effective
  rate ``cores * clock * steps_per_cycle * parallel_efficiency``, capped by
  memory bandwidth.  The low parallel efficiency reflects the paper's
  Sec. 2.1 observation that TC scales sublinearly with CPU threads (memory
  bound).

Hardware defaults: 2x Intel Xeon Silver 4215 (16 cores, 2.5 GHz) as in the
paper's evaluation system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.coo import COOGraph
from ..graph.triangles import count_triangles, triangles_per_edge_budget

__all__ = ["CpuModel", "BaselineResult", "CpuCsrCounter"]


@dataclass(frozen=True)
class BaselineResult:
    """Count and modeled time of one baseline run."""

    name: str
    count: int
    seconds: float
    breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def count_seconds(self) -> float:
        return self.breakdown.get("count", self.seconds)


@dataclass(frozen=True)
class CpuModel:
    """Time constants of the CPU comparator."""

    cores: int = 16
    clock_hz: float = 2.5e9
    #: Effective merge/intersection steps per cycle per core.  TC's access
    #: pattern defeats the prefetchers (paper Sec. 2.1), so the effective rate
    #: is far below peak scalar throughput.
    steps_per_cycle: float = 0.3
    #: Multi-thread scaling efficiency (TC scales sublinearly; Sec. 2.1).
    parallel_efficiency: float = 0.4
    #: Memory bandwidth cap (dual-socket DDR4).
    mem_bandwidth: float = 100e9
    #: Bytes moved per wedge step after random-access amplification (a 4-byte
    #: neighbor ID costs part of a cache line when the adjacency walk misses).
    bytes_per_step: float = 20.0
    #: COO->CSR conversion: cycles per input edge (sort + scatter + prefix),
    #: effectively sequential.
    conversion_cycles_per_edge: float = 50.0
    conversion_parallelism: float = 1.0

    def count_rate(self) -> float:
        """Effective wedge steps per second."""
        compute = self.cores * self.clock_hz * self.steps_per_cycle * self.parallel_efficiency
        memory = self.mem_bandwidth / self.bytes_per_step
        return min(compute, memory)

    def conversion_seconds(self, num_edges: int) -> float:
        """COO -> CSR conversion of ``num_edges`` undirected edges."""
        rate = self.clock_hz * self.conversion_parallelism / self.conversion_cycles_per_edge
        return 2.0 * num_edges / rate  # symmetrized: both directions inserted


@dataclass
class CpuCsrCounter:
    """Static CPU counting runs (Fig. 6 comparator)."""

    model: CpuModel = field(default_factory=CpuModel)

    def count(self, graph: COOGraph, include_conversion: bool = False) -> BaselineResult:
        """Count triangles; Fig. 6 excludes the conversion, Fig. 7 includes it."""
        g = graph if graph.is_canonical() else graph.canonicalize()
        triangles = count_triangles(g)
        wedge_work = triangles_per_edge_budget(g)
        count_s = wedge_work / self.model.count_rate()
        convert_s = self.model.conversion_seconds(g.num_edges)
        breakdown = {"convert": convert_s, "count": count_s}
        total = count_s + (convert_s if include_conversion else 0.0)
        return BaselineResult(
            name="cpu-csr", count=triangles, seconds=total, breakdown=breakdown
        )

    def incremental_wedge_work(self, cumulative: COOGraph, batch: COOGraph) -> int:
        """Wedge work of counting only the batch's triangles against the graph.

        Standard dynamic-TC cost: one intersection per new edge, bounded by
        the smaller endpoint degree in the cumulative graph.
        """
        deg = cumulative.degrees()
        du = deg[np.minimum(batch.src, deg.size - 1)]
        dv = deg[np.minimum(batch.dst, deg.size - 1)]
        return int(np.minimum(du, dv).sum())
