"""GPU baseline: a cuGraph-on-A100 throughput model.

The paper's GPU comparator is cuGraph on an NVIDIA A100 (80 GB).  Fig. 6 only
requires the model to place the GPU where the paper does — fastest on every
static graph — and Fig. 7 requires it to avoid the CPU's per-update CSR
conversion (cuGraph ingests COO directly).  We model:

* counting at an effective wedge-step rate derived from the A100's memory
  bandwidth (~2 TB/s HBM2e, the binding resource for TC) — orders of
  magnitude above the CPU's;
* a fixed per-invocation overhead (kernel launches + host synchronization),
  which is what keeps the GPU from being infinitely fast on small updates.

Functional counts come from the exact oracle, as with the CPU baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.coo import COOGraph
from ..graph.triangles import count_triangles, triangles_per_edge_budget
from .cpu_csr import BaselineResult

__all__ = ["GpuModel", "GpuCounter"]


@dataclass(frozen=True)
class GpuModel:
    """A100-class constants."""

    #: HBM2e bandwidth.
    mem_bandwidth: float = 2.0e12
    #: Bytes touched per wedge step (coalesced neighbor reads).
    bytes_per_step: float = 6.0
    #: Triangle-result accumulation rate (atomic adds / segmented reductions).
    #: This is what throttles the GPU on triangle-dense graphs: the paper's
    #: Human-Jung holds 41.7G triangles, and recording them dominates the
    #: cuGraph kernel — the effect behind PIM's one Fig. 6 win.
    triangles_per_second: float = 5e9
    #: Fixed host-side overhead per counting invocation, scaled to this
    #: repo's reduced dataset sizes (see EXPERIMENTS.md, Calibration).
    invocation_overhead: float = 25e-6
    #: One-time COO ingestion rate (device transfer + internal build).
    ingest_bandwidth: float = 20e9

    def step_rate(self) -> float:
        return self.mem_bandwidth / self.bytes_per_step

    def ingest_seconds(self, nbytes: int) -> float:
        return nbytes / self.ingest_bandwidth


@dataclass
class GpuCounter:
    model: GpuModel = field(default_factory=GpuModel)

    def count(self, graph: COOGraph, include_ingest: bool = False) -> BaselineResult:
        """Static count (Fig. 6: graph already resident, ingest excluded)."""
        g = graph if graph.is_canonical() else graph.canonicalize()
        triangles = count_triangles(g)
        wedge_work = triangles_per_edge_budget(g)
        count_s = (
            self.model.invocation_overhead
            + wedge_work / self.model.step_rate()
            + triangles / self.model.triangles_per_second
        )
        ingest_s = self.model.ingest_seconds(g.nbytes())
        total = count_s + (ingest_s if include_ingest else 0.0)
        return BaselineResult(
            name="gpu",
            count=triangles,
            seconds=total,
            breakdown={"count": count_s, "ingest": ingest_s},
        )
