"""Dynamic-update drivers for the CPU and GPU baselines (Fig. 7).

The paper's dynamic workload splits a graph into batches and, after merging
each batch, counts the triangles formed by the update.  The two baselines
differ exactly where the paper says they do:

* the **CPU** implementation needs CSR internally, so *every* round pays a
  full COO->CSR conversion of the entire cumulative graph before counting;
* the **GPU** implementation ingests COO directly, so a round pays only the
  new batch's device transfer plus the incremental count.

Both counters' incremental work is modeled as one intersection per new edge
bounded by the smaller endpoint degree (the standard dynamic-TC bound);
counts are exact (oracle), cumulative times are simulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.coo import COOGraph
from ..graph.triangles import count_triangles
from .cpu_csr import CpuModel
from .gpu_like import GpuModel

__all__ = ["DynamicRound", "CpuDynamicDriver", "GpuDynamicDriver"]


@dataclass(frozen=True)
class DynamicRound:
    """One update round of a baseline dynamic run."""

    round_index: int
    cumulative_edges: int
    triangles_total: int
    round_seconds: float
    cumulative_seconds: float
    breakdown: dict[str, float] = field(default_factory=dict)


def _incremental_wedges(cumulative: COOGraph, batch: COOGraph) -> int:
    """Hash-intersection work for the batch: ``sum min(deg(u), deg(v))``."""
    deg = cumulative.degrees()
    du = deg[batch.src]
    dv = deg[batch.dst]
    return int(np.minimum(du, dv).sum())


class _DynamicDriverBase:
    """Shared bookkeeping: cumulative COO graph + exact counts."""

    def __init__(self, num_nodes: int) -> None:
        self.graph = COOGraph(
            src=np.empty(0, dtype=np.int64),
            dst=np.empty(0, dtype=np.int64),
            num_nodes=num_nodes,
        )
        self.cumulative_seconds = 0.0
        self._round = 0

    def _merge(self, batch: COOGraph) -> COOGraph:
        merged = self.graph.concat(batch).canonicalize()
        self.graph = merged
        return merged


class CpuDynamicDriver(_DynamicDriverBase):
    """CPU baseline: full conversion every round (the Fig. 7 bottleneck)."""

    def __init__(self, num_nodes: int, model: CpuModel | None = None) -> None:
        super().__init__(num_nodes)
        self.model = model or CpuModel()

    def apply_update(self, batch: COOGraph) -> DynamicRound:
        work = _incremental_wedges(self.graph, batch) if self.graph.num_edges else 0
        merged = self._merge(batch)
        convert_s = self.model.conversion_seconds(merged.num_edges)
        count_s = work / self.model.count_rate()
        round_s = convert_s + count_s
        self.cumulative_seconds += round_s
        self._round += 1
        return DynamicRound(
            round_index=self._round,
            cumulative_edges=merged.num_edges,
            triangles_total=count_triangles(merged),
            round_seconds=round_s,
            cumulative_seconds=self.cumulative_seconds,
            breakdown={"convert": convert_s, "count": count_s},
        )


class GpuDynamicDriver(_DynamicDriverBase):
    """GPU baseline: COO-native update, no per-round conversion."""

    def __init__(self, num_nodes: int, model: GpuModel | None = None) -> None:
        super().__init__(num_nodes)
        self.model = model or GpuModel()
        self._prev_triangles = 0

    def apply_update(self, batch: COOGraph) -> DynamicRound:
        work = _incremental_wedges(self.graph, batch) if self.graph.num_edges else 0
        merged = self._merge(batch)
        triangles = count_triangles(merged)
        added = triangles - self._prev_triangles
        self._prev_triangles = triangles
        ingest_s = self.model.ingest_seconds(batch.nbytes())
        count_s = (
            self.model.invocation_overhead
            + work / self.model.step_rate()
            + max(added, 0) / self.model.triangles_per_second
        )
        round_s = ingest_s + count_s
        self.cumulative_seconds += round_s
        self._round += 1
        return DynamicRound(
            round_index=self._round,
            cumulative_edges=merged.num_edges,
            triangles_total=triangles,
            round_seconds=round_s,
            cumulative_seconds=self.cumulative_seconds,
            breakdown={"ingest": ingest_s, "count": count_s},
        )
