"""High-degree node remapping from the Misra-Gries summary (paper Sec. 3.5).

The host identifies (approximately) the ``t`` highest-degree nodes and ships
their IDs to every PIM core.  Before sorting its sample, each core remaps
those nodes to fresh IDs *above* the original ID range, with the most frequent
node receiving the highest new ID.  Under the ``u < v`` orientation, a node's
triangle-counting work is driven by its *forward* adjacency (neighbors with
larger IDs); pushing the heavy hitters to the top of the ID range empties
their forward lists — the most frequent node's becomes exactly empty — while
the remap, being a bijection on node IDs, provably preserves the triangle
count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.validation import check_int_array

__all__ = ["RemapTable", "apply_remap"]


@dataclass(frozen=True)
class RemapTable:
    """The broadcast remap payload.

    Attributes
    ----------
    nodes:
        Node IDs ordered most-frequent-first (the Misra-Gries top ``t``).
    num_nodes:
        Original ID range; new IDs are ``num_nodes .. num_nodes + t - 1``,
        assigned so that ``nodes[0]`` (most frequent) gets the highest.
    """

    nodes: np.ndarray
    num_nodes: int

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "nodes", check_int_array("nodes", self.nodes).astype(np.int64, copy=False)
        )
        if np.unique(self.nodes).size != self.nodes.size:
            raise ValueError("remap table must not contain duplicate nodes")

    @property
    def t(self) -> int:
        return int(self.nodes.size)

    @property
    def remapped_num_nodes(self) -> int:
        """ID range after remapping (old range plus ``t`` fresh IDs)."""
        return self.num_nodes + self.t

    def new_ids(self) -> np.ndarray:
        """New ID of each table entry: most frequent -> highest."""
        return self.num_nodes + self.t - 1 - np.arange(self.t, dtype=np.int64)

    def nbytes(self) -> int:
        return int(self.nodes.nbytes)


def apply_remap(
    table: RemapTable, src: np.ndarray, dst: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Rewrite edge endpoints through the remap table (vectorized).

    Non-table nodes keep their IDs; table nodes move to the fresh top range.
    Returns new arrays (inputs untouched).
    """
    if table.t == 0:
        return src, dst
    order = np.argsort(table.nodes)
    sorted_nodes = table.nodes[order]
    sorted_new = table.new_ids()[order]

    def rewrite(arr: np.ndarray) -> np.ndarray:
        out = np.asarray(arr, dtype=np.int64).copy()
        pos = np.searchsorted(sorted_nodes, out)
        pos_c = np.minimum(pos, table.t - 1)
        hit = sorted_nodes[pos_c] == out
        out[hit] = sorted_new[pos_c[hit]]
        return out

    return rewrite(src), rewrite(dst)
