"""Result types returned by the PIM triangle-counting pipeline.

The paper reports every run as three phases (Sec. 4.1):

* **Setup** — PIM core allocation, kernel load, host buffer allocation;
* **Sample creation** — reading/coloring/batching edges on the host, the
  CPU->PIM transfers, and the DPU-side sample insertion (with reservoir
  replacement when space runs out);
* **Triangle count** — DPU-side sort + region indexing + merge counting,
  result gathering, and the host-side correction.

:class:`TcResult` carries the final estimate, that phase breakdown as
simulated seconds, and enough per-DPU detail for the experiments to compute
load-balance and error statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..pimsim.kernel import SimClock
from ..pimsim.trace import Trace
from ..telemetry.spans import Telemetry

__all__ = ["TcResult", "LocalTcResult", "KernelAggregate"]


@dataclass(frozen=True)
class KernelAggregate:
    """Aggregate DPU-side work of one run (summed over all PIM cores)."""

    instructions: int
    dma_requests: int
    dma_bytes: int
    max_dpu_compute_seconds: float


@dataclass
class TcResult:
    """Outcome of one triangle-counting run on the simulated PIM system."""

    estimate: float
    num_colors: int
    num_dpus: int
    clock: SimClock
    per_dpu_counts: np.ndarray
    reservoir_scales: np.ndarray
    edges_routed: np.ndarray
    edges_input: int
    uniform_p: float = 1.0
    kernel: KernelAggregate | None = None
    host_wall_seconds: float = 0.0
    meta: dict = field(default_factory=dict)
    #: Operation-level trace of the run (alloc/transfers/launches), if kept.
    trace: Trace | None = None
    #: Telemetry recorder of the run (span tree + metrics), if kept.
    telemetry: Telemetry | None = None
    #: Per-DPU work ledger for straggler analysis, if harvested
    #: (:class:`~repro.observability.imbalance.ImbalanceLedger`).
    imbalance: "object | None" = None

    # ------------------------------------------------------------- convenience
    @property
    def count(self) -> int:
        """Estimate rounded to the nearest integer triangle count."""
        return int(round(self.estimate))

    @property
    def is_exact(self) -> bool:
        """True when no sampling happened anywhere (the exact-count path)."""
        return self.uniform_p >= 1.0 and bool(np.all(self.reservoir_scales >= 1.0))

    @property
    def setup_seconds(self) -> float:
        return self.clock.get("setup")

    @property
    def sample_creation_seconds(self) -> float:
        return self.clock.get("sample_creation")

    @property
    def triangle_count_seconds(self) -> float:
        return self.clock.get("triangle_count")

    @property
    def total_seconds(self) -> float:
        return self.clock.total()

    @property
    def seconds_without_setup(self) -> float:
        """The paper's post-Sec.-4.2 metric (setup excluded from comparisons)."""
        return self.total_seconds - self.setup_seconds

    def throughput_edges_per_ms(self) -> float:
        """Fig. 3 metric: input edges per millisecond of (sample + count) time."""
        active = self.seconds_without_setup
        if active <= 0:
            return float("inf")
        return self.edges_input / (active * 1e3)

    def load_balance(self) -> float:
        """Max/mean ratio of edges routed per PIM core (1.0 = perfectly even).

        Sec. 3.1's argument: for large ``C`` most cores carry the 6N class,
        so the ratio approaches 1; small ``C`` leaves the N/3N/6N split
        visible.  Only cores of the heaviest class bound the critical path.
        """
        routed = np.asarray(self.edges_routed, dtype=np.float64)
        if routed.size == 0 or routed.sum() == 0:
            return 1.0
        return float(routed.max() / routed.mean())

    def summary(self) -> str:
        """One-line human-readable report."""
        kind = "exact" if self.is_exact else "approx"
        return (
            f"T~{self.estimate:.1f} ({kind}) C={self.num_colors} dpus={self.num_dpus} "
            f"setup={self.setup_seconds * 1e3:.2f}ms "
            f"sample={self.sample_creation_seconds * 1e3:.2f}ms "
            f"count={self.triangle_count_seconds * 1e3:.2f}ms"
        )

    def to_dict(self) -> dict:
        """JSON-serializable summary (for experiment persistence/regression)."""
        return {
            "estimate": float(self.estimate),
            "count": self.count,
            "is_exact": self.is_exact,
            "num_colors": self.num_colors,
            "num_dpus": self.num_dpus,
            "uniform_p": float(self.uniform_p),
            "edges_input": int(self.edges_input),
            "edges_routed_total": int(np.asarray(self.edges_routed).sum()),
            "load_balance": self.load_balance(),
            "phases": {k: float(v) for k, v in self.clock.phases.items()},
            "throughput_edges_per_ms": self.throughput_edges_per_ms(),
            "kernel": (
                {
                    "instructions": self.kernel.instructions,
                    "dma_requests": self.kernel.dma_requests,
                    "dma_bytes": self.kernel.dma_bytes,
                    "max_dpu_compute_seconds": self.kernel.max_dpu_compute_seconds,
                }
                if self.kernel
                else None
            ),
            "trace": (
                {
                    "events": len(self.trace),
                    "counts_by_kind": self.trace.counts_by_kind(),
                    "total_seconds": float(self.trace.total_seconds()),
                    "total_bytes": int(self.trace.total_bytes()),
                }
                if self.trace is not None
                else None
            ),
            "imbalance": (
                {
                    "skew": {
                        m: self.imbalance.skew(m).to_dict()
                        for m in ("edges_routed", "merge_steps", "count_seconds")
                    },
                    "stragglers": self.imbalance.stragglers(k=3),
                }
                if self.imbalance is not None
                else None
            ),
            "meta": {k: v for k, v in self.meta.items() if not k.startswith("_")},
        }


@dataclass
class LocalTcResult(TcResult):
    """Per-node (local) counting outcome.

    ``estimate`` holds the implied global count (``local_estimates.sum()/3``);
    ``local_estimates`` holds the per-node vector after all corrections.
    """

    local_estimates: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def local_counts(self) -> np.ndarray:
        """Per-node estimates rounded to integers (exact path: exact counts)."""
        return np.rint(self.local_estimates).astype(np.int64)

    def top_nodes(self, k: int = 10) -> list[tuple[int, float]]:
        """The ``k`` nodes in the most triangles, as (node, estimate) pairs."""
        order = np.argsort(-self.local_estimates, kind="stable")[:k]
        return [(int(i), float(self.local_estimates[i])) for i in order]
