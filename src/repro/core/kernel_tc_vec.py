"""Searchsorted triangle-counting kernel: same charges, faster wall-clock.

This is the ``fastvec`` kernel variant.  It reuses the whole
:func:`~repro.core.kernel_tc_fast.fast_count` cost pipeline — orient, sort,
region index, the analytic per-edge instruction/DMA charges — and swaps only
the *count arithmetic* via the ``counter`` hook: instead of assembling a
scipy CSR matrix and multiplying ``(A @ A) .* A``, it intersects adjacency
slices directly with :func:`numpy.searchsorted` over the sorted oriented
edge arrays:

1. encode every oriented edge as a single int64 key ``u * stride + v``
   (sorted, because ``(u, v)`` is lexsorted);
2. for each edge ``(u, v)``, expand ``v``'s region — the contiguous
   adjacency slice ``adj(v)`` located through the region index — into one
   flat candidate array (:func:`~repro.core.region_index.expand_slices`);
3. count how many wedges ``u -> v -> w`` close: the multiplicity of edge
   ``(u, w)`` is ``searchsorted(keys, key, "right") - searchsorted(keys,
   key, "left")``, which matches the sparse product's duplicate-edge
   semantics exactly (``sum_{u,v,w} A[u,v] * A[v,w] * A[u,w]``).

Orientation makes the forward adjacency strictly upper-triangular, so
``w > v > u`` holds for every candidate with no explicit filtering.  The
expansion is chunked by candidate count to bound memory on hub-heavy graphs.

Because the hook only returns an integer and every charge is computed by the
shared ``fast_count`` code path, simulated clocks, per-phase totals,
``kernel_stats`` and the imbalance ledger are bit-identical to the ``merge``
variant *by construction* — the differential grid
(:mod:`repro.testing.differential`) pins this.  The kernel keeps
``name="triangle_count"`` on purpose: the trace recorder embeds the kernel
name in load/launch events, and those must not move either.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .kernel_tc_fast import (
    FastCountResult,
    KernelCosts,
    TriangleCountKernel,
    _count_forward_sparse,
    fast_count,
)
from .region_index import RegionIndex, build_region_index, expand_slices

__all__ = [
    "count_forward_searchsorted",
    "vec_count",
    "VecTriangleCountKernel",
]

#: Upper bound on expanded wedge candidates held in memory at once.
DEFAULT_CHUNK_CANDIDATES = 1 << 22


def count_forward_searchsorted(
    u: np.ndarray,
    v: np.ndarray,
    num_nodes: int,
    index: RegionIndex | None = None,
    chunk_candidates: int = DEFAULT_CHUNK_CANDIDATES,
) -> int:
    """Triangles of an oriented, lexsorted edge list via key binary search.

    Exact drop-in for ``_count_forward_sparse`` including duplicate-edge
    multiplicities: each wedge ``u -> v -> w`` contributes the multiplicity
    of ``(u, w)`` in the edge list.
    """
    m = int(u.size)
    if m == 0:
        return 0
    if index is None:
        index = build_region_index(u)
    u64 = u.astype(np.int64, copy=False)
    v64 = v.astype(np.int64, copy=False)
    # One int64 key per edge.  ids < stride, so keys are collision-free and
    # inherit the lexsort order.  Node IDs are int32 in practice; fall back
    # to the sparse counter in the (untestable here) stride-overflow regime.
    stride = max(int(num_nodes), int(v64.max()) + 1)
    if stride > np.iinfo(np.int64).max // max(stride, 1):
        return _count_forward_sparse(u, v, num_nodes)
    keys = u64 * stride + v64

    # Per edge (u, v), the triangle contribution is the multiplicity-weighted
    # intersection sum_w mult_u(w) * mult_v(w) over w > v.  Both of these
    # produce it: expand adj(v) and look up (u, w), or expand the *suffix* of
    # u's region after the edge (its w's are exactly the > v entries) and
    # look up (v, w).  Expanding the smaller side bounds the wedge work by
    # sum min(suffix_u, d_v) — the same min-side trick the real kernel's
    # merge uses, and what keeps hub-heavy rows cheap.
    su_starts = np.arange(1, m + 1, dtype=np.int64)
    _, u_ends = index.lookup_many(u64)  # u is always present
    v_starts, v_ends = index.lookup_many(v64)
    expand_u = (u_ends - su_starts) < (v_ends - v_starts)
    exp_starts = np.where(expand_u, su_starts, v_starts)
    exp_ends = np.where(expand_u, u_ends, v_ends)
    base = np.where(expand_u, v64, u64) * stride

    # Canonicalized pipelines never route duplicate edges, so keys are
    # usually strictly increasing: one search plus an equality test counts
    # membership.  Duplicate-bearing streams (raw/adversarial input) take the
    # two-sided search, whose left/right difference is the multiplicity.
    has_dup_keys = bool(np.any(keys[1:] == keys[:-1])) if m > 1 else False

    # Chunk edges so each expansion holds at most chunk_candidates wedges.
    cum = np.concatenate(([0], np.cumsum(exp_ends - exp_starts)))
    total = 0
    lo = 0
    while lo < m:
        hi = int(np.searchsorted(cum, cum[lo] + chunk_candidates, side="right")) - 1
        hi = min(max(hi, lo + 1), m)
        positions, owner = expand_slices(exp_starts[lo:hi], exp_ends[lo:hi])
        if positions.size:
            qkeys = base[owner + lo] + v64[positions]
            if has_dup_keys:
                left = np.searchsorted(keys, qkeys, side="left")
                right = np.searchsorted(keys, qkeys, side="right")
                total += int((right - left).sum())
            else:
                idx = np.searchsorted(keys, qkeys)
                np.minimum(idx, m - 1, out=idx)
                total += int(np.count_nonzero(keys[idx] == qkeys))
        lo = hi
    return total


def vec_count(
    src: np.ndarray,
    dst: np.ndarray,
    num_nodes: int,
    costs: KernelCosts | None = None,
    num_tasklets: int = 16,
) -> FastCountResult:
    """``fast_count`` with the searchsorted counter: identical costs, only
    the count arithmetic differs (and must agree bit-for-bit)."""
    return fast_count(
        src,
        dst,
        num_nodes,
        costs=costs,
        num_tasklets=num_tasklets,
        counter=count_forward_searchsorted,
    )


@dataclass
class VecTriangleCountKernel(TriangleCountKernel):
    """``fastvec`` pipeline kernel: TriangleCountKernel with the searchsorted
    counter.  Inherits MRAM layout, WRAM plan, remap handling and every
    charge; ``name`` stays ``"triangle_count"`` so traces are bit-identical.
    """

    def _counter(self):
        return count_forward_searchsorted
