"""First-node region index over a sorted edge sample (paper Fig. 2).

After sorting, edges sharing a first node form a contiguous *region*.  The
DPU builds a table with one entry per region — ``(first_node, start_offset)``
— and the counting phase binary-searches this table to locate the region of a
given node ``v`` (the neighbors of ``v``).

:class:`RegionIndex` is the NumPy equivalent: ``nodes`` (sorted unique first
nodes) and ``starts`` / ``ends`` offsets into the edge arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RegionIndex", "build_region_index", "expand_slices"]


@dataclass(frozen=True)
class RegionIndex:
    """Region table of a sorted, oriented edge sample."""

    nodes: np.ndarray  # distinct first nodes, ascending
    starts: np.ndarray  # first edge index of each region
    ends: np.ndarray  # one-past-last edge index of each region

    @property
    def num_regions(self) -> int:
        return int(self.nodes.size)

    def lookup(self, node: int) -> tuple[int, int]:
        """Binary search one node; returns ``(start, end)`` (empty if absent).

        Mirrors the DPU's per-edge search; the vectorized kernel uses
        :meth:`lookup_many`.
        """
        i = int(np.searchsorted(self.nodes, node))
        if i < self.nodes.size and self.nodes[i] == node:
            return int(self.starts[i]), int(self.ends[i])
        return 0, 0

    def lookup_many(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized region lookup; absent nodes get an empty ``(0, 0)`` span."""
        idx = np.searchsorted(self.nodes, nodes)
        idx_c = np.minimum(idx, max(self.nodes.size - 1, 0))
        if self.nodes.size:
            found = self.nodes[idx_c] == nodes
        else:
            found = np.zeros(nodes.shape, dtype=bool)
        starts = np.where(found, self.starts[idx_c] if self.nodes.size else 0, 0)
        ends = np.where(found, self.ends[idx_c] if self.nodes.size else 0, 0)
        return starts.astype(np.int64), ends.astype(np.int64)

    def degrees_of(self, nodes: np.ndarray) -> np.ndarray:
        """Forward degree (region length) of each queried node; 0 if absent."""
        starts, ends = self.lookup_many(nodes)
        return ends - starts

    def search_steps(self) -> int:
        """Binary-search step count for one lookup: ``ceil(log2(R + 1))``."""
        return int(np.ceil(np.log2(self.num_regions + 1))) if self.num_regions else 1

    def table_bytes(self, entry_bytes: int = 8) -> int:
        """MRAM footprint of the table (node + offset per region)."""
        return self.num_regions * entry_bytes


def expand_slices(starts: np.ndarray, ends: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flatten contiguous ``[start, end)`` spans into flat gather indices.

    Returns ``(positions, owner)``: span ``i``'s positions
    ``starts[i] .. ends[i]-1`` appear contiguously in ``positions`` and
    ``owner`` records which span each position came from.  The vectorized
    kernel uses this to expand per-edge adjacency slices into one flat
    candidate array in a single pass — no Python loop over edges.
    """
    counts = np.asarray(ends, dtype=np.int64) - np.asarray(starts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    owner = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total, dtype=np.int64) - offsets[owner]
    positions = np.asarray(starts, dtype=np.int64)[owner] + within
    return positions, owner


def build_region_index(u_sorted: np.ndarray) -> RegionIndex:
    """Build the region table from the sorted first-node column."""
    if u_sorted.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return RegionIndex(nodes=empty, starts=empty.copy(), ends=empty.copy())
    nodes, starts = np.unique(u_sorted, return_index=True)
    ends = np.append(starts[1:], u_sorted.size).astype(np.int64)
    return RegionIndex(nodes=nodes.astype(np.int64), starts=starts.astype(np.int64), ends=ends)
