"""Local (per-node) triangle counting on the PIM system.

An extension in the spirit of the paper's approximation source, TRIÈST
(reference [48]), which estimates *local* triangle counts under the same
reservoir scheme.  The coloring partition supports it unchanged:

* a triangle with >= 2 distinct node colors lives on exactly one PIM core, so
  its three node increments happen exactly once system-wide;
* a monochromatic triangle is counted by ``C`` cores, and the single-color
  core of its color counts exactly those — so the per-node correction is the
  same ``-(C-1) x`` subtraction, applied *vector-wise*;
* reservoir and uniform corrections divide the whole vector by the same
  survival probabilities as the global count.

Cost-wise the kernel adds a per-node accumulator array in MRAM: every
triangle performs three read-modify-write increments (WRAM-cached, charged as
DMA traffic), and the result gather moves ``num_nodes * 8`` bytes per core —
a realistically *expensive* gather that shows up in the local pipeline's
triangle-count phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..common.errors import KernelLaunchError
from ..pimsim.dpu import Dpu
from ..pimsim.wram import WramPlan
from .kernel_tc_fast import KernelCosts, fast_count
from .orient import orient_and_sort
from .remap import RemapTable, apply_remap

__all__ = ["LocalCountKernel", "local_counts_from_arrays"]


def local_counts_from_arrays(
    src: np.ndarray, dst: np.ndarray, num_nodes: int, chunk_nnz: int = 1 << 24
) -> np.ndarray:
    """Per-node triangle counts of one edge sample (no dedup performed).

    Uses the symmetric-adjacency identity ``local = ((S @ S) .* S).rowsum / 2``
    with row chunking; the sample must be duplicate-free (all DPU samples are).
    """
    n = int(num_nodes)
    local = np.zeros(n, dtype=np.int64)
    u, v, _ = orient_and_sort(src, dst)
    m = int(u.size)
    if m == 0:
        return local
    ones = np.ones(2 * m, dtype=np.int64)
    sym = sp.csr_matrix(
        (ones, (np.concatenate([u, v]), np.concatenate([v, u]))), shape=(n, n)
    )
    deg = np.diff(sym.indptr)
    cs = np.concatenate(([0], np.cumsum(deg[sym.indices])))
    row_wedges = cs[sym.indptr[1:]] - cs[sym.indptr[:-1]]
    cum = np.concatenate(([0], np.cumsum(row_wedges)))
    row = 0
    while row < n:
        stop = int(np.searchsorted(cum, cum[row] + chunk_nnz, side="right"))
        stop = min(max(stop - 1, row + 1), n)
        block = sym[row:stop, :]
        closed = (block @ sym).multiply(block)
        local[row:stop] = np.asarray(closed.sum(axis=1)).ravel() // 2
        row = stop
    return local


@dataclass
class LocalCountKernel:
    """SPMD kernel computing per-node triangle counts over each core's sample.

    MRAM inputs match :class:`~repro.core.kernel_tc_fast.TriangleCountKernel`
    (``sample_src``/``sample_dst`` and optional ``remap_table``); outputs are
    ``local_counts`` (int64 per original node) plus the usual
    ``triangle_count`` scalar for cross-checking.
    """

    num_nodes: int
    costs: KernelCosts = field(default_factory=KernelCosts)
    name: str = "local_triangle_count"

    #: Extra instructions per triangle for the three accumulator updates.
    accumulate_instr: float = 12.0

    def wram_plan(self, dpu: Dpu) -> WramPlan:
        c = self.costs
        return WramPlan(
            per_tasklet_buffers={
                "edge_buffer": c.edge_buffer_bytes,
                "region_buffer": c.region_buffer_bytes,
                # Accumulator write-combining buffer.
                "acc_buffer": 512,
                "stack": c.stack_bytes - 512,
            },
            shared_bytes=2048,
        )

    def run(self, dpu: Dpu) -> None:
        if not dpu.mram.has("sample_src"):
            raise KernelLaunchError("sample_src missing: host must scatter the sample first")
        src = dpu.mram.load("sample_src", count_read=False).astype(np.int64)
        dst = dpu.mram.load("sample_dst", count_read=False).astype(np.int64)
        eff_nodes = self.num_nodes
        table: RemapTable | None = None
        if dpu.mram.has("remap_table"):
            table = RemapTable(
                nodes=dpu.mram.load("remap_table", count_read=False), num_nodes=self.num_nodes
            )
            src, dst = apply_remap(table, src, dst)
            eff_nodes = table.remapped_num_nodes
            dpu.charge_balanced(self.costs.remap_instr_per_edge * src.size)

        # Reuse the counting kernel's cost derivation (search + merge work).
        stats = fast_count(
            src, dst, eff_nodes, costs=self.costs, num_tasklets=dpu.config.num_tasklets
        )
        dpu.charge_instructions_all(stats.per_tasklet_instr)
        for tk in range(dpu.config.num_tasklets):
            dpu.charge_mram_read(
                tk,
                int(stats.per_tasklet_dma_bytes[tk]),
                requests=int(stats.per_tasklet_dma_requests[tk]),
            )
        # Accumulator updates: three read-modify-write int64 ops per triangle,
        # write-combined through the WRAM acc buffer.
        triangles = stats.triangles
        dpu.charge_balanced(self.accumulate_instr * triangles)
        rmw_bytes = 3 * triangles * 16  # 8 read + 8 write per increment
        per = rmw_bytes // dpu.config.num_tasklets
        for tk in range(dpu.config.num_tasklets):
            dpu.charge_mram_write(tk, int(per // 2), requests=max(1, triangles // 64))
            dpu.charge_mram_read(tk, int(per // 2), requests=0)

        local = local_counts_from_arrays(src, dst, eff_nodes)
        if table is not None and table.t > 0:
            # Fold the remapped IDs' counts back onto the original nodes.
            folded = local[: self.num_nodes].copy()
            folded[table.nodes] += local[table.new_ids()]
            local = folded
        dpu.mram.store("local_counts", local.astype(np.int64), count_write=False)
        dpu.mram.store(
            "triangle_count", np.array([triangles], dtype=np.int64), count_write=False
        )
