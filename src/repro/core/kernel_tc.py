"""Reference per-tasklet merge kernel — a line-for-line Python mirror of the
DPU C kernel the paper describes in Sec. 3.4.

This implementation exists to *specify* the algorithm: it walks the sorted
sample edge by edge exactly as a tasklet does — WRAM edge buffer, binary
search into the region table, merge-style intersection of the two forward
adjacency lists — and counts actual merge steps.  It is quadratic-ish and
Python-slow, so production code uses the vectorized
:mod:`~repro.core.kernel_tc_fast` equivalent; the test suite proves the two
agree on the count and that the fast kernel's charged merge cost is a sound
upper bound on the steps measured here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .orient import orient_and_sort
from .region_index import RegionIndex, build_region_index

__all__ = ["ReferenceCounts", "count_triangles_reference"]


@dataclass(frozen=True)
class ReferenceCounts:
    """Exact result and exact operation counts of the reference kernel."""

    triangles: int
    merge_steps: int
    binary_searches: int
    edges_processed: int


def _merge_count(
    u_arr: np.ndarray,
    v_arr: np.ndarray,
    a_pos: int,
    a_end: int,
    b_pos: int,
    b_end: int,
) -> tuple[int, int]:
    """Merge-intersect two sorted regions; returns (triangles, steps).

    ``a`` is the suffix of ``u``'s region after the current edge (neighbors of
    ``u`` greater than ``v``); ``b`` is ``v``'s whole region.  The merge
    compares second-node columns exactly as the paper specifies: on equality a
    triangle is recorded and both advance, otherwise the smaller side advances.
    """
    triangles = 0
    steps = 0
    while a_pos < a_end and b_pos < b_end:
        steps += 1
        w = v_arr[a_pos]
        z = v_arr[b_pos]
        if w == z:
            triangles += 1
            a_pos += 1
            b_pos += 1
        elif w < z:
            a_pos += 1
        else:
            b_pos += 1
    return triangles, steps


def count_triangles_reference(
    src: np.ndarray,
    dst: np.ndarray,
    num_tasklets: int = 16,
    buffer_edges: int = 64,
) -> ReferenceCounts:
    """Count triangles over one DPU's edge sample, the tasklet way.

    Parameters
    ----------
    src, dst:
        The raw (unsorted, arbitrarily oriented) sample, as it sits in MRAM
        after sample creation.
    num_tasklets:
        Tasklets sharing the work; tasklet ``i`` takes buffer blocks
        ``i, i + T, i + 2T, ...`` of ``buffer_edges`` edges each, emulating
        the "retrieve a buffer of edges until none remain" loop.
    """
    u, v, _ = orient_and_sort(src, dst)
    index: RegionIndex = build_region_index(u)
    m = int(u.size)
    triangles = 0
    merge_steps = 0
    searches = 0
    num_blocks = (m + buffer_edges - 1) // buffer_edges
    for block in range(num_blocks):
        # The block's owner tasklet is block % num_tasklets; ownership does not
        # change the result, only the cost split, so the reference just loops.
        lo = block * buffer_edges
        hi = min(lo + buffer_edges, m)
        for e in range(lo, hi):
            eu = int(u[e])
            ev = int(v[e])
            searches += 1
            b_start, b_end = index.lookup(ev)
            if b_start == b_end:
                continue  # no edges originate at v
            # Suffix of u's region strictly after this edge.
            a_start, a_end = index.lookup(eu)
            assert a_start <= e < a_end, "edge must lie inside its own region"
            tri, steps = _merge_count(u, v, e + 1, a_end, b_start, b_end)
            triangles += tri
            merge_steps += steps
    return ReferenceCounts(
        triangles=triangles,
        merge_steps=merge_steps,
        binary_searches=searches,
        edges_processed=m,
    )
