"""Alternative counting kernel: binary-search probes instead of merges.

The paper's kernel (Sec. 3.4) merge-intersects the two forward adjacency
lists.  The classic alternative — used by several CPU/GPU triangle counters —
probes: for each edge ``(u, v)`` and each ``w`` in ``N+(v)``, binary-search
the edge ``(u, w)`` in the sorted sample.  Per edge the merge costs
``suffix(u) + deg+(v)`` sequential steps while the probe costs
``deg+(v) * log2(m)`` random-access steps; the trade-off flips with the shape
of the adjacency lists:

* long ``suffix(u)`` + short ``N+(v)`` (hub as first node): probing wins —
  it never walks the hub's list;
* comparable list lengths: merging wins by the ``log`` factor and by its
  streaming (DMA-friendly) access pattern.

The ``abl_kernels`` experiment quantifies this on the dataset analogues; the
functional count is identical (asserted by tests against the merge kernel and
the oracle).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import KernelLaunchError
from ..pimsim.dpu import Dpu
from ..pimsim.wram import WramPlan
from .kernel_tc_fast import KernelCosts, _count_forward_sparse
from .orient import orient_and_sort
from .region_index import build_region_index
from .remap import RemapTable, apply_remap

__all__ = ["ProbeCountResult", "probe_count", "ProbeTriangleCountKernel"]


@dataclass(frozen=True)
class ProbeCountResult:
    """Count and cost split of the probe kernel over one sample."""

    triangles: int
    edges: int
    probes: int
    probe_steps: int
    per_tasklet_instr: np.ndarray
    per_tasklet_dma_bytes: np.ndarray
    per_tasklet_dma_requests: np.ndarray


def probe_count(
    src: np.ndarray,
    dst: np.ndarray,
    num_nodes: int,
    costs: KernelCosts | None = None,
    num_tasklets: int = 16,
) -> ProbeCountResult:
    """Count triangles with per-wedge binary probes; charge the probe costs.

    Probe work per edge: one region search for ``v`` plus ``deg+(v)`` probes
    of ``ceil(log2(m))`` steps each, every step touching one edge record in
    MRAM (random access: a DMA request per WRAM-line miss is charged via a
    per-probe request estimate).
    """
    costs = costs or KernelCosts()
    u, v, ostats = orient_and_sort(src, dst, wram_run_edges=costs.edge_buffer_edges)
    index = build_region_index(u)
    m = int(u.size)
    t = int(num_tasklets)
    if m == 0:
        zeros = np.zeros(t, dtype=np.float64)
        return ProbeCountResult(0, 0, 0, 0, zeros, zeros.copy(), zeros.copy())

    triangles = _count_forward_sparse(u, v, num_nodes)

    d_v = index.degrees_of(v)
    log_m = max(1, int(np.ceil(np.log2(m + 1))))
    region_steps = index.search_steps()
    probes_per_edge = d_v
    probe_steps_per_edge = d_v * log_m
    per_edge_instr = (
        costs.edge_loop_instr
        + costs.binsearch_instr_per_step * region_steps
        + costs.binsearch_instr_per_step * probe_steps_per_edge
    )

    buf = costs.edge_buffer_edges
    tasklet_of_edge = (np.arange(m, dtype=np.int64) // buf) % t
    instr = np.bincount(tasklet_of_edge, weights=per_edge_instr, minlength=t)
    balanced = (
        costs.orient_instr * m
        + costs.sort_instr_per_step * ostats.sort_steps
        + costs.region_instr_per_edge * m
        + costs.triangle_instr * triangles
    )
    instr += balanced / t

    eb = costs.edge_bytes
    # Each probe step is a random MRAM touch of one edge record; successive
    # steps of one binary search share no locality, so every step is charged
    # a DMA transfer of one WRAM line's worth of its edge.
    probe_bytes = probe_steps_per_edge.astype(np.float64) * eb
    probe_requests = probe_steps_per_edge.astype(np.float64)
    # v's region itself is streamed once per edge (to enumerate the w's).
    region_bytes = d_v.astype(np.float64) * eb
    region_requests = np.where(
        d_v > 0, np.ceil(region_bytes / costs.region_buffer_bytes), 0.0
    )
    dma_bytes = np.bincount(
        tasklet_of_edge, weights=probe_bytes + region_bytes + eb, minlength=t
    )
    dma_requests = np.bincount(
        tasklet_of_edge, weights=probe_requests + region_requests, minlength=t
    )
    sort_mram = 2 * m * eb * ostats.mram_passes
    dma_bytes += sort_mram / t
    dma_requests += np.ceil(sort_mram / t / costs.edge_buffer_bytes)

    return ProbeCountResult(
        triangles=int(triangles),
        edges=m,
        probes=int(probes_per_edge.sum()),
        probe_steps=int(probe_steps_per_edge.sum()),
        per_tasklet_instr=instr,
        per_tasklet_dma_bytes=dma_bytes,
        per_tasklet_dma_requests=dma_requests,
    )


@dataclass
class ProbeTriangleCountKernel:
    """SPMD kernel variant using binary-search probes (same MRAM interface)."""

    num_nodes: int
    costs: KernelCosts = field(default_factory=KernelCosts)
    name: str = "triangle_count_probe"

    def wram_plan(self, dpu: Dpu) -> WramPlan:
        c = self.costs
        return WramPlan(
            per_tasklet_buffers={
                "edge_buffer": c.edge_buffer_bytes,
                "probe_line": 64,
                "stack": c.stack_bytes,
            },
            shared_bytes=2048,
        )

    def run(self, dpu: Dpu) -> None:
        if not dpu.mram.has("sample_src"):
            raise KernelLaunchError("sample_src missing: host must scatter the sample first")
        src = dpu.mram.load("sample_src", count_read=False).astype(np.int64)
        dst = dpu.mram.load("sample_dst", count_read=False).astype(np.int64)
        num_nodes = self.num_nodes
        if dpu.mram.has("remap_table"):
            table = RemapTable(
                nodes=dpu.mram.load("remap_table", count_read=False), num_nodes=num_nodes
            )
            src, dst = apply_remap(table, src, dst)
            num_nodes = table.remapped_num_nodes
            dpu.charge_balanced(self.costs.remap_instr_per_edge * src.size)

        result = probe_count(
            src, dst, num_nodes, costs=self.costs, num_tasklets=dpu.config.num_tasklets
        )
        dpu.charge_instructions_all(result.per_tasklet_instr)
        for tk in range(dpu.config.num_tasklets):
            dpu.charge_mram_read(
                tk,
                int(result.per_tasklet_dma_bytes[tk]),
                requests=int(result.per_tasklet_dma_requests[tk]),
            )
        dpu.mram.store(
            "triangle_count", np.array([result.triangles], dtype=np.int64), count_write=False
        )
        dpu.mram.store(
            "kernel_stats",
            np.array([result.edges, result.probes, result.probe_steps], dtype=np.int64),
            count_write=False,
        )
