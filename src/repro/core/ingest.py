"""Chunked streaming ingestion: batch iteration and the phase-overlap model.

The paper's host streams the COO file and routes edges to the PIM cores as it
reads them (Sec. 3.1-3.3); nothing in DOULION-style uniform sampling, the
Misra-Gries summary, or TRIEST-style reservoir insertion needs the whole
edge list in memory — all three are one-pass streaming schemes.  The batched
ingest pipeline therefore processes the stream in fixed-size chunks of
``batch_edges`` edges, bounding the host's routed-buffer memory at
``O(batch_edges * C)`` instead of ``O(|E| * C)``.

Chunking also exposes pipeline parallelism the monolithic pass cannot: while
the DPUs insert batch ``k`` (scatter + reservoir merge), the host routes
batch ``k + 1``.  :class:`DoubleBufferSchedule` models that overlap on the
simulated clock.  With host-route seconds ``h_k`` and device (transfer +
insert) seconds ``d_k`` per batch, the classic two-buffer recurrence is::

    start_h(k) = max(H(k-1), D(k-2))      # buffer k-2 must be drained
    H(k)       = start_h(k) + h_k         # host finishes routing batch k
    D(k)       = max(H(k), D(k-1)) + d_k  # device finishes inserting batch k

so the elapsed time is ``D(K-1)`` — per steady-state step, ``max(h, d)``
rather than ``h + d``.  The schedule hands back per-batch *deltas*
``D(k) - D(k-1)`` (always non-negative), which the pipeline advances on the
``sample_creation`` phase inside one telemetry span per batch.

The model is engine-invariant: ``h_k`` and ``d_k`` are computed from the
same deterministic quantities under the serial, thread, and process
executors, so batched runs keep the bit-identical-counts-and-clocks
contract of :mod:`repro.pimsim.executor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..common.errors import ConfigurationError

__all__ = ["DoubleBufferSchedule", "iter_edge_batches", "num_batches"]


def num_batches(num_edges: int, batch_edges: int) -> int:
    """How many chunks a stream of ``num_edges`` splits into."""
    if batch_edges < 1:
        raise ConfigurationError(f"batch_edges must be >= 1, got {batch_edges}")
    return -(-int(num_edges) // int(batch_edges))


def iter_edge_batches(
    src: np.ndarray, dst: np.ndarray, batch_edges: int
) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
    """Yield ``(batch_index, src_chunk, dst_chunk)`` views over an edge stream.

    Views, not copies: the chunks alias the input arrays, so iterating adds
    no memory beyond the caller's stream.  An empty stream yields nothing.
    """
    if batch_edges < 1:
        raise ConfigurationError(f"batch_edges must be >= 1, got {batch_edges}")
    m = int(src.size)
    for k, start in enumerate(range(0, m, int(batch_edges))):
        stop = min(start + int(batch_edges), m)
        yield k, src[start:stop], dst[start:stop]


@dataclass
class DoubleBufferSchedule:
    """Simulated-time ledger of the two-stage (host route / device insert)
    pipeline with double buffering.

    Call :meth:`step` once per batch in stream order with that batch's host
    and device seconds; it returns the batch's contribution to the critical
    path (the growth of the device-finish front).  The sum of the deltas is
    :attr:`elapsed`; :attr:`serial_seconds` accumulates the unoverlapped
    ``sum(h) + sum(d)`` so callers can report how much the overlap saved.
    """

    _host_finish: float = field(default=0.0, init=False)
    _device_finish: float = field(default=0.0, init=False)
    _device_finish_prev: float = field(default=0.0, init=False)
    batches: int = field(default=0, init=False)
    serial_seconds: float = field(default=0.0, init=False)

    def step(self, host_seconds: float, device_seconds: float) -> float:
        """Advance by one batch; returns ``D(k) - D(k-1)`` (>= 0)."""
        if host_seconds < 0 or device_seconds < 0:
            raise ConfigurationError("batch phase seconds must be non-negative")
        start_h = max(self._host_finish, self._device_finish_prev)
        host_done = start_h + host_seconds
        device_done = max(host_done, self._device_finish) + device_seconds
        delta = device_done - self._device_finish
        self._device_finish_prev = self._device_finish
        self._device_finish = device_done
        self._host_finish = host_done
        self.batches += 1
        self.serial_seconds += host_seconds + device_seconds
        return delta

    @property
    def elapsed(self) -> float:
        """Pipelined end-to-end seconds so far (``D`` of the last batch)."""
        return self._device_finish

    @property
    def saved_seconds(self) -> float:
        """Seconds the overlap hid relative to fully serial execution."""
        return max(0.0, self.serial_seconds - self._device_finish)
