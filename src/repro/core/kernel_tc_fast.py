"""Vectorized DPU triangle-counting kernel with instruction/DMA accounting.

This is the production counterpart of :mod:`~repro.core.kernel_tc`.  It
executes the same algorithm — orient, sort, region-index, then per-edge
binary search + merge intersection (paper Sec. 3.4) — but computes the count
with sparse-matrix algebra (``(A @ A) .* A`` over the forward adjacency,
chunked to bound memory) and derives the *cost* a real DPU kernel would incur
analytically from exact per-edge quantities:

* binary search: ``ceil(log2(R + 1))`` steps per edge into the region table;
* merge: the suffix of ``u``'s region after the current edge plus the full
  region of ``v`` — the upper bound on merge advances, and the quantity whose
  blow-up on high-degree nodes produces the paper's Fig. 3 effect;
* MRAM traffic: streaming the edge buffer per tasklet block plus one buffered
  DMA read of ``v``'s region per processed edge.

Edges are dealt to tasklets in WRAM-buffer-sized blocks, round-robin, exactly
like the "retrieve a buffer of edges until none remain" loop; the resulting
per-tasklet cost vectors feed the DPU's water-filling pipeline model.

The test suite pins this kernel's count to the reference kernel's and to the
oracle, and checks the charged merge cost dominates the reference's measured
merge steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from typing import Callable

from ..common.errors import KernelLaunchError
from ..pimsim.dpu import Dpu
from ..pimsim.wram import WramPlan
from .orient import orient_and_sort
from .region_index import RegionIndex, build_region_index
from .remap import RemapTable, apply_remap

__all__ = ["CounterFn", "KernelCosts", "FastCountResult", "fast_count", "TriangleCountKernel"]

#: Count hook: ``(u, v, num_nodes, index) -> triangles`` over the oriented,
#: sorted sample.  Must match ``_count_forward_sparse`` exactly, duplicates
#: and all — charges are shared, only the count arithmetic is pluggable.
CounterFn = Callable[[np.ndarray, np.ndarray, int, RegionIndex], int]


@dataclass(frozen=True)
class KernelCosts:
    """Instructions the real C kernel spends per unit of algorithmic work.

    Values are rough DPU ISA estimates (32-bit RISC, no SIMD): a merge step is
    a compare + branch + pointer bump + bounds check; a binary-search step adds
    an address computation and a WRAM load; etc.  Experiments only rely on
    their ratios staying within a plausible band.
    """

    orient_instr: float = 4.0
    sort_instr_per_step: float = 6.0
    region_instr_per_edge: float = 3.0
    remap_instr_per_edge: float = 12.0
    edge_loop_instr: float = 8.0
    binsearch_instr_per_step: float = 8.0
    merge_instr_per_step: float = 5.0
    triangle_instr: float = 2.0
    insert_instr_per_edge: float = 6.0
    #: Bytes per edge in MRAM: two 32-bit node IDs, as in the real kernel.
    edge_bytes: int = 8

    #: Per-tasklet WRAM buffers (bytes): staged edges, v-region, u-suffix.
    edge_buffer_bytes: int = 1024
    region_buffer_bytes: int = 1024
    stack_bytes: int = 1024

    @property
    def edge_buffer_edges(self) -> int:
        return max(1, self.edge_buffer_bytes // self.edge_bytes)


@dataclass(frozen=True)
class FastCountResult:
    """Count plus the cost vectors of one DPU sample."""

    triangles: int
    edges: int
    regions: int
    merge_steps_charged: int
    binary_searches: int
    per_tasklet_instr: np.ndarray
    per_tasklet_dma_bytes: np.ndarray
    per_tasklet_dma_requests: np.ndarray
    sort_mram_bytes: int


def _count_forward_sparse(
    u: np.ndarray, v: np.ndarray, num_nodes: int, chunk_nnz: int = 1 << 24
) -> int:
    """Triangles of an oriented edge list via chunked ``(A @ A) .* A``.

    ``A`` is the (upper-triangular) forward adjacency.  ``(A @ A)[u, w]``
    counts 2-paths ``u -> v -> w``; masking by ``A`` keeps closed ones.  Row
    chunks bound the intermediate's nnz by ``chunk_nnz``.

    ``(u, v)`` must be lexicographically sorted (the kernel's post-sort
    state), which lets the CSR structure be assembled directly — ``indptr``
    from a bincount, ``indices`` = ``v`` — with no conversion sort.
    """
    m = int(u.size)
    if m == 0:
        return 0
    n = int(num_nodes)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(u, minlength=n), out=indptr[1:])
    adj = sp.csr_matrix(
        (np.ones(m, dtype=np.int64), v.astype(np.int64, copy=False), indptr),
        shape=(n, n),
    )
    # Wedge work per row: sum over the row's neighbors of their out-degree.
    out_deg = np.diff(indptr)
    cs = np.concatenate(([0], np.cumsum(out_deg[adj.indices])))
    row_wedges = cs[indptr[1:]] - cs[indptr[:-1]]
    total_wedges = int(row_wedges.sum())
    if total_wedges <= chunk_nnz:
        paths = adj @ adj
        return int(paths.multiply(adj).sum())
    total = 0
    row = 0
    cum = np.concatenate(([0], np.cumsum(row_wedges)))
    while row < n:
        stop = int(np.searchsorted(cum, cum[row] + chunk_nnz, side="right"))
        stop = min(max(stop - 1, row + 1), n)
        block = adj[row:stop, :]
        paths = block @ adj
        total += int(paths.multiply(block).sum())
        row = stop
    return total


def fast_count(
    src: np.ndarray,
    dst: np.ndarray,
    num_nodes: int,
    costs: KernelCosts | None = None,
    num_tasklets: int = 16,
    counter: "CounterFn | None" = None,
) -> FastCountResult:
    """Count triangles over one sample and compute its per-tasklet cost split.

    ``counter`` swaps the host-side arithmetic that produces the *count* while
    every *charge* below keeps flowing through the same analytic formulas —
    this is what lets alternative count implementations (e.g. the
    searchsorted kernel in :mod:`~repro.core.kernel_tc_vec`) stay bit-identical
    on simulated clocks, charges and ``kernel_stats`` by construction: the
    cost model never sees which arithmetic ran.  The callable receives the
    oriented, lexicographically sorted ``(u, v)`` arrays, ``num_nodes`` and the
    prebuilt :class:`~repro.core.region_index.RegionIndex`, and must return
    the exact triangle count (duplicate-edge multiplicities included).
    """
    costs = costs or KernelCosts()
    u, v, ostats = orient_and_sort(src, dst, wram_run_edges=costs.edge_buffer_edges)
    index = build_region_index(u)
    m = int(u.size)
    t = int(num_tasklets)
    if m == 0:
        zeros = np.zeros(t, dtype=np.float64)
        return FastCountResult(0, 0, 0, 0, 0, zeros, zeros.copy(), zeros.copy(), 0)

    if counter is None:
        triangles = _count_forward_sparse(u, v, num_nodes)
    else:
        triangles = counter(u, v, num_nodes, index)

    # --- per-edge cost quantities -------------------------------------------
    bs_steps = index.search_steps()
    d_v = index.degrees_of(v)  # forward degree of each edge's second node
    # Suffix of u's own region after the edge itself.
    rid = np.searchsorted(index.nodes, u)
    suffix_u = index.ends[rid] - np.arange(m, dtype=np.int64) - 1
    merge_steps = np.where(d_v > 0, suffix_u + d_v, 0)
    per_edge_instr = (
        costs.edge_loop_instr
        + costs.binsearch_instr_per_step * bs_steps
        + costs.merge_instr_per_step * merge_steps
    )

    # --- tasklet assignment: buffer blocks round-robin -----------------------
    buf = costs.edge_buffer_edges
    tasklet_of_edge = (np.arange(m, dtype=np.int64) // buf) % t
    instr = np.bincount(tasklet_of_edge, weights=per_edge_instr, minlength=t)
    # Balanced charges: orient + sort + region build + triangle bookkeeping.
    balanced = (
        costs.orient_instr * m
        + costs.sort_instr_per_step * ostats.sort_steps
        + costs.region_instr_per_edge * m
        + costs.triangle_instr * triangles
    )
    instr += balanced / t

    # --- DMA traffic ----------------------------------------------------------
    eb = costs.edge_bytes
    # Edge-buffer streaming: one request per block.
    edge_bytes_per_tasklet = np.bincount(
        tasklet_of_edge, weights=np.full(m, float(eb)), minlength=t
    )
    blocks_per_tasklet = np.bincount(
        np.arange((m + buf - 1) // buf, dtype=np.int64) % t, minlength=t
    ).astype(np.float64)
    # v-region reads, buffered through the region WRAM buffer.
    v_bytes = d_v.astype(np.float64) * eb
    v_requests = np.where(d_v > 0, np.ceil(v_bytes / costs.region_buffer_bytes), 0.0)
    dma_bytes = edge_bytes_per_tasklet + np.bincount(
        tasklet_of_edge, weights=v_bytes, minlength=t
    )
    dma_requests = blocks_per_tasklet + np.bincount(
        tasklet_of_edge, weights=v_requests, minlength=t
    )
    # Sort passes stream the whole sample through MRAM (read + write).
    sort_mram = 2 * m * eb * ostats.mram_passes
    dma_bytes += sort_mram / t
    dma_requests += np.ceil(sort_mram / t / costs.edge_buffer_bytes)

    return FastCountResult(
        triangles=int(triangles),
        edges=m,
        regions=index.num_regions,
        merge_steps_charged=int(merge_steps.sum()),
        binary_searches=m,
        per_tasklet_instr=instr,
        per_tasklet_dma_bytes=dma_bytes,
        per_tasklet_dma_requests=dma_requests,
        sort_mram_bytes=int(sort_mram),
    )


@dataclass
class TriangleCountKernel:
    """The SPMD kernel loaded on every PIM core for the counting phase.

    Expects MRAM symbols prepared by the host pipeline:

    * ``sample_src`` / ``sample_dst`` — the (possibly reservoir-sampled) edges;
    * optionally ``remap_table`` — the Misra-Gries top-``t`` node IDs
      (broadcast; most frequent first).

    Produces ``triangle_count`` (1-element int64) and ``kernel_stats``
    (edges, regions, merge steps charged).

    The kernel is a stateless picklable dataclass and ``run`` depends only on
    the target DPU's MRAM contents — the contract the process execution
    engine relies on to ship (kernel, DPU) pairs to workers and merge the
    mutated DPUs back bit-identically (see ``repro.pimsim.executor``).
    """

    num_nodes: int
    costs: KernelCosts = field(default_factory=KernelCosts)
    name: str = "triangle_count"

    def _counter(self) -> CounterFn | None:
        """Count hook handed to :func:`fast_count`; ``None`` = sparse matmul.

        Subclasses (``VecTriangleCountKernel``) override this to swap the
        count arithmetic without touching charges, traces or MRAM layout —
        they deliberately keep ``name`` as ``"triangle_count"`` so trace
        events and span attributes stay bit-identical too.
        """
        return None

    def wram_plan(self, dpu: Dpu) -> WramPlan:
        c = self.costs
        return WramPlan(
            per_tasklet_buffers={
                "edge_buffer": c.edge_buffer_bytes,
                "region_buffer": c.region_buffer_bytes,
                "stack": c.stack_bytes,
            },
            shared_bytes=2048,
        )

    def run(self, dpu: Dpu) -> None:
        if not dpu.mram.has("sample_src"):
            raise KernelLaunchError("sample_src missing: host must scatter the sample first")
        src = dpu.mram.load("sample_src", count_read=False)
        dst = dpu.mram.load("sample_dst", count_read=False)
        num_nodes = self.num_nodes
        if dpu.mram.has("remap_table"):
            table = RemapTable(
                nodes=dpu.mram.load("remap_table", count_read=False), num_nodes=num_nodes
            )
            src, dst = apply_remap(table, src, dst)
            num_nodes = table.remapped_num_nodes
            # One pass over the sample: read, look up both endpoints, write back.
            dpu.charge_balanced(self.costs.remap_instr_per_edge * src.size)
            per = np.zeros(dpu.config.num_tasklets)
            per += 2.0 * src.size * self.costs.edge_bytes / dpu.config.num_tasklets
            for tk in range(dpu.config.num_tasklets):
                dpu.charge_mram_read(tk, int(per[tk] / 2), requests=1)
                dpu.charge_mram_write(tk, int(per[tk] / 2), requests=1)

        result = fast_count(
            src,
            dst,
            num_nodes,
            costs=self.costs,
            num_tasklets=dpu.config.num_tasklets,
            counter=self._counter(),
        )
        dpu.charge_instructions_all(result.per_tasklet_instr)
        for tk in range(dpu.config.num_tasklets):
            dpu.charge_mram_read(
                tk,
                int(result.per_tasklet_dma_bytes[tk]),
                requests=int(result.per_tasklet_dma_requests[tk]),
            )
        dpu.mram.store(
            "triangle_count", np.array([result.triangles], dtype=np.int64), count_write=False
        )
        dpu.mram.store(
            "kernel_stats",
            np.array(
                [result.edges, result.regions, result.merge_steps_charged], dtype=np.int64
            ),
            count_write=False,
        )
