"""Dynamic-graph triangle counting on the PIM system (paper Sec. 4.6, Fig. 7).

COO's advantage on dynamic graphs is that an update is an append: the host
routes only the *new* edges to the PIM cores, each core merges them into its
already-sorted sample, and the counting kernel processes just the new edges'
wedges.  This module drives that loop:

* :class:`DynamicPimCounter` keeps the coloring (the hash is drawn once, so
  node colors are stable across updates) and each core's resident sample.
* ``apply_update(batch)`` routes, transfers and merges the batch, charges the
  incremental kernel work (sort of the batch + one merge pass over the sample
  + per-new-edge binary search and merge intersection), and returns the new
  global count with the monochromatic correction re-applied.

Functional counts are obtained by recounting each core's updated sample with
the exact sparse-algebra routine and differencing — bit-identical to what an
incremental kernel computes, with the *time* charged for the incremental
work only (the recount is a simulator implementation detail; see DESIGN.md).
Reservoir and uniform sampling are disabled on this path, matching the
paper's dynamic experiment which counts exactly.
"""

from __future__ import annotations

import numpy as np

from ..coloring.partition import ColoringPartitioner
from ..common.errors import ConfigurationError
from ..common.rng import RngFactory
from ..graph.coo import COOGraph
from ..pimsim.config import PimSystemConfig
from ..pimsim.kernel import SimClock
from ..pimsim.system import PimSystem
from ..streaming.estimators import combine_dpu_counts
from ..streaming.misra_gries import MisraGries
from .ingest import DoubleBufferSchedule, iter_edge_batches
from .kernel_tc_fast import KernelCosts, _count_forward_sparse
from .orient import orient_and_sort
from .region_index import build_region_index
from .remap import RemapTable, apply_remap

__all__ = ["DynamicUpdateResult", "DynamicPimCounter"]


class DynamicUpdateResult:
    """Outcome of one dynamic update round.

    ``new_edges`` counts edges *added* by an insert round and is 0 for
    deletions; ``removed_edges`` counts logical edges actually dropped by a
    delete round (tombstones for absent edges are not counted) and is 0 for
    inserts.
    """

    def __init__(
        self,
        round_index: int,
        new_edges: int,
        cumulative_edges: int,
        triangles_total: int,
        triangles_added: int,
        round_seconds: float,
        cumulative_seconds: float,
        op: str = "insert",
        removed_edges: int = 0,
    ) -> None:
        self.round_index = round_index
        self.new_edges = new_edges
        self.cumulative_edges = cumulative_edges
        self.triangles_total = triangles_total
        self.triangles_added = triangles_added
        self.round_seconds = round_seconds
        self.cumulative_seconds = cumulative_seconds
        self.op = op
        self.removed_edges = removed_edges

    def to_dict(self) -> dict:
        """JSON-ready view (service responses, NDJSON events, reports)."""
        return {
            "round_index": int(self.round_index),
            "op": self.op,
            "new_edges": int(self.new_edges),
            "removed_edges": int(self.removed_edges),
            "cumulative_edges": int(self.cumulative_edges),
            "triangles_total": int(self.triangles_total),
            "triangles_added": int(self.triangles_added),
            "round_seconds": float(self.round_seconds),
            "cumulative_seconds": float(self.cumulative_seconds),
        }

    def __repr__(self) -> str:
        edges = (
            f"edges={self.new_edges}"
            if self.op == "insert"
            else f"removed={self.removed_edges}"
        )
        return (
            f"DynamicUpdateResult(round={self.round_index}, op={self.op}, "
            f"{edges}, T={self.triangles_total}, "
            f"dt={self.round_seconds * 1e3:.3f}ms)"
        )


class DynamicPimCounter:
    """Incremental triangle counting over a stream of COO edge batches.

    Precondition on insertions: a batch must not contain edges already
    resident (COO appends would otherwise duplicate sample records and
    over-count, exactly as on the real system).  Deletions are idempotent —
    tombstones for absent edges are ignored.
    """

    def __init__(
        self,
        num_nodes: int,
        num_colors: int = 4,
        seed: int = 0,
        system_config: PimSystemConfig | None = None,
        kernel_costs: KernelCosts | None = None,
        misra_gries_k: int = 0,
        misra_gries_t: int = 0,
        batch_edges: int | None = None,
    ) -> None:
        if num_colors < 1:
            raise ConfigurationError("num_colors must be >= 1")
        if (misra_gries_k > 0) != (misra_gries_t > 0):
            raise ConfigurationError("misra_gries_k and misra_gries_t go together")
        if batch_edges is not None and batch_edges < 1:
            raise ConfigurationError("batch_edges must be >= 1 or None")
        #: Streaming-ingest chunk size for update batches; ``None`` routes and
        #: merges each update batch in one pass (original behavior).
        self.batch_edges = batch_edges
        self.num_nodes = int(num_nodes)
        self.num_colors = int(num_colors)
        self.costs = kernel_costs or KernelCosts()
        # Misra-Gries is a streaming summary, so it extends naturally to the
        # dynamic setting: each update batch feeds it, and the current top-t
        # is re-broadcast (the remap is a bijection, counts are unaffected).
        self._mg = MisraGries(misra_gries_k) if misra_gries_k > 0 else None
        self._mg_t = int(misra_gries_t)
        self.system = PimSystem(system_config or PimSystemConfig())
        rngs = RngFactory(seed)
        self.partitioner = ColoringPartitioner(num_colors, rngs.stream("coloring"))
        if self.partitioner.num_dpus > self.system.config.total_dpus:
            raise ConfigurationError("not enough PIM cores for this color count")
        self.clock = SimClock()
        self.dpus = self.system.allocate(self.partitioner.num_dpus, self.clock)
        # Resident per-core samples, kept sorted/oriented between updates.
        self._src = [np.empty(0, dtype=np.int64) for _ in range(self.partitioner.num_dpus)]
        self._dst = [np.empty(0, dtype=np.int64) for _ in range(self.partitioner.num_dpus)]
        self._raw_counts = np.zeros(self.partitioner.num_dpus, dtype=np.int64)
        self._estimate = 0
        self._round = 0
        self._cumulative_edges = 0
        #: Largest routed-bytes footprint of any single update/deletion round
        #: (the service layer budgets sessions against this accounting).
        self.peak_routed_bytes = 0
        self._closed = False

    # --------------------------------------------------------------------- state
    @property
    def triangles(self) -> int:
        """Current exact triangle count of the accumulated graph."""
        return self._estimate

    @property
    def cumulative_edges(self) -> int:
        """Logical edges currently resident (inserts minus real deletions)."""
        return self._cumulative_edges

    @property
    def resident_bytes(self) -> int:
        """Bytes of sample records currently resident across all PIM cores."""
        records = sum(int(src.size) for src in self._src)
        return records * self.costs.edge_bytes

    def routed_bytes_for(self, num_edges: int) -> int:
        """Routed-byte footprint of a ``num_edges`` batch: every edge is
        replicated once per third-color choice (``C`` copies, one per
        compatible triplet core)."""
        return int(num_edges) * self.partitioner.table.edge_multiplicity() * self.costs.edge_bytes

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the PIM cores and drop resident state (idempotent).

        A long-lived service session must hand its DPUs back when it ends;
        after :meth:`close`, further updates raise ``ConfigurationError``.
        """
        if self._closed:
            return
        self._closed = True
        self.dpus.free(phase="dynamic")
        self._src = [np.empty(0, dtype=np.int64) for _ in self._src]
        self._dst = [np.empty(0, dtype=np.int64) for _ in self._dst]

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError("DynamicPimCounter is closed")

    @property
    def cumulative_seconds(self) -> float:
        """Total update time, excluding the one-time setup (paper convention:
        setup is excluded from every post-Sec.-4.2 comparison)."""
        return self.clock.total() - self.clock.get("setup")

    @property
    def setup_seconds(self) -> float:
        return self.clock.get("setup")

    # -------------------------------------------------------------------- update
    def _merge_and_charge(
        self, d: int, new_src: np.ndarray, new_dst: np.ndarray, remap: RemapTable | None
    ) -> tuple[np.ndarray, np.ndarray, int, float]:
        """Merge one routed chunk into core ``d``'s resident sample.

        Charges the incremental kernel work (batch sort, one merge pass over
        the resident sample, per-new-edge search + intersection) and returns
        the oriented/sorted effective edge arrays, the effective node count,
        and the core's compute seconds for this chunk.  The functional recount
        is left to the caller — the batched path defers it to one pass after
        the last chunk.
        """
        dpu = self.dpus.dpus[d]
        dpu.reset_charges()
        old_m = self._src[d].size
        merged_src = np.concatenate([self._src[d], new_src])
        merged_dst = np.concatenate([self._dst[d], new_dst])
        self._src[d], self._dst[d] = merged_src, merged_dst
        b = int(new_src.size)
        if remap is not None:
            eff_src, eff_dst = apply_remap(remap, merged_src, merged_dst)
            eff_ns, eff_nd = apply_remap(remap, new_src, new_dst)
            eff_nodes = remap.remapped_num_nodes
        else:
            eff_src, eff_dst = merged_src, merged_dst
            eff_ns, eff_nd = new_src, new_dst
            eff_nodes = self.num_nodes
        u, v, _ = orient_and_sort(eff_src, eff_dst)
        if b:
            # Incremental kernel: sort the batch, one merge pass over the
            # resident sample, then per-new-edge search + intersection.
            sort_steps = b * max(1, int(np.ceil(np.log2(max(b, 2)))))
            merge_pass = old_m + b
            index = build_region_index(u)
            nu = np.minimum(eff_ns, eff_nd)
            nv = np.maximum(eff_ns, eff_nd)
            d_v = index.degrees_of(nv)
            _, ends_u = index.lookup_many(nu)
            # Forward neighbors of u strictly greater than v: edges are
            # (u, v)-sorted, so one key search finds the edge's own slot.
            keys = u * np.int64(eff_nodes + 1) + v
            pos = np.searchsorted(keys, nu * np.int64(eff_nodes + 1) + nv, side="right")
            suffix = np.maximum(ends_u - pos, 0)
            merge_steps = np.where(d_v > 0, suffix + d_v, 0).sum()
            remap_instr = (
                self.costs.remap_instr_per_edge * merge_pass if remap is not None else 0.0
            )
            instr = (
                remap_instr
                + self.costs.sort_instr_per_step * sort_steps
                + self.costs.insert_instr_per_edge * merge_pass
                + self.costs.edge_loop_instr * b
                + self.costs.binsearch_instr_per_step * index.search_steps() * b
                + self.costs.merge_instr_per_step * float(merge_steps)
            )
            dpu.charge_balanced(instr)
            # Merge (and remap) passes stream the sample through MRAM
            # (read + write) plus the counting phase's region reads.
            passes = 2 + (2 if remap is not None else 0)
            nbytes = (passes * merge_pass + int(merge_steps)) * self.costs.edge_bytes
            per = nbytes // dpu.config.num_tasklets
            for tk in range(dpu.config.num_tasklets):
                dpu.charge_mram_read(tk, int(per), requests=max(1, b // 8))
        return u, v, eff_nodes, dpu.compute_seconds()

    @staticmethod
    def _endpoint_stream(batch: COOGraph) -> np.ndarray:
        """Node stream of one batch: each edge contributes both endpoints."""
        stream = np.empty(2 * batch.num_edges, dtype=np.int64)
        stream[0::2] = batch.src
        stream[1::2] = batch.dst
        return stream

    def _refresh_remap(self) -> RemapTable | None:
        """Rebuild the remap table from the current summary and broadcast it."""
        if self._mg is None:
            return None
        top = self._mg.top(self._mg_t)
        if not top:
            return None
        remap = RemapTable(nodes=np.array(top, dtype=np.int64), num_nodes=self.num_nodes)
        # Broadcast the refreshed table to every core.
        self.clock.advance(
            "dynamic", self.dpus.transfer.broadcast(remap.nbytes(), len(self.dpus)).seconds
        )
        return remap

    def _update_mg(self, batch: COOGraph) -> RemapTable | None:
        """Feed one update batch to the Misra-Gries summary; refresh the remap."""
        if self._mg is None:
            return None
        self._mg.update_array(self._endpoint_stream(batch))
        return self._refresh_remap()

    def _decay_mg(self, batch: COOGraph) -> RemapTable | None:
        """Retract one deletion batch from the Misra-Gries summary.

        Without this, a hub whose edges were all deleted would stay pinned in
        the summary's top-``t`` forever and keep winning remap slots over
        nodes that are *currently* hot.  Decaying the deleted endpoints (and
        re-broadcasting the refreshed table, charged like any remap refresh)
        keeps the summary tracking the live graph.  Counts are unaffected
        either way — the remap is a bijection — which the differential grid
        and the deletion oracle tests pin.
        """
        if self._mg is None:
            return None
        self._mg.decay_array(self._endpoint_stream(batch))
        return self._refresh_remap()

    def _finish_round(
        self, batch: COOGraph, before_total: float, op: str = "insert"
    ) -> DynamicUpdateResult:
        """Gather counts, apply corrections, and close one update round."""
        cost = self.system.config.cost
        # Gather the per-core counts (8 bytes each).
        sizes = np.full(len(self.dpus), 8, dtype=np.int64)
        self.clock.advance("dynamic", self.dpus.transfer.gather(sizes).seconds)
        ones = np.ones(self.partitioner.num_dpus, dtype=np.float64)
        new_estimate = int(
            round(
                combine_dpu_counts(
                    self._raw_counts,
                    ones,
                    self.partitioner.mono_mask(),
                    num_colors=self.num_colors,
                )
            )
        )
        added = new_estimate - self._estimate
        self._estimate = new_estimate
        self._round += 1
        self._cumulative_edges += batch.num_edges
        round_seconds = self.cumulative_seconds - before_total
        return DynamicUpdateResult(
            round_index=self._round,
            new_edges=batch.num_edges,
            cumulative_edges=self._cumulative_edges,
            triangles_total=new_estimate,
            triangles_added=added,
            round_seconds=round_seconds,
            cumulative_seconds=self.cumulative_seconds,
            op=op,
        )

    def _apply_update_batched(self, batch: COOGraph) -> DynamicUpdateResult:
        """Chunked variant of :meth:`apply_update` with overlap accounting.

        Routes and merges the update batch in ``batch_edges``-sized chunks —
        per-core merged samples end up byte-identical to the monolithic pass
        (routing is stable within every chunk and chunks arrive in stream
        order), so the final count matches exactly — while the simulated
        clock models host routing of chunk ``k+1`` overlapped with the cores
        merging chunk ``k``.  The functional recount runs once over the fully
        merged samples instead of once per chunk.
        """
        cost = self.system.config.cost
        before_total = self.cumulative_seconds
        remap = self._update_mg(batch)
        schedule = DoubleBufferSchedule()
        final: list[tuple[np.ndarray, np.ndarray, int] | None] = [
            None
        ] * self.partitioner.num_dpus
        for _k, s_chunk, d_chunk in iter_edge_batches(
            batch.src, batch.dst, self.batch_edges
        ):
            h_k = (
                cost.host_edge_cycles
                * int(s_chunk.size)
                / (cost.host_clock_hz * cost.host_threads)
            )
            part = self.partitioner.assign_arrays(s_chunk, d_chunk)
            self.peak_routed_bytes = max(
                self.peak_routed_bytes, int(part.counts.sum()) * self.costs.edge_bytes
            )
            xfer = self.dpus.transfer.scatter(
                part.counts * self.costs.edge_bytes
            ).seconds
            times = []
            for d, (new_src, new_dst) in enumerate(part.per_dpu):
                u, v, eff_nodes, seconds = self._merge_and_charge(
                    d, new_src, new_dst, remap
                )
                final[d] = (u, v, eff_nodes)
                times.append(seconds)
            d_k = xfer + cost.launch_latency + (max(times) if times else 0.0)
            self.clock.advance("dynamic", schedule.step(h_k, d_k))
        for d, state in enumerate(final):
            if state is not None:
                u, v, eff_nodes = state
                self._raw_counts[d] = _count_forward_sparse(u, v, eff_nodes)
        return self._finish_round(batch, before_total, op="insert")

    def apply_update(self, batch: COOGraph) -> DynamicUpdateResult:
        """Merge one batch of new edges and recount incrementally."""
        self._check_open()
        if self.batch_edges is not None:
            return self._apply_update_batched(batch)
        cost = self.system.config.cost
        before_total = self.cumulative_seconds
        # Host: stream, hash-color and route only the new edges.
        self.clock.advance(
            "dynamic",
            cost.host_edge_cycles
            * batch.num_edges
            / (cost.host_clock_hz * cost.host_threads),
        )
        partition = self.partitioner.assign(batch)
        routed_bytes = partition.counts * self.costs.edge_bytes
        self.peak_routed_bytes = max(self.peak_routed_bytes, int(routed_bytes.sum()))
        self.clock.advance("dynamic", self.dpus.transfer.scatter(routed_bytes).seconds)

        remap = self._update_mg(batch)
        times = []
        for d, (new_src, new_dst) in enumerate(partition.per_dpu):
            u, v, eff_nodes, seconds = self._merge_and_charge(d, new_src, new_dst, remap)
            self._raw_counts[d] = _count_forward_sparse(u, v, eff_nodes)
            times.append(seconds)
        self.clock.advance(
            "dynamic", cost.launch_latency + (max(times) if times else 0.0)
        )
        return self._finish_round(batch, before_total, op="insert")

    # ------------------------------------------------------------------ delete
    def _canonical_dpus(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Each edge's designated home core: the third-color-0 triplet.

        Every edge is replicated once per third-color choice — the partition
        routes ``edge_multiplicity() == C`` copies to ``C`` distinct triplet
        cores — and the triplet LUT is symmetric in its first two arguments,
        so ``lut[cu, cv, 0]`` names the *same* core for every replica of an
        undirected edge.  Counting removals only on that core counts each
        logical edge exactly once, with no division by a replication factor.
        """
        cu = self.partitioner.node_colors(src)
        cv = self.partitioner.node_colors(dst)
        return self.partitioner.table.lut[cu, cv, np.int64(0)]

    def apply_deletion(self, batch: COOGraph) -> DynamicUpdateResult:
        """Remove a batch of edges (fully-dynamic streams, TRIEST-FD style).

        COO makes deletions as cheap as insertions for the PIM layout: the
        hash coloring is stable, so an edge's ``C`` copies live on exactly the
        cores its colors name — the host routes the *tombstones* the same way
        it routes insertions, and each core drops the matching records with
        one binary search plus a compaction pass.  Edges not present are
        ignored (idempotent deletes).
        """
        self._check_open()
        cost = self.system.config.cost
        before_total = self.cumulative_seconds
        self.clock.advance(
            "dynamic",
            cost.host_edge_cycles
            * batch.num_edges
            / (cost.host_clock_hz * cost.host_threads),
        )
        partition = self.partitioner.assign(batch)
        routed_bytes = partition.counts * self.costs.edge_bytes
        self.peak_routed_bytes = max(self.peak_routed_bytes, int(routed_bytes.sum()))
        self.clock.advance("dynamic", self.dpus.transfer.scatter(routed_bytes).seconds)

        # Deletions change which nodes are hot: retract the batch from the
        # Misra-Gries summary so stale hubs don't stay pinned in the remap.
        self._decay_mg(batch)

        removed_edges = 0  # logical edges, counted on each edge's home core
        times = []
        for d, (del_src, del_dst) in enumerate(partition.per_dpu):
            dpu = self.dpus.dpus[d]
            dpu.reset_charges()
            old_src, old_dst = self._src[d], self._dst[d]
            m = int(old_src.size)
            b = int(del_src.size)
            if b and m:
                n = np.int64(self.num_nodes + 1)
                old_keys = np.minimum(old_src, old_dst) * n + np.maximum(old_src, old_dst)
                del_keys = np.minimum(del_src, del_dst) * n + np.maximum(del_src, del_dst)
                keep = ~np.isin(old_keys, del_keys)
                dropped = ~keep
                if dropped.any():
                    # A record's replicas live on C cores; attribute the
                    # logical removal to the replica on its home core rather
                    # than dividing a physical-replica tally by an assumed
                    # factor (which drifts whenever a tombstone's replicas
                    # are not all resident).
                    home = self._canonical_dpus(old_src[dropped], old_dst[dropped])
                    removed_edges += int((home == d).sum())
                self._src[d] = old_src[keep]
                self._dst[d] = old_dst[keep]
                # Tombstone search + one compaction pass over the sample.
                log_m = max(1, int(np.ceil(np.log2(m + 1))))
                instr = (
                    self.costs.binsearch_instr_per_step * log_m * b
                    + self.costs.insert_instr_per_edge * m
                )
                dpu.charge_balanced(instr)
                nbytes = 2 * m * self.costs.edge_bytes
                per = nbytes // dpu.config.num_tasklets
                for tk in range(dpu.config.num_tasklets):
                    dpu.charge_mram_read(tk, int(per), requests=max(1, b // 8))
            u, v, _ = orient_and_sort(self._src[d], self._dst[d])
            self._raw_counts[d] = _count_forward_sparse(u, v, self.num_nodes)
            times.append(dpu.compute_seconds())
        self.clock.advance(
            "dynamic", cost.launch_latency + (max(times) if times else 0.0)
        )
        sizes = np.full(len(self.dpus), 8, dtype=np.int64)
        self.clock.advance("dynamic", self.dpus.transfer.gather(sizes).seconds)

        ones = np.ones(self.partitioner.num_dpus, dtype=np.float64)
        new_estimate = int(
            round(
                combine_dpu_counts(
                    self._raw_counts,
                    ones,
                    self.partitioner.mono_mask(),
                    num_colors=self.num_colors,
                )
            )
        )
        added = new_estimate - self._estimate
        self._estimate = new_estimate
        self._round += 1
        self._cumulative_edges -= removed_edges
        round_seconds = self.cumulative_seconds - before_total
        return DynamicUpdateResult(
            round_index=self._round,
            new_edges=0,
            cumulative_edges=self._cumulative_edges,
            triangles_total=new_estimate,
            triangles_added=added,
            round_seconds=round_seconds,
            cumulative_seconds=self.cumulative_seconds,
            op="delete",
            removed_edges=removed_edges,
        )
