"""Edge orientation and lexicographic sorting — the DPU kernel's first steps.

Paper Sec. 3.4: before counting, each PIM core orders its sample so that every
edge satisfies ``u < v`` and the edge list is sorted under

    ``(u, v) < (w, z)  <=>  u < w  or  (u == w and v < z)``

After this step the sample is exactly the "forward adjacency in COO clothing"
of Fig. 2: contiguous regions of equal first node, second nodes ascending.

The functions here perform the transformation with NumPy and return the
operation counts a C kernel doing the same work would incur, which the
:class:`~repro.core.kernel_tc_fast.TriangleCountKernel` charges to the DPU.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["OrientStats", "orient_and_sort"]


@dataclass(frozen=True)
class OrientStats:
    """Work performed by the orient + sort preparation pass."""

    edges: int
    #: Comparison-ish steps of the in-MRAM merge sort: ``m * ceil(log2 m)``.
    sort_steps: int
    #: Full read+write passes over the sample the merge sort performs in MRAM
    #: (WRAM-sized runs are pre-sorted in scratchpad, then merged).
    mram_passes: int


def orient_and_sort(
    src: np.ndarray,
    dst: np.ndarray,
    *,
    wram_run_edges: int = 2048,
    drop_self_loops: bool = True,
) -> tuple[np.ndarray, np.ndarray, OrientStats]:
    """Orient every edge ``u < v`` and sort lexicographically.

    Parameters
    ----------
    src, dst:
        The DPU's edge sample (any orientation, possibly with self-loops if
        the input graph was not preprocessed).
    wram_run_edges:
        Edges that fit in one tasklet's WRAM sort buffer; determines how many
        MRAM merge passes the modeled sort needs.

    Returns
    -------
    (u, v, stats):
        Sorted oriented arrays plus the work accounting.
    """
    u = np.minimum(src, dst)
    v = np.maximum(src, dst)
    if drop_self_loops:
        keep = u != v
        u, v = u[keep], v[keep]
    order = np.lexsort((v, u))
    u = u[order]
    v = v[order]
    m = int(u.size)
    if m > 1:
        sort_steps = int(m * np.ceil(np.log2(m)))
        runs = max(1, int(np.ceil(m / max(1, wram_run_edges))))
        mram_passes = 1 + int(np.ceil(np.log2(runs))) if runs > 1 else 1
    else:
        sort_steps = 0
        mram_passes = 1 if m else 0
    return u, v, OrientStats(edges=m, sort_steps=sort_steps, mram_passes=mram_passes)
