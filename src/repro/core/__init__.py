"""The paper's contribution: PIM triangle counting (kernels, host pipeline, API)."""

from .api import PimTriangleCounter
from .dynamic import DynamicPimCounter, DynamicUpdateResult
from .host import PimTcOptions, PimTcPipeline
from .kernel_tc import ReferenceCounts, count_triangles_reference
from .local import LocalCountKernel, local_counts_from_arrays
from .kernel_tc_fast import FastCountResult, KernelCosts, TriangleCountKernel, fast_count
from .kernel_tc_vec import VecTriangleCountKernel, vec_count
from .orient import OrientStats, orient_and_sort
from .region_index import RegionIndex, build_region_index
from .remap import RemapTable, apply_remap
from .result import KernelAggregate, LocalTcResult, TcResult

__all__ = [
    "PimTriangleCounter",
    "PimTcOptions",
    "PimTcPipeline",
    "TcResult",
    "LocalTcResult",
    "LocalCountKernel",
    "local_counts_from_arrays",
    "KernelAggregate",
    "DynamicPimCounter",
    "DynamicUpdateResult",
    "KernelCosts",
    "TriangleCountKernel",
    "FastCountResult",
    "fast_count",
    "VecTriangleCountKernel",
    "vec_count",
    "ReferenceCounts",
    "count_triangles_reference",
    "OrientStats",
    "orient_and_sort",
    "RegionIndex",
    "build_region_index",
    "RemapTable",
    "apply_remap",
]
