"""Public API: :class:`PimTriangleCounter`.

Typical use::

    from repro import PimTriangleCounter
    from repro.graph import get_dataset

    graph = get_dataset("orkut", tier="small")
    counter = PimTriangleCounter(num_colors=6, seed=1)
    result = counter.count(graph)
    print(result.count, result.summary())

Approximate modes mirror the paper's Secs. 3.2/3.3::

    counter = PimTriangleCounter(num_colors=6, uniform_p=0.1)          # DOULION
    counter = PimTriangleCounter(num_colors=6, reservoir_capacity=4096)  # TRIEST

and the Misra-Gries optimization for hub-heavy graphs (Sec. 3.5)::

    counter = PimTriangleCounter(num_colors=6, misra_gries_k=512, misra_gries_t=8)
"""

from __future__ import annotations

import os
from dataclasses import replace

from ..coloring.triplets import colors_for_dpus, num_triplets
from ..graph.coo import COOGraph
from ..pimsim.config import PimSystemConfig
from ..pimsim.system import PimSystem
from ..telemetry.spans import Telemetry
from .host import PimTcOptions, PimTcPipeline
from .result import TcResult

__all__ = ["PimTriangleCounter"]


class PimTriangleCounter:
    """Triangle counting on the (simulated) UPMEM PIM system.

    Parameters mirror :class:`~repro.core.host.PimTcOptions`; a custom
    :class:`~repro.pimsim.config.PimSystemConfig` may be supplied to model a
    different machine shape or cost calibration.
    """

    def __init__(
        self,
        num_colors: int = 4,
        *,
        uniform_p: float = 1.0,
        reservoir_capacity: int | None = None,
        misra_gries_k: int = 0,
        misra_gries_t: int = 0,
        seed: int = 0,
        batch_edges: int | None = None,
        partitioner: str | None = None,
        rebalance_cv: float | None = None,
        kernel_variant: str | None = None,
        executor: str | None = None,
        jobs: int | None = None,
        system_config: PimSystemConfig | None = None,
        options: PimTcOptions | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        # Streaming-ingest chunk size: like the executor knobs below, the
        # REPRO_BATCH_EDGES env var lets the experiment harness flip every
        # counter it builds without threading the flag through call sites.
        if batch_edges is None:
            env_batch = os.environ.get("REPRO_BATCH_EDGES")
            batch_edges = int(env_batch) if env_batch else None
        # Partitioning strategy ("hash" / "degree" / "auto") and the
        # between-batch rebalance trigger follow the same env-var pattern.
        if partitioner is None:
            partitioner = os.environ.get("REPRO_PARTITIONER") or "hash"
        if rebalance_cv is None:
            env_cv = os.environ.get("REPRO_REBALANCE_CV")
            rebalance_cv = float(env_cv) if env_cv else None
        # Counting kernel ("merge" / "fastvec" / "probe"): "fastvec" is the
        # wall-clock-only variant — simulated metrics are pinned bit-identical
        # to "merge" by the differential grid.
        if kernel_variant is None:
            kernel_variant = os.environ.get("REPRO_KERNEL") or "merge"
        if options is None:
            options = PimTcOptions(
                num_colors=num_colors,
                uniform_p=uniform_p,
                reservoir_capacity=reservoir_capacity,
                misra_gries_k=misra_gries_k,
                misra_gries_t=misra_gries_t,
                seed=seed,
                batch_edges=batch_edges,
                partitioner=partitioner,
                rebalance_cv=rebalance_cv,
                kernel_variant=kernel_variant,
            )
        self.options = options
        config = system_config or PimSystemConfig()
        # Host execution engine (``serial``/``thread``/``process``): purely a
        # wall-clock knob — simulated times and counts are engine-invariant.
        # REPRO_EXECUTOR / REPRO_JOBS let the experiment harness flip every
        # counter it builds (e.g. the fig4 sweep at bench tier) without
        # threading the knob through each construction site.
        if executor is None:
            executor = os.environ.get("REPRO_EXECUTOR") or None
        if jobs is None:
            env_jobs = os.environ.get("REPRO_JOBS")
            jobs = int(env_jobs) if env_jobs else None
        if executor is not None or jobs is not None:
            config = config.with_executor(
                executor if executor is not None else config.executor,
                jobs if jobs is not None else config.jobs,
            )
        self.system = PimSystem(config)
        self._pipeline = PimTcPipeline(
            options=self.options, system=self.system, telemetry=telemetry
        )

    @property
    def telemetry(self) -> Telemetry:
        """The pipeline's telemetry recorder (span tree + metrics registry)."""
        return self._pipeline.telemetry

    # ------------------------------------------------------------------ counting
    def count(self, graph: COOGraph) -> TcResult:
        """Run the full pipeline; the graph should be canonicalized first."""
        return self._pipeline.run(graph)

    def count_local(self, graph: COOGraph):
        """Per-node (local) triangle counts — TRIEST-style extension.

        Returns a :class:`~repro.core.result.LocalTcResult` whose
        ``local_estimates`` vector satisfies ``sum == 3 * estimate`` and whose
        corrections (reservoir / monochromatic / uniform) mirror the global
        path element-wise.
        """
        return self._pipeline.run_local(graph)

    def with_options(self, **overrides) -> "PimTriangleCounter":
        """A copy of this counter with some options replaced (for sweeps)."""
        return PimTriangleCounter(
            options=replace(self.options, **overrides),
            system_config=self.system.config,
        )

    # ---------------------------------------------------------------- inspection
    @property
    def num_dpus(self) -> int:
        """PIM cores this configuration will allocate: ``binom(C+2, 3)``."""
        return num_triplets(self.options.num_colors)

    def max_colors(self) -> int:
        """Largest color count the configured system supports (paper: 23)."""
        return colors_for_dpus(self.system.config.total_dpus)

    def __repr__(self) -> str:
        o = self.options
        return (
            f"PimTriangleCounter(C={o.num_colors}, p={o.uniform_p}, "
            f"M={o.reservoir_capacity}, MG=({o.misra_gries_k},{o.misra_gries_t}))"
        )
