"""Host-side orchestration of the PIM triangle-counting run (paper Sec. 3).

The pipeline reproduces the paper's host program step by step:

1. **Setup** — allocate ``binom(C+2,3)`` PIM cores, load the kernel, charge
   the host-side buffer allocation and graph-load cost.
2. **Sample creation** — stream the COO edges applying uniform sampling
   (Sec. 3.2) and, if enabled, the per-thread Misra-Gries summaries
   (Sec. 3.5); color endpoints with the universal hash and route each edge to
   its ``C`` compatible cores (Sec. 3.1); transfer the batches (rank-padded
   parallel scatter); insert into each core's MRAM region with reservoir
   replacement when the region is full (Sec. 3.3).
3. **Triangle count** — launch the counting kernel, gather per-core counts,
   apply the reservoir / monochromatic / uniform corrections (Sec. 3.1-3.3),
   free the cores.

Simulated time accumulates into the paper's three phases; host work is
modeled with the ``CostModel`` host constants (32 threads by default, a fixed
cycle budget per streamed edge, and a memcpy bandwidth for batch assembly).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..coloring.partition import (
    PARTITIONER_STRATEGIES,
    ColoringPartitioner,
    DegreePartitioner,
    EdgePartition,
    make_partitioner,
)
from ..common.errors import ConfigurationError
from ..common.rng import RngFactory
from ..graph.coo import COOGraph
from ..pimsim.config import PimSystemConfig
from ..pimsim.dpu import Dpu
from ..pimsim.kernel import SimClock
from ..pimsim.system import DpuSet, PimSystem
from ..streaming.estimators import combine_dpu_counts
from ..streaming.misra_gries import MisraGries
from ..streaming.reservoir import EdgeReservoir, reservoir_scale
from ..streaming.uniform import uniform_keep_mask, uniform_sample
from ..telemetry.metrics import DEFAULT_FRACTION_BUCKETS
from ..telemetry.spans import SpanRecord, Telemetry
from .ingest import DoubleBufferSchedule, iter_edge_batches, num_batches
from .kernel_tc_fast import KernelCosts, TriangleCountKernel
from .remap import RemapTable
from .result import KernelAggregate, TcResult

__all__ = ["PimTcOptions", "PimTcPipeline"]


def _insert_sample(dpu: Dpu, payload: tuple) -> tuple[int, float]:
    """Per-DPU sample-insertion task (runs on the configured executor).

    Inserts one core's routed edge batch into its MRAM, applying reservoir
    replacement when the batch exceeds capacity, and charges the DPU for the
    insert work.  Module-level and fed a pre-derived per-DPU RNG stream so the
    process engine can pickle it; the stream derivation is stateless, so
    results are bit-identical to the serial path.
    """
    s_arr, d_arr, capacity, rng, costs, remap_nodes = payload
    dpu.reset_charges()
    n_in = int(s_arr.size)
    if n_in > capacity:
        reservoir = EdgeReservoir(capacity, rng)
        reservoir.offer_batch(s_arr, d_arr)
        keep_src, keep_dst = reservoir.edges()
        stored = int(keep_src.size)
        # Replacement bookkeeping costs a few extra instructions/edge.
        insert_instr = n_in * (costs.insert_instr_per_edge + 4.0)
    else:
        keep_src, keep_dst = s_arr, d_arr
        stored = n_in
        insert_instr = n_in * costs.insert_instr_per_edge
    dpu.charge_balanced(insert_instr)
    per_tasklet_bytes = stored * costs.edge_bytes / dpu.config.num_tasklets
    for tk in range(dpu.config.num_tasklets):
        dpu.charge_mram_write(tk, int(per_tasklet_bytes), requests=1)
    dpu.mram.store("sample_src", keep_src.astype(np.int32), count_write=False)
    dpu.mram.store("sample_dst", keep_dst.astype(np.int32), count_write=False)
    if remap_nodes is not None:
        dpu.mram.store("remap_table", remap_nodes, count_write=False)
    return n_in, dpu.compute_seconds()


def _ingest_chunk(dpu: Dpu, payload: tuple) -> tuple[EdgeReservoir, int, float]:
    """Per-DPU batched-ingest task: offer one routed chunk to the core's reservoir.

    The streaming analogue of :func:`_insert_sample`: the reservoir persists
    across chunks (its ``seen`` counter keeps the global arrival index, so
    chunked offers reproduce the sequential acceptance distribution) and
    travels through the payload/result so the process engine's pickled copy —
    including its advanced RNG state — makes it back to the parent.  Final
    reservoir contents are materialized into MRAM by the host after the last
    chunk; this task only mutates the reservoir and charges the insert work.
    """
    reservoir, s_arr, d_arr, costs = payload
    dpu.reset_charges()
    n_in = int(s_arr.size)
    if n_in == 0:
        return reservoir, 0, 0.0
    overflow = reservoir.seen + n_in > reservoir.capacity
    stored = reservoir.offer_batch(s_arr, d_arr)
    # Replacement bookkeeping costs a few extra instructions/edge (same
    # constant as the monolithic path).
    extra = 4.0 if overflow else 0.0
    dpu.charge_balanced(n_in * (costs.insert_instr_per_edge + extra))
    per_tasklet_bytes = stored * costs.edge_bytes / dpu.config.num_tasklets
    for tk in range(dpu.config.num_tasklets):
        dpu.charge_mram_write(tk, int(per_tasklet_bytes), requests=1)
    return reservoir, n_in, dpu.compute_seconds()


@dataclass
class _PreparedRun:
    """State handed from the shared sample-creation phase to a count phase."""

    clock: SimClock
    dpus: DpuSet
    partitioner: ColoringPartitioner
    routed_counts: np.ndarray
    uniform_p: float
    seen: np.ndarray
    capacity: int
    wall_start: float
    edges_kept: int
    #: Number of ingest chunks (1 for the monolithic path).
    ingest_batches: int = 1
    #: Peak bytes of routed edge buffers resident on the host at once.
    peak_routed_bytes: int = 0
    #: Per-DPU simulated seconds of sample insertion (imbalance ledger input).
    #: Indexed by *physical core* (== triplet when no rebalance happened).
    insert_seconds: np.ndarray | None = None
    #: Misra-Gries remap table broadcast to the cores (None when disabled).
    remap_nodes: np.ndarray | None = None
    #: Triplet -> physical core map after between-batch rebalancing;
    #: ``None`` means the identity (monolithic path, or no rebalance fired).
    dpu_of_triplet: np.ndarray | None = None
    #: One record per rebalance event (batch index, trigger cv, moved work).
    rebalances: list = field(default_factory=list)

    def reservoir_scales(self) -> np.ndarray:
        return np.array(
            [reservoir_scale(self.capacity, int(t)) for t in self.seen],
            dtype=np.float64,
        )


@dataclass(frozen=True)
class PimTcOptions:
    """User-facing knobs of one triangle-counting run (the paper's parameters)."""

    #: ``C`` — number of node colors; PIM cores used = ``binom(C+2, 3)``.
    num_colors: int = 4
    #: Uniform sampling keep-probability ``p`` (Sec. 3.2); 1.0 = exact path.
    uniform_p: float = 1.0
    #: Per-core reservoir capacity in edges (Sec. 3.3); ``None`` sizes it from
    #: the MRAM bank, which at paper scale effectively disables sampling.
    reservoir_capacity: int | None = None
    #: Misra-Gries table size ``K`` (0 disables the summary entirely).
    misra_gries_k: int = 0
    #: Number of top-degree nodes ``t`` remapped inside the PIM cores.
    misra_gries_t: int = 0
    #: Root seed for coloring / sampling / reservoir streams.
    seed: int = 0
    #: Instruction-cost constants of the DPU kernel.
    kernel_costs: KernelCosts = field(default_factory=KernelCosts)
    #: Extra host cycles per edge spent updating the Misra-Gries summary.
    mg_host_cycles_per_edge: float = 25.0
    #: Fraction of MRAM reserved for the region table, stats and stack.
    mram_reserve_fraction: float = 0.0625
    #: Counting kernel: "merge" (the paper's, Sec. 3.4), "fastvec"
    #: (identical charges, searchsorted count arithmetic; see
    #: core.kernel_tc_vec) or "probe" (binary-search wedge checks; see
    #: core.kernel_tc_probe).
    kernel_variant: str = "merge"
    #: Host-side per-core batch buffer, in edges.  The paper's host flushes
    #: each core's batch array to the PIM side as it fills while streaming the
    #: input file; ``None`` models one bulk scatter (batch = whole sample).
    transfer_batch_edges: int | None = None
    #: Streaming-ingest chunk size in *input* edges.  ``None`` keeps the
    #: monolithic single-pass pipeline.  When set, the host processes the
    #: edge stream in chunks of this size — sample, Misra-Gries update,
    #: route, transfer, reservoir insert — bounding routed-buffer memory at
    #: ``O(batch_edges * C)`` and overlapping host routing of chunk ``k+1``
    #: with DPU insertion of chunk ``k`` (double buffering).
    batch_edges: int | None = None
    #: Partitioning strategy: "hash" (universal hash coloring, the paper's),
    #: "degree" (degree-based hub placement, Kolountzakis et al.), or "auto"
    #: (pick strategy / C / Misra-Gries from graph stats, with a decision
    #: trace in the result meta).  Counts are identical across strategies.
    partitioner: str = "hash"
    #: Between-batch rebalance trigger for the chunked ingest path: when the
    #: coefficient of variation of accumulated per-core insert seconds
    #: exceeds this value, the triplet->core assignment is recomputed for
    #: subsequent chunks (resident samples migrate, charged as a scatter).
    #: ``None`` disables rebalancing.
    rebalance_cv: float | None = None

    def __post_init__(self) -> None:
        if self.num_colors < 1:
            raise ConfigurationError("num_colors must be >= 1")
        if self.partitioner not in PARTITIONER_STRATEGIES:
            raise ConfigurationError(
                f"partitioner must be one of {PARTITIONER_STRATEGIES}, "
                f"got {self.partitioner!r}"
            )
        if self.rebalance_cv is not None and self.rebalance_cv < 0:
            raise ConfigurationError("rebalance_cv must be >= 0 or None")
        if self.kernel_variant not in ("merge", "fastvec", "probe"):
            raise ConfigurationError(
                f"kernel_variant must be 'merge', 'fastvec' or 'probe', "
                f"got {self.kernel_variant!r}"
            )
        if self.transfer_batch_edges is not None and self.transfer_batch_edges < 1:
            raise ConfigurationError("transfer_batch_edges must be >= 1 or None")
        if self.batch_edges is not None and self.batch_edges < 1:
            raise ConfigurationError("batch_edges must be >= 1 or None")
        if not (0.0 < self.uniform_p <= 1.0):
            raise ConfigurationError("uniform_p must be in (0, 1]")
        if self.misra_gries_t > 0 and self.misra_gries_k <= 0:
            raise ConfigurationError("misra_gries_t requires misra_gries_k > 0")
        if self.misra_gries_k > 0 and self.misra_gries_t <= 0:
            raise ConfigurationError("misra_gries_k requires misra_gries_t > 0")


class PimTcPipeline:
    """One configured pipeline; reusable across graphs."""

    def __init__(
        self,
        options: PimTcOptions | None = None,
        system: PimSystem | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.options = options or PimTcOptions()
        self.system = system or PimSystem(PimSystemConfig())
        # Telemetry is on by default: with detail off it only opens the
        # phase/operation spans (~a dozen perf_counter reads per run).  A
        # pipeline reused across graphs accumulates spans and metrics; pass a
        # fresh recorder per run when per-run reports are wanted.
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        from ..coloring.triplets import num_triplets

        needed = num_triplets(self.options.num_colors)
        if needed > self.system.config.total_dpus:
            raise ConfigurationError(
                f"{self.options.num_colors} colors need {needed} PIM cores but the "
                f"system has {self.system.config.total_dpus}"
            )

    # ------------------------------------------------------------------ helpers
    @property
    def active_options(self) -> PimTcOptions:
        """Options in effect for the current run ("auto" already resolved)."""
        resolved = getattr(self, "_effective_options", None)
        return resolved if resolved is not None else self.options

    @property
    def autotune_decision(self):
        """The :class:`AutoTuneDecision` of the current run, or None."""
        return getattr(self, "_autotune", None)

    def _resolve_options(self, graph: COOGraph) -> None:
        """Resolve the "auto" strategy against ``graph`` before a run.

        Stores the per-run effective options (strategy, C, Misra-Gries) and
        the tuner's decision trace; a pipeline reused across graphs resolves
        afresh per run.  Non-auto strategies pass through unchanged, so hash
        runs stay bit-identical to pipelines predating this knob.
        """
        from dataclasses import replace

        opts = self.options
        self._autotune = None
        if opts.partitioner == "auto":
            from ..coloring.autotune import auto_tune

            decision = auto_tune(
                graph,
                max_dpus=self.system.config.total_dpus,
                misra_gries_k=opts.misra_gries_k or None,
                misra_gries_t=opts.misra_gries_t or None,
            )
            self._autotune = decision
            opts = replace(
                opts,
                partitioner=decision.strategy,
                num_colors=decision.num_colors,
                misra_gries_k=decision.misra_gries_k or 0,
                misra_gries_t=decision.misra_gries_t or 0,
            )
        self._effective_options = opts

    def _host_seconds(self, cycles_per_item: float, items: int) -> float:
        cost = self.system.config.cost
        return cycles_per_item * items / (cost.host_clock_hz * cost.host_threads)

    def _reservoir_capacity(self) -> int:
        opts = self.active_options
        if opts.reservoir_capacity is not None:
            if opts.reservoir_capacity < 1:
                raise ConfigurationError("reservoir_capacity must be >= 1")
            return int(opts.reservoir_capacity)
        dpu_cfg = self.system.config.dpu
        usable = int(dpu_cfg.mram_bytes * (1.0 - opts.mram_reserve_fraction))
        return max(1, usable // opts.kernel_costs.edge_bytes)

    # --------------------------------------------------------------------- run
    def run(self, graph: COOGraph) -> TcResult:
        """Execute the full pipeline on ``graph`` and return the result."""
        self._resolve_options(graph)
        opts = self.active_options
        if opts.kernel_variant == "probe":
            from .kernel_tc_probe import ProbeTriangleCountKernel

            kernel = ProbeTriangleCountKernel(
                num_nodes=graph.num_nodes, costs=opts.kernel_costs
            )
        elif opts.kernel_variant == "fastvec":
            from .kernel_tc_vec import VecTriangleCountKernel

            kernel = VecTriangleCountKernel(
                num_nodes=graph.num_nodes, costs=opts.kernel_costs
            )
        else:
            kernel = TriangleCountKernel(
                num_nodes=graph.num_nodes, costs=opts.kernel_costs
            )
        prep = self._prepare(graph, kernel)
        return self._finish_global(graph, prep)

    def _setup_phase(
        self, graph: COOGraph, kernel, clock: SimClock, rngs: RngFactory
    ) -> tuple[ColoringPartitioner, DpuSet]:
        """Setup phase shared by the monolithic and batched ingest paths."""
        opts = self.active_options
        cost = self.system.config.cost
        with self.telemetry.span("setup", clock=clock):
            partitioner = make_partitioner(
                opts.partitioner, opts.num_colors, rngs.stream("coloring")
            )
            if isinstance(partitioner, DegreePartitioner):
                # Degree-based coloring needs a host pass over the edge list
                # (degree count + greedy hub placement) before routing starts.
                partitioner.fit(graph)
                clock.advance(
                    "setup", self._host_seconds(2.0, graph.num_edges)
                )
            dpus = self.system.allocate(
                partitioner.num_dpus, clock, telemetry=self.telemetry
            )
            dpus.load_kernel(kernel, phase="setup")
            # Host: load the graph file into memory + allocate per-core batch arrays.
            clock.advance(
                "setup",
                graph.nbytes() / cost.host_memcpy_bandwidth
                + self._host_seconds(200.0, partitioner.num_dpus),
            )
        return partitioner, dpus

    def _prepare(self, graph: COOGraph, kernel) -> "_PreparedRun":
        """Setup + sample-creation phases, shared by global and local counting."""
        if self.active_options.batch_edges is not None:
            return self._prepare_batched(graph, kernel)
        opts = self.active_options
        cost = self.system.config.cost
        rngs = RngFactory(opts.seed)
        wall_start = time.perf_counter()
        clock = SimClock()
        tel = self.telemetry
        partitioner, dpus = self._setup_phase(graph, kernel, clock, rngs)

        # ------------------------------------------------------- sample creation
        with tel.span("sample_creation", clock=clock):
            # Uniform sampling happens while streaming the file: every input
            # edge is read and hashed; only kept edges are routed.
            with tel.span("uniform_sample", clock=clock):
                clock.advance(
                    "sample_creation",
                    self._host_seconds(cost.host_edge_cycles, graph.num_edges),
                )
                sample = uniform_sample(graph, opts.uniform_p, rngs.stream("uniform"))
                kept = sample.graph

            remap_payload: RemapTable | None = None
            if opts.misra_gries_k > 0:
                with tel.span("misra_gries", clock=clock):
                    remap_payload = self._run_misra_gries(kept, clock)

            with tel.span("partition", clock=clock):
                partition = partitioner.assign(kept)
                edge_bytes = opts.kernel_costs.edge_bytes
                routed_bytes = partition.counts * edge_bytes
                # Batch assembly memcpy on the host.
                clock.advance(
                    "sample_creation",
                    float(routed_bytes.sum()) / cost.host_memcpy_bandwidth,
                )
            # Rank-padded parallel scatter of the batches.  With a finite batch
            # buffer the host flushes every time the fullest core's buffer fills,
            # so the transfer happens in rounds; each round moves at most
            # ``batch`` edges per core and pays the per-transfer latency.
            with tel.span("scatter", clock=clock) as scatter_span:
                if opts.transfer_batch_edges is None:
                    stats = dpus.transfer.scatter(routed_bytes)
                    clock.advance("sample_creation", stats.seconds)
                    dpus.trace.record(
                        "sample_creation", "scatter", stats.seconds, stats.payload_bytes,
                        "edge batches",
                    )
                    dpus.note_dpu_xfer(routed_bytes)
                    rounds = 1
                else:
                    batch = int(opts.transfer_batch_edges)
                    remaining = partition.counts.astype(np.int64).copy()
                    rounds = 0
                    while remaining.max(initial=0) > 0:
                        this_round = np.minimum(remaining, batch)
                        stats = dpus.transfer.scatter(this_round * edge_bytes)
                        clock.advance("sample_creation", stats.seconds)
                        dpus.trace.record(
                            "sample_creation",
                            "scatter",
                            stats.seconds,
                            stats.payload_bytes,
                            f"edge batch round {rounds}",
                        )
                        remaining -= this_round
                        rounds += 1
                    dpus.note_dpu_xfer(routed_bytes)
                if scatter_span is not None:
                    scatter_span.attrs["rounds"] = rounds
            if remap_payload is not None and remap_payload.t > 0:
                with tel.span("broadcast_remap", clock=clock):
                    stats = dpus.transfer.broadcast(remap_payload.nbytes(), len(dpus))
                    clock.advance("sample_creation", stats.seconds)
                    dpus.trace.record(
                        "sample_creation", "broadcast", stats.seconds,
                        stats.payload_bytes, "remap_table",
                    )
                    dpus.note_dpu_xfer(remap_payload.nbytes())

            capacity = self._reservoir_capacity()
            remap_nodes = (
                remap_payload.nodes
                if remap_payload is not None and remap_payload.t > 0
                else None
            )
            payloads = [
                (
                    s_arr,
                    d_arr,
                    capacity,
                    rngs.stream("reservoir", index=d),
                    opts.kernel_costs,
                    remap_nodes,
                )
                for d, (s_arr, d_arr) in enumerate(partition.per_dpu)
            ]
            with tel.span("insert", clock=clock):
                if tel.enabled and tel.detail:
                    timed = dpus.executor.map_dpus_timed(
                        _insert_sample, dpus.dpus, payloads
                    )
                    inserted = [result for result, _ in timed]
                    tel.attach_records(
                        [
                            SpanRecord(
                                name=f"dpu{d}",
                                wall_seconds=wall,
                                sim_seconds=result[1],
                            )
                            for d, (result, wall) in enumerate(timed)
                        ]
                    )
                else:
                    inserted = dpus.executor.map_dpus(_insert_sample, dpus.dpus, payloads)
                seen = np.array([n_in for n_in, _ in inserted], dtype=np.int64)
                insert_times = [seconds for _, seconds in inserted]
                insert_seconds = cost.launch_latency + (
                    max(insert_times) if insert_times else 0.0
                )
                clock.advance("sample_creation", insert_seconds)
                dpus.trace.record(
                    "sample_creation", "launch", insert_seconds,
                    detail="sample insert / reservoir",
                )
        self._record_sample_metrics(
            graph.num_edges, kept.num_edges, partition.counts, seen, capacity
        )
        edge_bytes = opts.kernel_costs.edge_bytes
        return _PreparedRun(
            clock=clock,
            dpus=dpus,
            partitioner=partitioner,
            routed_counts=partition.counts,
            uniform_p=sample.p,
            seen=seen,
            capacity=capacity,
            wall_start=wall_start,
            edges_kept=kept.num_edges,
            ingest_batches=1,
            # Monolithic routing materializes every per-core buffer at once.
            peak_routed_bytes=int(partition.counts.sum()) * edge_bytes,
            insert_seconds=np.array(insert_times, dtype=np.float64),
            remap_nodes=remap_nodes,
        )

    def _scatter_seconds(
        self, dpus: DpuSet, counts: np.ndarray, edge_bytes: int
    ) -> tuple[float, int, int]:
        """Aggregate scatter cost of one routed chunk: (seconds, bytes, rounds).

        Mirrors the monolithic scatter loop — honoring ``transfer_batch_edges``
        flush rounds — but returns the cost instead of advancing the clock, so
        the batched path can fold it into the overlapped device time.
        """
        opts = self.active_options
        if opts.transfer_batch_edges is None:
            stats = dpus.transfer.scatter(counts * edge_bytes)
            return stats.seconds, stats.payload_bytes, 1
        batch = int(opts.transfer_batch_edges)
        remaining = counts.astype(np.int64).copy()
        seconds = 0.0
        payload = 0
        rounds = 0
        while remaining.max(initial=0) > 0:
            this_round = np.minimum(remaining, batch)
            stats = dpus.transfer.scatter(this_round * edge_bytes)
            seconds += stats.seconds
            payload += stats.payload_bytes
            remaining -= this_round
            rounds += 1
        return seconds, payload, rounds

    def _prepare_batched(self, graph: COOGraph, kernel) -> "_PreparedRun":
        """Chunked streaming ingest with double-buffered host/device overlap.

        Processes the input edge stream in ``batch_edges``-sized chunks.  For
        each chunk the host draws the uniform keep-mask (consecutive draws
        from one stream — bit-identical to the monolithic mask), updates the
        Misra-Gries summary, colors and routes the survivors, and hands the
        per-core arrays to the execution engine while it starts routing the
        *next* chunk; :class:`DoubleBufferSchedule` turns the per-chunk host
        and device seconds into overlapped clock advances.  Per-core
        reservoirs persist across chunks, so acceptance probabilities use
        global arrival indices (sequential distribution, property-tested);
        when no reservoir overflows the final MRAM contents are bit-identical
        to the monolithic path.

        Engine invariance: every quantity fed to the schedule — keep-masks,
        partition counts, reservoir offers via per-DPU derived RNG streams,
        charge totals — is deterministic, so serial/thread/process executors
        stay bit-identical on counts, clocks, and charges.  (Per-DPU detail
        spans are not emitted per chunk; the per-batch spans carry the
        timing attributes instead.)
        """
        opts = self.active_options
        cost = self.system.config.cost
        rngs = RngFactory(opts.seed)
        wall_start = time.perf_counter()
        clock = SimClock()
        tel = self.telemetry
        partitioner, dpus = self._setup_phase(graph, kernel, clock, rngs)

        num_dpus = partitioner.num_dpus
        capacity = self._reservoir_capacity()
        edge_bytes = opts.kernel_costs.edge_bytes
        uniform_rng = rngs.stream("uniform")
        reservoirs = [
            EdgeReservoir(capacity, rngs.stream("reservoir", index=d))
            for d in range(num_dpus)
        ]
        merged_mg = MisraGries(opts.misra_gries_k) if opts.misra_gries_k > 0 else None
        schedule = DoubleBufferSchedule()
        routed_counts = np.zeros(num_dpus, dtype=np.int64)
        insert_secs = np.zeros(num_dpus, dtype=np.float64)
        edges_kept = 0
        peak_routed_bytes = 0
        window_bytes = 0  # routed bytes of the still-inserting previous chunk
        # Triplet -> physical core map; rebalancing permutes it between chunks.
        dpu_of_triplet = np.arange(num_dpus, dtype=np.int64)
        rebalanced = False
        rebalances: list[dict] = []
        batches_total = num_batches(graph.num_edges, opts.batch_edges)
        pending: tuple | None = None  # (k, h_k, xfer_s, xfer_b, join, perm, targets, kept_k)

        def drain(entry: tuple) -> None:
            """Join one in-flight chunk and advance the overlapped clock."""
            k, h_k, xfer_seconds, xfer_bytes, join, perm, targets, kept_k = entry
            results = join()
            for t, (res, _n_in, secs) in enumerate(results):
                reservoirs[t] = res
                insert_secs[perm[t]] += secs
            # The process engine splices post-run DPU state into the list it
            # was handed; that list is our triplet-ordered view, so propagate
            # the (possibly replaced) objects back to their physical slots.
            for t, core in enumerate(perm.tolist()):
                dpus.dpus[core] = targets[t]
            compute = max((secs for _, _, secs in results), default=0.0)
            d_k = xfer_seconds + cost.launch_latency + compute
            delta = schedule.step(h_k, d_k)
            with tel.span(f"batch[{k}]", clock=clock) as span:
                clock.advance("sample_creation", delta)
                if span is not None:
                    span.attrs["host_seconds"] = h_k
                    span.attrs["device_seconds"] = d_k
                    span.attrs["routed_bytes"] = xfer_bytes
            dpus.trace.record(
                "sample_creation", "scatter", xfer_seconds, xfer_bytes,
                f"ingest batch {k}",
            )
            dpus.trace.record(
                "sample_creation",
                "launch",
                cost.launch_latency + compute,
                detail=f"reservoir insert batch {k}",
            )
            # Live heartbeat for `repro-watch`: pure observation of values the
            # schedule already holds.  The ETA extrapolates the two-buffer
            # recurrence — remaining batches at the mean per-batch growth of
            # the device-finish front (D(k)/k), which in steady state is
            # max(h, d) per chunk.
            done = schedule.batches
            eta = (
                (batches_total - done) * (schedule.elapsed / done) if done else 0.0
            )
            tel.emit_event(
                "heartbeat",
                batch=int(k),
                batches_total=int(batches_total),
                edges_streamed=int(min((k + 1) * opts.batch_edges, graph.num_edges)),
                edges_total=int(graph.num_edges),
                edges_kept=int(kept_k),
                routed_bytes=int(xfer_bytes),
                peak_routed_bytes=int(peak_routed_bytes),
                sim_elapsed_seconds=float(schedule.elapsed),
                eta_sim_seconds=float(eta),
            )

        with tel.span("sample_creation", clock=clock):
            for k, s_chunk, d_chunk in iter_edge_batches(
                graph.src, graph.dst, opts.batch_edges
            ):
                # Host side of chunk k: stream + sample + summarize + route.
                h_k = self._host_seconds(cost.host_edge_cycles, int(s_chunk.size))
                keep = uniform_keep_mask(int(s_chunk.size), opts.uniform_p, uniform_rng)
                if opts.uniform_p < 1.0:
                    s_kept, d_kept = s_chunk[keep], d_chunk[keep]
                else:
                    s_kept, d_kept = s_chunk, d_chunk
                edges_kept += int(s_kept.size)
                if merged_mg is not None:
                    self._mg_update(merged_mg, s_kept, d_kept)
                    h_k += self._host_seconds(
                        opts.mg_host_cycles_per_edge, int(s_kept.size)
                    )
                part = partitioner.assign_arrays(s_kept, d_kept)
                routed_counts += part.counts
                chunk_bytes = int(part.counts.sum()) * edge_bytes
                h_k += chunk_bytes / cost.host_memcpy_bandwidth
                # Double buffering keeps at most two chunks' routed buffers
                # resident: the one still inserting plus the one just routed.
                peak_routed_bytes = max(peak_routed_bytes, window_bytes + chunk_bytes)
                window_bytes = chunk_bytes
                if pending is not None:
                    drain(pending)
                    pending = None
                    if opts.rebalance_cv is not None:
                        moved = self._maybe_rebalance(
                            dpus, clock, dpu_of_triplet, insert_secs,
                            routed_counts, reservoirs, capacity, edge_bytes,
                            k - 1, rebalances,
                        )
                        if moved is not None:
                            dpu_of_triplet = moved
                            rebalanced = True
                # The transfer cost is evaluated under the *current* core map:
                # rank padding depends on which physical core each triplet's
                # bytes land on (identity map -> identical to the pre-map
                # ordering, so hash baselines stay bit-exact).
                core_counts = np.zeros(num_dpus, dtype=np.int64)
                core_counts[dpu_of_triplet] = part.counts
                xfer_seconds, xfer_bytes, _rounds = self._scatter_seconds(
                    dpus, core_counts, edge_bytes
                )
                dpus.note_dpu_xfer(core_counts * edge_bytes)
                # Payloads are built only after the previous join so the
                # process engine's returned reservoirs (fresh RNG state) are
                # the ones offered the next chunk.
                payloads = [
                    (reservoirs[t], s_arr, d_arr, opts.kernel_costs)
                    for t, (s_arr, d_arr) in enumerate(part.per_dpu)
                ]
                targets = [dpus.dpus[int(c)] for c in dpu_of_triplet]
                join = dpus.executor.map_dpus_async(_ingest_chunk, targets, payloads)
                pending = (
                    k, h_k, xfer_seconds, xfer_bytes, join, dpu_of_triplet,
                    targets, edges_kept,
                )
            if pending is not None:
                drain(pending)

            remap_payload: RemapTable | None = None
            if merged_mg is not None:
                with tel.span("misra_gries", clock=clock):
                    remap_payload = self._mg_table(merged_mg, graph.num_nodes)
            if remap_payload is not None and remap_payload.t > 0:
                with tel.span("broadcast_remap", clock=clock):
                    stats = dpus.transfer.broadcast(remap_payload.nbytes(), len(dpus))
                    clock.advance("sample_creation", stats.seconds)
                    dpus.trace.record(
                        "sample_creation", "broadcast", stats.seconds,
                        stats.payload_bytes, "remap_table",
                    )
                    dpus.note_dpu_xfer(remap_payload.nbytes())
                for dpu in dpus.dpus:
                    dpu.mram.store(
                        "remap_table", remap_payload.nodes, count_write=False
                    )
            # Materialize the final reservoir contents into each core's MRAM
            # region (the per-chunk tasks already charged the write work).
            # Reservoirs are triplet-ordered; route each to its physical core.
            for t, res in enumerate(reservoirs):
                dpu = dpus.dpus[int(dpu_of_triplet[t])]
                keep_src, keep_dst = res.edges()
                dpu.mram.store("sample_src", keep_src.astype(np.int32), count_write=False)
                dpu.mram.store("sample_dst", keep_dst.astype(np.int32), count_write=False)
            seen = np.array([res.seen for res in reservoirs], dtype=np.int64)

        if tel.enabled:
            m = tel.metrics
            m.counter("host.ingest.batches", help="streaming ingest chunks processed").inc(
                schedule.batches
            )
            if rebalances:
                m.counter(
                    "host.rebalance.events",
                    help="between-batch triplet->core rebalances",
                ).inc(len(rebalances))
                m.counter(
                    "host.rebalance.moved_bytes",
                    help="resident sample bytes migrated by rebalancing",
                ).inc(sum(r["moved_bytes"] for r in rebalances))
            m.gauge(
                "host.ingest.peak_routed_bytes",
                help="peak bytes of routed edge buffers resident on the host",
            ).set(peak_routed_bytes)
            m.counter(
                "host.ingest.overlap_saved_seconds",
                help="simulated seconds hidden by double-buffered ingest",
            ).inc(schedule.saved_seconds)
        self._record_sample_metrics(
            graph.num_edges, edges_kept, routed_counts, seen, capacity
        )
        return _PreparedRun(
            clock=clock,
            dpus=dpus,
            partitioner=partitioner,
            routed_counts=routed_counts,
            uniform_p=opts.uniform_p,
            seen=seen,
            capacity=capacity,
            wall_start=wall_start,
            edges_kept=edges_kept,
            ingest_batches=schedule.batches,
            peak_routed_bytes=peak_routed_bytes,
            insert_seconds=insert_secs,
            remap_nodes=(
                remap_payload.nodes
                if remap_payload is not None and remap_payload.t > 0
                else None
            ),
            dpu_of_triplet=dpu_of_triplet if rebalanced else None,
            rebalances=rebalances,
        )

    def _finish_global(self, graph: COOGraph, prep: "_PreparedRun") -> TcResult:
        """Triangle-count phase for the global counting kernel."""
        opts = self.active_options
        clock, dpus, partitioner = prep.clock, prep.dpus, prep.partitioner
        with self.telemetry.span("triangle_count", clock=clock):
            dpus.launch(phase="triangle_count")
            raw_arrays = dpus.gather("triangle_count", phase="triangle_count")
            raw_counts = np.array([int(a[0]) for a in raw_arrays], dtype=np.int64)
            if prep.dpu_of_triplet is not None:
                # Gathers are physical-core ordered; the correction math wants
                # triplet order (scales, mono mask are triplet-indexed).
                raw_counts = raw_counts[prep.dpu_of_triplet]
            scales = prep.reservoir_scales()
            mono = partitioner.mono_mask()
            with self.telemetry.span("correction", clock=clock):
                estimate = combine_dpu_counts(
                    raw_counts,
                    scales,
                    mono,
                    num_colors=opts.num_colors,
                    uniform_p=prep.uniform_p,
                )
                # Host-side final reduction over per-core counts.
                clock.advance(
                    "triangle_count", self._host_seconds(10.0, partitioner.num_dpus)
                )

            kernel_aggregate = self._aggregate(dpus)
            imbalance = self._harvest_imbalance(prep)
            dpus.free()
        self._record_kernel_metrics(kernel_aggregate)
        return TcResult(
            estimate=estimate,
            num_colors=opts.num_colors,
            num_dpus=partitioner.num_dpus,
            clock=clock,
            per_dpu_counts=raw_counts,
            reservoir_scales=scales,
            edges_routed=prep.routed_counts,
            edges_input=graph.num_edges,
            uniform_p=prep.uniform_p,
            kernel=kernel_aggregate,
            host_wall_seconds=time.perf_counter() - prep.wall_start,
            meta=self._run_meta(prep),
            trace=dpus.trace,
            telemetry=self.telemetry,
            imbalance=imbalance,
        )

    def _run_meta(self, prep: "_PreparedRun") -> dict:
        """Result meta shared by the global and local count paths."""
        opts = self.active_options
        meta = {
            "reservoir_capacity": prep.capacity,
            "edges_kept": prep.edges_kept,
            "misra_gries": (opts.misra_gries_k, opts.misra_gries_t),
            "ingest_batches": prep.ingest_batches,
            "peak_routed_bytes": prep.peak_routed_bytes,
            "partitioner": prep.partitioner.strategy,
            "rebalances": list(prep.rebalances),
        }
        decision = self.autotune_decision
        if decision is not None:
            meta["autotune"] = decision.to_dict()
        return meta

    def run_local(self, graph: COOGraph) -> "LocalTcResult":
        """Per-node (local) triangle counting — see :mod:`repro.core.local`."""
        from .local import LocalCountKernel
        from .result import LocalTcResult

        self._resolve_options(graph)
        opts = self.active_options
        kernel = LocalCountKernel(num_nodes=graph.num_nodes, costs=opts.kernel_costs)
        prep = self._prepare(graph, kernel)
        clock, dpus, partitioner = prep.clock, prep.dpus, prep.partitioner

        with self.telemetry.span("triangle_count", clock=clock):
            dpus.launch(phase="triangle_count")
            # The local gather is heavy: one num_nodes-long vector per core.
            local_arrays = dpus.gather("local_counts", phase="triangle_count")
            # The scalar totals come back through the same gather path as the
            # global pipeline, so the local path pays the identical transfer
            # cost and emits the identical trace events per symbol.
            raw_arrays = dpus.gather("triangle_count", phase="triangle_count")
            raw_counts = np.array([int(a[0]) for a in raw_arrays], dtype=np.int64)
            if prep.dpu_of_triplet is not None:
                raw_counts = raw_counts[prep.dpu_of_triplet]
                local_arrays = [local_arrays[int(c)] for c in prep.dpu_of_triplet]
            scales = prep.reservoir_scales()
            mono = partitioner.mono_mask()

            with self.telemetry.span("correction", clock=clock):
                locals_matrix = np.stack(local_arrays).astype(np.float64)
                locals_matrix /= scales[:, None]
                combined = locals_matrix.sum(axis=0)
                combined -= (opts.num_colors - 1) * locals_matrix[mono].sum(axis=0)
                combined /= prep.uniform_p**3
                estimate = float(combined.sum() / 3.0)
                # Host-side vector reduction over all cores.
                clock.advance(
                    "triangle_count",
                    self._host_seconds(2.0, partitioner.num_dpus * graph.num_nodes),
                )

            kernel_aggregate = self._aggregate(dpus)
            imbalance = self._harvest_imbalance(prep)
            dpus.free()
        self._record_kernel_metrics(kernel_aggregate)
        return LocalTcResult(
            estimate=estimate,
            num_colors=opts.num_colors,
            num_dpus=partitioner.num_dpus,
            clock=clock,
            per_dpu_counts=raw_counts,
            reservoir_scales=scales,
            edges_routed=prep.routed_counts,
            edges_input=graph.num_edges,
            uniform_p=prep.uniform_p,
            kernel=kernel_aggregate,
            host_wall_seconds=time.perf_counter() - prep.wall_start,
            meta=self._run_meta(prep),
            trace=dpus.trace,
            telemetry=self.telemetry,
            imbalance=imbalance,
            local_estimates=combined,
        )

    # ----------------------------------------------------------------- internals
    def _maybe_rebalance(
        self,
        dpus: DpuSet,
        clock: SimClock,
        dpu_of_triplet: np.ndarray,
        insert_secs: np.ndarray,
        routed_counts: np.ndarray,
        reservoirs: list[EdgeReservoir],
        capacity: int,
        edge_bytes: int,
        batch_index: int,
        rebalances: list[dict],
    ) -> np.ndarray | None:
        """Recompute the triplet->core map when accumulated skew warrants it.

        Trigger: the coefficient of variation of accumulated per-core insert
        seconds (the ledger's cv over the same metric it reports) exceeding
        ``rebalance_cv``.  Remedy: greedily pair the heaviest-routed triplets
        with the least-loaded cores.  Each triplet's partially built sample
        migrates to its new core; the move is charged as a rank-padded
        scatter of the resident bytes plus a trace event, so rebalanced runs
        honestly pay for the shuffle.  Returns the new map, or None when the
        trigger did not fire or the greedy map equals the current one.
        """
        from ..observability.imbalance import skew_stats

        cv = skew_stats(insert_secs).cv
        if cv <= self.active_options.rebalance_cv:
            return None
        num_dpus = dpu_of_triplet.size
        ids = np.arange(num_dpus)
        heavy_first = np.lexsort((ids, -routed_counts))
        idle_first = np.lexsort((ids, insert_secs))
        new_map = np.empty(num_dpus, dtype=np.int64)
        new_map[heavy_first] = idle_first
        moved = np.nonzero(new_map != dpu_of_triplet)[0]
        if moved.size == 0:
            return None
        moved_bytes = np.zeros(num_dpus, dtype=np.int64)
        for t in moved.tolist():
            stored = min(int(reservoirs[t].seen), capacity)
            moved_bytes[new_map[t]] += stored * edge_bytes
        stats = dpus.transfer.scatter(moved_bytes)
        clock.advance("sample_creation", stats.seconds)
        dpus.trace.record(
            "sample_creation", "scatter", stats.seconds, stats.payload_bytes,
            f"rebalance after batch {batch_index}",
        )
        dpus.note_dpu_xfer(moved_bytes)
        rebalances.append(
            {
                "after_batch": int(batch_index),
                "cv": float(cv),
                "moved_triplets": int(moved.size),
                "moved_bytes": int(moved_bytes.sum()),
                "seconds": float(stats.seconds),
            }
        )
        return new_map

    def _harvest_imbalance(self, prep: "_PreparedRun"):
        """Collect the per-DPU work ledger after the count launch.

        Runs between the counting launch and ``dpus.free()`` so the
        per-launch charge ledgers still hold the counting kernel's work.
        Pure observation: reads uncharged MRAM symbols and the lifetime
        charge counters, touches neither the clock nor the trace — the
        differential parity grid pins that this call is invisible to every
        simulated number.
        """
        from ..observability.imbalance import collect_ledger

        ledger = collect_ledger(
            prep.dpus,
            prep.partitioner.table,
            edges_routed=prep.routed_counts,
            seen=prep.seen,
            capacity=prep.capacity,
            insert_seconds=prep.insert_seconds,
            remap_nodes=prep.remap_nodes,
            dpu_of_triplet=prep.dpu_of_triplet,
        )
        if ledger is not None:
            ledger.meta["partitioner"] = prep.partitioner.strategy
            ledger.meta["rebalances"] = len(prep.rebalances)
        return ledger

    def _record_sample_metrics(
        self,
        edges_input: int,
        edges_kept: int,
        routed_counts: np.ndarray,
        seen: np.ndarray,
        capacity: int,
    ) -> None:
        """Metrics of the sample-creation phase (engine-invariant inputs only).

        Everything observed here — routed counts, per-DPU seen totals, the
        reservoir capacity — is computed in the parent process and pinned by
        the executor parity tests, so the registry snapshot stays bit-
        identical across serial/thread/process engines.
        """
        tel = self.telemetry
        if not tel.enabled:
            return
        m = tel.metrics
        m.counter("host.edges_input", help="edges in the input graph").inc(
            edges_input
        )
        m.counter("host.edges_kept", help="edges surviving uniform sampling").inc(
            edges_kept
        )
        m.counter("pim.edges_routed_total", help="edge copies routed to PIM cores").inc(
            int(routed_counts.sum())
        )
        m.histogram(
            "pim.edges_routed", help="edges routed per PIM core (load balance)"
        ).observe_many(routed_counts.astype(np.float64))
        m.gauge("pim.reservoir.capacity", help="per-core reservoir capacity").set(
            capacity
        )
        occupancy = np.minimum(seen, capacity) / float(capacity)
        m.histogram(
            "pim.reservoir.occupancy",
            buckets=DEFAULT_FRACTION_BUCKETS,
            help="per-core fraction of the reservoir filled",
        ).observe_many(occupancy)

    def _record_kernel_metrics(self, aggregate: KernelAggregate) -> None:
        """Kernel-side totals (identical across engines: the charge contract)."""
        tel = self.telemetry
        if not tel.enabled:
            return
        m = tel.metrics
        m.counter("kernel.instructions", help="DPU instructions, all cores").inc(
            aggregate.instructions
        )
        m.counter("kernel.dma_requests", help="MRAM DMA requests, all cores").inc(
            aggregate.dma_requests
        )
        m.counter("kernel.dma_bytes", help="MRAM DMA bytes, all cores").inc(
            aggregate.dma_bytes
        )
        m.counter("pipeline.runs", help="completed pipeline runs").inc()

    def _mg_update(self, merged: MisraGries, src: np.ndarray, dst: np.ndarray) -> None:
        """Fold one edge chunk's node stream into ``merged`` (per-thread splits).

        The chunk's interleaved node stream is split across the model's host
        threads, each summarized locally, and merged — the same merged-summary
        scheme the monolithic pass uses over the whole stream.  Note that
        Misra-Gries merged summaries are not split-invariant: chunked runs can
        produce a different (still valid, still within the ``n/K`` error
        guarantee) summary than one monolithic pass.
        """
        stream = np.empty(2 * int(src.size), dtype=np.int64)
        stream[0::2] = src
        stream[1::2] = dst
        for chunk in np.array_split(stream, self.system.config.cost.host_threads):
            local = MisraGries(self.active_options.misra_gries_k)
            local.update_array(chunk)
            merged.merge(local)

    def _mg_table(self, merged: MisraGries, num_nodes: int) -> RemapTable:
        """Extract the top-t remap table from a finished summary + metrics."""
        top = merged.top(self.active_options.misra_gries_t)
        if self.telemetry.enabled:
            m = self.telemetry.metrics
            m.gauge("mg.summary_size", help="entries in the merged MG summary").set(
                merged.size
            )
            m.gauge("mg.remapped_nodes", help="top-t nodes remapped in-core").set(
                len(top)
            )
        return RemapTable(nodes=np.array(top, dtype=np.int64), num_nodes=num_nodes)

    def _run_misra_gries(self, kept: COOGraph, clock: SimClock) -> RemapTable:
        """Per-thread Misra-Gries over the node stream, merged, top-t extracted."""
        merged = MisraGries(self.active_options.misra_gries_k)
        self._mg_update(merged, kept.src, kept.dst)
        clock.advance(
            "sample_creation",
            self._host_seconds(
                self.active_options.mg_host_cycles_per_edge, kept.num_edges
            ),
        )
        return self._mg_table(merged, kept.num_nodes)

    @staticmethod
    def _aggregate(dpus) -> KernelAggregate:
        stats = [dpu.run_stats() for dpu in dpus.dpus]
        return KernelAggregate(
            instructions=sum(s.instructions for s in stats),
            dma_requests=sum(s.dma_requests for s in stats),
            dma_bytes=sum(s.dma_bytes for s in stats),
            max_dpu_compute_seconds=max((s.compute_seconds for s in stats), default=0.0),
        )
