"""Host-side orchestration of the PIM triangle-counting run (paper Sec. 3).

The pipeline reproduces the paper's host program step by step:

1. **Setup** — allocate ``binom(C+2,3)`` PIM cores, load the kernel, charge
   the host-side buffer allocation and graph-load cost.
2. **Sample creation** — stream the COO edges applying uniform sampling
   (Sec. 3.2) and, if enabled, the per-thread Misra-Gries summaries
   (Sec. 3.5); color endpoints with the universal hash and route each edge to
   its ``C`` compatible cores (Sec. 3.1); transfer the batches (rank-padded
   parallel scatter); insert into each core's MRAM region with reservoir
   replacement when the region is full (Sec. 3.3).
3. **Triangle count** — launch the counting kernel, gather per-core counts,
   apply the reservoir / monochromatic / uniform corrections (Sec. 3.1-3.3),
   free the cores.

Simulated time accumulates into the paper's three phases; host work is
modeled with the ``CostModel`` host constants (32 threads by default, a fixed
cycle budget per streamed edge, and a memcpy bandwidth for batch assembly).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..coloring.partition import ColoringPartitioner, EdgePartition
from ..common.errors import ConfigurationError
from ..common.rng import RngFactory
from ..graph.coo import COOGraph
from ..pimsim.config import PimSystemConfig
from ..pimsim.dpu import Dpu
from ..pimsim.kernel import SimClock
from ..pimsim.system import DpuSet, PimSystem
from ..streaming.estimators import combine_dpu_counts
from ..streaming.misra_gries import MisraGries
from ..streaming.reservoir import EdgeReservoir, reservoir_scale
from ..streaming.uniform import UniformSample, uniform_sample
from ..telemetry.metrics import DEFAULT_FRACTION_BUCKETS
from ..telemetry.spans import SpanRecord, Telemetry
from .kernel_tc_fast import KernelCosts, TriangleCountKernel
from .remap import RemapTable
from .result import KernelAggregate, TcResult

__all__ = ["PimTcOptions", "PimTcPipeline"]


def _insert_sample(dpu: Dpu, payload: tuple) -> tuple[int, float]:
    """Per-DPU sample-insertion task (runs on the configured executor).

    Inserts one core's routed edge batch into its MRAM, applying reservoir
    replacement when the batch exceeds capacity, and charges the DPU for the
    insert work.  Module-level and fed a pre-derived per-DPU RNG stream so the
    process engine can pickle it; the stream derivation is stateless, so
    results are bit-identical to the serial path.
    """
    s_arr, d_arr, capacity, rng, costs, remap_nodes = payload
    dpu.reset_charges()
    n_in = int(s_arr.size)
    if n_in > capacity:
        reservoir = EdgeReservoir(capacity, rng)
        reservoir.offer_batch(s_arr, d_arr)
        keep_src, keep_dst = reservoir.edges()
        stored = int(keep_src.size)
        # Replacement bookkeeping costs a few extra instructions/edge.
        insert_instr = n_in * (costs.insert_instr_per_edge + 4.0)
    else:
        keep_src, keep_dst = s_arr, d_arr
        stored = n_in
        insert_instr = n_in * costs.insert_instr_per_edge
    dpu.charge_balanced(insert_instr)
    per_tasklet_bytes = stored * costs.edge_bytes / dpu.config.num_tasklets
    for tk in range(dpu.config.num_tasklets):
        dpu.charge_mram_write(tk, int(per_tasklet_bytes), requests=1)
    dpu.mram.store("sample_src", keep_src.astype(np.int32), count_write=False)
    dpu.mram.store("sample_dst", keep_dst.astype(np.int32), count_write=False)
    if remap_nodes is not None:
        dpu.mram.store("remap_table", remap_nodes, count_write=False)
    return n_in, dpu.compute_seconds()


@dataclass
class _PreparedRun:
    """State handed from the shared sample-creation phase to a count phase."""

    clock: SimClock
    dpus: DpuSet
    partitioner: ColoringPartitioner
    partition: EdgePartition
    sample: UniformSample
    seen: np.ndarray
    capacity: int
    wall_start: float
    edges_kept: int

    def reservoir_scales(self) -> np.ndarray:
        return np.array(
            [reservoir_scale(self.capacity, int(t)) for t in self.seen],
            dtype=np.float64,
        )


@dataclass(frozen=True)
class PimTcOptions:
    """User-facing knobs of one triangle-counting run (the paper's parameters)."""

    #: ``C`` — number of node colors; PIM cores used = ``binom(C+2, 3)``.
    num_colors: int = 4
    #: Uniform sampling keep-probability ``p`` (Sec. 3.2); 1.0 = exact path.
    uniform_p: float = 1.0
    #: Per-core reservoir capacity in edges (Sec. 3.3); ``None`` sizes it from
    #: the MRAM bank, which at paper scale effectively disables sampling.
    reservoir_capacity: int | None = None
    #: Misra-Gries table size ``K`` (0 disables the summary entirely).
    misra_gries_k: int = 0
    #: Number of top-degree nodes ``t`` remapped inside the PIM cores.
    misra_gries_t: int = 0
    #: Root seed for coloring / sampling / reservoir streams.
    seed: int = 0
    #: Instruction-cost constants of the DPU kernel.
    kernel_costs: KernelCosts = field(default_factory=KernelCosts)
    #: Extra host cycles per edge spent updating the Misra-Gries summary.
    mg_host_cycles_per_edge: float = 25.0
    #: Fraction of MRAM reserved for the region table, stats and stack.
    mram_reserve_fraction: float = 0.0625
    #: Counting kernel: "merge" (the paper's, Sec. 3.4) or "probe"
    #: (binary-search wedge checks; see core.kernel_tc_probe).
    kernel_variant: str = "merge"
    #: Host-side per-core batch buffer, in edges.  The paper's host flushes
    #: each core's batch array to the PIM side as it fills while streaming the
    #: input file; ``None`` models one bulk scatter (batch = whole sample).
    transfer_batch_edges: int | None = None

    def __post_init__(self) -> None:
        if self.num_colors < 1:
            raise ConfigurationError("num_colors must be >= 1")
        if self.kernel_variant not in ("merge", "probe"):
            raise ConfigurationError(
                f"kernel_variant must be 'merge' or 'probe', got {self.kernel_variant!r}"
            )
        if self.transfer_batch_edges is not None and self.transfer_batch_edges < 1:
            raise ConfigurationError("transfer_batch_edges must be >= 1 or None")
        if not (0.0 < self.uniform_p <= 1.0):
            raise ConfigurationError("uniform_p must be in (0, 1]")
        if self.misra_gries_t > 0 and self.misra_gries_k <= 0:
            raise ConfigurationError("misra_gries_t requires misra_gries_k > 0")
        if self.misra_gries_k > 0 and self.misra_gries_t <= 0:
            raise ConfigurationError("misra_gries_k requires misra_gries_t > 0")


class PimTcPipeline:
    """One configured pipeline; reusable across graphs."""

    def __init__(
        self,
        options: PimTcOptions | None = None,
        system: PimSystem | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.options = options or PimTcOptions()
        self.system = system or PimSystem(PimSystemConfig())
        # Telemetry is on by default: with detail off it only opens the
        # phase/operation spans (~a dozen perf_counter reads per run).  A
        # pipeline reused across graphs accumulates spans and metrics; pass a
        # fresh recorder per run when per-run reports are wanted.
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        from ..coloring.triplets import num_triplets

        needed = num_triplets(self.options.num_colors)
        if needed > self.system.config.total_dpus:
            raise ConfigurationError(
                f"{self.options.num_colors} colors need {needed} PIM cores but the "
                f"system has {self.system.config.total_dpus}"
            )

    # ------------------------------------------------------------------ helpers
    def _host_seconds(self, cycles_per_item: float, items: int) -> float:
        cost = self.system.config.cost
        return cycles_per_item * items / (cost.host_clock_hz * cost.host_threads)

    def _reservoir_capacity(self) -> int:
        opts = self.options
        if opts.reservoir_capacity is not None:
            if opts.reservoir_capacity < 1:
                raise ConfigurationError("reservoir_capacity must be >= 1")
            return int(opts.reservoir_capacity)
        dpu_cfg = self.system.config.dpu
        usable = int(dpu_cfg.mram_bytes * (1.0 - opts.mram_reserve_fraction))
        return max(1, usable // opts.kernel_costs.edge_bytes)

    # --------------------------------------------------------------------- run
    def run(self, graph: COOGraph) -> TcResult:
        """Execute the full pipeline on ``graph`` and return the result."""
        if self.options.kernel_variant == "probe":
            from .kernel_tc_probe import ProbeTriangleCountKernel

            kernel = ProbeTriangleCountKernel(
                num_nodes=graph.num_nodes, costs=self.options.kernel_costs
            )
        else:
            kernel = TriangleCountKernel(
                num_nodes=graph.num_nodes, costs=self.options.kernel_costs
            )
        prep = self._prepare(graph, kernel)
        return self._finish_global(graph, prep)

    def _prepare(self, graph: COOGraph, kernel) -> "_PreparedRun":
        """Setup + sample-creation phases, shared by global and local counting."""
        opts = self.options
        cost = self.system.config.cost
        rngs = RngFactory(opts.seed)
        wall_start = time.perf_counter()
        clock = SimClock()
        tel = self.telemetry

        # ---------------------------------------------------------------- setup
        with tel.span("setup", clock=clock):
            partitioner = ColoringPartitioner(opts.num_colors, rngs.stream("coloring"))
            dpus = self.system.allocate(partitioner.num_dpus, clock, telemetry=tel)
            dpus.load_kernel(kernel, phase="setup")
            # Host: load the graph file into memory + allocate per-core batch arrays.
            clock.advance(
                "setup",
                graph.nbytes() / cost.host_memcpy_bandwidth
                + self._host_seconds(200.0, partitioner.num_dpus),
            )

        # ------------------------------------------------------- sample creation
        with tel.span("sample_creation", clock=clock):
            # Uniform sampling happens while streaming the file: every input
            # edge is read and hashed; only kept edges are routed.
            with tel.span("uniform_sample", clock=clock):
                clock.advance(
                    "sample_creation",
                    self._host_seconds(cost.host_edge_cycles, graph.num_edges),
                )
                sample = uniform_sample(graph, opts.uniform_p, rngs.stream("uniform"))
                kept = sample.graph

            remap_payload: RemapTable | None = None
            if opts.misra_gries_k > 0:
                with tel.span("misra_gries", clock=clock):
                    remap_payload = self._run_misra_gries(kept, clock)

            with tel.span("partition", clock=clock):
                partition = partitioner.assign(kept)
                edge_bytes = opts.kernel_costs.edge_bytes
                routed_bytes = partition.counts * edge_bytes
                # Batch assembly memcpy on the host.
                clock.advance(
                    "sample_creation",
                    float(routed_bytes.sum()) / cost.host_memcpy_bandwidth,
                )
            # Rank-padded parallel scatter of the batches.  With a finite batch
            # buffer the host flushes every time the fullest core's buffer fills,
            # so the transfer happens in rounds; each round moves at most
            # ``batch`` edges per core and pays the per-transfer latency.
            with tel.span("scatter", clock=clock) as scatter_span:
                if opts.transfer_batch_edges is None:
                    stats = dpus.transfer.scatter(routed_bytes)
                    clock.advance("sample_creation", stats.seconds)
                    dpus.trace.record(
                        "sample_creation", "scatter", stats.seconds, stats.payload_bytes,
                        "edge batches",
                    )
                    rounds = 1
                else:
                    batch = int(opts.transfer_batch_edges)
                    remaining = partition.counts.astype(np.int64).copy()
                    rounds = 0
                    while remaining.max(initial=0) > 0:
                        this_round = np.minimum(remaining, batch)
                        stats = dpus.transfer.scatter(this_round * edge_bytes)
                        clock.advance("sample_creation", stats.seconds)
                        dpus.trace.record(
                            "sample_creation",
                            "scatter",
                            stats.seconds,
                            stats.payload_bytes,
                            f"edge batch round {rounds}",
                        )
                        remaining -= this_round
                        rounds += 1
                if scatter_span is not None:
                    scatter_span.attrs["rounds"] = rounds
            if remap_payload is not None and remap_payload.t > 0:
                with tel.span("broadcast_remap", clock=clock):
                    stats = dpus.transfer.broadcast(remap_payload.nbytes(), len(dpus))
                    clock.advance("sample_creation", stats.seconds)
                    dpus.trace.record(
                        "sample_creation", "broadcast", stats.seconds,
                        stats.payload_bytes, "remap_table",
                    )

            capacity = self._reservoir_capacity()
            remap_nodes = (
                remap_payload.nodes
                if remap_payload is not None and remap_payload.t > 0
                else None
            )
            payloads = [
                (
                    s_arr,
                    d_arr,
                    capacity,
                    rngs.stream("reservoir", index=d),
                    opts.kernel_costs,
                    remap_nodes,
                )
                for d, (s_arr, d_arr) in enumerate(partition.per_dpu)
            ]
            with tel.span("insert", clock=clock):
                if tel.enabled and tel.detail:
                    timed = dpus.executor.map_dpus_timed(
                        _insert_sample, dpus.dpus, payloads
                    )
                    inserted = [result for result, _ in timed]
                    tel.attach_records(
                        [
                            SpanRecord(
                                name=f"dpu{d}",
                                wall_seconds=wall,
                                sim_seconds=result[1],
                            )
                            for d, (result, wall) in enumerate(timed)
                        ]
                    )
                else:
                    inserted = dpus.executor.map_dpus(_insert_sample, dpus.dpus, payloads)
                seen = np.array([n_in for n_in, _ in inserted], dtype=np.int64)
                insert_times = [seconds for _, seconds in inserted]
                insert_seconds = cost.launch_latency + (
                    max(insert_times) if insert_times else 0.0
                )
                clock.advance("sample_creation", insert_seconds)
                dpus.trace.record(
                    "sample_creation", "launch", insert_seconds,
                    detail="sample insert / reservoir",
                )
        self._record_sample_metrics(graph, kept, partition, seen, capacity)
        return _PreparedRun(
            clock=clock,
            dpus=dpus,
            partitioner=partitioner,
            partition=partition,
            sample=sample,
            seen=seen,
            capacity=capacity,
            wall_start=wall_start,
            edges_kept=kept.num_edges,
        )

    def _finish_global(self, graph: COOGraph, prep: "_PreparedRun") -> TcResult:
        """Triangle-count phase for the global counting kernel."""
        opts = self.options
        clock, dpus, partitioner = prep.clock, prep.dpus, prep.partitioner
        with self.telemetry.span("triangle_count", clock=clock):
            dpus.launch(phase="triangle_count")
            raw_arrays = dpus.gather("triangle_count", phase="triangle_count")
            raw_counts = np.array([int(a[0]) for a in raw_arrays], dtype=np.int64)
            scales = prep.reservoir_scales()
            mono = partitioner.mono_mask()
            with self.telemetry.span("correction", clock=clock):
                estimate = combine_dpu_counts(
                    raw_counts,
                    scales,
                    mono,
                    num_colors=opts.num_colors,
                    uniform_p=prep.sample.p,
                )
                # Host-side final reduction over per-core counts.
                clock.advance(
                    "triangle_count", self._host_seconds(10.0, partitioner.num_dpus)
                )

            kernel_aggregate = self._aggregate(dpus)
            dpus.free()
        self._record_kernel_metrics(kernel_aggregate)
        return TcResult(
            estimate=estimate,
            num_colors=opts.num_colors,
            num_dpus=partitioner.num_dpus,
            clock=clock,
            per_dpu_counts=raw_counts,
            reservoir_scales=scales,
            edges_routed=prep.partition.counts,
            edges_input=graph.num_edges,
            uniform_p=prep.sample.p,
            kernel=kernel_aggregate,
            host_wall_seconds=time.perf_counter() - prep.wall_start,
            meta={
                "reservoir_capacity": prep.capacity,
                "edges_kept": prep.edges_kept,
                "misra_gries": (opts.misra_gries_k, opts.misra_gries_t),
            },
            trace=dpus.trace,
            telemetry=self.telemetry,
        )

    def run_local(self, graph: COOGraph) -> "LocalTcResult":
        """Per-node (local) triangle counting — see :mod:`repro.core.local`."""
        from .local import LocalCountKernel
        from .result import LocalTcResult

        opts = self.options
        kernel = LocalCountKernel(num_nodes=graph.num_nodes, costs=opts.kernel_costs)
        prep = self._prepare(graph, kernel)
        clock, dpus, partitioner = prep.clock, prep.dpus, prep.partitioner

        with self.telemetry.span("triangle_count", clock=clock):
            dpus.launch(phase="triangle_count")
            # The local gather is heavy: one num_nodes-long vector per core.
            local_arrays = dpus.gather("local_counts", phase="triangle_count")
            raw_arrays = [
                dpu.mram.load("triangle_count", count_read=False) for dpu in dpus.dpus
            ]
            raw_counts = np.array([int(a[0]) for a in raw_arrays], dtype=np.int64)
            scales = prep.reservoir_scales()
            mono = partitioner.mono_mask()

            with self.telemetry.span("correction", clock=clock):
                locals_matrix = np.stack(local_arrays).astype(np.float64)
                locals_matrix /= scales[:, None]
                combined = locals_matrix.sum(axis=0)
                combined -= (opts.num_colors - 1) * locals_matrix[mono].sum(axis=0)
                combined /= prep.sample.p**3
                estimate = float(combined.sum() / 3.0)
                # Host-side vector reduction over all cores.
                clock.advance(
                    "triangle_count",
                    self._host_seconds(2.0, partitioner.num_dpus * graph.num_nodes),
                )

            kernel_aggregate = self._aggregate(dpus)
            dpus.free()
        self._record_kernel_metrics(kernel_aggregate)
        return LocalTcResult(
            estimate=estimate,
            num_colors=opts.num_colors,
            num_dpus=partitioner.num_dpus,
            clock=clock,
            per_dpu_counts=raw_counts,
            reservoir_scales=scales,
            edges_routed=prep.partition.counts,
            edges_input=graph.num_edges,
            uniform_p=prep.sample.p,
            kernel=kernel_aggregate,
            host_wall_seconds=time.perf_counter() - prep.wall_start,
            meta={
                "reservoir_capacity": prep.capacity,
                "edges_kept": prep.edges_kept,
                "misra_gries": (opts.misra_gries_k, opts.misra_gries_t),
            },
            trace=dpus.trace,
            telemetry=self.telemetry,
            local_estimates=combined,
        )

    # ----------------------------------------------------------------- internals
    def _record_sample_metrics(
        self,
        graph: COOGraph,
        kept: COOGraph,
        partition: EdgePartition,
        seen: np.ndarray,
        capacity: int,
    ) -> None:
        """Metrics of the sample-creation phase (engine-invariant inputs only).

        Everything observed here — partition counts, per-DPU seen totals, the
        reservoir capacity — is computed in the parent process and pinned by
        the executor parity tests, so the registry snapshot stays bit-
        identical across serial/thread/process engines.
        """
        tel = self.telemetry
        if not tel.enabled:
            return
        m = tel.metrics
        m.counter("host.edges_input", help="edges in the input graph").inc(
            graph.num_edges
        )
        m.counter("host.edges_kept", help="edges surviving uniform sampling").inc(
            kept.num_edges
        )
        m.counter("pim.edges_routed_total", help="edge copies routed to PIM cores").inc(
            int(partition.counts.sum())
        )
        m.histogram(
            "pim.edges_routed", help="edges routed per PIM core (load balance)"
        ).observe_many(partition.counts.astype(np.float64))
        m.gauge("pim.reservoir.capacity", help="per-core reservoir capacity").set(
            capacity
        )
        occupancy = np.minimum(seen, capacity) / float(capacity)
        m.histogram(
            "pim.reservoir.occupancy",
            buckets=DEFAULT_FRACTION_BUCKETS,
            help="per-core fraction of the reservoir filled",
        ).observe_many(occupancy)

    def _record_kernel_metrics(self, aggregate: KernelAggregate) -> None:
        """Kernel-side totals (identical across engines: the charge contract)."""
        tel = self.telemetry
        if not tel.enabled:
            return
        m = tel.metrics
        m.counter("kernel.instructions", help="DPU instructions, all cores").inc(
            aggregate.instructions
        )
        m.counter("kernel.dma_requests", help="MRAM DMA requests, all cores").inc(
            aggregate.dma_requests
        )
        m.counter("kernel.dma_bytes", help="MRAM DMA bytes, all cores").inc(
            aggregate.dma_bytes
        )
        m.counter("pipeline.runs", help="completed pipeline runs").inc()

    def _run_misra_gries(self, kept: COOGraph, clock: SimClock) -> RemapTable:
        """Per-thread Misra-Gries over the node stream, merged, top-t extracted."""
        opts = self.options
        cost = self.system.config.cost
        threads = cost.host_threads
        # Node stream: both endpoints of every kept edge, in stream order.
        stream = np.empty(2 * kept.num_edges, dtype=np.int64)
        stream[0::2] = kept.src
        stream[1::2] = kept.dst
        merged = MisraGries(opts.misra_gries_k)
        for chunk in np.array_split(stream, threads):
            local = MisraGries(opts.misra_gries_k)
            local.update_array(chunk)
            merged.merge(local)
        clock.advance(
            "sample_creation",
            self._host_seconds(opts.mg_host_cycles_per_edge, kept.num_edges),
        )
        top = merged.top(opts.misra_gries_t)
        if self.telemetry.enabled:
            m = self.telemetry.metrics
            m.gauge("mg.summary_size", help="entries in the merged MG summary").set(
                merged.size
            )
            m.gauge("mg.remapped_nodes", help="top-t nodes remapped in-core").set(
                len(top)
            )
        return RemapTable(nodes=np.array(top, dtype=np.int64), num_nodes=kept.num_nodes)

    @staticmethod
    def _aggregate(dpus) -> KernelAggregate:
        stats = [dpu.run_stats() for dpu in dpus.dpus]
        return KernelAggregate(
            instructions=sum(s.instructions for s in stats),
            dma_requests=sum(s.dma_requests for s in stats),
            dma_bytes=sum(s.dma_bytes for s in stats),
            max_dpu_compute_seconds=max((s.compute_seconds for s in stats), default=0.0),
        )
