"""Small argument-validation helpers shared across subsystems."""

from __future__ import annotations

from typing import Any

import numpy as np

from .errors import ConfigurationError

__all__ = ["require", "check_positive", "check_probability", "check_int_array"]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def check_positive(name: str, value: Any, *, strict: bool = True) -> int:
    """Validate that ``value`` is a (strictly) positive integer and return it."""
    if not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if strict and value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(name: str, value: Any, *, allow_zero: bool = False) -> float:
    """Validate that ``value`` is a probability in ``(0, 1]`` (or ``[0, 1]``)."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be a float, got {value!r}") from exc
    lo_ok = value >= 0.0 if allow_zero else value > 0.0
    if not (lo_ok and value <= 1.0):
        bound = "[0, 1]" if allow_zero else "(0, 1]"
        raise ConfigurationError(f"{name} must be in {bound}, got {value}")
    return value


def check_int_array(name: str, arr: Any, *, ndim: int = 1) -> np.ndarray:
    """Coerce ``arr`` to an integer ndarray of the given rank, validating dtype."""
    out = np.asarray(arr)
    if out.ndim != ndim:
        raise ConfigurationError(f"{name} must be {ndim}-D, got shape {out.shape}")
    if not np.issubdtype(out.dtype, np.integer):
        if out.size and not np.all(np.equal(np.mod(out, 1), 0)):
            raise ConfigurationError(f"{name} must contain integers")
        out = out.astype(np.int64)
    return out
