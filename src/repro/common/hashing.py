"""Universal hashing used for node coloring (paper Sec. 3.1).

The paper colors node ``u`` with ``h_C(u) = ((a*u + b) mod p) mod C`` where
``p`` is a large prime, ``a`` is uniform in ``[1, p-1]`` and ``b`` uniform in
``[0, p-1]``.  This is the classic Carter–Wegman universal family: it spreads
colors evenly over nodes regardless of the node-ID distribution, which is what
keeps the per-DPU edge loads close to the N / 3N / 6N expectation.

The implementation is vectorized: coloring a hundred-million-edge COO array is
two ``uint64`` multiplications and two modulo reductions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import ConfigurationError

__all__ = ["ColorHash", "MERSENNE_PRIME_61"]

#: 2**61 - 1.  Large enough that node IDs (< 2**32 in all our datasets) never
#: collide before the ``mod p`` reduction, and products a*u fit in uint128-free
#: Python ints / are handled safely via object-free uint64 math below.
MERSENNE_PRIME_61 = (1 << 61) - 1


@dataclass(frozen=True)
class ColorHash:
    """A member of the universal family ``u -> ((a*u + b) mod p) mod C``.

    Parameters
    ----------
    a, b:
        Hash coefficients, ``1 <= a < p`` and ``0 <= b < p``.
    num_colors:
        ``C`` in the paper; the hash output range is ``[0, C)``.
    p:
        Modulus prime.  Defaults to the Mersenne prime ``2**61 - 1``.
    """

    a: int
    b: int
    num_colors: int
    p: int = MERSENNE_PRIME_61

    def __post_init__(self) -> None:
        if self.num_colors < 1:
            raise ConfigurationError(f"num_colors must be >= 1, got {self.num_colors}")
        if not (1 <= self.a < self.p):
            raise ConfigurationError(f"hash coefficient a={self.a} outside [1, p)")
        if not (0 <= self.b < self.p):
            raise ConfigurationError(f"hash coefficient b={self.b} outside [0, p)")

    @classmethod
    def random(cls, num_colors: int, rng: np.random.Generator, p: int = MERSENNE_PRIME_61) -> "ColorHash":
        """Draw a random member of the family, as the host does at startup."""
        a = int(rng.integers(1, p))
        b = int(rng.integers(0, p))
        return cls(a=a, b=b, num_colors=num_colors, p=p)

    def color(self, node: int) -> int:
        """Color of a single node ID (scalar convenience path)."""
        return int(((self.a * int(node) + self.b) % self.p) % self.num_colors)

    def color_array(self, nodes: np.ndarray) -> np.ndarray:
        """Vectorized coloring of an array of node IDs.

        Node IDs must fit in 61 bits.  The product ``a*u`` can exceed 64 bits,
        so the reduction is performed with Python-int exactness via
        ``numpy.object_``-free splitting: we decompose ``a = a_hi * 2**30 + a_lo``
        and reduce each partial product modulo the Mersenne prime using its
        fold identity ``x mod (2**61-1) == (x >> 61) + (x & (2**61-1))`` applied
        to 64-bit-safe partials.
        """
        u = np.asarray(nodes, dtype=np.uint64)
        if u.size and int(u.max(initial=0)) >= self.p:
            raise ConfigurationError("node IDs must be < hash modulus p")
        p = np.uint64(self.p)
        mask61 = np.uint64(self.p)  # 2**61 - 1 doubles as the fold mask
        a_hi = np.uint64(self.a >> 30)
        a_lo = np.uint64(self.a & ((1 << 30) - 1))
        u_hi = u >> np.uint64(31)
        u_lo = u & np.uint64((1 << 31) - 1)

        def fold(x: np.ndarray) -> np.ndarray:
            # Reduce a value < 2**64 modulo 2**61 - 1 without overflow.
            x = (x >> np.uint64(61)) + (x & mask61)
            return np.where(x >= p, x - p, x)

        # a*u = a_hi*u_hi*2**61 + (a_hi*u_lo + a_lo*u_hi)*2**30-ish split:
        # a = a_hi*2**30 + a_lo (a_hi < 2**31), u = u_hi*2**31 + u_lo (u_hi < 2**30).
        # Partial products each fit in < 2**62, so uint64 arithmetic is exact.
        t1 = fold(a_hi * u_hi)  # contributes * 2**61 == * 1 (mod 2**61-1)... careful below
        # 2**61 mod (2**61 - 1) == 1, so the 2**61-weighted term folds to itself.
        t2 = a_hi * u_lo  # weight 2**30
        t3 = a_lo * u_hi  # weight 2**31
        t4 = a_lo * u_lo  # weight 1

        def shift_mod(x: np.ndarray, k: int) -> np.ndarray:
            """Compute (x * 2**k) mod (2**61 - 1) for x < p, k < 61: rotate within 61 bits."""
            x = fold(x)
            return fold(((x << np.uint64(k)) & mask61) + (x >> np.uint64(61 - k)))

        total = fold(fold(t1) + shift_mod(t2, 30))
        total = fold(total + shift_mod(t3, 31))
        total = fold(total + fold(t4))
        total = fold(total + np.uint64(self.b % self.p))
        return (total % np.uint64(self.num_colors)).astype(np.int64)

    def __call__(self, nodes: np.ndarray) -> np.ndarray:
        return self.color_array(nodes)
