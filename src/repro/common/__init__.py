"""Shared utilities: errors, units, deterministic RNG streams, universal hashing."""

from .errors import (
    ConfigurationError,
    GraphFormatError,
    KernelLaunchError,
    MramCapacityError,
    PimAllocationError,
    ReproError,
    TransferError,
    WramCapacityError,
)
from .hashing import ColorHash, MERSENNE_PRIME_61
from .rng import RngFactory, derive_seed
from .units import GiB, KiB, MiB, fmt_bytes, fmt_rate, fmt_time
from .validation import check_int_array, check_positive, check_probability, require

__all__ = [
    "ReproError",
    "GraphFormatError",
    "ConfigurationError",
    "PimAllocationError",
    "MramCapacityError",
    "WramCapacityError",
    "KernelLaunchError",
    "TransferError",
    "ColorHash",
    "MERSENNE_PRIME_61",
    "RngFactory",
    "derive_seed",
    "KiB",
    "MiB",
    "GiB",
    "fmt_bytes",
    "fmt_time",
    "fmt_rate",
    "require",
    "check_positive",
    "check_probability",
    "check_int_array",
]
