"""Unit helpers for sizes, times, and rates.

The PIM simulator accounts for time in seconds (floats) and sizes in bytes
(ints).  These helpers keep call sites readable (``64 * MiB`` instead of
``67108864``) and provide pretty-printers used by experiment reports.
"""

from __future__ import annotations

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "KB",
    "MB",
    "GB",
    "NS",
    "US",
    "MS",
    "fmt_bytes",
    "fmt_time",
    "fmt_rate",
]

# Binary sizes (memory capacities are conventionally binary).
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

# Decimal sizes (bandwidths are conventionally decimal).
KB = 1000
MB = 1000 * KB
GB = 1000 * MB

# Time in seconds.
NS = 1e-9
US = 1e-6
MS = 1e-3


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary suffix, e.g. ``fmt_bytes(65536) == '64.0 KiB'``."""
    n = float(n)
    for suffix, scale in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(n) >= scale:
            return f"{n / scale:.1f} {suffix}"
    return f"{n:.0f} B"


def fmt_time(seconds: float) -> str:
    """Format a duration with an adaptive unit, e.g. ``fmt_time(0.0032) == '3.200 ms'``."""
    s = float(seconds)
    if abs(s) >= 1.0:
        return f"{s:.3f} s"
    if abs(s) >= MS:
        return f"{s / MS:.3f} ms"
    if abs(s) >= US:
        return f"{s / US:.3f} us"
    return f"{s / NS:.1f} ns"


def fmt_rate(count: float, seconds: float, unit: str = "edges") -> str:
    """Format a throughput, e.g. ``fmt_rate(1e6, 2.0) == '500.0 Kedges/s'``."""
    if seconds <= 0:
        return f"inf {unit}/s"
    rate = count / seconds
    for suffix, scale in (("G", 1e9), ("M", 1e6), ("K", 1e3)):
        if rate >= scale:
            return f"{rate / scale:.1f} {suffix}{unit}/s"
    return f"{rate:.1f} {unit}/s"
