"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  Subclasses partition failures into the major
subsystems (graph handling, the PIM simulator, and algorithm configuration),
mirroring the failure modes of the original UPMEM software stack (host-side
input errors, DPU allocation/capacity errors, kernel launch errors).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "PimAllocationError",
    "MramCapacityError",
    "WramCapacityError",
    "KernelLaunchError",
    "TransferError",
    "ConfigurationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """Raised when graph input (COO file, edge array) is malformed."""


class ConfigurationError(ReproError):
    """Raised when algorithm or system parameters are invalid or inconsistent."""


class PimAllocationError(ReproError):
    """Raised when the requested number of PIM cores cannot be allocated."""


class MramCapacityError(ReproError):
    """Raised when a DPU DRAM bank (MRAM) allocation exceeds the bank size.

    The production algorithm avoids this error by falling back to reservoir
    sampling; it therefore only escapes when reservoir sampling is explicitly
    disabled.
    """


class WramCapacityError(ReproError):
    """Raised when a tasklet requests a scratchpad (WRAM) buffer that does not fit."""


class KernelLaunchError(ReproError):
    """Raised when a PIM kernel cannot be launched (e.g. no kernel loaded)."""


class TransferError(ReproError):
    """Raised on invalid CPU<->PIM transfer requests (bad sizes, unallocated DPUs)."""
