"""Deterministic, named random streams.

Every stochastic component of the pipeline (node coloring, uniform edge
sampling, per-DPU reservoir sampling, graph generation) draws from its own
named stream derived from a single experiment seed.  This gives three
properties the evaluation methodology depends on:

* **Reproducibility** — the same seed regenerates every table/figure row
  bit-for-bit.
* **Independence** — changing one component's parameters (e.g. the uniform
  sampling probability) does not perturb the random decisions of another
  (e.g. which color each node receives), so sweeps isolate one variable.
* **Per-DPU streams** — each simulated PIM core owns an independent reservoir
  stream, exactly as each physical DPU owns an independent PRNG state.

Streams are derived with :class:`numpy.random.SeedSequence` using the stable
hash of the stream name, which is the documented mechanism for spawning
independent child generators.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngFactory", "derive_seed"]


def derive_seed(seed: int, name: str) -> int:
    """Derive a deterministic child seed from a root ``seed`` and a stream ``name``.

    Uses CRC32 of the name (stable across processes, unlike ``hash``) mixed
    into a ``SeedSequence``.
    """
    tag = zlib.crc32(name.encode("utf-8"))
    return int(np.random.SeedSequence([seed & 0xFFFFFFFF, tag]).generate_state(1)[0])


class RngFactory:
    """Factory producing independent named :class:`numpy.random.Generator` streams.

    Examples
    --------
    >>> rngs = RngFactory(seed=42)
    >>> coloring_rng = rngs.stream("coloring")
    >>> dpu_rng = rngs.stream("reservoir/dpu", index=17)
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)

    def stream(self, name: str, index: int | None = None) -> np.random.Generator:
        """Return a fresh generator for stream ``name`` (optionally sub-indexed).

        Calling twice with the same arguments returns generators with identical
        state, so components can re-create their stream instead of threading
        generator objects through every call.
        """
        tag = zlib.crc32(name.encode("utf-8"))
        entropy = [self.seed & 0xFFFFFFFF, tag]
        if index is not None:
            entropy.append(int(index) & 0xFFFFFFFF)
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def child(self, name: str) -> "RngFactory":
        """Return a factory rooted at a derived seed (for nested components)."""
        return RngFactory(derive_seed(self.seed, name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self.seed})"
