"""Compressed-sparse-row (CSR) graph representation.

The state-of-the-art CPU baseline in the paper (Tom et al.) accepts COO input
but converts it internally to CSR before counting; the conversion cost is the
crux of the dynamic-graph comparison (Fig. 7).  This module provides the CSR
container, the COO->CSR conversion together with an explicit accounting of the
work it performs, and forward (oriented) adjacency construction used by the
counting kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import GraphFormatError
from .coo import COOGraph

__all__ = ["CSRGraph", "ConversionStats", "coo_to_csr", "forward_csr"]


@dataclass(frozen=True)
class ConversionStats:
    """Work performed by a COO->CSR conversion (drives the CPU cost model).

    Attributes
    ----------
    edges_scanned:
        Edge tuples read from the COO stream (2x for symmetrization).
    bytes_moved:
        Bytes read + written while building the adjacency arrays.
    sort_ops:
        Comparison-ish operations charged for the counting sort / bucketing.
    """

    edges_scanned: int
    bytes_moved: int
    sort_ops: int


@dataclass
class CSRGraph:
    """Adjacency in CSR form: neighbors of ``u`` are ``indices[indptr[u]:indptr[u+1]]``.

    Neighbor lists are sorted ascending, which both the merge-based kernels and
    the binary-search membership tests rely on.
    """

    indptr: np.ndarray
    indices: np.ndarray
    num_nodes: int

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        if self.indptr.size != self.num_nodes + 1:
            raise GraphFormatError(
                f"indptr must have num_nodes+1={self.num_nodes + 1} entries, got {self.indptr.size}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise GraphFormatError("indptr must start at 0 and end at len(indices)")

    @property
    def num_entries(self) -> int:
        return int(self.indices.size)

    def neighbors(self, u: int) -> np.ndarray:
        """Sorted neighbor array of node ``u`` (a view, not a copy)."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def degree(self, u: int) -> int:
        return int(self.indptr[u + 1] - self.indptr[u])

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def nbytes(self) -> int:
        return int(self.indptr.nbytes + self.indices.nbytes)


def coo_to_csr(graph: COOGraph, symmetrize: bool = True) -> tuple[CSRGraph, ConversionStats]:
    """Convert a COO graph to CSR, returning the structure and its build cost.

    With ``symmetrize=True`` (the CPU baseline's behaviour) every undirected
    edge appears in both adjacency lists.  The accounting mirrors what an
    optimized two-pass counting-sort conversion performs: one pass to histogram
    degrees, one pass to scatter, plus a per-list sort charged at
    ``n log(avg_degree)`` comparisons.
    """
    if symmetrize:
        u = np.concatenate([graph.src, graph.dst])
        v = np.concatenate([graph.dst, graph.src])
    else:
        u, v = graph.src, graph.dst
    n = graph.num_nodes
    order = np.lexsort((v, u))
    u_sorted = u[order]
    v_sorted = v[order]
    counts = np.bincount(u_sorted, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    csr = CSRGraph(indptr=indptr, indices=v_sorted, num_nodes=n)

    m = int(u.size)
    avg_deg = max(2.0, m / max(1, n))
    stats = ConversionStats(
        edges_scanned=m,
        bytes_moved=int(u.nbytes + v.nbytes + v_sorted.nbytes + indptr.nbytes),
        sort_ops=int(m * np.log2(avg_deg)),
    )
    return csr, stats


def forward_csr(graph: COOGraph) -> CSRGraph:
    """CSR over the *oriented* edges ``u < v`` only (forward adjacency ``N+``).

    This is the layout the DPU kernel builds in its DRAM bank after the sort
    step (paper Sec. 3.4, Fig. 2): edges ordered by first node, each region of
    equal first node listing that node's larger-ID neighbors ascending.
    """
    u = np.minimum(graph.src, graph.dst)
    v = np.maximum(graph.src, graph.dst)
    keep = u != v
    u, v = u[keep], v[keep]
    order = np.lexsort((v, u))
    u, v = u[order], v[order]
    n = graph.num_nodes
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(u, minlength=n), out=indptr[1:])
    return CSRGraph(indptr=indptr, indices=v, num_nodes=n)
