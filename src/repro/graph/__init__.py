"""Graph substrate: COO/CSR containers, IO, generators, statistics, exact oracle."""

from .coo import COOGraph
from .csr import CSRGraph, ConversionStats, coo_to_csr, forward_csr
from .datasets import DATASET_NAMES, TIERS, get_dataset
from .generators import (
    barabasi_albert,
    configuration_model,
    dense_community,
    erdos_renyi,
    grid_with_diagonals,
    hub_graph,
    powerlaw_degree_sequence,
    rmat,
    triadic_closure,
)
from .io import load_npz, read_edge_list, read_matrix_market, save_npz, write_edge_list
from .stats import GraphStats, compute_stats, degree_stats
from .local_triangles import count_triangles_per_node, local_clustering
from .triangles import count_triangles, triangles_per_edge_budget, wedge_count

__all__ = [
    "COOGraph",
    "CSRGraph",
    "ConversionStats",
    "coo_to_csr",
    "forward_csr",
    "DATASET_NAMES",
    "TIERS",
    "get_dataset",
    "rmat",
    "erdos_renyi",
    "barabasi_albert",
    "triadic_closure",
    "grid_with_diagonals",
    "hub_graph",
    "dense_community",
    "configuration_model",
    "powerlaw_degree_sequence",
    "read_edge_list",
    "read_matrix_market",
    "write_edge_list",
    "save_npz",
    "load_npz",
    "GraphStats",
    "compute_stats",
    "degree_stats",
    "count_triangles",
    "count_triangles_per_node",
    "local_clustering",
    "wedge_count",
    "triangles_per_edge_budget",
]
