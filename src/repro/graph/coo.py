"""Coordinate-list (COO) graph container.

The paper's entire pipeline is built around the COO representation: the host
reads a stream of ``(u, v)`` tuples, and each PIM core stores its sub-graph as
a plain edge array in its DRAM bank (paper Fig. 2).  COO is also what makes
the dynamic-graph experiment (Fig. 7) possible — updates are appended to the
edge list without rebuilding an index.

:class:`COOGraph` is an immutable-by-convention pair of ``int64`` arrays plus
a node count.  All preprocessing used in the paper's methodology (Sec. 4.1) is
provided: removal of self-loops and duplicate (undirected) edges, and a
uniform shuffle standing in for the ``shuf`` command-line utility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..common.errors import GraphFormatError
from ..common.validation import check_int_array

__all__ = ["COOGraph"]


@dataclass
class COOGraph:
    """A simple, unweighted, undirected graph stored as an edge list.

    Attributes
    ----------
    src, dst:
        ``int64`` arrays of equal length holding edge endpoints.  The graph is
        undirected; an edge may be stored in either orientation unless
        :meth:`canonicalize` has been applied.
    num_nodes:
        Number of node IDs, i.e. IDs are in ``[0, num_nodes)``.
    """

    src: np.ndarray
    dst: np.ndarray
    num_nodes: int
    name: str = field(default="graph", compare=False)

    def __post_init__(self) -> None:
        self.src = check_int_array("src", self.src).astype(np.int64, copy=False)
        self.dst = check_int_array("dst", self.dst).astype(np.int64, copy=False)
        if self.src.shape != self.dst.shape:
            raise GraphFormatError(
                f"src and dst must have equal length, got {self.src.size} and {self.dst.size}"
            )
        if self.src.size:
            lo = min(int(self.src.min()), int(self.dst.min()))
            hi = max(int(self.src.max()), int(self.dst.max()))
            if lo < 0:
                raise GraphFormatError(f"negative node ID {lo}")
            if hi >= self.num_nodes:
                raise GraphFormatError(
                    f"node ID {hi} out of range for num_nodes={self.num_nodes}"
                )

    # ------------------------------------------------------------------ basics
    @property
    def num_edges(self) -> int:
        """Number of stored edge tuples (after canonicalize: undirected edges)."""
        return int(self.src.size)

    def __len__(self) -> int:
        return self.num_edges

    def edges(self) -> np.ndarray:
        """Return an ``(m, 2)`` view-like array of the edge list."""
        return np.stack([self.src, self.dst], axis=1)

    @classmethod
    def from_edges(
        cls,
        edges: Sequence[tuple[int, int]] | np.ndarray,
        num_nodes: int | None = None,
        name: str = "graph",
    ) -> "COOGraph":
        """Build a graph from an ``(m, 2)`` array or a sequence of pairs."""
        arr = np.asarray(edges, dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphFormatError(f"edges must have shape (m, 2), got {arr.shape}")
        if num_nodes is None:
            num_nodes = int(arr.max(initial=-1)) + 1
        return cls(src=arr[:, 0].copy(), dst=arr[:, 1].copy(), num_nodes=num_nodes, name=name)

    # ------------------------------------------------------------ preprocessing
    def canonicalize(self) -> "COOGraph":
        """Apply the paper's preprocessing: drop self-loops and duplicate edges.

        Duplicates are detected on the *undirected* edge, i.e. ``(u, v)`` and
        ``(v, u)`` are the same edge.  The surviving copy is oriented with
        ``u < v``.  The result is sorted lexicographically (callers that need
        the stream order randomized — as the paper does with ``shuf`` — should
        chain :meth:`shuffle`).
        """
        u = np.minimum(self.src, self.dst)
        v = np.maximum(self.src, self.dst)
        keep = u != v
        u, v = u[keep], v[keep]
        # Lexicographic sort + consecutive-duplicate drop (no packed keys, so
        # arbitrarily large sparse ID spaces are safe here).
        order = np.lexsort((v, u))
        u, v = u[order], v[order]
        if u.size:
            fresh = np.empty(u.size, dtype=bool)
            fresh[0] = True
            fresh[1:] = (u[1:] != u[:-1]) | (v[1:] != v[:-1])
            u, v = u[fresh], v[fresh]
        return COOGraph(src=u, dst=v, num_nodes=self.num_nodes, name=self.name)

    def is_canonical(self) -> bool:
        """True if edges are oriented ``u < v`` and free of duplicates/self-loops."""
        if self.num_edges == 0:
            return True
        if not bool(np.all(self.src < self.dst)):
            return False
        order = np.lexsort((self.dst, self.src))
        u, v = self.src[order], self.dst[order]
        dup = (u[1:] == u[:-1]) & (v[1:] == v[:-1])
        return not bool(dup.any())

    def shuffle(self, rng: np.random.Generator) -> "COOGraph":
        """Return a copy with the edge stream order randomly permuted.

        Mirrors the ``shuf`` preprocessing in the paper's methodology: stream
        order matters for reservoir sampling and Misra-Gries, so experiments
        always randomize it.
        """
        perm = rng.permutation(self.num_edges)
        return COOGraph(
            src=self.src[perm], dst=self.dst[perm], num_nodes=self.num_nodes, name=self.name
        )

    # ------------------------------------------------------------------- views
    def edge_keys(self, oriented: bool = True) -> np.ndarray:
        """Unique ``int64`` key per edge: ``min*n + max`` (or ``src*n + dst``).

        Keys are the backbone of the vectorized membership tests used by the
        fast kernels: sorted keys + ``searchsorted`` is the NumPy analogue of
        the binary search into the region table the DPU kernel performs.
        """
        if self.num_nodes > 3_000_000_000:
            raise GraphFormatError(
                "edge keys need num_nodes**2 < 2**63; compact() sparse ID spaces first"
            )
        if oriented:
            u = np.minimum(self.src, self.dst)
            v = np.maximum(self.src, self.dst)
        else:
            u, v = self.src, self.dst
        return u * np.int64(self.num_nodes) + v

    def degrees(self) -> np.ndarray:
        """Undirected degree of every node (assumes canonical form for exactness)."""
        deg = np.bincount(self.src, minlength=self.num_nodes)
        deg += np.bincount(self.dst, minlength=self.num_nodes)
        return deg

    def nbytes(self) -> int:
        """Size of the edge list in bytes as stored on a PIM core (2 x int64)."""
        return int(self.src.nbytes + self.dst.nbytes)

    # ----------------------------------------------------------------- updates
    def concat(self, other: "COOGraph", name: str | None = None) -> "COOGraph":
        """Append another edge list (a dynamic-graph batch) — O(new) COO update."""
        n = max(self.num_nodes, other.num_nodes)
        return COOGraph(
            src=np.concatenate([self.src, other.src]),
            dst=np.concatenate([self.dst, other.dst]),
            num_nodes=n,
            name=name or self.name,
        )

    def slice(self, start: int, stop: int) -> "COOGraph":
        """Sub-stream of edges ``[start, stop)`` in current stream order."""
        return COOGraph(
            src=self.src[start:stop],
            dst=self.dst[start:stop],
            num_nodes=self.num_nodes,
            name=f"{self.name}[{start}:{stop}]",
        )

    def split_batches(self, num_batches: int) -> list["COOGraph"]:
        """Split the edge stream into ``num_batches`` contiguous chunks.

        This is exactly the paper's dynamic-graph simulation (Sec. 4.6): the
        input graph is divided into smaller subgraphs merged in one at a time.
        """
        if num_batches < 1:
            raise GraphFormatError("num_batches must be >= 1")
        bounds = np.linspace(0, self.num_edges, num_batches + 1).astype(np.int64)
        return [self.slice(int(bounds[i]), int(bounds[i + 1])) for i in range(num_batches)]

    def compact(self) -> tuple["COOGraph", np.ndarray]:
        """Relabel nodes to a dense ``[0, k)`` ID range; returns (graph, mapping).

        Public COO datasets often carry sparse ID spaces (the paper's V1r has
        214M node IDs) while the in-memory pipeline wants dense IDs for its
        O(num_nodes) accumulators.  ``mapping[new_id] == old_id`` recovers the
        original labels.  Isolated nodes (IDs that appear in no edge)
        disappear — they cannot participate in triangles.
        """
        if self.num_edges == 0:
            return (
                COOGraph(
                    src=self.src.copy(), dst=self.dst.copy(), num_nodes=0, name=self.name
                ),
                np.empty(0, dtype=np.int64),
            )
        mapping, inverse = np.unique(
            np.concatenate([self.src, self.dst]), return_inverse=True
        )
        m = self.num_edges
        return (
            COOGraph(
                src=inverse[:m].astype(np.int64),
                dst=inverse[m:].astype(np.int64),
                num_nodes=int(mapping.size),
                name=self.name,
            ),
            mapping.astype(np.int64),
        )

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Iterate edges as Python tuples (test/reference paths only)."""
        for u, v in zip(self.src.tolist(), self.dst.tolist()):
            yield (u, v)

    def __repr__(self) -> str:
        return (
            f"COOGraph(name={self.name!r}, num_nodes={self.num_nodes}, "
            f"num_edges={self.num_edges})"
        )
