"""Per-node (local) triangle counting — the oracle side.

The paper's approximation machinery descends from TRIÈST (De Stefani et al.,
reference [48]), which estimates *local* triangle counts — the number of
triangles each node participates in — alongside the global total.  This
module provides the exact per-node oracle; :mod:`repro.core.local` runs the
same computation on the simulated PIM system.

The local count vector ``L`` satisfies ``L.sum() == 3 * T`` (each triangle
touches three nodes) and yields per-node clustering coefficients
``c(v) = L[v] / (deg(v) * (deg(v) - 1) / 2)``.

Implementation: with the symmetric adjacency ``S``, the closed-wedge count at
``v`` is ``((S @ S) .* S).sum(axis=1)[v] / 2``; rows are processed in chunks
to bound the intermediate product's memory, exactly like the global oracle.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .coo import COOGraph

__all__ = ["count_triangles_per_node", "local_clustering"]


def count_triangles_per_node(
    graph: COOGraph, chunk_nnz: int = 1 << 24
) -> np.ndarray:
    """Exact triangles-per-node vector of ``graph`` (length ``num_nodes``)."""
    g = graph if graph.is_canonical() else graph.canonicalize()
    n = g.num_nodes
    local = np.zeros(n, dtype=np.int64)
    m = g.num_edges
    if m == 0:
        return local
    ones = np.ones(2 * m, dtype=np.int64)
    rows = np.concatenate([g.src, g.dst])
    cols = np.concatenate([g.dst, g.src])
    sym = sp.csr_matrix((ones, (rows, cols)), shape=(n, n))
    deg = np.diff(sym.indptr)
    # Row wedge work bounds the chunk product size.
    cs = np.concatenate(([0], np.cumsum(deg[sym.indices])))
    row_wedges = cs[sym.indptr[1:]] - cs[sym.indptr[:-1]]
    cum = np.concatenate(([0], np.cumsum(row_wedges)))
    row = 0
    while row < n:
        stop = int(np.searchsorted(cum, cum[row] + chunk_nnz, side="right"))
        stop = min(max(stop - 1, row + 1), n)
        block = sym[row:stop, :]
        closed = (block @ sym).multiply(block)
        local[row:stop] = np.asarray(closed.sum(axis=1)).ravel() // 2
        row = stop
    return local


def local_clustering(graph: COOGraph, per_node: np.ndarray | None = None) -> np.ndarray:
    """Per-node clustering coefficients ``L[v] / binom(deg(v), 2)`` (0 if deg < 2)."""
    g = graph if graph.is_canonical() else graph.canonicalize()
    if per_node is None:
        per_node = count_triangles_per_node(g)
    deg = g.degrees().astype(np.float64)
    wedges = deg * (deg - 1) / 2.0
    out = np.zeros(g.num_nodes, dtype=np.float64)
    mask = wedges > 0
    out[mask] = per_node[mask] / wedges[mask]
    return out
