"""Reading and writing COO edge lists.

The paper's host code streams a text file of ``(row, column)`` tuples.  We
support that format (with ``#`` / ``%`` comment lines, as used by SNAP and
SuiteSparse exports) plus a compact ``.npz`` binary format for cached datasets.
"""

from __future__ import annotations

import io
import os
from pathlib import Path

import numpy as np

from ..common.errors import GraphFormatError
from .coo import COOGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_matrix_market",
    "save_npz",
    "load_npz",
]


def read_edge_list(
    path: str | os.PathLike | io.TextIOBase,
    num_nodes: int | None = None,
    name: str | None = None,
) -> COOGraph:
    """Parse a whitespace-separated edge-list text file into a :class:`COOGraph`.

    Lines starting with ``#`` or ``%`` are comments.  Each data line must hold
    at least two integer fields (extra fields, e.g. weights or timestamps, are
    ignored, matching how the paper treats its datasets as unweighted).
    """
    if isinstance(path, io.TextIOBase):
        text = path.read()
        label = name or "stream"
    else:
        p = Path(path)
        text = p.read_text()
        label = name or p.stem
    rows: list[int] = []
    cols: list[int] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line[0] in "#%":
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphFormatError(f"line {lineno}: expected at least two fields, got {line!r}")
        try:
            rows.append(int(parts[0]))
            cols.append(int(parts[1]))
        except ValueError as exc:
            raise GraphFormatError(f"line {lineno}: non-integer node ID in {line!r}") from exc
    src = np.asarray(rows, dtype=np.int64)
    dst = np.asarray(cols, dtype=np.int64)
    if num_nodes is None:
        num_nodes = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1
    return COOGraph(src=src, dst=dst, num_nodes=num_nodes, name=label)


def read_matrix_market(
    path: str | os.PathLike | io.TextIOBase, name: str | None = None
) -> COOGraph:
    """Parse a SuiteSparse / Matrix Market coordinate file as a graph.

    The paper's V1r input comes from the SuiteSparse collection, which ships
    ``.mtx`` files: a ``%%MatrixMarket matrix coordinate ...`` banner, comment
    lines, one ``rows cols nnz`` size line, then 1-based ``row col [value]``
    entries.  Values are ignored (the TC problem is unweighted); indices are
    shifted to 0-based.
    """
    if isinstance(path, io.TextIOBase):
        text = path.read()
        label = name or "mtx"
    else:
        p = Path(path)
        text = p.read_text()
        label = name or p.stem
    lines = [ln.strip() for ln in text.splitlines()]
    body = [ln for ln in lines if ln and not ln.startswith("%")]
    if not body:
        raise GraphFormatError("matrix market file has no size line")
    size_fields = body[0].split()
    if len(size_fields) != 3:
        raise GraphFormatError(f"malformed size line: {body[0]!r}")
    try:
        rows_n, cols_n, nnz = (int(f) for f in size_fields)
    except ValueError as exc:
        raise GraphFormatError(f"non-integer size line: {body[0]!r}") from exc
    entries = body[1:]
    if len(entries) != nnz:
        raise GraphFormatError(f"expected {nnz} entries, found {len(entries)}")
    src = np.empty(nnz, dtype=np.int64)
    dst = np.empty(nnz, dtype=np.int64)
    for i, line in enumerate(entries):
        parts = line.split()
        if len(parts) < 2:
            raise GraphFormatError(f"entry {i + 1}: expected 'row col', got {line!r}")
        try:
            src[i] = int(parts[0]) - 1
            dst[i] = int(parts[1]) - 1
        except ValueError as exc:
            raise GraphFormatError(f"entry {i + 1}: non-integer index in {line!r}") from exc
    if nnz and (src.min() < 0 or dst.min() < 0):
        raise GraphFormatError("matrix market indices must be 1-based")
    return COOGraph(src=src, dst=dst, num_nodes=max(rows_n, cols_n), name=label)


def write_edge_list(graph: COOGraph, path: str | os.PathLike, header: bool = True) -> None:
    """Write the graph as a text edge list (one ``u v`` pair per line)."""
    p = Path(path)
    with p.open("w") as fh:
        if header:
            fh.write(f"# {graph.name}: {graph.num_nodes} nodes, {graph.num_edges} edges\n")
        np.savetxt(fh, graph.edges(), fmt="%d")


def save_npz(graph: COOGraph, path: str | os.PathLike) -> None:
    """Save the graph in compressed binary form (fast cache format)."""
    np.savez_compressed(
        Path(path),
        src=graph.src,
        dst=graph.dst,
        num_nodes=np.int64(graph.num_nodes),
        name=np.bytes_(graph.name.encode("utf-8")),
    )


def load_npz(path: str | os.PathLike) -> COOGraph:
    """Load a graph previously written by :func:`save_npz`."""
    with np.load(Path(path)) as data:
        return COOGraph(
            src=data["src"],
            dst=data["dst"],
            num_nodes=int(data["num_nodes"]),
            name=bytes(data["name"]).decode("utf-8"),
        )
