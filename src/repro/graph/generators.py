"""Synthetic graph generators for the paper's dataset analogues.

The evaluation graphs in the paper are 40M-270M-edge public datasets
(Table 1).  Downloading them is impossible offline and processing them is far
beyond a pure-Python substrate, so :mod:`repro.graph.datasets` builds
scaled-down analogues with each graph's *defining property* preserved:

* ``rmat`` — Graph500 Kronecker generator (the actual generator behind the
  paper's Kronecker 23/24 inputs): power-law degrees, very high max degree.
* ``barabasi_albert`` + ``triadic_closure`` — social-network analogues
  (LiveJournal / Orkut): heavy-tailed degrees with strong clustering.
* ``grid_with_diagonals`` — road-network analogue (V1r): tiny max degree and
  a handful of planted triangles.
* ``hub_graph`` — WikipediaEdit analogue: a few extreme hubs whose degree is
  orders of magnitude above the rest, negligible clustering.
* ``dense_community`` — Human-Jung (brain network) analogue: enormous average
  degree, bounded max degree, very high clustering / triangle density.

All generators are vectorized and deterministic given a generator from
:class:`repro.common.rng.RngFactory`.
"""

from __future__ import annotations

import numpy as np

from ..common.validation import check_positive, check_probability, require
from .coo import COOGraph

__all__ = [
    "rmat",
    "erdos_renyi",
    "barabasi_albert",
    "triadic_closure",
    "grid_with_diagonals",
    "hub_graph",
    "dense_community",
    "powerlaw_degree_sequence",
    "configuration_model",
]


def rmat(
    scale: int,
    edge_factor: int,
    rng: np.random.Generator,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    name: str = "rmat",
) -> COOGraph:
    """Graph500 R-MAT/Kronecker generator: ``2**scale`` nodes, ``edge_factor * n`` edges.

    Default quadrant probabilities are the Graph500 reference values, matching
    the paper's Kronecker 23/24 inputs.  Edges are emitted raw (with possible
    duplicates and self-loops) exactly like the reference generator; callers
    canonicalize, as the paper does in preprocessing.
    """
    scale = check_positive("scale", scale)
    edge_factor = check_positive("edge_factor", edge_factor)
    d = 1.0 - a - b - c
    require(d >= 0.0, "RMAT probabilities must sum to at most 1")
    n = 1 << scale
    m = edge_factor * n
    u = np.zeros(m, dtype=np.int64)
    v = np.zeros(m, dtype=np.int64)
    # For every bit level, choose a quadrant for all edges at once.
    thresholds = np.array([a, a + b, a + b + c])
    for level in range(scale):
        r = rng.random(m)
        quadrant = np.searchsorted(thresholds, r)
        u |= ((quadrant >> 1) & 1).astype(np.int64) << level
        v |= (quadrant & 1).astype(np.int64) << level
    return COOGraph(src=u, dst=v, num_nodes=n, name=name)


def erdos_renyi(n: int, m: int, rng: np.random.Generator, name: str = "gnm") -> COOGraph:
    """G(n, m)-style random graph with exactly ``m`` distinct undirected edges.

    Sampled by drawing edge keys without replacement (rejection loop with a
    vectorized batch per round).
    """
    n = check_positive("n", n)
    m = check_positive("m", m, strict=False)
    max_edges = n * (n - 1) // 2
    require(m <= max_edges, f"m={m} exceeds the {max_edges} possible edges")
    chosen = np.empty(0, dtype=np.int64)
    while chosen.size < m:
        need = m - chosen.size
        us = rng.integers(0, n, size=int(need * 1.3) + 8)
        vs = rng.integers(0, n, size=us.size)
        lo = np.minimum(us, vs)
        hi = np.maximum(us, vs)
        keys = lo * np.int64(n) + hi
        keys = keys[lo != hi]
        chosen = np.unique(np.concatenate([chosen, keys]))
        if chosen.size > m:
            chosen = rng.permutation(chosen)[:m]
    src = chosen // n
    dst = chosen % n
    return COOGraph(src=src, dst=dst, num_nodes=n, name=name)


def barabasi_albert(
    n: int, attach: int, rng: np.random.Generator, name: str = "ba"
) -> COOGraph:
    """Preferential-attachment graph: each new node attaches to ``attach`` targets.

    Uses the classic repeated-endpoints sampling so target probability is
    proportional to current degree.  Multi-edges collapse at canonicalize.
    """
    n = check_positive("n", n)
    attach = check_positive("attach", attach)
    require(n > attach, "n must exceed attach")
    total_edges = (n - attach) * attach
    src = np.empty(total_edges, dtype=np.int64)
    dst = np.empty(total_edges, dtype=np.int64)
    # Endpoint pool for preferential sampling; seeded with a clique-ish core.
    pool = np.empty(2 * total_edges + 2 * attach, dtype=np.int64)
    pool[: 2 * attach] = np.repeat(np.arange(attach), 2)
    fill = 2 * attach
    pos = 0
    for node in range(attach, n):
        targets = pool[rng.integers(0, fill, size=attach)]
        src[pos : pos + attach] = node
        dst[pos : pos + attach] = targets
        pool[fill : fill + attach] = node
        pool[fill + attach : fill + 2 * attach] = targets
        fill += 2 * attach
        pos += attach
    return COOGraph(src=src, dst=dst, num_nodes=n, name=name)


def triadic_closure(
    graph: COOGraph, extra_edges: int, rng: np.random.Generator
) -> COOGraph:
    """Add ``extra_edges`` wedge-closing edges, boosting the clustering coefficient.

    Samples wedge centers proportionally to their wedge count, then closes a
    random pair of the center's neighbors — the standard way to give a
    BA-style graph the triangle density of a real social network.
    """
    g = graph if graph.is_canonical() else graph.canonicalize()
    if extra_edges <= 0:
        return g
    from .csr import coo_to_csr

    csr, _ = coo_to_csr(g, symmetrize=True)
    deg = csr.degrees().astype(np.float64)
    wedges = deg * (deg - 1) / 2.0
    total_wedges = wedges.sum()
    if total_wedges <= 0:
        return g
    cum = np.cumsum(wedges)
    # Oversample to survive dedup.
    k = int(extra_edges * 1.5) + 16
    centers = np.searchsorted(cum, rng.random(k) * total_wedges)
    d = csr.degrees()[centers]
    i = rng.integers(0, d)
    j = (i + 1 + rng.integers(0, np.maximum(d - 1, 1))) % d
    starts = csr.indptr[centers]
    u = csr.indices[starts + i]
    v = csr.indices[starts + j]
    keep = u != v
    u, v = u[keep][:extra_edges], v[keep][:extra_edges]
    new = COOGraph(src=u, dst=v, num_nodes=g.num_nodes, name=g.name)
    return g.concat(new).canonicalize()


def grid_with_diagonals(
    rows: int,
    cols: int,
    planted_cells: int,
    rng: np.random.Generator,
    name: str = "grid",
) -> COOGraph:
    """2-D lattice (triangle-free) plus a few diagonal chords planting triangles.

    The lattice alone contains zero triangles; each planted diagonal closes
    one or two unit squares.  This mirrors V1r's profile: max degree <= 6,
    average degree ~2-4, and a globally negligible triangle count.
    """
    rows = check_positive("rows", rows)
    cols = check_positive("cols", cols)
    n = rows * cols
    idx = np.arange(n, dtype=np.int64)
    r = idx // cols
    c = idx % cols
    right_mask = c < cols - 1
    down_mask = r < rows - 1
    right = np.stack([idx[right_mask], idx[right_mask] + 1], axis=1)
    down = np.stack([idx[down_mask], idx[down_mask] + cols], axis=1)
    edges = [right, down]
    if planted_cells > 0:
        cell_ok = (c < cols - 1) & (r < rows - 1)
        cells = idx[cell_ok]
        chosen = rng.choice(cells, size=min(planted_cells, cells.size), replace=False)
        diag = np.stack([chosen + 1, chosen + cols], axis=1)
        edges.append(diag)
    all_edges = np.concatenate(edges, axis=0)
    return COOGraph(
        src=all_edges[:, 0], dst=all_edges[:, 1], num_nodes=n, name=name
    )


def hub_graph(
    n: int,
    background_edges: int,
    num_hubs: int,
    hub_degree: int,
    rng: np.random.Generator,
    name: str = "hub",
) -> COOGraph:
    """Sparse background graph plus a few extreme hubs (WikipediaEdit analogue).

    Hubs are placed at *random* IDs so that, under the paper's ID-ordered
    edge-iterator, roughly half of a hub's neighbors land in its forward
    adjacency list — reproducing the high-degree slowdown of Fig. 3 that the
    Misra-Gries remap (Fig. 5) then removes.
    """
    n = check_positive("n", n)
    num_hubs = check_positive("num_hubs", num_hubs)
    hub_degree = check_positive("hub_degree", hub_degree)
    require(hub_degree < n, "hub_degree must be below n")
    background = erdos_renyi(n, background_edges, rng, name=name)
    hubs = rng.choice(n, size=num_hubs, replace=False).astype(np.int64)
    hub_src = []
    hub_dst = []
    for h in hubs:
        targets = rng.choice(n - 1, size=hub_degree, replace=False).astype(np.int64)
        targets[targets >= h] += 1  # skip the hub itself
        hub_src.append(np.full(hub_degree, h, dtype=np.int64))
        hub_dst.append(targets)
    extra = COOGraph(
        src=np.concatenate(hub_src),
        dst=np.concatenate(hub_dst),
        num_nodes=n,
        name=name,
    )
    return background.concat(extra)


def dense_community(
    n: int,
    community_size: int,
    p_in: float,
    rng: np.random.Generator,
    inter_edges: int = 0,
    name: str = "dense",
) -> COOGraph:
    """Dense overlapping-community graph (Human-Jung brain-network analogue).

    Nodes are grouped into communities of ``community_size`` (consecutive IDs,
    half-overlapping windows) and each intra-community pair is connected with
    probability ``p_in``.  The result has a very high average degree, a max
    degree bounded by ~2x the community size, and a large clustering
    coefficient — the combination that makes Human-Jung the one graph where
    the paper's PIM implementation beats CPU and GPU (Fig. 6).
    """
    n = check_positive("n", n)
    community_size = check_positive("community_size", community_size)
    p_in = check_probability("p_in", p_in)
    require(community_size <= n, "community_size must be <= n")
    edges_u = []
    edges_v = []
    step = max(1, community_size // 2)
    for start in range(0, n - 1, step):
        stop = min(start + community_size, n)
        size = stop - start
        if size < 2:
            break
        # All pairs within the window, Bernoulli(p_in) each.
        iu, iv = np.triu_indices(size, k=1)
        mask = rng.random(iu.size) < p_in
        edges_u.append(iu[mask] + start)
        edges_v.append(iv[mask] + start)
        if stop == n:
            break
    if inter_edges > 0:
        extra = erdos_renyi(n, inter_edges, rng)
        edges_u.append(extra.src)
        edges_v.append(extra.dst)
    return COOGraph(
        src=np.concatenate(edges_u),
        dst=np.concatenate(edges_v),
        num_nodes=n,
        name=name,
    )


def powerlaw_degree_sequence(
    n: int,
    exponent: float,
    rng: np.random.Generator,
    min_degree: int = 1,
    max_degree: int | None = None,
) -> np.ndarray:
    """Sample a graphical power-law degree sequence ``P(d) ~ d^-exponent``.

    The workhorse for building analogues with a *prescribed* degree profile —
    e.g. matching a paper dataset's max/avg degree ratio exactly — to be fed
    into :func:`configuration_model`.  The sequence sum is forced even by
    incrementing one entry if needed.
    """
    n = check_positive("n", n)
    require(exponent > 1.0, "power-law exponent must exceed 1")
    min_degree = check_positive("min_degree", min_degree)
    if max_degree is None:
        max_degree = max(min_degree + 1, int(np.sqrt(n) * 4))
    require(max_degree >= min_degree, "max_degree must be >= min_degree")
    # Inverse-CDF sampling of a discrete bounded power law.
    u = rng.random(n)
    a = 1.0 - exponent
    lo, hi = float(min_degree), float(max_degree) + 1.0
    degrees = ((lo**a + u * (hi**a - lo**a)) ** (1.0 / a)).astype(np.int64)
    degrees = np.clip(degrees, min_degree, max_degree)
    if degrees.sum() % 2 == 1:
        degrees[int(np.argmin(degrees))] += 1
    return degrees


def configuration_model(
    degrees: np.ndarray,
    rng: np.random.Generator,
    name: str = "config",
) -> COOGraph:
    """Random graph with (approximately) the given degree sequence.

    Classic stub matching: each node contributes ``degree`` stubs, the stub
    list is shuffled and paired.  Self-loops and multi-edges are *erased*
    (the standard "erased configuration model"), so realized degrees can dip
    slightly below the prescription for heavy nodes.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    require(degrees.ndim == 1 and degrees.size >= 2, "need a 1-D degree sequence")
    require(bool((degrees >= 0).all()), "degrees must be non-negative")
    require(int(degrees.sum()) % 2 == 0, "degree sum must be even")
    stubs = np.repeat(np.arange(degrees.size, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    half = stubs.size // 2
    src = stubs[:half]
    dst = stubs[half:]
    return COOGraph(src=src, dst=dst, num_nodes=int(degrees.size), name=name)
