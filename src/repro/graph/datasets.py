"""Registry of scaled-down analogues of the paper's evaluation graphs (Table 1).

Each entry reproduces the *defining structural property* of one paper graph
(see DESIGN.md Sec. 2): the Kronecker graphs' power-law hubs, V1r's
near-triangle-free sparsity, the social networks' clustering, Human-Jung's
extreme density, and WikipediaEdit's million-degree hubs.  Three size tiers
keep unit tests fast while letting benchmarks run at a scale where the cost
model's trends are visible:

* ``tiny``  — a few thousand edges; unit/property tests.
* ``small`` — tens of thousands of edges; integration tests, quick benches.
* ``bench`` — hundreds of thousands of edges; the experiment harness tier.

Graphs are canonicalized (dedup + self-loop removal) and stream-shuffled,
exactly matching the paper's preprocessing (Sec. 4.1), and cached in-process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..common.errors import ConfigurationError
from ..common.rng import RngFactory
from .coo import COOGraph
from . import generators as gen

__all__ = ["DATASET_NAMES", "TIERS", "get_dataset", "dataset_seed", "clear_cache"]

#: Paper Table 1 order (Fig. 3 orders by max degree; we keep Table 1 order here).
DATASET_NAMES = (
    "kronecker23",
    "kronecker24",
    "v1r",
    "livejournal",
    "orkut",
    "humanjung",
    "wikipedia",
)

TIERS = ("tiny", "small", "bench")

#: Root seed for dataset construction; independent from algorithm seeds.
_DATASET_SEED = 0xD5EA


def dataset_seed(name: str, tier: str) -> int:
    """Deterministic seed for one (dataset, tier) pair."""
    from ..common.rng import derive_seed

    return derive_seed(_DATASET_SEED, f"{name}/{tier}")


@dataclass(frozen=True)
class _Spec:
    builder: Callable[[str, np.random.Generator], COOGraph]
    paper_graph: str
    defining_property: str


def _kron(scale_by_tier: dict[str, int], name: str):
    def build(tier: str, rng: np.random.Generator) -> COOGraph:
        return gen.rmat(scale=scale_by_tier[tier], edge_factor=16, rng=rng, name=name)

    return build


def _v1r(tier: str, rng: np.random.Generator) -> COOGraph:
    side = {"tiny": 40, "small": 130, "bench": 380}[tier]
    return gen.grid_with_diagonals(side, side, planted_cells=25, rng=rng, name="v1r")


def _livejournal(tier: str, rng: np.random.Generator) -> COOGraph:
    n, attach, closure = {
        "tiny": (600, 4, 500),
        "small": (6_000, 5, 6_000),
        "bench": (30_000, 6, 40_000),
    }[tier]
    base = gen.barabasi_albert(n, attach, rng, name="livejournal")
    return gen.triadic_closure(base, closure, rng)


def _orkut(tier: str, rng: np.random.Generator) -> COOGraph:
    n, attach, closure = {
        "tiny": (500, 6, 900),
        "small": (4_000, 10, 12_000),
        "bench": (16_000, 14, 70_000),
    }[tier]
    base = gen.barabasi_albert(n, attach, rng, name="orkut")
    return gen.triadic_closure(base, closure, rng)


def _humanjung(tier: str, rng: np.random.Generator) -> COOGraph:
    n, comm, p_in = {
        "tiny": (300, 60, 0.5),
        "small": (1_200, 160, 0.5),
        "bench": (3_000, 360, 0.5),
    }[tier]
    return gen.dense_community(n, comm, p_in, rng, inter_edges=n // 2, name="humanjung")


def _wikipedia(tier: str, rng: np.random.Generator) -> COOGraph:
    n, bg, hubs, hub_deg = {
        "tiny": (3_000, 3_000, 2, 1_200),
        "small": (30_000, 30_000, 3, 12_000),
        "bench": (120_000, 120_000, 4, 60_000),
    }[tier]
    return gen.hub_graph(n, bg, hubs, hub_deg, rng, name="wikipedia")


_REGISTRY: dict[str, _Spec] = {
    "kronecker23": _Spec(
        _kron({"tiny": 8, "small": 11, "bench": 13}, "kronecker23"),
        "Kronecker 23 (Graph500)",
        "power-law, very high max degree, many triangles",
    ),
    "kronecker24": _Spec(
        _kron({"tiny": 9, "small": 12, "bench": 14}, "kronecker24"),
        "Kronecker 24 (Graph500)",
        "as Kronecker 23, one scale larger",
    ),
    "v1r": _Spec(_v1r, "V1r (SuiteSparse)", "max degree <= 8, ~49 triangles total"),
    "livejournal": _Spec(
        _livejournal, "LiveJournal (SNAP)", "social graph, clustered, moderate degree"
    ),
    "orkut": _Spec(_orkut, "Orkut (SNAP)", "denser social graph, avg degree ~76"),
    "humanjung": _Spec(
        _humanjung,
        "Human-Jung (Network Repository)",
        "avg degree ~683, low max degree, clustering ~0.29, most triangles",
    ),
    "wikipedia": _Spec(
        _wikipedia,
        "WikipediaEdit (KONECT)",
        "hub max degree ~3M (orders above the rest), negligible clustering",
    ),
}

_CACHE: dict[tuple[str, str], COOGraph] = {}


def get_dataset(name: str, tier: str = "small") -> COOGraph:
    """Build (or fetch from cache) one dataset analogue.

    The returned graph is canonical (deduped, self-loop-free, ``u < v``) and
    stream-shuffled with a per-dataset deterministic seed.
    """
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown dataset {name!r}; known: {', '.join(DATASET_NAMES)}"
        )
    if tier not in TIERS:
        raise ConfigurationError(f"unknown tier {tier!r}; known: {', '.join(TIERS)}")
    key = (name, tier)
    if key not in _CACHE:
        rngs = RngFactory(dataset_seed(name, tier))
        graph = _REGISTRY[name].builder(tier, rngs.stream("build"))
        graph = graph.canonicalize().shuffle(rngs.stream("shuffle"))
        _CACHE[key] = graph
    return _CACHE[key]


def dataset_info(name: str) -> tuple[str, str]:
    """(paper graph, defining property) documentation strings for one dataset."""
    spec = _REGISTRY[name]
    return spec.paper_graph, spec.defining_property


def clear_cache() -> None:
    """Drop all cached datasets (tests use this to bound memory)."""
    _CACHE.clear()
