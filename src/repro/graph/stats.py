"""Graph statistics reported in the paper's Tables 1 and 2.

Table 1 lists |E|, |V| and the exact triangle count of every evaluation graph;
Table 2 lists maximum degree, average degree and the global clustering
coefficient.  These quantities are what the paper's analysis keys every result
to (e.g. Fig. 3 orders graphs by maximum degree), so the experiment harness
recomputes all of them for our dataset analogues.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .coo import COOGraph
from .triangles import count_triangles, wedge_count

__all__ = ["GraphStats", "compute_stats", "degree_stats"]


@dataclass(frozen=True)
class GraphStats:
    """The Table 1 + Table 2 row for one graph."""

    name: str
    num_nodes: int
    num_edges: int
    triangles: int
    max_degree: int
    avg_degree: float
    global_clustering: float

    def table1_row(self) -> tuple[str, int, int, int]:
        return (self.name, self.num_edges, self.num_nodes, self.triangles)

    def table2_row(self) -> tuple[str, int, float, float]:
        return (self.name, self.max_degree, self.avg_degree, self.global_clustering)


def degree_stats(graph: COOGraph) -> tuple[int, float]:
    """(max degree, average degree) over nodes that appear in at least one edge.

    The paper's average degree is ``2|E| / |V|`` with |V| the number of
    distinct node IDs present, which we match.
    """
    g = graph if graph.is_canonical() else graph.canonicalize()
    deg = g.degrees()
    present = deg > 0
    n_present = int(np.count_nonzero(present))
    if n_present == 0:
        return 0, 0.0
    return int(deg.max()), float(2.0 * g.num_edges / n_present)


def compute_stats(graph: COOGraph, triangles: int | None = None) -> GraphStats:
    """Compute the full Table 1/2 row; ``triangles`` may be passed if cached.

    The global clustering coefficient is ``3 * triangles / wedges`` where
    wedges counts paths of length two.
    """
    g = graph if graph.is_canonical() else graph.canonicalize()
    tri = count_triangles(g) if triangles is None else int(triangles)
    wedges = wedge_count(g)
    gcc = 3.0 * tri / wedges if wedges else 0.0
    max_deg, avg_deg = degree_stats(g)
    deg = g.degrees()
    n_present = int(np.count_nonzero(deg))
    return GraphStats(
        name=g.name,
        num_nodes=n_present,
        num_edges=g.num_edges,
        triangles=tri,
        max_degree=max_deg,
        avg_degree=avg_deg,
        global_clustering=gcc,
    )
