"""Exact triangle counting used as ground truth throughout the repository.

This is *not* the paper's PIM algorithm — it is the oracle every experiment
measures relative error against (and the functional core the CPU/GPU baseline
models wrap).  It implements the classic degree-ordered forward-edge iterator:
orient every edge from the endpoint of lower degree to the endpoint of higher
degree (ties broken by ID), then for each oriented edge ``(a, b)`` count the
members of ``N+(b)`` that are also forward neighbors of ``a``.  Each triangle
is counted exactly once, and the degree ordering bounds the total wedge work
by ``O(m^{3/2})`` independent of the raw ID ordering — which is what keeps the
oracle fast even on the hub-dominated Wikipedia-like graphs that slow the
paper's ID-ordered kernel down (the very effect Fig. 3 documents).

Everything is vectorized; the only Python-level loop is over bounded-memory
edge chunks.
"""

from __future__ import annotations

import numpy as np

from .coo import COOGraph

__all__ = ["count_triangles", "triangles_per_edge_budget", "wedge_count"]


#: Cap on the number of wedge candidates materialized per chunk (memory bound).
_DEFAULT_CHUNK_WEDGES = 1 << 23


def _degree_oriented_forward(graph: COOGraph) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Return (a, b, indptr, n) for degree-ordered oriented edges in rank space.

    ``a`` and ``b`` are edge endpoints relabeled by degree rank with ``a < b``
    in rank order, sorted lexicographically; ``indptr`` indexes regions of
    equal ``a``.
    """
    g = graph if graph.is_canonical() else graph.canonicalize()
    n = g.num_nodes
    deg = g.degrees()
    # Rank nodes by (degree, id); rank_of[node] is its position.
    order = np.lexsort((np.arange(n), deg))
    rank_of = np.empty(n, dtype=np.int64)
    rank_of[order] = np.arange(n, dtype=np.int64)
    ra = rank_of[g.src]
    rb = rank_of[g.dst]
    a = np.minimum(ra, rb)
    b = np.maximum(ra, rb)
    sort_idx = np.lexsort((b, a))
    a, b = a[sort_idx], b[sort_idx]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(a, minlength=n), out=indptr[1:])
    return a, b, indptr, n


def count_triangles(graph: COOGraph, chunk_wedges: int = _DEFAULT_CHUNK_WEDGES) -> int:
    """Exact number of triangles in ``graph``.

    Parameters
    ----------
    graph:
        Input graph; canonicalized internally if needed.
    chunk_wedges:
        Upper bound on wedge candidates held in memory at once.
    """
    a, b, indptr, n = _degree_oriented_forward(graph)
    m = a.size
    if m == 0:
        return 0
    keys = a * np.int64(n) + b  # sorted ascending because edges are lex-sorted

    out_deg = np.diff(indptr)
    wedge_per_edge = out_deg[b]
    total = 0
    start = 0
    cum = np.concatenate(([0], np.cumsum(wedge_per_edge)))
    while start < m:
        # Grow the chunk until its wedge budget is met.
        stop = int(np.searchsorted(cum, cum[start] + chunk_wedges, side="right"))
        stop = max(stop - 1, start + 1)
        stop = min(stop, m)
        total += _count_chunk(a, b, indptr, keys, n, start, stop)
        start = stop
    return int(total)


def _count_chunk(
    a: np.ndarray,
    b: np.ndarray,
    indptr: np.ndarray,
    keys: np.ndarray,
    n: int,
    start: int,
    stop: int,
) -> int:
    """Count wedge closures for edges in ``[start, stop)``."""
    ea = a[start:stop]
    eb = b[start:stop]
    starts = indptr[eb]
    counts = indptr[eb + 1] - starts
    total_w = int(counts.sum())
    if total_w == 0:
        return 0
    # Gather candidate third vertices w = N+(b) for every edge, flat.
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    flat = np.arange(total_w, dtype=np.int64) - offsets + np.repeat(starts, counts)
    w = b[flat]
    u = np.repeat(ea, counts)
    cand = u * np.int64(n) + w
    pos = np.searchsorted(keys, cand)
    pos[pos >= keys.size] = keys.size - 1
    return int(np.count_nonzero(keys[pos] == cand))


def wedge_count(graph: COOGraph) -> int:
    """Number of paths of length two (open + closed wedges): ``sum d(d-1)/2``."""
    g = graph if graph.is_canonical() else graph.canonicalize()
    deg = g.degrees().astype(np.int64)
    return int((deg * (deg - 1) // 2).sum())


def triangles_per_edge_budget(graph: COOGraph) -> int:
    """Total wedge work of the degree-ordered iterator (oracle cost metric)."""
    a, b, indptr, _ = _degree_oriented_forward(graph)
    if a.size == 0:
        return 0
    return int(np.diff(indptr)[b].sum())
