"""Uniform edge sampling at the host level (paper Sec. 3.2; DOULION-style).

While streaming the input COO file, the host discards each edge independently
with probability ``1 - p``.  A triangle survives iff all three of its edges
survive, which happens with probability ``p**3`` — dividing the counted
triangles by ``p**3`` gives the unbiased estimator of Tsourakakis et al.
(DOULION, KDD'09) that the paper adopts.

Sampling happens *before* batching, so it shrinks every downstream cost: batch
assembly, CPU->PIM transfer volume, and the per-DPU counting work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.validation import check_probability
from ..graph.coo import COOGraph

__all__ = ["UniformSample", "uniform_sample", "uniform_keep_mask"]


@dataclass(frozen=True)
class UniformSample:
    """A sparsified graph plus the bookkeeping needed to unbias counts."""

    graph: COOGraph
    p: float
    edges_in: int

    @property
    def edges_kept(self) -> int:
        return self.graph.num_edges

    @property
    def triangle_scale(self) -> float:
        """Factor a triangle count over the sample must be divided by (``p**3``)."""
        return self.p**3

    def unbias(self, counted: float) -> float:
        """Unbiased estimate of the full graph's triangle count."""
        return counted / self.triangle_scale


def uniform_keep_mask(num_edges: int, p: float, rng: np.random.Generator) -> np.ndarray:
    """Boolean keep-mask for ``num_edges`` stream positions at rate ``p``.

    ``p >= 1`` returns an all-True mask *without drawing from ``rng``*, so the
    exact path never perturbs the generator state.  For ``p < 1`` the mask is
    one contiguous block of draws, which makes chunked sampling bit-identical
    to monolithic sampling: numpy's ``Generator.random`` yields the same
    values whether requested in one call or in consecutive smaller calls, so
    concatenating per-chunk masks reproduces the single-call mask exactly.
    """
    p = check_probability("p", p)
    if p >= 1.0:
        return np.ones(int(num_edges), dtype=bool)
    return rng.random(int(num_edges)) < p


def uniform_sample(graph: COOGraph, p: float, rng: np.random.Generator) -> UniformSample:
    """Keep each edge of ``graph`` independently with probability ``p``.

    ``p = 1`` short-circuits to the exact counting path.  Even then the
    returned sample holds a *defensive read-only view* of the caller's graph
    rather than the same object: downstream stages (node remapping, edge
    orientation) may normalise arrays in place, and aliasing the caller's
    arrays would silently corrupt their graph.
    """
    p = check_probability("p", p)
    if p >= 1.0:
        src_view = graph.src.view()
        dst_view = graph.dst.view()
        src_view.flags.writeable = False
        dst_view.flags.writeable = False
        shielded = COOGraph(
            src=src_view,
            dst=dst_view,
            num_nodes=graph.num_nodes,
            name=graph.name,
        )
        return UniformSample(graph=shielded, p=1.0, edges_in=graph.num_edges)
    keep = uniform_keep_mask(graph.num_edges, p, rng)
    sampled = COOGraph(
        src=graph.src[keep],
        dst=graph.dst[keep],
        num_nodes=graph.num_nodes,
        name=f"{graph.name}|p={p}",
    )
    return UniformSample(graph=sampled, p=p, edges_in=graph.num_edges)
