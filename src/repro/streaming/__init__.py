"""Streaming primitives: reservoir sampling, Misra-Gries, uniform sparsification."""

from .estimators import CountCorrection, combine_dpu_counts, relative_error
from .misra_gries import MisraGries, top_nodes_from_counts
from .reservoir import EdgeReservoir, expected_sample_edges, reservoir_scale
from .uniform import UniformSample, uniform_sample

__all__ = [
    "EdgeReservoir",
    "reservoir_scale",
    "expected_sample_edges",
    "MisraGries",
    "top_nodes_from_counts",
    "UniformSample",
    "uniform_sample",
    "CountCorrection",
    "combine_dpu_counts",
    "relative_error",
]
