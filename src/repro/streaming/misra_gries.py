"""Misra-Gries heavy-hitter summary (paper Sec. 3.5).

The host uses a Misra-Gries summary with parameter ``K`` over the node stream
(each edge contributes both endpoints) to approximately identify the
highest-degree nodes.  The guarantee used by the paper: after a thread has
processed a section of the stream with ``n`` items, every node whose frequency
in that section exceeds ``n / K`` is present in the summary.

Two update paths are provided:

* :meth:`MisraGries.update` — the textbook one-item rule (hash table of at
  most ``K`` counters; global decrement when full), used by tests and as the
  semantic reference.
* :meth:`MisraGries.update_array` — a batch path that exploits the summary's
  *mergeability* (Agarwal et al., PODS'12): the chunk's exact counts are
  merged into the summary and the merged table is trimmed back to ``K``
  entries by subtracting its ``(K+1)``-st largest count.  The merged summary
  obeys the same ``n / K`` error bound, which is all the paper's pipeline
  relies on — and it is exactly how the multi-threaded host combines the
  per-thread summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.validation import check_positive

__all__ = ["MisraGries", "top_nodes_from_counts"]


@dataclass
class MisraGries:
    """Bounded table of at most ``K`` (item, counter) pairs."""

    k: int
    counters: dict[int, int] = field(default_factory=dict)
    items_seen: int = 0

    def __post_init__(self) -> None:
        self.k = check_positive("k", self.k)

    # ----------------------------------------------------------------- update
    def update(self, item: int) -> None:
        """Process one stream item (the literal three-case rule of Sec. 3.5)."""
        self.items_seen += 1
        c = self.counters
        if item in c:
            c[item] += 1
        elif len(c) < self.k:
            c[item] = 1
        else:
            dead = []
            for key in c:
                c[key] -= 1
                if c[key] == 0:
                    dead.append(key)
            for key in dead:
                del c[key]

    def update_array(self, items: np.ndarray) -> None:
        """Merge a whole chunk of stream items (mergeable-summaries path)."""
        items = np.asarray(items)
        if items.size == 0:
            return
        self.items_seen += int(items.size)
        values, counts = np.unique(items, return_counts=True)
        c = self.counters
        for v, n in zip(values.tolist(), counts.tolist()):
            c[v] = c.get(v, 0) + int(n)
        self._trim()

    def decay_array(self, items: np.ndarray) -> None:
        """Retract a chunk of stream items (fully-dynamic deletion support).

        Counters are lower bounds on an item's frequency in the *live*
        stream, so retracting a deleted occurrence means subtracting it from
        the item's counter (floored at zero; zeroed entries are dropped) and
        shrinking ``items_seen``.  The ``n / K`` guarantee is preserved:
        decaying can only lower counters and lowers ``n`` by the same total,
        which is the standard turnstile relaxation — a node whose edges were
        all deleted no longer dominates :meth:`top`.
        """
        items = np.asarray(items)
        if items.size == 0:
            return
        self.items_seen = max(0, self.items_seen - int(items.size))
        values, counts = np.unique(items, return_counts=True)
        c = self.counters
        for v, n in zip(values.tolist(), counts.tolist()):
            if v in c:
                remaining = c[v] - int(n)
                if remaining > 0:
                    c[v] = remaining
                else:
                    del c[v]

    def merge(self, other: "MisraGries") -> None:
        """Merge another summary into this one (host thread combine step)."""
        for item, count in other.counters.items():
            self.counters[item] = self.counters.get(item, 0) + count
        self.items_seen += other.items_seen
        self._trim()

    def _trim(self) -> None:
        """Shrink the table back to ``k`` entries by the (k+1)-st-largest rule."""
        c = self.counters
        if len(c) <= self.k:
            return
        counts = np.fromiter(c.values(), dtype=np.int64, count=len(c))
        # Subtract the (k+1)-st largest value; at most k strictly-larger survive.
        cut = int(np.partition(counts, len(c) - self.k - 1)[len(c) - self.k - 1])
        self.counters = {item: n - cut for item, n in c.items() if n > cut}

    # ---------------------------------------------------------------- queries
    @property
    def size(self) -> int:
        return len(self.counters)

    def frequency_lower_bound(self, item: int) -> int:
        """Counter value (a lower bound on the item's true frequency)."""
        return self.counters.get(item, 0)

    def top(self, t: int) -> list[int]:
        """The ``t`` items with largest counters, most frequent first.

        Ties are broken by item ID for determinism.
        """
        ordered = sorted(self.counters.items(), key=lambda kv: (-kv[1], kv[0]))
        return [item for item, _ in ordered[:t]]

    def error_bound(self) -> float:
        """Maximum undercount of any counter: ``items_seen / k``."""
        return self.items_seen / self.k


def top_nodes_from_counts(graph_degrees: np.ndarray, t: int) -> list[int]:
    """Exact top-``t`` nodes by degree (oracle used in tests against MG)."""
    order = np.lexsort((np.arange(graph_degrees.size), -graph_degrees))
    return order[:t].tolist()
