"""Estimator algebra: composing the paper's three count corrections.

A raw per-DPU triangle count ``T_d`` passes through up to three adjustments
before contributing to the final answer:

1. **Reservoir correction** (Sec. 3.3): divide by
   ``p_res(d) = M(M-1)(M-2) / (t(t-1)(t-2))`` — *per DPU*, since each DPU sees
   a different number of edges ``t``.
2. **Monochromatic correction** (Sec. 3.1): triangles whose three nodes share
   one color are counted by exactly ``C`` DPUs; the single-color-triplet DPUs
   count exactly these, so the host subtracts ``(C-1)`` times their (already
   reservoir-corrected) counts.
3. **Uniform-sampling correction** (Sec. 3.2): divide the global total by
   ``p**3``.

The order matters: reservoir correction is per-DPU, the monochromatic
subtraction mixes DPUs, and the uniform correction is global.  The paper notes
the two sampling techniques compose (Secs. 3.2/3.3 cross-references); the
expectation of the composite estimator is the true count because the three
random processes are independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CountCorrection", "combine_dpu_counts", "relative_error"]


@dataclass(frozen=True)
class CountCorrection:
    """Per-run correction parameters."""

    num_colors: int
    uniform_p: float = 1.0

    def finalize(
        self,
        raw_counts: np.ndarray,
        reservoir_scales: np.ndarray,
        mono_mask: np.ndarray,
    ) -> float:
        """Apply all corrections; returns the final (possibly fractional) estimate.

        Parameters
        ----------
        raw_counts:
            Per-DPU raw triangle counts ``T_d``.
        reservoir_scales:
            Per-DPU survival factors ``p_res(d)`` (1.0 where no overflow).
        mono_mask:
            Boolean array marking the DPUs whose triplet has a single color.
        """
        return combine_dpu_counts(
            raw_counts,
            reservoir_scales,
            mono_mask,
            num_colors=self.num_colors,
            uniform_p=self.uniform_p,
        )


def combine_dpu_counts(
    raw_counts: np.ndarray,
    reservoir_scales: np.ndarray,
    mono_mask: np.ndarray,
    *,
    num_colors: int,
    uniform_p: float = 1.0,
) -> float:
    """Functional form of :meth:`CountCorrection.finalize` (see class docs)."""
    raw = np.asarray(raw_counts, dtype=np.float64)
    scales = np.asarray(reservoir_scales, dtype=np.float64)
    mono = np.asarray(mono_mask, dtype=bool)
    if raw.shape != scales.shape or raw.shape != mono.shape:
        raise ValueError("raw_counts, reservoir_scales and mono_mask must align")
    if not np.all(np.isfinite(raw)):
        raise ValueError(
            "raw_counts must be finite; got NaN/inf — a DPU kernel or gather "
            "produced a corrupt count"
        )
    if not np.all(np.isfinite(scales)):
        raise ValueError(
            "reservoir scales must be finite; got NaN/inf — check reservoir "
            "capacity vs. edges seen"
        )
    if np.any(scales <= 0):
        raise ValueError("reservoir scales must be positive")
    if not (np.isfinite(uniform_p) and uniform_p > 0):
        raise ValueError(f"uniform_p must be finite and positive, got {uniform_p}")
    adjusted = raw / scales
    total = adjusted.sum()
    # Monochromatic triangles were counted by C DPUs; each single-color DPU's
    # total is exactly its color's monochromatic count.
    total -= (num_colors - 1) * adjusted[mono].sum()
    return float(total / uniform_p**3)


def relative_error(estimate: float, truth: float) -> float:
    """The paper's error metric: ``|estimate - truth| / truth`` (100% if truth=0 and estimate!=0)."""
    if truth == 0:
        return 0.0 if estimate == 0 else 1.0
    return abs(estimate - truth) / abs(truth)
