"""Reservoir sampling of edges inside a PIM core's DRAM bank (paper Sec. 3.3).

When a DPU's allotted MRAM region cannot hold every edge routed to it, the
kernel keeps a uniform sample of at most ``M`` edges using the classic
reservoir rule (the TRIÈST scheme): the ``t``-th edge is kept with probability
``M / t``, evicting a uniformly random resident edge.  The triangle count over
the sample is then unbiased by dividing by

    ``p = M (M-1) (M-2) / (t (t-1) (t-2))``

the probability that all three edges of any fixed triangle survive.

Two APIs are provided: :meth:`EdgeReservoir.offer_one` — the literal
sequential rule, used by tests and the reference kernel — and
:meth:`EdgeReservoir.offer_batch`, a vectorized implementation with *exactly*
the same distribution (it reproduces the sequential acceptance probabilities
edge by edge and resolves slot collisions in arrival order).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.validation import check_positive

__all__ = ["EdgeReservoir", "reservoir_scale", "expected_sample_edges"]


def reservoir_scale(capacity: int, total_seen: int) -> float:
    """Survival probability of a triangle under reservoir sampling.

    Returns the factor ``p`` by which a raw triangle count over the sample
    must be *divided* to unbias it.  Equals 1 while the reservoir never
    overflowed (``total_seen <= capacity``) and for degenerate tiny samples.
    """
    m, t = int(capacity), int(total_seen)
    if t <= m or m < 3:
        return 1.0
    return (m * (m - 1) * (m - 2)) / (t * (t - 1) * (t - 2))


def expected_sample_edges(capacity: int, total: int) -> int:
    """Edges resident after ``total`` offers: ``min(capacity, total)``."""
    return min(int(capacity), int(total))


@dataclass
class EdgeReservoir:
    """Bounded uniform sample of an edge stream, mirroring one MRAM region.

    Parameters
    ----------
    capacity:
        ``M`` — the maximum number of edges the region can hold.
    rng:
        Per-DPU random stream (each physical DPU has independent PRNG state).
    """

    capacity: int
    rng: np.random.Generator
    seen: int = 0
    replacements: int = 0
    _src: np.ndarray = field(init=False)
    _dst: np.ndarray = field(init=False)
    _size: int = field(init=False, default=0)

    #: Initial backing-array size; grows geometrically up to ``capacity``.
    _INITIAL_ROOM = 1024

    def __post_init__(self) -> None:
        self.capacity = check_positive("capacity", self.capacity)
        room = min(self.capacity, self._INITIAL_ROOM)
        self._src = np.empty(room, dtype=np.int64)
        self._dst = np.empty(room, dtype=np.int64)

    def _ensure_room(self, extra: int) -> None:
        """Grow the backing arrays to hold ``extra`` more resident edges.

        Memory therefore tracks ``min(capacity, edges held)`` instead of
        eagerly allocating ``capacity`` slots — essential when the capacity is
        sized from a whole MRAM bank but the stream is small, and when
        reservoirs are pickled across process boundaries (batched ingest).
        By the time the reservoir overflows, the fill phase has forced the
        arrays to exactly ``capacity`` entries, so replacement slots in
        ``[0, capacity)`` are always in range.
        """
        need = self._size + extra
        if need <= self._src.size:
            return
        room = min(self.capacity, max(need, 2 * self._src.size))
        grown_src = np.empty(room, dtype=np.int64)
        grown_dst = np.empty(room, dtype=np.int64)
        grown_src[: self._size] = self._src[: self._size]
        grown_dst[: self._size] = self._dst[: self._size]
        self._src = grown_src
        self._dst = grown_dst

    # ---------------------------------------------------------------- queries
    @property
    def size(self) -> int:
        """Number of edges currently resident."""
        return self._size

    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Views of the resident edge arrays (length :attr:`size`)."""
        return self._src[: self._size], self._dst[: self._size]

    def scale(self) -> float:
        """Unbiasing factor ``p`` for the current (capacity, seen) state."""
        return reservoir_scale(self.capacity, self.seen)

    @property
    def overflowed(self) -> bool:
        return self.seen > self.capacity

    # ---------------------------------------------------------------- updates
    def offer_one(self, u: int, v: int) -> bool:
        """Sequential reservoir rule for a single edge; True if it was stored."""
        self.seen += 1
        t = self.seen
        if t <= self.capacity:
            self._ensure_room(1)
            self._src[self._size] = u
            self._dst[self._size] = v
            self._size += 1
            return True
        if self.rng.random() < self.capacity / t:
            slot = int(self.rng.integers(0, self.capacity))
            self._src[slot] = u
            self._dst[slot] = v
            self.replacements += 1
            return True
        return False

    def offer_batch(self, src: np.ndarray, dst: np.ndarray) -> int:
        """Vectorized offer of a whole edge batch; returns #edges stored.

        Statistically identical to calling :meth:`offer_one` in order: the
        acceptance probability of the ``i``-th batch edge uses its global
        arrival index, and multiple accepted edges targeting the same slot are
        resolved last-writer-wins (later arrival overwrites earlier), exactly
        as sequential processing would.

        **Chunk boundaries.** Because acceptance uses the *global* arrival
        index (``self.seen`` persists across calls), splitting one stream
        into any sequence of ``offer_batch`` calls reproduces the sequential
        acceptance distribution — the batched ingest pipeline relies on this.
        While the reservoir has never overflowed the offers are pure appends
        consuming zero RNG draws, so any chunking yields *bit-identical*
        contents; after overflow the RNG draw layout differs between chunk
        sizes (``random(tail)`` then ``integers(accepted)`` per call), so
        different splits give different — equally distributed — samples.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        n = src.size
        if n == 0:
            return 0
        start = self.seen
        stored = 0
        # Phase 1: direct fills while the reservoir has room.
        fill = min(max(self.capacity - start, 0), n)
        if fill:
            self._ensure_room(fill)
            self._src[self._size : self._size + fill] = src[:fill]
            self._dst[self._size : self._size + fill] = dst[:fill]
            self._size += fill
            stored += fill
        # Phase 2: probabilistic replacement for the overflow tail.
        tail = n - fill
        if tail > 0:
            t_index = start + fill + 1 + np.arange(tail, dtype=np.int64)  # global t per edge
            accept = self.rng.random(tail) < (self.capacity / t_index)
            idx = np.nonzero(accept)[0]
            if idx.size:
                slots = self.rng.integers(0, self.capacity, size=idx.size)
                # Last write wins: keep only the final occurrence of each slot.
                last = {}
                for j, slot in zip(idx.tolist(), slots.tolist()):
                    last[slot] = j
                slot_arr = np.fromiter(last.keys(), dtype=np.int64, count=len(last))
                edge_arr = np.fromiter(last.values(), dtype=np.int64, count=len(last))
                self._src[slot_arr] = src[fill + edge_arr]
                self._dst[slot_arr] = dst[fill + edge_arr]
                self.replacements += int(idx.size)
                stored += int(idx.size)
        self.seen += n
        return stored
