"""Vertex-coloring edge partition: triplet algebra + vectorized edge routing."""

from .partition import ColoringPartitioner, EdgePartition
from .triplets import TripletTable, colors_for_dpus, num_triplets

__all__ = [
    "TripletTable",
    "num_triplets",
    "colors_for_dpus",
    "ColoringPartitioner",
    "EdgePartition",
]
