"""Vertex-coloring edge partition: triplet algebra + vectorized edge routing."""

from .autotune import AutoTuneDecision, auto_tune
from .partition import (
    PARTITIONER_STRATEGIES,
    ColoringPartitioner,
    DegreePartitioner,
    EdgePartition,
    make_partitioner,
)
from .triplets import TripletTable, colors_for_dpus, num_triplets

__all__ = [
    "TripletTable",
    "num_triplets",
    "colors_for_dpus",
    "ColoringPartitioner",
    "DegreePartitioner",
    "EdgePartition",
    "PARTITIONER_STRATEGIES",
    "make_partitioner",
    "AutoTuneDecision",
    "auto_tune",
]
