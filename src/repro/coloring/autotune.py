"""Auto-tuning of the partitioning knobs from graph statistics.

The ``--partitioner auto`` strategy picks, per graph, the three knobs a user
would otherwise hand-tune:

* the **partitioning strategy** — hash coloring for near-uniform degree
  distributions, degree-based coloring once the degree skew (max/avg degree)
  crosses :data:`SKEW_DEGREE_THRESHOLD`;
* the **color count C** — large enough that the expected heaviest per-core
  load stays under :data:`TARGET_EDGES_PER_DPU`, clamped to what the PIM
  system's core count admits (``binom(C+2, 3) <= total_dpus``);
* the **Misra-Gries parameters** — enable the K/t hub remap (paper Sec. 4.5)
  only on hub-heavy graphs, where it pays for its host pass.

Every rule that fires is recorded in a decision *trace* so a run report can
explain why the tuner chose what it chose (see ``docs/partitioning.md``).
The tuner is deterministic: same graph stats + same options in, same decision
out — required for the differential grid to pin auto runs across executors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..graph.coo import COOGraph
from ..graph.stats import degree_stats
from .triplets import colors_for_dpus, num_triplets

__all__ = [
    "AutoTuneDecision",
    "auto_tune",
    "SKEW_DEGREE_THRESHOLD",
    "MG_SKEW_THRESHOLD",
    "TARGET_EDGES_PER_DPU",
    "DEFAULT_MG_K",
    "DEFAULT_MG_T",
]

#: max_degree / avg_degree above which degree-based coloring is selected.
SKEW_DEGREE_THRESHOLD = 8.0
#: Skew above which the Misra-Gries hub remap is also enabled.
MG_SKEW_THRESHOLD = 16.0
#: Color count is grown until the expected heaviest core holds at most this
#: many edges (or the system runs out of cores).
TARGET_EDGES_PER_DPU = 4096
#: Misra-Gries table size / remap count used when the tuner enables the remap.
DEFAULT_MG_K = 256
DEFAULT_MG_T = 16


@dataclass(frozen=True)
class AutoTuneDecision:
    """What the tuner picked, and the rule-by-rule trace of why."""

    strategy: str
    num_colors: int
    misra_gries_k: int | None
    misra_gries_t: int | None
    num_edges: int
    max_degree: int
    avg_degree: float
    degree_skew: float
    expected_max_edges_per_dpu: float
    trace: tuple[dict, ...] = field(default_factory=tuple)

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "num_colors": self.num_colors,
            "misra_gries_k": self.misra_gries_k,
            "misra_gries_t": self.misra_gries_t,
            "num_edges": self.num_edges,
            "max_degree": self.max_degree,
            "avg_degree": self.avg_degree,
            "degree_skew": self.degree_skew,
            "expected_max_edges_per_dpu": self.expected_max_edges_per_dpu,
            "trace": [dict(step) for step in self.trace],
        }


def _pick_colors(num_edges: int, max_dpus: int, trace: list[dict]) -> int:
    """Smallest C with expected heaviest load <= TARGET_EDGES_PER_DPU.

    Uses the uniform closed form ``6|E| / C**2`` (paper Sec. 4.5) as the
    sizing estimate; the strategy-specific load estimate is reported in the
    decision afterwards via ``expected_max_edges_per_dpu`` dispatch.
    """
    c_max = colors_for_dpus(max_dpus)
    if num_edges <= 0:
        trace.append({"rule": "colors", "why": "empty graph", "num_colors": 2})
        return min(2, c_max) if c_max >= 2 else c_max
    ideal = math.ceil(math.sqrt(6.0 * num_edges / TARGET_EDGES_PER_DPU))
    c = max(2, min(ideal, c_max))
    trace.append(
        {
            "rule": "colors",
            "why": (
                f"smallest C with 6|E|/C^2 <= {TARGET_EDGES_PER_DPU} "
                f"is {ideal}, clamped to [2, {c_max}] by the core budget "
                f"(binom(C+2,3) <= {max_dpus})"
            ),
            "ideal": ideal,
            "c_max": c_max,
            "num_colors": c,
            "dpus_used": num_triplets(c),
        }
    )
    return c


def auto_tune(
    graph: COOGraph,
    *,
    max_dpus: int,
    misra_gries_k: int | None = None,
    misra_gries_t: int | None = None,
) -> AutoTuneDecision:
    """Resolve the "auto" strategy for ``graph``.

    ``misra_gries_k/t`` are the *user-requested* values: when the user set
    them explicitly they are respected verbatim (the tuner only fills the
    gap when both are None).
    """
    g = graph if graph.is_canonical() else graph.canonicalize()
    max_degree, avg_degree = degree_stats(g)
    skew = max_degree / avg_degree if avg_degree > 0 else 0.0
    trace: list[dict] = []

    if skew >= SKEW_DEGREE_THRESHOLD:
        strategy = "degree"
        trace.append(
            {
                "rule": "strategy",
                "why": (
                    f"degree skew {skew:.1f} >= {SKEW_DEGREE_THRESHOLD:g}: "
                    "hub-heavy graph, hash coloring would leave hot cores"
                ),
                "strategy": strategy,
            }
        )
    else:
        strategy = "hash"
        trace.append(
            {
                "rule": "strategy",
                "why": (
                    f"degree skew {skew:.1f} < {SKEW_DEGREE_THRESHOLD:g}: "
                    "near-uniform degrees, universal hash already balances"
                ),
                "strategy": strategy,
            }
        )

    num_colors = _pick_colors(g.num_edges, max_dpus, trace)

    mg_k, mg_t = misra_gries_k, misra_gries_t
    if mg_k is not None or mg_t is not None:
        trace.append(
            {
                "rule": "misra_gries",
                "why": "user-set Misra-Gries parameters respected verbatim",
                "misra_gries_k": mg_k,
                "misra_gries_t": mg_t,
            }
        )
    elif skew >= MG_SKEW_THRESHOLD:
        mg_k, mg_t = DEFAULT_MG_K, DEFAULT_MG_T
        trace.append(
            {
                "rule": "misra_gries",
                "why": (
                    f"degree skew {skew:.1f} >= {MG_SKEW_THRESHOLD:g}: "
                    "hub remap pays for its host pass"
                ),
                "misra_gries_k": mg_k,
                "misra_gries_t": mg_t,
            }
        )
    else:
        trace.append(
            {
                "rule": "misra_gries",
                "why": (
                    f"degree skew {skew:.1f} < {MG_SKEW_THRESHOLD:g}: "
                    "remap host pass not worth it"
                ),
                "misra_gries_k": None,
                "misra_gries_t": None,
            }
        )

    # Strategy-aware load estimate (satellite fix: never reason from the
    # uniform formula on a degree-partitioned graph).  A throwaway fitted
    # partitioner provides the dispatch; its hash draw does not leak into the
    # pipeline, which draws its own from the run's RNG streams.
    if strategy == "degree" and g.num_edges > 0:
        import numpy as np

        from .partition import DegreePartitioner

        probe = DegreePartitioner(num_colors, np.random.default_rng(0))
        probe.fit(g)
        expected = probe.expected_max_edges_per_dpu(g.num_edges)
    else:
        expected = 6.0 * g.num_edges / (num_colors**2)
    trace.append(
        {
            "rule": "expected_load",
            "why": f"strategy-aware estimate for {strategy} coloring",
            "expected_max_edges_per_dpu": expected,
        }
    )

    return AutoTuneDecision(
        strategy=strategy,
        num_colors=num_colors,
        misra_gries_k=mg_k,
        misra_gries_t=mg_t,
        num_edges=g.num_edges,
        max_degree=max_degree,
        avg_degree=avg_degree,
        degree_skew=skew,
        expected_max_edges_per_dpu=expected,
        trace=tuple(trace),
    )
