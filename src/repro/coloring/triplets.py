"""Color-triplet algebra for the coloring-based edge partition (paper Sec. 3.1).

With ``C`` colors, each PIM core is assigned one *multiset* of three colors —
an ordered triplet ``(i, j, k)`` with ``i <= j <= k`` — describing one possible
color configuration of a triangle.  There are ``binom(C+2, 3)`` such triplets,
which is exactly the number of PIM cores the algorithm uses
(paper Sec. 4.2: "the number of PIM cores utilized ... is equal to
``binom(C+2, 3)``").

An edge whose endpoints are colored ``{a, b}`` is compatible with a triplet
``T`` iff ``{a, b}`` is a sub-multiset of ``T`` (an edge with both endpoints
the same color needs that color *twice* in the triplet).  Every edge is
compatible with exactly ``C`` triplets — one per choice of the third color —
which is the paper's "each edge is duplicated C times".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations_with_replacement

import numpy as np

from ..common.validation import check_positive

__all__ = ["TripletTable", "num_triplets", "colors_for_dpus"]


def num_triplets(num_colors: int) -> int:
    """``binom(C+2, 3) = C(C+1)(C+2)/6`` — PIM cores used for ``C`` colors."""
    c = check_positive("num_colors", num_colors)
    return c * (c + 1) * (c + 2) // 6


def colors_for_dpus(max_dpus: int) -> int:
    """Largest ``C`` whose triplet count fits in ``max_dpus`` PIM cores.

    This is how the paper picks "the highest valid number of DPUs in the
    system" (23 colors -> 2300 DPUs on the 2560-DPU machine).
    """
    check_positive("max_dpus", max_dpus)
    c = 1
    while num_triplets(c + 1) <= max_dpus:
        c += 1
    return c


@dataclass(frozen=True)
class TripletTable:
    """Precomputed triplet enumeration and lookup tables for one ``C``.

    Attributes
    ----------
    num_colors:
        ``C``.
    triplets:
        ``(T, 3)`` int array, rows sorted ``i <= j <= k``, lexicographic order;
        row index == PIM core index.
    kind:
        ``(T,)`` array with the number of *distinct* colors in each triplet
        (1, 2 or 3) — the paper's load classes N / 3N / 6N.
    lut:
        ``(C, C, C)`` array mapping an unordered color triple (any order) to
        its triplet/PIM-core index; used for vectorized edge assignment.
    """

    num_colors: int
    triplets: np.ndarray
    kind: np.ndarray
    lut: np.ndarray

    @classmethod
    def build(cls, num_colors: int) -> "TripletTable":
        c = check_positive("num_colors", num_colors)
        trips = np.array(
            list(combinations_with_replacement(range(c), 3)), dtype=np.int64
        ).reshape(-1, 3)
        kind = np.array([len(set(row)) for row in trips.tolist()], dtype=np.int64)
        # Rank any sorted triple via a dense LUT over all orderings.
        lut = np.full((c, c, c), -1, dtype=np.int64)
        index = {tuple(row): i for i, row in enumerate(trips.tolist())}
        grid = np.indices((c, c, c)).reshape(3, -1).T
        sorted_grid = np.sort(grid, axis=1)
        flat_ids = np.array(
            [index[tuple(row)] for row in sorted_grid.tolist()], dtype=np.int64
        )
        lut[grid[:, 0], grid[:, 1], grid[:, 2]] = flat_ids
        return cls(num_colors=c, triplets=trips, kind=kind, lut=lut)

    @property
    def num_dpus(self) -> int:
        """PIM cores required: one per triplet."""
        return int(self.triplets.shape[0])

    def mono_mask(self) -> np.ndarray:
        """Boolean mask of single-color triplets (the correction DPUs)."""
        return self.kind == 1

    def triplet_of(self, dpu: int) -> tuple[int, int, int]:
        i, j, k = self.triplets[dpu].tolist()
        return (i, j, k)

    def compatible_dpus(self, color_a: int, color_b: int) -> np.ndarray:
        """The ``C`` PIM cores an edge with endpoint colors ``(a, b)`` goes to."""
        a = np.full(self.num_colors, color_a, dtype=np.int64)
        b = np.full(self.num_colors, color_b, dtype=np.int64)
        x = np.arange(self.num_colors, dtype=np.int64)
        return self.lut[a, b, x]

    def edge_multiplicity(self) -> int:
        """Copies made of every edge: always ``C``."""
        return self.num_colors

    def load_class_counts(self) -> dict[int, int]:
        """How many triplets have 1, 2, 3 distinct colors.

        Matches the paper's Sec. 3.1 accounting: ``C`` single-color triplets,
        ``2 * binom(C, 2)`` two-color triplets (i.e. ``C(C-1)``), and
        ``binom(C, 3)`` three-color triplets.
        """
        values, counts = np.unique(self.kind, return_counts=True)
        return dict(zip(values.tolist(), counts.tolist()))
