"""Edge partitioning across PIM cores via vertex coloring (paper Sec. 3.1).

The host colors both endpoints of every edge with the universal hash
``h_C`` and routes a copy of the edge to each of the ``C`` compatible PIM
cores (one per choice of the triplet's third color).  The partition guarantees

* every triangle with >= 2 distinct node colors is counted by exactly one core,
* every monochromatic triangle is counted by exactly ``C`` cores, and the
  single-color-triplet core of that color counts *only* such triangles, making
  the final correction (subtract ``C-1`` times those counts) exact.

The assignment is fully vectorized: one LUT gather per third-color choice and
one stable grouping sort.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.hashing import ColorHash
from ..common.validation import check_positive
from ..graph.coo import COOGraph
from .triplets import TripletTable

__all__ = ["EdgePartition", "ColoringPartitioner"]


@dataclass(frozen=True)
class EdgePartition:
    """Result of routing one edge batch to the PIM cores.

    Attributes
    ----------
    per_dpu:
        List (length = #triplets) of ``(src, dst)`` int64 array pairs.
    counts:
        Edges routed to each core for this batch.
    edges_in:
        Size of the input batch (before the C-fold duplication).
    """

    per_dpu: list[tuple[np.ndarray, np.ndarray]]
    counts: np.ndarray
    edges_in: int

    @property
    def total_routed(self) -> int:
        return int(self.counts.sum())


@dataclass
class ColoringPartitioner:
    """Stateful partitioner: one hash function, one triplet table.

    The hash function is drawn once (like the host process does at startup) so
    dynamic-graph batches color nodes consistently across updates.
    """

    num_colors: int
    rng: np.random.Generator
    color_hash: ColorHash = field(init=False)
    table: TripletTable = field(init=False)

    def __post_init__(self) -> None:
        self.num_colors = check_positive("num_colors", self.num_colors)
        self.color_hash = ColorHash.random(self.num_colors, self.rng)
        self.table = TripletTable.build(self.num_colors)

    @property
    def num_dpus(self) -> int:
        return self.table.num_dpus

    def node_colors(self, nodes: np.ndarray) -> np.ndarray:
        return self.color_hash.color_array(nodes)

    def assign(self, graph: COOGraph) -> EdgePartition:
        """Route every edge of ``graph`` to its ``C`` compatible PIM cores."""
        return self.assign_arrays(graph.src, graph.dst)

    def assign_arrays(self, src: np.ndarray, dst: np.ndarray) -> EdgePartition:
        c = self.num_colors
        t = self.table.num_dpus
        m = int(src.size)
        if m == 0:
            empty = [
                (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
                for _ in range(t)
            ]
            return EdgePartition(per_dpu=empty, counts=np.zeros(t, dtype=np.int64), edges_in=0)
        cu = self.color_hash.color_array(src)
        cv = self.color_hash.color_array(dst)
        # For each third color x, the LUT gives the target core of (cu, cv, x).
        dpu_ids = np.empty((c, m), dtype=np.int64)
        for x in range(c):
            dpu_ids[x] = self.table.lut[cu, cv, np.int64(x)]
        flat_ids = dpu_ids.ravel()
        flat_src = np.tile(src.astype(np.int64, copy=False), c)
        flat_dst = np.tile(dst.astype(np.int64, copy=False), c)
        order = np.argsort(flat_ids, kind="stable")
        flat_ids = flat_ids[order]
        flat_src = flat_src[order]
        flat_dst = flat_dst[order]
        counts = np.bincount(flat_ids, minlength=t).astype(np.int64)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        per_dpu = [
            (flat_src[bounds[i] : bounds[i + 1]], flat_dst[bounds[i] : bounds[i + 1]])
            for i in range(t)
        ]
        return EdgePartition(per_dpu=per_dpu, counts=counts, edges_in=m)

    def mono_mask(self) -> np.ndarray:
        return self.table.mono_mask()

    def expected_max_edges_per_dpu(self, num_edges: int) -> float:
        """Paper Sec. 4.5: the maximum expected per-core load is ``(6 / C**2) * |E|``.

        Three-distinct-color triplets carry the most edges; an edge lands on a
        given such triplet with probability ``6 / C**3`` per copy summed over
        its ``C`` copies... equivalently the closed form the paper uses.
        """
        return 6.0 * num_edges / (self.num_colors**2)
