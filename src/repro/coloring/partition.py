"""Edge partitioning across PIM cores via vertex coloring (paper Sec. 3.1).

The host colors both endpoints of every edge with the universal hash
``h_C`` and routes a copy of the edge to each of the ``C`` compatible PIM
cores (one per choice of the triplet's third color).  The partition guarantees

* every triangle with >= 2 distinct node colors is counted by exactly one core,
* every monochromatic triangle is counted by exactly ``C`` cores, and the
  single-color-triplet core of that color counts *only* such triangles, making
  the final correction (subtract ``C-1`` times those counts) exact.

The assignment is fully vectorized: one LUT gather per third-color choice and
one stable grouping sort.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import ConfigurationError
from ..common.hashing import ColorHash
from ..common.validation import check_positive
from ..graph.coo import COOGraph
from .triplets import TripletTable

__all__ = [
    "EdgePartition",
    "ColoringPartitioner",
    "DegreePartitioner",
    "PARTITIONER_STRATEGIES",
    "make_partitioner",
]

#: Strategy names accepted by :func:`make_partitioner` and the pipeline's
#: ``partitioner`` option ("auto" resolves to one of the other two via
#: :mod:`repro.coloring.autotune` before a partitioner is built).
PARTITIONER_STRATEGIES = ("hash", "degree", "auto")


@dataclass(frozen=True)
class EdgePartition:
    """Result of routing one edge batch to the PIM cores.

    Attributes
    ----------
    per_dpu:
        List (length = #triplets) of ``(src, dst)`` int64 array pairs.
    counts:
        Edges routed to each core for this batch.
    edges_in:
        Size of the input batch (before the C-fold duplication).
    """

    per_dpu: list[tuple[np.ndarray, np.ndarray]]
    counts: np.ndarray
    edges_in: int

    @property
    def total_routed(self) -> int:
        return int(self.counts.sum())


@dataclass
class ColoringPartitioner:
    """Stateful partitioner: one hash function, one triplet table.

    The hash function is drawn once (like the host process does at startup) so
    dynamic-graph batches color nodes consistently across updates.
    """

    num_colors: int
    rng: np.random.Generator
    color_hash: ColorHash = field(init=False)
    table: TripletTable = field(init=False)

    def __post_init__(self) -> None:
        self.num_colors = check_positive("num_colors", self.num_colors)
        self.color_hash = ColorHash.random(self.num_colors, self.rng)
        self.table = TripletTable.build(self.num_colors)

    @property
    def num_dpus(self) -> int:
        return self.table.num_dpus

    def node_colors(self, nodes: np.ndarray) -> np.ndarray:
        return self.color_hash.color_array(nodes)

    def assign(self, graph: COOGraph) -> EdgePartition:
        """Route every edge of ``graph`` to its ``C`` compatible PIM cores."""
        return self.assign_arrays(graph.src, graph.dst)

    def assign_arrays(self, src: np.ndarray, dst: np.ndarray) -> EdgePartition:
        c = self.num_colors
        t = self.table.num_dpus
        m = int(src.size)
        if m == 0:
            empty = [
                (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
                for _ in range(t)
            ]
            return EdgePartition(per_dpu=empty, counts=np.zeros(t, dtype=np.int64), edges_in=0)
        cu = self.node_colors(src)
        cv = self.node_colors(dst)
        # For each third color x, the LUT gives the target core of (cu, cv, x).
        dpu_ids = np.empty((c, m), dtype=np.int64)
        for x in range(c):
            dpu_ids[x] = self.table.lut[cu, cv, np.int64(x)]
        flat_ids = dpu_ids.ravel()
        flat_src = np.tile(src.astype(np.int64, copy=False), c)
        flat_dst = np.tile(dst.astype(np.int64, copy=False), c)
        order = np.argsort(flat_ids, kind="stable")
        flat_ids = flat_ids[order]
        flat_src = flat_src[order]
        flat_dst = flat_dst[order]
        counts = np.bincount(flat_ids, minlength=t).astype(np.int64)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        per_dpu = [
            (flat_src[bounds[i] : bounds[i + 1]], flat_dst[bounds[i] : bounds[i + 1]])
            for i in range(t)
        ]
        return EdgePartition(per_dpu=per_dpu, counts=counts, edges_in=m)

    def mono_mask(self) -> np.ndarray:
        return self.table.mono_mask()

    #: Strategy tag surfaced in result meta, bench artifacts and the ledger.
    strategy = "hash"

    def expected_max_edges_per_dpu(self, num_edges: int) -> float:
        """Paper Sec. 4.5: the maximum expected per-core load is ``(6 / C**2) * |E|``.

        Three-distinct-color triplets carry the most edges; an edge lands on a
        given such triplet with probability ``6 / C**3`` per copy summed over
        its ``C`` copies... equivalently the closed form the paper uses.

        Caveat: the formula assumes endpoint colors are *uniform*, which holds
        for the universal hash but not for skewed degree distributions routed
        through :class:`DegreePartitioner` — that subclass overrides this with
        a mass-aware estimate, and auto-tuning dispatches through the override
        rather than reasoning from the uniform closed form.
        """
        return 6.0 * num_edges / (self.num_colors**2)


@dataclass
class DegreePartitioner(ColoringPartitioner):
    """Degree-based coloring (Kolountzakis et al.): place hubs deliberately.

    The long tail of low-degree nodes keeps the universal hash coloring, so
    batches remain consistent and the tail stays uniform.  The few hot nodes
    (degree >= ``hot_degree_factor`` x average) are pulled out and placed
    greedily: sorted by descending degree, each is moved to the color that
    minimizes the resulting *maximum per-triplet edge load*, evaluated
    exactly and incrementally against the loads the hashed tail (plus
    already-placed hubs) left behind.  This both spreads hubs across colors
    and steers their mass onto the currently lightest triplets, so it also
    corrects residual tail imbalance the hash produced.

    Counts are unaffected: the monochromatic-correction argument only needs
    node colors to form a partition, not any particular one, so any coloring
    yields the same exact triangle count (pinned by the differential grid).

    Call :meth:`fit` with the full graph before routing batches;
    :meth:`assign` auto-fits on its input for convenience.
    """

    hot_degree_factor: float = 4.0
    max_hot_nodes: int = 4096
    _hot_nodes: np.ndarray = field(init=False, repr=False)
    _hot_colors: np.ndarray = field(init=False, repr=False)
    _color_mass: np.ndarray | None = field(init=False, repr=False, default=None)

    strategy = "degree"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.hot_degree_factor <= 0:
            raise ConfigurationError("hot_degree_factor must be positive")
        self.max_hot_nodes = check_positive("max_hot_nodes", self.max_hot_nodes)
        self._hot_nodes = np.empty(0, dtype=np.int64)
        self._hot_colors = np.empty(0, dtype=np.int64)

    @property
    def fitted(self) -> bool:
        return self._color_mass is not None

    @property
    def num_hot_nodes(self) -> int:
        return int(self._hot_nodes.size)

    def _triplet_loads(self, cu: np.ndarray, cv: np.ndarray) -> np.ndarray:
        """Edges routed to each triplet for endpoint-color arrays (cu, cv)."""
        loads = np.zeros(self.table.num_dpus, dtype=np.int64)
        for x in range(self.num_colors):
            loads += np.bincount(
                self.table.lut[cu, cv, np.int64(x)], minlength=self.table.num_dpus
            )
        return loads

    def fit(self, graph: COOGraph) -> "DegreePartitioner":
        """Pick hot-node colors from ``graph``'s degree distribution."""
        deg = graph.degrees().astype(np.int64, copy=False)
        present = deg > 0
        empty = np.empty(0, dtype=np.int64)
        if not present.any():
            self._hot_nodes, self._hot_colors = empty, empty
            self._color_mass = np.zeros(self.num_colors, dtype=np.float64)
            return self
        avg = deg[present].mean()
        threshold = max(self.hot_degree_factor * avg, avg + 1.0)
        hot = np.nonzero(deg >= threshold)[0].astype(np.int64)
        if hot.size > self.max_hot_nodes:
            keep = np.argsort(deg[hot], kind="stable")[::-1][: self.max_hot_nodes]
            hot = hot[keep]
        # Heaviest first; ties broken by node id for determinism.
        hot = hot[np.lexsort((hot, -deg[hot]))]
        colors = self.color_hash.color_array(np.arange(deg.size, dtype=np.int64))
        if hot.size:
            src = graph.src.astype(np.int64, copy=False)
            dst = graph.dst.astype(np.int64, copy=False)
            loads = self._triplet_loads(colors[src], colors[dst]).astype(np.float64)
            # Incidence lists: every edge appears once per endpoint.
            ends = np.concatenate((src, dst))
            others = np.concatenate((dst, src))
            order = np.argsort(ends, kind="stable")
            ends, others = ends[order], others[order]
            for v in hot.tolist():
                lo, hi = np.searchsorted(ends, [v, v + 1])
                nbr_cols = colors[others[lo:hi]]
                # lut[c, nbr_cols] rows enumerate the third color, so the
                # flattened bincount is this node's per-triplet contribution.
                removed = np.bincount(
                    self.table.lut[colors[v], nbr_cols].ravel(),
                    minlength=self.table.num_dpus,
                )
                best = None
                for c in range(self.num_colors):
                    added = np.bincount(
                        self.table.lut[c, nbr_cols].ravel(),
                        minlength=self.table.num_dpus,
                    )
                    cand = loads - removed + added
                    score = (float(cand.max()), float(np.square(cand).sum()))
                    if best is None or score < best[0]:
                        best = (score, c, cand)
                colors[v] = best[1]
                loads = best[2]
        # node_colors binary-searches the hot set, so store it id-sorted.
        hot = np.sort(hot)
        self._hot_nodes = hot
        self._hot_colors = colors[hot]
        self._color_mass = np.bincount(
            colors, weights=deg.astype(np.float64), minlength=self.num_colors
        )
        return self

    def node_colors(self, nodes: np.ndarray) -> np.ndarray:
        if not self.fitted:
            raise ConfigurationError(
                "DegreePartitioner used before fit(); call fit(graph) first"
            )
        colors = self.color_hash.color_array(nodes)
        if self._hot_nodes.size:
            nodes64 = nodes.astype(np.int64, copy=False)
            idx = np.searchsorted(self._hot_nodes, nodes64)
            idx = np.minimum(idx, self._hot_nodes.size - 1)
            mask = self._hot_nodes[idx] == nodes64
            colors[mask] = self._hot_colors[idx[mask]]
        return colors

    def assign(self, graph: COOGraph) -> EdgePartition:
        if not self.fitted:
            self.fit(graph)
        return super().assign(graph)

    def expected_max_edges_per_dpu(self, num_edges: int) -> float:
        """Mass-aware load estimate: fold per-color endpoint-mass fractions
        through the triplet table instead of assuming uniform colors.

        Before :meth:`fit` (no mass information yet) this falls back to the
        uniform closed form of the base class.
        """
        if not self.fitted or self._color_mass.sum() <= 0:
            return super().expected_max_edges_per_dpu(num_edges)
        frac = self._color_mass / self._color_mass.sum()
        # Expected edges with endpoint colors {a, b} (unordered):
        pair = np.outer(frac, frac) * num_edges
        best = 0.0
        for triplet in self.table.triplets:
            colors = sorted(set(int(c) for c in triplet))
            load = 0.0
            for i, a in enumerate(colors):
                for b in colors[i:]:
                    load += pair[a, b] if a == b else 2.0 * pair[a, b]
            best = max(best, load)
        return float(best)


def make_partitioner(
    strategy: str, num_colors: int, rng: np.random.Generator
) -> ColoringPartitioner:
    """Build the partitioner for a resolved strategy ("auto" must already be
    resolved to "hash" or "degree" by :func:`repro.coloring.autotune.auto_tune`).
    """
    if strategy == "hash":
        return ColoringPartitioner(num_colors, rng)
    if strategy == "degree":
        return DegreePartitioner(num_colors, rng)
    raise ConfigurationError(
        f"unknown partitioner strategy {strategy!r}; expected 'hash' or 'degree'"
    )
