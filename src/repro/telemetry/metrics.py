"""Typed metrics registry: counters, gauges, fixed-bucket histograms.

The scalar side of the telemetry layer.  The pipeline records the
quantities the paper's evaluation argues from — per-DPU edges routed
(load balance, Sec. 3.1), reservoir occupancy (Sec. 3.3), Misra-Gries
summary size (Sec. 3.5), kernel instruction/DMA totals (Sec. 4.4) — as
named instruments in one :class:`MetricsRegistry`.

**Determinism contract.**  Instruments are only ever updated from the
parent process with values that are themselves engine-invariant (partition
counts, charge ledgers, simulated seconds), so ``snapshot()`` is
bit-identical across the serial/thread/process executors.  Wall-clock
derived instruments (worker utilization) are declared ``volatile=True`` and
excluded from the default snapshot; they appear only in the separate
``snapshot(volatile=True)`` view that run reports store alongside.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..common.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_FRACTION_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "quantile_from_snapshot",
]

#: Upper bounds for ratio-like histograms (occupancy, utilization).
DEFAULT_FRACTION_BUCKETS: tuple[float, ...] = (
    0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0,
)
#: Power-of-4 upper bounds for size-like histograms (edges, bytes).
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = tuple(float(4**k) for k in range(1, 13))
#: Upper bounds in seconds for latency-like histograms (request queue wait,
#: op execution).  Spans 100 µs to ~2 min in roughly 3x steps, which covers
#: both sub-millisecond pings and multi-second monster batches.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03,
    0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 120.0,
)


@dataclass
class Counter:
    """Monotonically increasing total (``.inc()``)."""

    name: str
    help: str = ""
    volatile: bool = False
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"counter {self.name} cannot decrease")
        self.value += float(amount)

    def snapshot(self) -> dict:
        return {"kind": "counter", "value": float(self.value)}


@dataclass
class Gauge:
    """Last-write-wins instantaneous value (``.set()``)."""

    name: str
    help: str = ""
    volatile: bool = False
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict:
        return {"kind": "gauge", "value": float(self.value)}


@dataclass
class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``buckets`` are ascending upper bounds; an implicit ``+inf`` bucket
    catches the overflow.  Buckets are fixed at construction so snapshots
    from different runs are directly comparable (the trajectory files in
    ``BENCH_telemetry.json`` rely on this).
    """

    name: str
    buckets: tuple[float, ...]
    help: str = ""
    volatile: bool = False
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0
    min_value: float = math.inf
    max_value: float = -math.inf

    def __post_init__(self) -> None:
        bounds = tuple(float(b) for b in self.buckets)
        if not bounds or any(nxt <= prev for prev, nxt in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {self.name} needs strictly ascending buckets, got {bounds}"
            )
        self.buckets = bounds
        if not self.counts:
            self.counts = [0] * (len(bounds) + 1)

    def observe(self, value: float) -> None:
        v = float(value)
        for i, bound in enumerate(self.buckets):
            if v <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += v
        self.count += 1
        self.min_value = min(self.min_value, v)
        self.max_value = max(self.max_value, v)

    def observe_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.observe(v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (0 <= q <= 1)."""
        return quantile_from_snapshot(self.snapshot(), q)

    def snapshot(self) -> dict:
        return {
            "kind": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": float(self.total),
            "count": int(self.count),
            "min": float(self.min_value) if self.count else None,
            "max": float(self.max_value) if self.count else None,
        }


def quantile_from_snapshot(snap: dict, q: float) -> float:
    """Estimate a quantile from a :meth:`Histogram.snapshot` dict.

    Linear interpolation inside the bucket holding the ``q``-th observation,
    clamped by the recorded ``min``/``max`` so a histogram whose mass sits in
    one bucket never reports a value outside what it actually saw.  Returns
    ``0.0`` for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
    total = int(snap.get("count") or 0)
    if total <= 0:
        return 0.0
    bounds = list(snap["buckets"])
    counts = list(snap["counts"])
    lo = snap.get("min")
    hi = snap.get("max")
    rank = q * total
    cumulative = 0
    for i, bucket_count in enumerate(counts):
        if not bucket_count:
            continue
        if cumulative + bucket_count >= rank:
            lower = bounds[i - 1] if i > 0 else 0.0
            upper = bounds[i] if i < len(bounds) else (hi if hi is not None else lower)
            fraction = (rank - cumulative) / bucket_count
            value = lower + (upper - lower) * max(0.0, min(1.0, fraction))
            if lo is not None:
                value = max(value, float(lo))
            if hi is not None:
                value = min(value, float(hi))
            return float(value)
        cumulative += bucket_count
    return float(hi) if hi is not None else 0.0


_Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create registry keyed by metric name."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Instrument] = {}

    def _get_or_create(self, name: str, factory, kind: type) -> _Instrument:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", volatile: bool = False) -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name=name, help=help, volatile=volatile), Counter
        )

    def gauge(self, name: str, help: str = "", volatile: bool = False) -> Gauge:
        return self._get_or_create(
            name, lambda: Gauge(name=name, help=help, volatile=volatile), Gauge
        )

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_SIZE_BUCKETS,
        help: str = "",
        volatile: bool = False,
    ) -> Histogram:
        return self._get_or_create(
            name,
            lambda: Histogram(
                name=name, buckets=tuple(buckets), help=help, volatile=volatile
            ),
            Histogram,
        )

    # ---------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> _Instrument | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self, volatile: bool = False) -> dict:
        """All instruments of one volatility class, sorted by name.

        The default (``volatile=False``) view contains only deterministic
        instruments and is the one compared bit-for-bit across executors;
        ``volatile=True`` returns the wall-clock-derived remainder.
        """
        return {
            name: m.snapshot()
            for name, m in sorted(self._metrics.items())
            if m.volatile == volatile
        }

    def export(self) -> dict:
        """Every instrument, both volatility classes, with its metadata.

        The exposition view (``repro-serve``'s ``metrics`` op, the Prometheus
        renderer): each entry is the instrument's ``snapshot()`` plus ``help``
        and ``volatile`` so downstream consumers can filter the wall-clock
        side out when they need the deterministic subset.
        """
        return {
            name: {**m.snapshot(), "help": m.help, "volatile": bool(m.volatile)}
            for name, m in sorted(self._metrics.items())
        }
