"""Structured telemetry for the PIM pipeline: spans, metrics, run reports.

Three modules, one recorder object:

* :mod:`repro.telemetry.spans` — hierarchical :class:`Span` trees carrying
  both simulated and wall-clock time, recorded through the
  :class:`Telemetry` context-manager API and stitched safely across the
  thread/process execution engines;
* :mod:`repro.telemetry.metrics` — a typed registry of counters, gauges and
  fixed-bucket histograms whose default snapshot is bit-identical across
  executors;
* :mod:`repro.telemetry.export` — JSON :class:`RunReport` (+ schema
  validator), metrics CSV, Chrome-trace/Perfetto emission, and the
  ``--profile`` self-time table.

Usage::

    from repro import PimTriangleCounter
    from repro.telemetry import Telemetry, RunReport

    tel = Telemetry(detail=True)
    result = PimTriangleCounter(num_colors=4, telemetry=tel).count(graph)
    RunReport.from_result(result, graph=graph).write_json("report.json")

See ``docs/observability.md`` for span naming conventions, the metrics
catalog, and the report schema.
"""

from .export import (
    ACCEPTED_RUN_REPORT_SCHEMAS,
    RUN_REPORT_SCHEMA,
    RunReport,
    chrome_trace,
    metrics_to_csv,
    render_profile,
    validate_run_report,
    write_chrome_trace,
)
from .flamegraph import collapsed_stacks, flamegraph_svg, write_flamegraph
from .metrics import (
    DEFAULT_FRACTION_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_from_snapshot,
)
from .spans import PHASE_NAMES, Span, SpanRecord, Telemetry

__all__ = [
    "Telemetry",
    "Span",
    "SpanRecord",
    "PHASE_NAMES",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_FRACTION_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "quantile_from_snapshot",
    "RunReport",
    "RUN_REPORT_SCHEMA",
    "ACCEPTED_RUN_REPORT_SCHEMAS",
    "chrome_trace",
    "write_chrome_trace",
    "metrics_to_csv",
    "render_profile",
    "validate_run_report",
    "collapsed_stacks",
    "flamegraph_svg",
    "write_flamegraph",
]
