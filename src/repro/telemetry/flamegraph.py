"""Flamegraph export of the telemetry span tree (collapsed stacks + SVG).

The ``--profile`` table answers "which span is hot"; a flamegraph answers
"which *path* is hot" — the classic visualization where each frame's width
is the time spent on that call path.  Two outputs, both dependency-free:

* :func:`collapsed_stacks` — Brendan Gregg's collapsed-stack text format,
  one ``path;to;frame <value>`` line per span path carrying **self** time,
  consumable by ``flamegraph.pl`` / speedscope / inferno;
* :func:`flamegraph_svg` — a standalone SVG (embedded hover titles, no
  JavaScript or external assets) rendered directly from the same
  aggregation, for environments without those tools.

The ``axis`` parameter picks the clock the widths measure:

* ``"sim"`` — simulated seconds from the cost model.  Deterministic: the
  same run configuration renders the same flamegraph bit-for-bit on any
  machine and under any executor (the parity contract), so sim flamegraphs
  diff cleanly across commits.
* ``"wall"`` — honest host wall-clock, for finding where the *simulator*
  spends its time.

Values are exported as integer microseconds (the collapsed format wants
integers; at μs resolution nothing the cost model produces rounds to zero).

Aggregation: spans with the same path (e.g. the per-DPU ``dpu[i]`` detail
spans across batches, or repeated phases over ``--trials``) merge into one
frame, like stack samples with identical call chains.  Self time is clamped
at zero — concurrent children (per-DPU spans under one launch) can sum past
their parent, exactly as in :attr:`Span.sim_self_seconds`.
"""

from __future__ import annotations

import html
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .spans import Telemetry

__all__ = ["collapsed_stacks", "flamegraph_svg", "write_flamegraph"]

_AXES = ("sim", "wall")


def _span_seconds(span, axis: str) -> float:
    return span.sim_seconds if axis == "sim" else span.wall_seconds


def _aggregate(telemetry: "Telemetry", axis: str) -> dict[str, tuple[float, float]]:
    """Map ``path -> (total_seconds, self_seconds)``, merged over same paths."""
    if axis not in _AXES:
        raise ValueError(f"axis must be one of {_AXES}, got {axis!r}")
    agg: dict[str, tuple[float, float]] = {}
    for top in telemetry.root.children:
        for span in top.walk():
            total = _span_seconds(span, axis)
            child_sum = sum(_span_seconds(c, axis) for c in span.children)
            self_sec = max(0.0, total - child_sum)
            prev_total, prev_self = agg.get(span.path, (0.0, 0.0))
            agg[span.path] = (prev_total + total, prev_self + self_sec)
    return agg


def collapsed_stacks(telemetry: "Telemetry", axis: str = "sim") -> str:
    """Collapsed-stack text: one ``a;b;c <int_microseconds>`` line per path.

    Each line carries the path's *self* time (flamegraph tooling re-derives
    totals by summing descendants).  Lines are sorted by path so the output
    is stable and diffs cleanly.  Paths use ``;`` as the frame separator —
    span names never contain it (they use ``/`` internally, translated
    here).
    """
    agg = _aggregate(telemetry, axis)
    lines = []
    for path in sorted(agg):
        _, self_sec = agg[path]
        micros = round(self_sec * 1e6)
        if micros <= 0 and self_sec <= 0.0:
            # Pure-container frames (zero self time) still matter for shape,
            # but the collapsed format infers them from their children; only
            # emit frames that carry weight.
            continue
        lines.append(f"{path.replace('/', ';')} {max(1, micros)}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------- SVG
_FRAME_H = 18
_PALETTE = (
    "#e5734a", "#e08a3c", "#d9a441", "#c8b44a",
    "#e0633c", "#d97b41", "#c86a4a", "#e09a50",
)


def _color(path: str) -> str:
    # Stable per-path hue (hash the path, not Python's salted hash()).
    h = 0
    for ch in path:
        h = (h * 131 + ord(ch)) % 1_000_003
    return _PALETTE[h % len(_PALETTE)]


def flamegraph_svg(
    telemetry: "Telemetry",
    axis: str = "sim",
    width: int = 1200,
    title: str | None = None,
) -> str:
    """Standalone flamegraph SVG of the span tree (no external assets).

    Frames are laid out icicle-style (root row on top); each ``<rect>``
    carries a ``<title>`` tooltip with the path, its seconds on the chosen
    clock, and its share of the root total.  Sibling frames are ordered by
    span order, so the sim-axis SVG is deterministic end to end.
    """
    if axis not in _AXES:
        raise ValueError(f"axis must be one of {_AXES}, got {axis!r}")

    # Merge same-path top-level spans (repeated trials) into one virtual
    # root layout pass; children keep their order of first appearance.
    def children_of(spans):
        merged: dict[str, list] = {}
        order: list[str] = []
        for span in spans:
            if span.path not in merged:
                merged[span.path] = []
                order.append(span.path)
            merged[span.path].append(span)
        return [(path, merged[path]) for path in order]

    total = sum(_span_seconds(s, axis) for s in telemetry.root.children)
    rows: list[list[tuple[str, float, float]]] = []  # depth -> (path, x0, dx)

    def layout(spans_by_path, x0: float, depth: int) -> None:
        if depth >= len(rows):
            rows.append([])
        x = x0
        for path, spans in spans_by_path:
            seconds = sum(_span_seconds(s, axis) for s in spans)
            if seconds <= 0:
                continue
            rows[depth].append((path, x, seconds))
            layout(children_of([c for s in spans for c in s.children]), x, depth + 1)
            x += seconds

    layout(children_of(telemetry.root.children), 0.0, 0)

    label = title or f"{axis} flamegraph"
    height = (len(rows) + 2) * _FRAME_H + 8
    scale = (width - 2) / total if total > 0 else 0.0
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="#fdf6ec"/>',
        f'<text x="{width / 2:.0f}" y="{_FRAME_H - 4}" text-anchor="middle" '
        f'font-size="13">{html.escape(label)} '
        f"(total {total:.6g}s {axis})</text>",
    ]
    for depth, frames in enumerate(rows):
        y = (depth + 1) * _FRAME_H + 4
        for path, x0, seconds in frames:
            x = 1 + x0 * scale
            w = max(seconds * scale, 0.5)
            name = path.rsplit("/", 1)[-1] or path
            share = 100.0 * seconds / total if total > 0 else 0.0
            tooltip = f"{path} — {seconds:.6g}s {axis} ({share:.1f}%)"
            parts.append(
                f'<g><rect x="{x:.2f}" y="{y}" width="{w:.2f}" '
                f'height="{_FRAME_H - 2}" fill="{_color(path)}" '
                f'stroke="#fdf6ec" stroke-width="0.5">'
                f"<title>{html.escape(tooltip)}</title></rect>"
            )
            # Only label frames wide enough to hold a few characters.
            if w > 7 * min(len(name), 4):
                shown = name if w > 7 * len(name) else name[: max(1, int(w / 7)) ]
                parts.append(
                    f'<text x="{x + 3:.2f}" y="{y + _FRAME_H - 6}" '
                    f'fill="#2b2b2b">{html.escape(shown)}</text>'
                )
            parts.append("</g>")
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def write_flamegraph(path: str, telemetry: "Telemetry", axis: str = "sim") -> None:
    """Write a flamegraph file; ``.svg`` suffix picks SVG, else collapsed text."""
    if str(path).endswith(".svg"):
        content = flamegraph_svg(telemetry, axis=axis)
    else:
        content = collapsed_stacks(telemetry, axis=axis)
    with open(path, "w") as fh:
        fh.write(content)
