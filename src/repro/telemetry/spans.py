"""Hierarchical spans carrying both simulated and wall-clock time.

The paper's evaluation (Sec. 4) is phrased entirely in phase timings —
Setup / Sample Creation / Triangle Count — with per-DPU load balance under
them.  A :class:`Span` is one node of that hierarchy: it knows its position
in the tree (``sample_creation/scatter``), the **wall-clock** seconds the
host actually spent inside it (``time.perf_counter``), and the **simulated**
seconds the cost model charged while it was open (captured by snapshotting a
:class:`~repro.pimsim.kernel.SimClock` at entry and exit).

:class:`Telemetry` is the per-run recorder the pipeline threads everywhere:

* ``with tel.span("scatter", clock=clock):`` opens a child of whatever span
  is currently open, so nesting follows the call structure for free;
* workers of the thread/process execution engines cannot touch the shared
  span stack — they time themselves locally and hand back a flat, picklable
  :class:`SpanRecord` which the parent stitches into the tree in DPU order
  (:meth:`Telemetry.attach_records`, fed by the executors' timed map path);
* the attached :class:`~repro.telemetry.metrics.MetricsRegistry` collects
  the scalar side (counters / gauges / histograms).

Only the *parent* process ever mutates a ``Telemetry``; simulated seconds
and every metric recorded from them are bit-identical across the serial,
thread and process engines (the executor determinism contract), while wall
times are honest measurements and therefore vary run to run.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pimsim uses us)
    from ..pimsim.kernel import SimClock

__all__ = ["Span", "SpanRecord", "Telemetry", "PHASE_NAMES"]

#: The paper's three top-level phases, in pipeline order.
PHASE_NAMES: tuple[str, ...] = ("setup", "sample_creation", "triangle_count")


@dataclass(frozen=True)
class SpanRecord:
    """Flat, picklable span measured inside an executor worker.

    Workers (thread or process) must not touch the shared span tree, so they
    report ``(name, wall, sim)`` triples that the parent turns into child
    spans after the merge-back — the span analogue of the mutated-DPU
    splicing in :mod:`repro.pimsim.executor`.
    """

    name: str
    wall_seconds: float
    sim_seconds: float = 0.0
    attrs: dict = field(default_factory=dict)


@dataclass
class Span:
    """One node of the span tree."""

    #: Leaf name (no ``/``); the path encodes the hierarchy.
    name: str
    #: Full path from the root, e.g. ``sample_creation/scatter``.
    path: str
    #: Wall-clock start, seconds since the owning telemetry's epoch.
    wall_start: float = 0.0
    #: Wall-clock seconds spent inside the span (including children).
    wall_seconds: float = 0.0
    #: Simulated seconds charged while the span was open (including children).
    sim_seconds: float = 0.0
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    # ----------------------------------------------------------------- queries
    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and every descendant."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, path: str) -> "Span | None":
        """First descendant (or self) whose path equals ``path``."""
        for span in self.walk():
            if span.path == path:
                return span
        return None

    @property
    def sim_self_seconds(self) -> float:
        """Simulated seconds not attributed to any child span.

        Clamped at zero: children that ran *concurrently* (the per-DPU detail
        spans — real DPUs overlap, so the parent charges only the slowest)
        can sum to more than the parent's own duration.
        """
        return max(0.0, self.sim_seconds - sum(c.sim_seconds for c in self.children))

    @property
    def wall_self_seconds(self) -> float:
        """Wall seconds not attributed to any child span (clamped like sim)."""
        return max(0.0, self.wall_seconds - sum(c.wall_seconds for c in self.children))

    def to_dict(self) -> dict:
        """Nested JSON form (the ``spans`` section of a run report)."""
        return {
            "name": self.name,
            "path": self.path,
            "wall_start": float(self.wall_start),
            "wall_seconds": float(self.wall_seconds),
            "sim_seconds": float(self.sim_seconds),
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }


class Telemetry:
    """Span tree + metrics registry for one (or more) pipeline runs.

    Parameters
    ----------
    enabled:
        ``False`` turns every recording call into a no-op (``span`` yields
        ``None``); the pipeline still runs identically.
    detail:
        When ``True``, the executors' per-DPU timings are stitched in as
        child spans (hundreds of spans per launch).  ``False`` — the default
        — keeps only the phase/operation spans, whose overhead is a handful
        of ``perf_counter`` calls per run.
    """

    def __init__(self, enabled: bool = True, detail: bool = False) -> None:
        self.enabled = enabled
        self.detail = detail
        self.metrics = MetricsRegistry()
        self._epoch = time.perf_counter()
        self.root = Span(name="", path="")
        self._stack: list[Span] = [self.root]
        #: Optional live-event hook ``(kind, path, **fields)`` called on span
        #: open (``kind="start"``) and close (``kind="end"``, with wall/sim
        #: durations).  Fed by ``repro-count --log-json``'s NDJSON logger;
        #: purely observational — it runs outside every simulated charge.
        self.log_sink = None
        #: Optional free-form event hook ``(event_name, **fields)`` for
        #: progress events that are not spans — the batched ingest loop's
        #: ``heartbeat`` lines (chunk index, edges ingested, peak routed
        #: bytes, ETA).  Same contract as ``log_sink``: observation only,
        #: called from the parent process with engine-invariant fields, so
        #: enabling it cannot change any simulated number.
        self.event_sink = None

    def emit_event(self, event: str, **fields) -> None:
        """Forward one progress event to :attr:`event_sink` (no-op otherwise)."""
        if self.enabled and self.event_sink is not None:
            self.event_sink(event, **fields)

    # ------------------------------------------------------------------ spans
    def current(self) -> Span:
        """The innermost open span (the root when none is open)."""
        return self._stack[-1]

    def _child_path(self, name: str) -> str:
        parent = self._stack[-1]
        return f"{parent.path}/{name}" if parent.path else name

    @contextmanager
    def span(self, name: str, clock: "SimClock | None" = None):
        """Open a child span of the current span.

        ``clock`` attributes simulated time: the span's ``sim_seconds`` is
        the growth of ``clock.total()`` between entry and exit, so every
        ``clock.advance`` made inside lands in this span (and, transitively,
        in each open ancestor).
        """
        if not self.enabled:
            yield None
            return
        span = Span(
            name=name,
            path=self._child_path(name),
            wall_start=time.perf_counter() - self._epoch,
        )
        self._stack[-1].children.append(span)
        self._stack.append(span)
        if self.log_sink is not None:
            self.log_sink("start", span.path)
        sim_start = clock.total() if clock is not None else 0.0
        wall_start = time.perf_counter()
        try:
            yield span
        finally:
            span.wall_seconds = time.perf_counter() - wall_start
            if clock is not None:
                span.sim_seconds = clock.total() - sim_start
            self._stack.pop()
            if self.log_sink is not None:
                self.log_sink(
                    "end",
                    span.path,
                    wall_seconds=span.wall_seconds,
                    sim_seconds=span.sim_seconds,
                )

    def attach_records(self, records: list[SpanRecord]) -> None:
        """Stitch worker-measured records in as children of the current span.

        Records arrive in DPU order (the executors return results by index),
        so the tree shape is deterministic even though the wall times are
        whatever the workers measured.
        """
        if not self.enabled:
            return
        parent = self._stack[-1]
        for record in records:
            parent.children.append(
                Span(
                    name=record.name,
                    path=f"{parent.path}/{record.name}" if parent.path else record.name,
                    wall_start=parent.wall_start,
                    wall_seconds=record.wall_seconds,
                    sim_seconds=record.sim_seconds,
                    attrs=dict(record.attrs),
                )
            )

    def prune(self, max_top_level: int) -> int:
        """Drop the oldest completed top-level spans beyond ``max_top_level``.

        Long-lived consumers (a service session attaches one span pair per
        request, forever) call this to bound memory: histograms keep the full
        history, the tree keeps a rolling window.  Spans still open on the
        stack are never dropped.  Returns the number removed.
        """
        children = self.root.children
        excess = len(children) - max(0, int(max_top_level))
        if excess <= 0:
            return 0
        open_ids = {id(span) for span in self._stack}
        kept: list[Span] = []
        dropped = 0
        for span in children:
            if dropped < excess and id(span) not in open_ids:
                dropped += 1
            else:
                kept.append(span)
        self.root.children = kept
        return dropped

    # ---------------------------------------------------------------- queries
    def find(self, path: str) -> Span | None:
        """First span with the given path (depth-first)."""
        for child in self.root.children:
            found = child.find(path)
            if found is not None:
                return found
        return None

    def phase_totals(self) -> dict[str, float]:
        """Simulated seconds per top-level span, summed over repeated runs.

        For a single pipeline run this equals ``SimClock.phases`` (the
        acceptance invariant pinned by the telemetry tests).
        """
        totals: dict[str, float] = {}
        for span in self.root.children:
            totals[span.name] = totals.get(span.name, 0.0) + span.sim_seconds
        return totals

    def span_signature(self) -> list[tuple[str, float]]:
        """Deterministic shape of the tree: ``(path, sim_seconds)`` pairs.

        Wall times are excluded on purpose — they are real measurements and
        differ between engines; paths and simulated seconds must not (the
        executor parity contract, checked by the differential harness).
        """
        out: list[tuple[str, float]] = []
        for child in self.root.children:
            out.extend((s.path, s.sim_seconds) for s in child.walk())
        return out

    def to_dict(self) -> dict:
        """The span forest as JSON (one entry per top-level span)."""
        return {
            "enabled": self.enabled,
            "detail": self.detail,
            "spans": [c.to_dict() for c in self.root.children],
        }
