"""Exporters: run reports (JSON), metrics CSV, Chrome-trace, profile table.

Three consumers, three formats:

* **RunReport** — the machine-readable record of one run: the
  :meth:`TcResult.to_dict` summary, the span tree, and both metric
  snapshots, under one ``schema`` tag.  ``benchmarks/bench_report.py``
  bundles these into the ``BENCH_telemetry.json`` trajectory, and
  :func:`validate_run_report` is the (dependency-free) schema check CI runs
  on the CLI's ``--metrics-out`` output.
* **Chrome trace** — a ``chrome://tracing`` / Perfetto ``traceEvents`` file
  with two process tracks: the wall-clock span tree (track "host wall") and
  the simulated operation timeline reconstructed from the
  :class:`~repro.pimsim.trace.Trace` ledger (track "simulated PIM"), so the
  two clocks of `docs/architecture.md` §3 can be eyeballed side by side.
* **Profile table** — ``repro-count --profile``'s sorted self-time view of
  the span tree, one line per distinct span path.
"""

from __future__ import annotations

import io
import json
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from .spans import Span, Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pimsim uses us)
    from ..pimsim.trace import Trace

__all__ = [
    "RUN_REPORT_SCHEMA",
    "ACCEPTED_RUN_REPORT_SCHEMAS",
    "RunReport",
    "chrome_trace",
    "write_chrome_trace",
    "metrics_to_csv",
    "render_profile",
    "validate_run_report",
]

#: Schema tag embedded in every *newly written* run report.  Version 2 adds
#: the optional ``imbalance`` section (the per-DPU work ledger of
#: :mod:`repro.observability.imbalance`) and the optional ``run_id`` field
#: that joins a report to its ``--log-json`` NDJSON stream.
RUN_REPORT_SCHEMA = "repro-run-report/2"

#: Tags :func:`validate_run_report` accepts: v1 documents (no imbalance /
#: run_id) remain valid forever — consumers must not reject old baselines.
ACCEPTED_RUN_REPORT_SCHEMAS = ("repro-run-report/1", "repro-run-report/2")


# --------------------------------------------------------------------- report
@dataclass
class RunReport:
    """One run, fully described: result + spans + metrics in a stable schema."""

    result: dict
    spans: dict
    metrics: dict
    volatile_metrics: dict = field(default_factory=dict)
    graph: dict = field(default_factory=dict)
    config: dict = field(default_factory=dict)
    #: Full per-DPU work ledger (schema v2; ``None`` when not harvested).
    imbalance: dict | None = None
    #: Opaque identifier joining this report to its NDJSON log stream.
    run_id: str | None = None

    @classmethod
    def from_result(
        cls,
        result: Any,
        graph: Any = None,
        config: dict | None = None,
        run_id: str | None = None,
    ) -> "RunReport":
        """Bundle a :class:`~repro.core.result.TcResult` and its telemetry.

        ``result.telemetry`` supplies the span tree and metric snapshots;
        a result produced with telemetry disabled yields empty sections.
        ``result.imbalance``, when the pipeline harvested a ledger, becomes
        the v2 ``imbalance`` section (skew stats + straggler table + per-DPU
        columns).
        """
        tel: Telemetry | None = getattr(result, "telemetry", None)
        graph_info = {}
        if graph is not None:
            graph_info = {
                "name": graph.name,
                "num_nodes": int(graph.num_nodes),
                "num_edges": int(graph.num_edges),
            }
        ledger = getattr(result, "imbalance", None)
        return cls(
            result=result.to_dict(),
            spans=tel.to_dict() if tel is not None else {"enabled": False, "spans": []},
            metrics=tel.metrics.snapshot() if tel is not None else {},
            volatile_metrics=tel.metrics.snapshot(volatile=True) if tel is not None else {},
            graph=graph_info,
            config=dict(config or {}),
            imbalance=ledger.to_dict() if ledger is not None else None,
            run_id=run_id,
        )

    def to_dict(self) -> dict:
        return {
            "schema": RUN_REPORT_SCHEMA,
            "run_id": self.run_id,
            "graph": self.graph,
            "config": self.config,
            "result": self.result,
            "spans": self.spans,
            "metrics": self.metrics,
            "volatile_metrics": self.volatile_metrics,
            "imbalance": self.imbalance,
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def _validate_span(node: dict, where: str, errors: list[str]) -> None:
    for key, kind in (
        ("name", str),
        ("path", str),
        ("wall_seconds", (int, float)),
        ("sim_seconds", (int, float)),
        ("children", list),
    ):
        if key not in node:
            errors.append(f"{where}: span missing {key!r}")
        elif not isinstance(node[key], kind):
            errors.append(f"{where}: span {key!r} has type {type(node[key]).__name__}")
    for i, child in enumerate(node.get("children", []) or []):
        if isinstance(child, dict):
            _validate_span(child, f"{where}.children[{i}]", errors)
        else:
            errors.append(f"{where}.children[{i}]: not an object")


def validate_run_report(data: dict) -> list[str]:
    """Structural schema check; returns one error string per violation.

    Deliberately dependency-free (no ``jsonschema`` in the image): checks
    the schema tag, the required sections, span-tree shape, metric entry
    shape, and that the result carries the paper's phase ledger.
    """
    errors: list[str] = []
    if not isinstance(data, dict):
        return ["report: not a JSON object"]
    schema = data.get("schema")
    if schema not in ACCEPTED_RUN_REPORT_SCHEMAS:
        errors.append(
            f"report: schema is {schema!r}, expected one of "
            f"{ACCEPTED_RUN_REPORT_SCHEMAS!r}"
        )
    for section in ("graph", "config", "result", "spans", "metrics", "volatile_metrics"):
        if not isinstance(data.get(section), dict):
            errors.append(f"report: missing or non-object section {section!r}")
    # v2-only sections; optional (absent in v1 documents, nullable in v2).
    run_id = data.get("run_id")
    if run_id is not None and not isinstance(run_id, str):
        errors.append(f"report: run_id has type {type(run_id).__name__}")
    imbalance = data.get("imbalance")
    if imbalance is not None:
        if not isinstance(imbalance, dict):
            errors.append(f"report: imbalance has type {type(imbalance).__name__}")
        else:
            for key, kind in (
                ("num_dpus", int),
                ("num_colors", int),
                ("skew", dict),
                ("stragglers", list),
                ("per_dpu", dict),
            ):
                if key not in imbalance:
                    errors.append(f"imbalance: missing {key!r}")
                elif not isinstance(imbalance[key], kind):
                    errors.append(
                        f"imbalance: {key!r} has type {type(imbalance[key]).__name__}"
                    )
            for name, entry in (imbalance.get("skew") or {}).items():
                if not isinstance(entry, dict) or "max_over_mean" not in entry:
                    errors.append(f"imbalance.skew[{name}]: missing 'max_over_mean'")
            for i, row in enumerate(imbalance.get("stragglers") or []):
                if not isinstance(row, dict) or "dpu" not in row or "triplet" not in row:
                    errors.append(f"imbalance.stragglers[{i}]: missing dpu/triplet")
    result = data.get("result")
    if isinstance(result, dict):
        if not isinstance(result.get("phases"), dict):
            errors.append("result: missing 'phases' object")
        for key in ("estimate", "num_colors", "num_dpus"):
            if key not in result:
                errors.append(f"result: missing {key!r}")
    spans = data.get("spans")
    if isinstance(spans, dict):
        for i, node in enumerate(spans.get("spans", []) or []):
            if isinstance(node, dict):
                _validate_span(node, f"spans[{i}]", errors)
            else:
                errors.append(f"spans[{i}]: not an object")
    for section in ("metrics", "volatile_metrics"):
        metrics = data.get(section)
        if not isinstance(metrics, dict):
            continue
        for name, entry in metrics.items():
            if not isinstance(entry, dict) or "kind" not in entry:
                errors.append(f"{section}[{name}]: missing 'kind'")
            elif entry["kind"] not in ("counter", "gauge", "histogram"):
                errors.append(f"{section}[{name}]: unknown kind {entry['kind']!r}")
            elif entry["kind"] in ("counter", "gauge") and "value" not in entry:
                errors.append(f"{section}[{name}]: missing 'value'")
            elif entry["kind"] == "histogram" and (
                "buckets" not in entry or "counts" not in entry
            ):
                errors.append(f"{section}[{name}]: histogram missing buckets/counts")
    return errors


# ----------------------------------------------------------------------- csv
def metrics_to_csv(snapshot: dict) -> str:
    """Flatten a metrics snapshot to ``name,kind,field,value`` CSV rows."""
    out = io.StringIO()
    out.write("name,kind,field,value\n")
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("kind", "")
        if kind == "histogram":
            for bound, count in zip(
                list(entry["buckets"]) + ["inf"], entry["counts"]
            ):
                out.write(f"{name},{kind},le_{bound},{count}\n")
            out.write(f"{name},{kind},sum,{entry['sum']}\n")
            out.write(f"{name},{kind},count,{entry['count']}\n")
        else:
            out.write(f"{name},{kind},value,{entry.get('value', '')}\n")
    return out.getvalue()


# --------------------------------------------------------------- chrome trace
_DPU_LANE_RE = re.compile(r"^dpu(\d+)$")


def _dpu_lane_events(telemetry: Telemetry) -> list[dict]:
    """One simulated-axis lane per DPU id from the per-DPU detail spans.

    Reconstructs each span's simulated *start* by walking the tree in
    recording order: ordinary children run sequentially from their parent's
    start, while ``dpuN`` detail children all start together at their
    parent's cursor (real DPUs run concurrently; the parent only charged the
    slowest).  Each detail span becomes one slice on thread track
    ``tid = dpu_id + 1`` of the "simulated PIM timeline" process, so a
    straggler DPU reads as the one long bar in a wall of short ones.
    """
    events: list[dict] = []
    seen_dpus: set[int] = set()

    def walk(span: Span, start: float) -> None:
        cursor = start
        for child in span.children:
            match = _DPU_LANE_RE.match(child.name)
            if match is not None:
                dpu_id = int(match.group(1))
                seen_dpus.add(dpu_id)
                events.append(
                    {
                        "name": f"{span.name}/{child.name}",
                        "cat": "sim-dpu",
                        "ph": "X",
                        "ts": cursor * 1e6,
                        "dur": child.sim_seconds * 1e6,
                        "pid": 2,
                        "tid": dpu_id + 1,
                        "args": {"path": child.path, "sim_seconds": child.sim_seconds},
                    }
                )
            else:
                walk(child, cursor)
                cursor += child.sim_seconds

    cursor = 0.0
    for top in telemetry.root.children:
        walk(top, cursor)
        cursor += top.sim_seconds
    for dpu_id in sorted(seen_dpus):
        events.append(
            {"name": "thread_name", "ph": "M", "pid": 2, "tid": dpu_id + 1,
             "args": {"name": f"dpu {dpu_id}"}}
        )
    return events


def _span_events(span: Span, depth: int, events: list[dict]) -> None:
    events.append(
        {
            "name": span.name or "run",
            "cat": "span",
            "ph": "X",
            "ts": span.wall_start * 1e6,
            "dur": span.wall_seconds * 1e6,
            "pid": 1,
            "tid": depth,
            "args": {
                "path": span.path,
                "sim_seconds": span.sim_seconds,
                **span.attrs,
            },
        }
    )
    for child in span.children:
        _span_events(child, depth + 1, events)


def chrome_trace(telemetry: Telemetry, trace: Trace | None = None) -> dict:
    """Build a Chrome/Perfetto ``traceEvents`` document.

    Track ``pid=1`` holds the wall-clock span tree, one ``tid`` per nesting
    depth.  Track ``pid=2``, when a simulator :class:`Trace` is given, lays
    the operation ledger out on the *simulated* axis (cumulative simulated
    microseconds), which is the timeline the paper's numbers live on — on
    ``tid=0`` as the flattened machine-wide ledger, plus (when per-DPU
    detail spans were recorded) one thread lane per DPU id so stragglers
    are visible as individual bars instead of being hidden in the max.
    """
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 1,
         "args": {"name": "host wall clock"}},
    ]
    for child in telemetry.root.children:
        _span_events(child, 0, events)
    lanes = _dpu_lane_events(telemetry)
    if trace is not None or lanes:
        events.append(
            {"name": "process_name", "ph": "M", "pid": 2,
             "args": {"name": "simulated PIM timeline"}}
        )
    events.extend(lanes)
    if trace is not None:
        cursor = 0.0
        for event in trace.events:
            events.append(
                {
                    "name": event.kind,
                    "cat": "sim",
                    "ph": "X",
                    "ts": cursor * 1e6,
                    "dur": event.seconds * 1e6,
                    "pid": 2,
                    "tid": 0,
                    "args": {
                        "phase": event.phase,
                        "payload_bytes": event.payload_bytes,
                        "detail": event.detail,
                    },
                }
            )
            cursor += event.seconds
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, telemetry: Telemetry, trace: Trace | None = None) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(telemetry, trace), fh)
        fh.write("\n")


# -------------------------------------------------------------------- profile
def render_profile(telemetry: Telemetry, imbalance: Any = None, top_k: int = 5) -> str:
    """Sorted self-time table over the span tree (``--profile`` output).

    Aggregates by span path (a path opened N times contributes one row with
    ``calls=N``), sorts by simulated self-time descending with wall-clock
    self-time as the tiebreaker, and prints both clocks in milliseconds.

    With an ``imbalance`` ledger (an
    :class:`~repro.observability.imbalance.ImbalanceLedger`), appends a
    per-DPU straggler section: the ``top_k`` cores by simulated self time
    (kernel compute + sample insert), each attributed to its color triplet
    and heaviest sampled node — the span table tells you *which phase* is
    slow, this section tells you *which core* and *why*.
    """
    rows: dict[str, list[float]] = {}
    order: list[str] = []
    for top in telemetry.root.children:
        for span in top.walk():
            agg = rows.get(span.path)
            if agg is None:
                rows[span.path] = [
                    1, span.sim_seconds, span.sim_self_seconds,
                    span.wall_seconds, span.wall_self_seconds,
                ]
                order.append(span.path)
            else:
                agg[0] += 1
                agg[1] += span.sim_seconds
                agg[2] += span.sim_self_seconds
                agg[3] += span.wall_seconds
                agg[4] += span.wall_self_seconds
    ranked = sorted(order, key=lambda p: (-rows[p][2], -rows[p][4], p))
    lines = [
        f"{'span':<40} {'calls':>6} {'sim total':>12} {'sim self':>12} "
        f"{'wall total':>12} {'wall self':>12}"
    ]
    for path in ranked:
        calls, sim, sim_self, wall, wall_self = rows[path]
        lines.append(
            f"{path:<40} {int(calls):>6} {sim * 1e3:>10.3f}ms {sim_self * 1e3:>10.3f}ms "
            f"{wall * 1e3:>10.3f}ms {wall_self * 1e3:>10.3f}ms"
        )
    if imbalance is not None:
        totals = imbalance.count_seconds + imbalance.insert_seconds
        order = sorted(
            range(int(totals.size)), key=lambda d: (-float(totals[d]), d)
        )[: max(0, int(top_k))]
        grand = float(totals.sum())
        lines += [
            "",
            f"per-DPU stragglers (top {len(order)} by simulated self time):",
            f"{'dpu':>5} {'triplet':<12} {'count':>12} {'insert':>12} "
            f"{'share':>7} {'heavy node':>11}  remapped",
        ]
        for d in order:
            triplet = "(" + ",".join(str(c) for c in imbalance.triplet_of(d)) + ")"
            share = float(totals[d] / grand) if grand > 0 else 0.0
            remapped = "yes" if bool(imbalance.heavy_node_remapped[d]) else "no"
            lines.append(
                f"{d:>5} {triplet:<12} "
                f"{float(imbalance.count_seconds[d]) * 1e3:>10.3f}ms "
                f"{float(imbalance.insert_seconds[d]) * 1e3:>10.3f}ms "
                f"{share * 100:>6.1f}% {int(imbalance.heavy_nodes[d]):>11}  {remapped}"
            )
    return "\n".join(lines)
