"""Exporters: run reports (JSON), metrics CSV, Chrome-trace, profile table.

Three consumers, three formats:

* **RunReport** — the machine-readable record of one run: the
  :meth:`TcResult.to_dict` summary, the span tree, and both metric
  snapshots, under one ``schema`` tag.  ``benchmarks/bench_report.py``
  bundles these into the ``BENCH_telemetry.json`` trajectory, and
  :func:`validate_run_report` is the (dependency-free) schema check CI runs
  on the CLI's ``--metrics-out`` output.
* **Chrome trace** — a ``chrome://tracing`` / Perfetto ``traceEvents`` file
  with two process tracks: the wall-clock span tree (track "host wall") and
  the simulated operation timeline reconstructed from the
  :class:`~repro.pimsim.trace.Trace` ledger (track "simulated PIM"), so the
  two clocks of `docs/architecture.md` §3 can be eyeballed side by side.
* **Profile table** — ``repro-count --profile``'s sorted self-time view of
  the span tree, one line per distinct span path.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from .spans import Span, Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pimsim uses us)
    from ..pimsim.trace import Trace

__all__ = [
    "RUN_REPORT_SCHEMA",
    "RunReport",
    "chrome_trace",
    "write_chrome_trace",
    "metrics_to_csv",
    "render_profile",
    "validate_run_report",
]

#: Schema tag embedded in (and required of) every run report.
RUN_REPORT_SCHEMA = "repro-run-report/1"


# --------------------------------------------------------------------- report
@dataclass
class RunReport:
    """One run, fully described: result + spans + metrics in a stable schema."""

    result: dict
    spans: dict
    metrics: dict
    volatile_metrics: dict = field(default_factory=dict)
    graph: dict = field(default_factory=dict)
    config: dict = field(default_factory=dict)

    @classmethod
    def from_result(cls, result: Any, graph: Any = None, config: dict | None = None) -> "RunReport":
        """Bundle a :class:`~repro.core.result.TcResult` and its telemetry.

        ``result.telemetry`` supplies the span tree and metric snapshots;
        a result produced with telemetry disabled yields empty sections.
        """
        tel: Telemetry | None = getattr(result, "telemetry", None)
        graph_info = {}
        if graph is not None:
            graph_info = {
                "name": graph.name,
                "num_nodes": int(graph.num_nodes),
                "num_edges": int(graph.num_edges),
            }
        return cls(
            result=result.to_dict(),
            spans=tel.to_dict() if tel is not None else {"enabled": False, "spans": []},
            metrics=tel.metrics.snapshot() if tel is not None else {},
            volatile_metrics=tel.metrics.snapshot(volatile=True) if tel is not None else {},
            graph=graph_info,
            config=dict(config or {}),
        )

    def to_dict(self) -> dict:
        return {
            "schema": RUN_REPORT_SCHEMA,
            "graph": self.graph,
            "config": self.config,
            "result": self.result,
            "spans": self.spans,
            "metrics": self.metrics,
            "volatile_metrics": self.volatile_metrics,
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def _validate_span(node: dict, where: str, errors: list[str]) -> None:
    for key, kind in (
        ("name", str),
        ("path", str),
        ("wall_seconds", (int, float)),
        ("sim_seconds", (int, float)),
        ("children", list),
    ):
        if key not in node:
            errors.append(f"{where}: span missing {key!r}")
        elif not isinstance(node[key], kind):
            errors.append(f"{where}: span {key!r} has type {type(node[key]).__name__}")
    for i, child in enumerate(node.get("children", []) or []):
        if isinstance(child, dict):
            _validate_span(child, f"{where}.children[{i}]", errors)
        else:
            errors.append(f"{where}.children[{i}]: not an object")


def validate_run_report(data: dict) -> list[str]:
    """Structural schema check; returns one error string per violation.

    Deliberately dependency-free (no ``jsonschema`` in the image): checks
    the schema tag, the required sections, span-tree shape, metric entry
    shape, and that the result carries the paper's phase ledger.
    """
    errors: list[str] = []
    if not isinstance(data, dict):
        return ["report: not a JSON object"]
    if data.get("schema") != RUN_REPORT_SCHEMA:
        errors.append(
            f"report: schema is {data.get('schema')!r}, expected {RUN_REPORT_SCHEMA!r}"
        )
    for section in ("graph", "config", "result", "spans", "metrics", "volatile_metrics"):
        if not isinstance(data.get(section), dict):
            errors.append(f"report: missing or non-object section {section!r}")
    result = data.get("result")
    if isinstance(result, dict):
        if not isinstance(result.get("phases"), dict):
            errors.append("result: missing 'phases' object")
        for key in ("estimate", "num_colors", "num_dpus"):
            if key not in result:
                errors.append(f"result: missing {key!r}")
    spans = data.get("spans")
    if isinstance(spans, dict):
        for i, node in enumerate(spans.get("spans", []) or []):
            if isinstance(node, dict):
                _validate_span(node, f"spans[{i}]", errors)
            else:
                errors.append(f"spans[{i}]: not an object")
    for section in ("metrics", "volatile_metrics"):
        metrics = data.get(section)
        if not isinstance(metrics, dict):
            continue
        for name, entry in metrics.items():
            if not isinstance(entry, dict) or "kind" not in entry:
                errors.append(f"{section}[{name}]: missing 'kind'")
            elif entry["kind"] not in ("counter", "gauge", "histogram"):
                errors.append(f"{section}[{name}]: unknown kind {entry['kind']!r}")
            elif entry["kind"] in ("counter", "gauge") and "value" not in entry:
                errors.append(f"{section}[{name}]: missing 'value'")
            elif entry["kind"] == "histogram" and (
                "buckets" not in entry or "counts" not in entry
            ):
                errors.append(f"{section}[{name}]: histogram missing buckets/counts")
    return errors


# ----------------------------------------------------------------------- csv
def metrics_to_csv(snapshot: dict) -> str:
    """Flatten a metrics snapshot to ``name,kind,field,value`` CSV rows."""
    out = io.StringIO()
    out.write("name,kind,field,value\n")
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("kind", "")
        if kind == "histogram":
            for bound, count in zip(
                list(entry["buckets"]) + ["inf"], entry["counts"]
            ):
                out.write(f"{name},{kind},le_{bound},{count}\n")
            out.write(f"{name},{kind},sum,{entry['sum']}\n")
            out.write(f"{name},{kind},count,{entry['count']}\n")
        else:
            out.write(f"{name},{kind},value,{entry.get('value', '')}\n")
    return out.getvalue()


# --------------------------------------------------------------- chrome trace
def _span_events(span: Span, depth: int, events: list[dict]) -> None:
    events.append(
        {
            "name": span.name or "run",
            "cat": "span",
            "ph": "X",
            "ts": span.wall_start * 1e6,
            "dur": span.wall_seconds * 1e6,
            "pid": 1,
            "tid": depth,
            "args": {
                "path": span.path,
                "sim_seconds": span.sim_seconds,
                **span.attrs,
            },
        }
    )
    for child in span.children:
        _span_events(child, depth + 1, events)


def chrome_trace(telemetry: Telemetry, trace: Trace | None = None) -> dict:
    """Build a Chrome/Perfetto ``traceEvents`` document.

    Track ``pid=1`` holds the wall-clock span tree, one ``tid`` per nesting
    depth.  Track ``pid=2``, when a simulator :class:`Trace` is given, lays
    the operation ledger out on the *simulated* axis (cumulative simulated
    microseconds), which is the timeline the paper's numbers live on.
    """
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 1,
         "args": {"name": "host wall clock"}},
    ]
    for child in telemetry.root.children:
        _span_events(child, 0, events)
    if trace is not None:
        events.append(
            {"name": "process_name", "ph": "M", "pid": 2,
             "args": {"name": "simulated PIM timeline"}}
        )
        cursor = 0.0
        for event in trace.events:
            events.append(
                {
                    "name": event.kind,
                    "cat": "sim",
                    "ph": "X",
                    "ts": cursor * 1e6,
                    "dur": event.seconds * 1e6,
                    "pid": 2,
                    "tid": 0,
                    "args": {
                        "phase": event.phase,
                        "payload_bytes": event.payload_bytes,
                        "detail": event.detail,
                    },
                }
            )
            cursor += event.seconds
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, telemetry: Telemetry, trace: Trace | None = None) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(telemetry, trace), fh)
        fh.write("\n")


# -------------------------------------------------------------------- profile
def render_profile(telemetry: Telemetry) -> str:
    """Sorted self-time table over the span tree (``--profile`` output).

    Aggregates by span path (a path opened N times contributes one row with
    ``calls=N``), sorts by simulated self-time descending with wall-clock
    self-time as the tiebreaker, and prints both clocks in milliseconds.
    """
    rows: dict[str, list[float]] = {}
    order: list[str] = []
    for top in telemetry.root.children:
        for span in top.walk():
            agg = rows.get(span.path)
            if agg is None:
                rows[span.path] = [
                    1, span.sim_seconds, span.sim_self_seconds,
                    span.wall_seconds, span.wall_self_seconds,
                ]
                order.append(span.path)
            else:
                agg[0] += 1
                agg[1] += span.sim_seconds
                agg[2] += span.sim_self_seconds
                agg[3] += span.wall_seconds
                agg[4] += span.wall_self_seconds
    ranked = sorted(order, key=lambda p: (-rows[p][2], -rows[p][4], p))
    lines = [
        f"{'span':<40} {'calls':>6} {'sim total':>12} {'sim self':>12} "
        f"{'wall total':>12} {'wall self':>12}"
    ]
    for path in ranked:
        calls, sim, sim_self, wall, wall_self = rows[path]
        lines.append(
            f"{path:<40} {int(calls):>6} {sim * 1e3:>10.3f}ms {sim_self * 1e3:>10.3f}ms "
            f"{wall * 1e3:>10.3f}ms {wall_self * 1e3:>10.3f}ms"
        )
    return "\n".join(lines)
