"""Self-verification: run the library's core invariants on demand.

``repro.verify.verify_installation()`` executes the correctness pillars on a
freshly generated graph — the checks a user should see pass before trusting
any number the library produces:

1. the exact oracle agrees with two independent reference implementations;
2. the coloring partition + monochromatic correction is exact for several C;
3. the reference tasklet kernel, the vectorized kernel, and the probe kernel
   agree, and the full PIM pipeline returns the oracle's count;
4. the remap is count-preserving;
5. the samplers' estimators pass a seed-sweep statistical acceptance test
   (Chebyshev bound with an explicit failure probability — see
   :mod:`repro.testing.statistical`);
6. local counts sum to three times the global count;
7. a small budget of the seeded correctness fuzzer
   (:mod:`repro.testing.fuzz`) finds no differential or metamorphic
   violation.

Also exposed as ``repro-count --verify`` (and the fuzzer alone, with a
bigger budget, as ``repro-count --fuzz N``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CheckResult", "verify_installation"]


@dataclass(frozen=True)
class CheckResult:
    name: str
    passed: bool
    detail: str = ""


def _check(name: str, fn) -> CheckResult:
    try:
        detail = fn() or ""
        return CheckResult(name=name, passed=True, detail=str(detail))
    except AssertionError as exc:
        return CheckResult(name=name, passed=False, detail=str(exc))


def verify_installation(
    seed: int = 0, verbose: bool = False, fuzz_budget: int = 3
) -> list[CheckResult]:
    """Run all invariant checks; returns one :class:`CheckResult` per pillar.

    ``fuzz_budget`` controls how many seeded fuzz iterations the last pillar
    spends (each runs the full differential grid plus every metamorphic
    relation on one generated graph).
    """
    from .baselines.reference import count_triangles_dense
    from .coloring.partition import ColoringPartitioner
    from .common.rng import RngFactory
    from .core.api import PimTriangleCounter
    from .core.kernel_tc import count_triangles_reference
    from .core.kernel_tc_fast import fast_count
    from .core.kernel_tc_probe import probe_count
    from .core.kernel_tc_vec import vec_count
    from .core.remap import RemapTable, apply_remap
    from .graph.coo import COOGraph
    from .graph.generators import erdos_renyi
    from .graph.local_triangles import count_triangles_per_node
    from .graph.triangles import count_triangles

    rngs = RngFactory(seed)
    graph = erdos_renyi(120, 1800, rngs.stream("verify"), name="verify").canonicalize()
    truth = count_triangles(graph)

    def oracle_check():
        dense = count_triangles_dense(graph)
        assert truth == dense, f"oracle {truth} != dense reference {dense}"
        return f"T = {truth}"

    def partition_check():
        for c in (1, 2, 4, 7):
            p = ColoringPartitioner(c, rngs.stream("vc", c))
            counts = np.array(
                [
                    count_triangles(COOGraph(s.copy(), d.copy(), graph.num_nodes))
                    for s, d in p.assign(graph).per_dpu
                ],
                dtype=np.float64,
            )
            total = counts.sum() - (c - 1) * counts[p.mono_mask()].sum()
            assert total == truth, f"C={c}: corrected {total} != {truth}"
        return "C in {1,2,4,7} exact"

    def kernel_check():
        ref = count_triangles_reference(graph.src, graph.dst)
        fast = fast_count(graph.src, graph.dst, graph.num_nodes)
        vec = vec_count(graph.src, graph.dst, graph.num_nodes)
        probe = probe_count(graph.src, graph.dst, graph.num_nodes)
        assert ref.triangles == fast.triangles == probe.triangles == truth
        assert vec.triangles == truth
        assert np.array_equal(vec.per_tasklet_instr, fast.per_tasklet_instr)
        pipeline = PimTriangleCounter(num_colors=4, seed=seed).count(graph)
        assert pipeline.count == truth, f"pipeline {pipeline.count} != {truth}"
        return "reference == fast == fastvec == probe == pipeline"

    def remap_check():
        top = np.argsort(-graph.degrees())[:5].astype(np.int64)
        table = RemapTable(nodes=top, num_nodes=graph.num_nodes)
        src, dst = apply_remap(table, graph.src, graph.dst)
        remapped = COOGraph(src, dst, table.remapped_num_nodes)
        assert count_triangles(remapped) == truth
        return "bijection count-preserving"

    def sampler_check():
        # Seed-sweep acceptance (repro.testing.statistical): a small sweep per
        # sampler, judged by a Chebyshev interval with explicit failure
        # probability.  On failure the AssertionError carries the observed
        # relative error and the seed range, so CheckResult.detail names both.
        from .testing.statistical import sweep_reservoir, sweep_uniform

        uni = sweep_uniform(
            graph, 0.5, n_seeds=8, delta=0.05, num_colors=4, first_seed=seed
        ).require()
        res = sweep_reservoir(
            graph,
            capacity=max(3, graph.num_edges // 6),
            n_seeds=8,
            delta=0.05,
            num_colors=4,
            first_seed=seed,
        ).require()
        return (
            f"uniform rel_err={uni.relative_mean_error:.2%}, "
            f"reservoir rel_err={res.relative_mean_error:.2%} "
            f"(seeds {seed}..{seed + 7}, Chebyshev delta=0.05)"
        )

    def local_check():
        local = count_triangles_per_node(graph)
        assert local.sum() == 3 * truth
        result = PimTriangleCounter(num_colors=3, seed=seed).count_local(graph)
        assert np.array_equal(result.local_counts(), local)
        return "local sums == 3T, pipeline exact"

    def fuzz_check():
        from .testing.fuzz import run_fuzz

        report = run_fuzz(fuzz_budget, seed=seed)
        assert report.ok, report.render()
        return report.summary()

    checks = [
        _check("oracle vs independent references", oracle_check),
        _check("coloring partition + mono correction", partition_check),
        _check("kernel equivalence + full pipeline", kernel_check),
        _check("Misra-Gries remap bijection", remap_check),
        _check("sampling estimators", sampler_check),
        _check("local triangle counting", local_check),
        _check("differential + metamorphic fuzz", fuzz_check),
    ]
    if verbose:
        for c in checks:
            mark = "ok " if c.passed else "FAIL"
            print(f"[{mark}] {c.name}: {c.detail}")
    return checks
