"""``repro-count`` — count triangles of an edge-list file on the simulated PIM system.

The adoption path for a downstream user: point the tool at a COO text file
(or SuiteSparse ``.mtx``, or a built-in dataset analogue) and get the count,
the paper's phase breakdown, and optionally approximate/local modes — all the
paper's knobs as flags.

Examples::

    repro-count graph.el
    repro-count graph.mtx --colors 8 --misra-gries 1024:64
    repro-count dataset:orkut --tier small --uniform-p 0.1 --trials 5
    repro-count dataset:wikipedia --local --top 10
    repro-count dataset:orkut --colors 8 --executor process --jobs 4
    repro-count graph.el --profile --metrics-out report.json --chrome-trace t.json
    repro-count --fuzz 25 --seed 7     # seeded correctness fuzzing, no graph
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .common.units import fmt_time
from .core.api import PimTriangleCounter
from .pimsim.config import EXECUTOR_NAMES
from .graph.coo import COOGraph
from .graph.datasets import DATASET_NAMES, get_dataset
from .graph.io import read_edge_list, read_matrix_market
from .telemetry import Telemetry

__all__ = ["main"]


def _load_graph(spec: str, tier: str) -> COOGraph:
    if spec.startswith("dataset:"):
        name = spec.split(":", 1)[1]
        return get_dataset(name, tier)
    if spec.endswith(".mtx"):
        graph = read_matrix_market(spec).canonicalize()
    elif spec.endswith(".npz"):
        from .graph.io import load_npz

        graph = load_npz(spec).canonicalize()
    else:
        graph = read_edge_list(spec).canonicalize()
    # Public COO files often have sparse node-ID spaces (the paper's V1r has
    # 214M IDs); compact them so pipeline memory scales with real nodes.
    if graph.num_nodes > 4 * max(graph.num_edges, 1):
        graph, _ = graph.compact()
    return graph


def _parse_mg(value: str) -> tuple[int, int]:
    try:
        k, t = value.split(":")
        return int(k), int(t)
    except ValueError as exc:
        raise argparse.ArgumentTypeError("expected K:t, e.g. 1024:64") from exc


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-count",
        description="Triangle counting on the simulated UPMEM PIM system.",
    )
    parser.add_argument(
        "graph",
        nargs="?",
        default=None,
        help=(
            "edge-list file (.el/.txt), SuiteSparse .mtx, cached .npz, or "
            f"dataset:<name> with name in {{{', '.join(DATASET_NAMES)}}}; "
            "optional with --fuzz/--verify"
        ),
    )
    parser.add_argument("--tier", default="small", choices=("tiny", "small", "bench"),
                        help="size tier for dataset: specs")
    parser.add_argument("--colors", type=int, default=8, help="C; PIM cores = binom(C+2,3)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--uniform-p", type=float, default=1.0,
                        help="keep-probability of host-level edge sampling (Sec. 3.2)")
    parser.add_argument("--reservoir", type=int, default=None, metavar="M",
                        help="per-core reservoir capacity in edges (Sec. 3.3)")
    parser.add_argument("--misra-gries", type=_parse_mg, default=(0, 0), metavar="K:t",
                        help="heavy-hitter summary size and remap count (Sec. 3.5)")
    parser.add_argument("--batch-edges", type=int, default=None, metavar="B",
                        help="streaming-ingest chunk size in input edges: the "
                             "host samples/routes/transfers the stream in "
                             "B-edge chunks (bounded memory, double-buffered "
                             "overlap with DPU inserts); default: monolithic "
                             "single pass (or $REPRO_BATCH_EDGES)")
    parser.add_argument("--partitioner", default=None,
                        choices=("hash", "degree", "auto"),
                        help="edge-partitioning strategy: 'hash' (universal "
                             "hash coloring, the paper's), 'degree' "
                             "(degree-based hub placement), or 'auto' (pick "
                             "strategy, C and Misra-Gries from graph stats; "
                             "see docs/partitioning.md); counts are identical "
                             "across strategies "
                             "(default: $REPRO_PARTITIONER or hash)")
    parser.add_argument("--rebalance-cv", type=float, default=None, metavar="CV",
                        help="with --batch-edges: recompute the triplet->core "
                             "assignment between chunks whenever the cv of "
                             "accumulated per-core insert seconds exceeds CV "
                             "(resident samples migrate, charged as a "
                             "scatter); default: disabled "
                             "(or $REPRO_REBALANCE_CV)")
    parser.add_argument("--kernel", default=None,
                        choices=("merge", "fastvec", "probe"),
                        help="counting kernel variant: 'merge' (the paper's "
                             "Sec. 3.4 merge-intersection), 'fastvec' (same "
                             "charges, numpy searchsorted hot path — changes "
                             "wall-clock only), or 'probe' (binary-search "
                             "wedge checks, a different cost model) "
                             "(default: $REPRO_KERNEL or merge)")
    parser.add_argument("--local", action="store_true",
                        help="also compute per-node (local) triangle counts")
    parser.add_argument("--top", type=int, default=5,
                        help="with --local: how many top nodes to print")
    parser.add_argument("--trials", type=int, default=1,
                        help="repeat with different seeds and report mean/std")
    parser.add_argument("--executor", default=None, choices=EXECUTOR_NAMES,
                        help="host engine for the per-DPU kernel runs; changes "
                             "wall-clock only, never simulated time "
                             "(default: $REPRO_EXECUTOR or serial)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker count for --executor thread/process "
                             "(default: all cores)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write a machine-readable RunReport JSON "
                             "(result + span tree + metrics; see "
                             "docs/observability.md for the schema); "
                             "PATH ending in .csv writes the metrics as CSV")
    parser.add_argument("--chrome-trace", default=None, metavar="PATH",
                        help="write a chrome://tracing / Perfetto trace of "
                             "the run (wall-clock span track + simulated "
                             "operation track)")
    parser.add_argument("--profile", action="store_true",
                        help="print a sorted self-time table per span "
                             "(simulated and wall clocks) plus the per-DPU "
                             "straggler top-k")
    parser.add_argument("--imbalance", action="store_true",
                        help="print the per-DPU load-imbalance report: skew "
                             "statistics per work dimension and the top "
                             "straggler cores attributed to their color "
                             "triplet and heaviest sampled node "
                             "(see docs/observability.md)")
    parser.add_argument("--imbalance-svg", default=None, metavar="PATH",
                        help="write the per-DPU work-ledger heatmap as SVG "
                             "(one row per metric, one column per core)")
    parser.add_argument("--log-json", default=None, metavar="PATH",
                        help="write an NDJSON structured event log (run/phase "
                             "start+end, heartbeat batch progress, final "
                             "estimate, terminal run_end with exit status); "
                             "every line carries the run_id also stamped "
                             "into the --metrics-out report; tail it live "
                             "with repro-watch")
    parser.add_argument("--history", default=None, metavar="DB",
                        help="append this run's RunReport to an sqlite "
                             "run-history store (created on first use); "
                             "query it with repro-history and gate on drift "
                             "with repro-history trend / bench_diff --history")
    parser.add_argument("--flamegraph", default=None, metavar="PATH",
                        help="write a flamegraph of the span tree; PATH "
                             "ending in .svg gets a standalone SVG, anything "
                             "else collapsed-stack text for external "
                             "flamegraph.pl-style tooling")
    parser.add_argument("--flamegraph-axis", default="sim", choices=("sim", "wall"),
                        help="clock the flamegraph widths measure: the "
                             "deterministic simulated clock (default) or the "
                             "host wall clock")
    parser.add_argument("--serve-url", default=None, metavar="HOST:PORT",
                        help="count via a running repro-serve instance "
                             "instead of in-process: open a session, stream "
                             "the graph as insert batches, print the exact "
                             "count, close the session (see docs/service.md)")
    parser.add_argument("--session", default=None, metavar="NAME",
                        help="with --serve-url: session name to open "
                             "(default: derived from the graph name)")
    parser.add_argument("--request-timeout", type=float, default=None,
                        metavar="S",
                        help="with --serve-url: per-request deadline, "
                             "distinct from the 60s connect timeout (a "
                             "count that drains a deep queue may need more)")
    parser.add_argument("--verify", action="store_true",
                        help="run the library's invariant self-checks first")
    parser.add_argument("--fuzz", type=int, default=None, metavar="N",
                        help="run N seeded fuzz iterations of the correctness "
                             "harness (differential grid + metamorphic "
                             "relations; see docs/testing.md) and exit; "
                             "iteration seeds are --seed .. --seed+N-1")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.fuzz is not None:
        from .testing.fuzz import run_fuzz

        report = run_fuzz(args.fuzz, seed=args.seed, verbose=True)
        print(report.summary())
        return 0 if report.ok else 1
    if args.verify:
        from .verify import verify_installation

        checks = verify_installation(seed=args.seed, verbose=True)
        if not all(c.passed for c in checks):
            print("self-verification FAILED")
            return 1
        if args.graph is None:
            return 0
    if args.graph is None:
        parser.error("a graph argument is required unless --fuzz or --verify is given")
    graph = _load_graph(args.graph, args.tier)
    mg_k, mg_t = args.misra_gries
    print(f"graph: {graph.name} — {graph.num_nodes} nodes, {graph.num_edges} edges")
    if args.serve_url:
        return _count_via_service(args, graph, mg_k, mg_t)

    telemetry_wanted = bool(
        args.metrics_out or args.chrome_trace or args.profile or args.log_json
        or args.history or args.flamegraph
    )
    logger = None
    if args.log_json:
        from .observability import NdjsonLogger

        logger = NdjsonLogger(args.log_json)
        logger.event(
            "run_start",
            graph=graph.name,
            num_nodes=int(graph.num_nodes),
            num_edges=int(graph.num_edges),
            colors=args.colors,
            seed=args.seed,
            uniform_p=args.uniform_p,
            trials=args.trials,
        )
    estimates = []
    result = None
    try:
        for trial in range(args.trials):
            # A fresh recorder per trial: reports describe the *last* run
            # rather than an accumulation over trials.
            telemetry = Telemetry(detail=True) if telemetry_wanted else None
            if telemetry is not None and logger is not None:
                telemetry.log_sink = logger.span_hook
                telemetry.event_sink = logger.event
            counter = PimTriangleCounter(
                num_colors=args.colors,
                uniform_p=args.uniform_p,
                reservoir_capacity=args.reservoir,
                misra_gries_k=mg_k,
                misra_gries_t=mg_t,
                seed=args.seed + trial,
                batch_edges=args.batch_edges,
                partitioner=args.partitioner,
                rebalance_cv=args.rebalance_cv,
                kernel_variant=args.kernel,
                executor=args.executor,
                jobs=args.jobs,
                telemetry=telemetry,
            )
            result = counter.count_local(graph) if args.local else counter.count(graph)
            estimates.append(result.estimate)
            if logger is not None:
                logger.event(
                    "estimate",
                    trial=trial,
                    estimate=float(result.estimate),
                    exact=bool(result.is_exact),
                    phases={k: float(v) for k, v in result.clock.phases.items()},
                )
    except BaseException as exc:
        # Join-complete streams: the terminal run_end goes out even when the
        # pipeline raises, so a tailing repro-watch (or the history ingester)
        # can tell a crash from a run still in flight.
        if logger is not None:
            logger.event(
                "run_end",
                status="error",
                error=f"{type(exc).__name__}: {exc}",
            )
            logger.close()
        raise

    assert result is not None
    kind = "exact" if result.is_exact else "estimated"
    if args.trials > 1:
        mean = float(np.mean(estimates))
        std = float(np.std(estimates))
        print(f"triangles ({kind}, {args.trials} trials): {mean:.1f} +/- {std:.1f}")
    else:
        print(f"triangles ({kind}): {result.estimate:.0f}")
    print(
        f"PIM cores: {result.num_dpus}  |  setup {fmt_time(result.setup_seconds)}  "
        f"sample {fmt_time(result.sample_creation_seconds)}  "
        f"count {fmt_time(result.triangle_count_seconds)}"
    )
    print(f"throughput: {result.throughput_edges_per_ms():,.0f} edges/ms (excl. setup)")
    if result.meta.get("autotune"):
        auto = result.meta["autotune"]
        print(
            f"auto-tune: strategy={auto['strategy']} C={auto['num_colors']} "
            f"MG=({auto['misra_gries_k']},{auto['misra_gries_t']}) "
            f"(degree skew {auto['degree_skew']:.1f})"
        )
    if result.meta.get("rebalances"):
        events = result.meta["rebalances"]
        print(
            f"rebalances: {len(events)} "
            f"(moved {sum(e['moved_triplets'] for e in events)} triplet samples)"
        )
    if args.local:
        print(f"top {args.top} nodes by triangle participation:")
        for node, value in result.top_nodes(args.top):
            print(f"  node {node}: {value:.0f}")
    if args.imbalance or args.imbalance_svg:
        _emit_imbalance(args, result)
    if telemetry_wanted:
        _emit_telemetry(args, graph, result, logger)
    if logger is not None:
        logger.event("run_end", status="ok", estimate=float(result.estimate))
        logger.close()
        print(f"NDJSON event log written to {args.log_json} (run_id {logger.run_id})")
    return 0


def _count_via_service(args, graph: COOGraph, mg_k: int, mg_t: int) -> int:
    """The ``--serve-url`` smoke path: one session round trip on a server."""
    import re

    from .service.client import ServiceClient, ServiceError

    name = args.session or re.sub(r"[^A-Za-z0-9._-]", "-", graph.name).lstrip("._-")
    if not name:
        name = "cli"
    batch_edges = args.batch_edges or 10_000
    deadline = args.request_timeout
    try:
        with ServiceClient(args.serve_url) as client:
            opened = client.open_session(
                name,
                num_nodes=graph.num_nodes,
                num_colors=args.colors,
                seed=args.seed,
                misra_gries_k=mg_k,
                misra_gries_t=mg_t,
            )
            try:
                client.insert_graph(
                    name, graph, batch_edges=batch_edges, timeout=deadline
                )
                view = client.count(name, timeout=deadline)
                stats = client.stats(name, timeout=deadline)
            finally:
                try:
                    client.close_session(name)
                except ServiceError:
                    pass  # already reaped/closed; the count above still stands
    except ServiceError as exc:
        if exc.code != "connection_lost":
            raise
        print(
            f"error: {exc} (op={exc.op!r}, trace_id={exc.trace_id})",
            file=sys.stderr,
        )
        return 1
    print(
        f"triangles (exact, via {args.serve_url} session {name!r}): "
        f"{view['triangles']}"
    )
    print(
        f"PIM cores: {opened['num_dpus']}  |  rounds {view['rounds']}  "
        f"sim {fmt_time(view['sim_seconds'])}  "
        f"peak routed {stats['peak_routed_bytes']:,} B"
    )
    if opened.get("event_log"):
        print(f"session event stream: {opened['event_log']}")
    return 0


def _emit_imbalance(args, result) -> None:
    """Print/write the per-DPU imbalance diagnostics of the last run."""
    from .observability import imbalance_heatmap_svg, render_imbalance_report

    ledger = result.imbalance
    if ledger is None:
        print("imbalance ledger unavailable for this run")
        return
    if args.imbalance:
        print()
        print(render_imbalance_report(ledger))
    if args.imbalance_svg:
        with open(args.imbalance_svg, "w") as fh:
            fh.write(imbalance_heatmap_svg(ledger))
            fh.write("\n")
        print(f"imbalance heatmap written to {args.imbalance_svg}")


def _emit_telemetry(args, graph, result, logger=None) -> None:
    """Write/print the telemetry artifacts of the last run."""
    from .telemetry import RunReport, metrics_to_csv, render_profile, write_chrome_trace

    tel = result.telemetry
    report = None
    if args.metrics_out or args.history:
        report = RunReport.from_result(
            result,
            graph=graph,
            config={
                "colors": args.colors,
                "seed": args.seed + args.trials - 1,
                "uniform_p": args.uniform_p,
                "executor": args.executor or "serial",
                "tier": args.tier,
            },
            run_id=logger.run_id if logger is not None else None,
        )
    if args.metrics_out:
        if args.metrics_out.endswith(".csv"):
            with open(args.metrics_out, "w") as fh:
                fh.write(metrics_to_csv(tel.metrics.snapshot()))
        else:
            report.write_json(args.metrics_out)
        print(f"metrics report written to {args.metrics_out}")
    if args.history:
        from .observability.history import RunHistory

        with RunHistory(args.history) as history:
            history.ingest(report.to_dict(), source="repro-count")
            total = history.num_runs()
        print(f"run appended to history {args.history} ({total} runs on record)")
    if args.chrome_trace:
        write_chrome_trace(args.chrome_trace, tel, result.trace)
        print(f"chrome trace written to {args.chrome_trace} "
              "(open in chrome://tracing or ui.perfetto.dev)")
    if args.flamegraph:
        from .telemetry import write_flamegraph

        write_flamegraph(args.flamegraph, tel, axis=args.flamegraph_axis)
        print(f"flamegraph ({args.flamegraph_axis} clock) written to "
              f"{args.flamegraph}")
    if args.profile:
        print()
        print(render_profile(tel, imbalance=result.imbalance))


if __name__ == "__main__":
    sys.exit(main())
