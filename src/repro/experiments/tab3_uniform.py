"""Table 3: relative error under uniform edge sampling, p in {0.5, 0.25, 0.1, 0.01}.

Each cell is the relative error of the unbiased estimator (count / p^3)
versus the exact triangle count.  Expected shape (paper Sec. 4.4): errors
grow as ``p`` shrinks; the triangle-poor graph (v1r, ~50 triangles) is the
outlier with huge/100% error because removing almost any edge destroys a
noticeable fraction of its 49 triangles.

Note on magnitudes: sampling error scales like ``1/sqrt(T * p^3)``; the
paper's graphs hold 1e8-4e10 triangles, our scaled analogues 1e3-1e6, so our
relative errors sit proportionally higher at equal ``p`` (see EXPERIMENTS.md).
"""

from __future__ import annotations

from ..core.api import PimTriangleCounter
from ..graph.datasets import DATASET_NAMES, get_dataset
from ..streaming.estimators import relative_error
from .common import DEFAULT_COLORS, ground_truth
from .tables import Table

__all__ = ["run", "UNIFORM_PS"]

UNIFORM_PS = (0.5, 0.25, 0.1, 0.01)


def run(
    tier: str = "small",
    seed: int = 0,
    ps: tuple[float, ...] = UNIFORM_PS,
    trials: int = 3,
) -> Table:
    colors = DEFAULT_COLORS[tier]
    table = Table(
        title=f"Table 3 — relative error vs uniform sampling p (tier={tier}, C={colors})",
        headers=["Graph"] + [f"p={p}" for p in ps] + ["Speedup@min p"],
        notes=(
            "Cells: mean relative error over trials (paper Table 3). Last "
            "column: (sample+count) speedup of the smallest p vs exact."
        ),
    )
    for name in DATASET_NAMES:
        graph = get_dataset(name, tier)
        truth = ground_truth(name, tier)
        exact_time = (
            PimTriangleCounter(num_colors=colors, seed=seed).count(graph).seconds_without_setup
        )
        errors = []
        min_p_time = None
        for p in ps:
            errs = []
            times = []
            for trial in range(trials):
                counter = PimTriangleCounter(
                    num_colors=colors, uniform_p=p, seed=seed + 1000 * trial
                )
                result = counter.count(graph)
                errs.append(relative_error(result.estimate, truth))
                times.append(result.seconds_without_setup)
            errors.append(sum(errs) / len(errs))
            min_p_time = sum(times) / len(times)
        table.add_row(
            name,
            *[f"{100 * e:.3f}%" for e in errors],
            round(exact_time / min_p_time, 2) if min_p_time else float("nan"),
        )
    return table
