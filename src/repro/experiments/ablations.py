"""Ablations beyond the paper's figures (DESIGN.md Sec. 7).

Three studies of the design choices the paper adopts but does not isolate:

* ``abl_coloring`` — what the C-fold edge duplication costs and buys: total
  kernel instructions (rises ~3x then flattens), slowest-DPU compute time
  (falls with parallelism), and transfer volume (rises linearly with C).
* ``abl_compose`` — uniform and reservoir sampling composed (the paper notes
  they can be applied concurrently, Secs. 3.2/3.3): error of each alone vs
  both together at matched budgets.
* ``abl_energy`` — the PrIM-style energy ledger across color counts: more
  cores burn more total instructions (duplication) but finish sooner.
"""

from __future__ import annotations

from ..coloring.triplets import num_triplets
from ..core.api import PimTriangleCounter
from ..graph.datasets import get_dataset
from ..pimsim.energy import EnergyModel
from ..streaming.estimators import relative_error
from .common import DEFAULT_COLORS, ground_truth
from .tables import Table

__all__ = ["run_coloring", "run_compose", "run_energy"]


def run_coloring(tier: str = "small", seed: int = 0, graph_name: str = "orkut") -> Table:
    graph = get_dataset(graph_name, tier)
    truth = ground_truth(graph_name, tier)
    sweeps = {"tiny": (1, 2, 4), "small": (1, 2, 4, 8), "bench": (1, 2, 4, 8, 16)}[tier]
    table = Table(
        title=f"Ablation — coloring duplication vs parallelism on {graph_name} (tier={tier})",
        headers=["Colors", "DPUs", "Total instr (M)", "Max-DPU ms", "Routed edges", "Exact?"],
        notes=(
            "Total instructions rise ~3x from C=1 and then flatten (each edge "
            "is processed against a 3/C-thinned neighborhood on C cores) while "
            "the slowest core's time keeps falling: the coloring trades "
            "bounded extra work for communication-free parallelism."
        ),
    )
    for colors in sweeps:
        result = PimTriangleCounter(num_colors=colors, seed=seed).count(graph)
        assert result.count == truth
        table.add_row(
            colors,
            num_triplets(colors),
            round(result.kernel.instructions / 1e6, 3),
            round(result.kernel.max_dpu_compute_seconds * 1e3, 3),
            int(result.edges_routed.sum()),
            result.count == truth,
        )
    return table


def run_compose(tier: str = "small", seed: int = 0, graph_name: str = "kronecker23") -> Table:
    graph = get_dataset(graph_name, tier)
    truth = ground_truth(graph_name, tier)
    colors = DEFAULT_COLORS[tier]
    expected_max = 6.0 * graph.num_edges / colors**2
    capacity = max(3, int(0.25 * expected_max))
    configs = [
        ("exact", dict()),
        ("uniform p=0.25", dict(uniform_p=0.25)),
        ("reservoir f=0.25", dict(reservoir_capacity=capacity)),
        ("both", dict(uniform_p=0.25, reservoir_capacity=capacity)),
    ]
    table = Table(
        title=f"Ablation — uniform + reservoir composition on {graph_name} (tier={tier})",
        headers=["Config", "Estimate", "Rel error", "Sample ms", "Count ms"],
        notes=(
            "The two samplers compose without double-unbiasing (paper "
            "Secs. 3.2/3.3); 'both' shrinks transfers (uniform) and memory "
            "(reservoir) simultaneously."
        ),
    )
    for label, overrides in configs:
        errs, samples, counts, est = [], [], [], 0.0
        for trial in range(3):
            counter = PimTriangleCounter(
                num_colors=colors, seed=seed + 97 * trial, **overrides
            )
            result = counter.count(graph)
            errs.append(relative_error(result.estimate, truth))
            samples.append(result.sample_creation_seconds)
            counts.append(result.triangle_count_seconds)
            est = result.estimate
        table.add_row(
            label,
            round(est, 1),
            f"{100 * sum(errs) / len(errs):.3f}%",
            round(1e3 * sum(samples) / len(samples), 3),
            round(1e3 * sum(counts) / len(counts), 3),
        )
    return table


def run_energy(tier: str = "small", seed: int = 0, graph_name: str = "orkut") -> Table:
    graph = get_dataset(graph_name, tier)
    model = EnergyModel()
    sweeps = {"tiny": (2, 4), "small": (2, 4, 8), "bench": (2, 4, 8, 16)}[tier]
    table = Table(
        title=f"Ablation — energy ledger vs colors on {graph_name} (tier={tier})",
        headers=["Colors", "DPUs", "Instr (M)", "DMA MiB", "Dynamic mJ", "Count ms"],
        notes=(
            "Linear PrIM-style energy model (pimsim.energy): duplication "
            "raises dynamic energy sublinearly while cutting latency."
        ),
    )
    for colors in sweeps:
        result = PimTriangleCounter(num_colors=colors, seed=seed).count(graph)
        k = result.kernel
        dynamic_j = k.instructions * model.instruction_j + k.dma_bytes * model.mram_byte_j
        table.add_row(
            colors,
            num_triplets(colors),
            round(k.instructions / 1e6, 3),
            round(k.dma_bytes / (1 << 20), 3),
            round(dynamic_j * 1e3, 6),
            round(result.triangle_count_seconds * 1e3, 3),
        )
    return table
