"""Figure 7: dynamic updates — cumulative time over 10 COO update batches.

The paper's workload: WikipediaEdit (its *worst* static graph for PIM) split
into 10 subgraphs merged in one at a time, counting after every merge.  The
CPU baseline must re-convert the entire cumulative graph to CSR every round;
the GPU and PIM implementations update their COO-native state and count
incrementally.

Expected shape (paper Fig. 7): CPU cumulative time grows fastest (conversion
is charged on the whole graph every round); PIM and GPU stay well below it,
turning the paper's worst static case into a PIM win.
"""

from __future__ import annotations

from ..baselines.dynamic import CpuDynamicDriver, GpuDynamicDriver
from ..core.dynamic import DynamicPimCounter
from ..graph.datasets import get_dataset
from .common import DEFAULT_COLORS, ground_truth
from .fig6_static import BEST_MG
from .tables import Table

__all__ = ["run", "NUM_UPDATES"]

NUM_UPDATES = 10


def run(
    tier: str = "small",
    seed: int = 0,
    graph_name: str = "wikipedia",
    num_updates: int = NUM_UPDATES,
) -> Table:
    colors = DEFAULT_COLORS[tier]
    graph = get_dataset(graph_name, tier)
    batches = graph.split_batches(num_updates)
    table = Table(
        title=(
            f"Figure 7 — dynamic updates on {graph_name} "
            f"(tier={tier}, C={colors}, {num_updates} updates)"
        ),
        headers=[
            "Round",
            "Cum edges",
            "Triangles",
            "CPU cum ms",
            "GPU cum ms",
            "PIM cum ms",
            "PIM speedup vs CPU",
        ],
        notes=(
            "Cumulative simulated time after each update round (paper Fig. 7). "
            "Expect the CPU column to grow fastest (per-round CSR conversion)."
        ),
    )
    cpu = CpuDynamicDriver(graph.num_nodes)
    gpu = GpuDynamicDriver(graph.num_nodes)
    # The paper runs comparisons with each graph's best Misra-Gries parameters
    # (Sec. 4.3); the streaming summary extends to the dynamic setting.
    mg_k, mg_t = BEST_MG.get(graph_name, (0, 0))
    pim = DynamicPimCounter(
        graph.num_nodes,
        num_colors=colors,
        seed=seed,
        misra_gries_k=mg_k,
        misra_gries_t=mg_t,
    )
    for batch in batches:
        cpu_round = cpu.apply_update(batch)
        gpu_round = gpu.apply_update(batch)
        pim_round = pim.apply_update(batch)
        assert cpu_round.triangles_total == pim_round.triangles_total, (
            "dynamic counters disagree"
        )
        table.add_row(
            cpu_round.round_index,
            cpu_round.cumulative_edges,
            cpu_round.triangles_total,
            round(cpu_round.cumulative_seconds * 1e3, 3),
            round(gpu_round.cumulative_seconds * 1e3, 3),
            round(pim_round.cumulative_seconds * 1e3, 3),
            round(cpu_round.cumulative_seconds / pim_round.cumulative_seconds, 3),
        )
    final_truth = ground_truth(graph_name, tier)
    assert pim.triangles == final_truth, "final dynamic count must match the oracle"
    return table
