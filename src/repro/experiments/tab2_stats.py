"""Table 2: maximum degree, average degree and global clustering coefficient.

The paper uses this table to separate the "high-degree" graphs (Kronecker 23,
Kronecker 24, WikipediaEdit — max degree an order of magnitude above the
rest) from the others; the same separation must hold for our analogues for
Figs. 3 and 5 to reproduce.
"""

from __future__ import annotations

from ..graph.datasets import DATASET_NAMES, get_dataset
from ..graph.stats import compute_stats
from .common import ground_truth
from .tables import Table

__all__ = ["run"]


def run(tier: str = "small", seed: int = 0) -> Table:
    table = Table(
        title=f"Table 2 — degree and clustering statistics (tier={tier})",
        headers=["Graph", "Max degree", "Avg degree", "Global clustering"],
        notes=(
            "Check: wikipedia/kronecker max degrees sit an order of magnitude "
            "above the rest; humanjung has the largest avg degree and clustering."
        ),
    )
    for name in DATASET_NAMES:
        graph = get_dataset(name, tier)
        stats = compute_stats(graph, triangles=ground_truth(name, tier))
        table.add_row(name, stats.max_degree, round(stats.avg_degree, 2), stats.global_clustering)
    return table
