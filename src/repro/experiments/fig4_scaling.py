"""Figure 4: PIM-core scaling — execution time and speedup vs color count.

For each graph the color count ``C`` is swept; PIM cores used is
``binom(C+2, 3)``.  Times *include* the setup phase (allocation grows with
the rank count), which is what produces the paper's LiveJournal inversion:
for the smallest graph, extra parallelism is outweighed by allocation and
transfer overhead, so fewer cores win.
"""

from __future__ import annotations

from ..coloring.triplets import num_triplets
from ..core.api import PimTriangleCounter
from ..graph.datasets import get_dataset
from .common import SCALING_COLOR_SWEEPS, ground_truth
from .tables import Table

__all__ = ["run", "SCALING_GRAPHS"]

#: The four graphs the paper's Fig. 4 shows.
SCALING_GRAPHS = ("kronecker23", "livejournal", "orkut", "wikipedia")


def run(tier: str = "small", seed: int = 0, graphs: tuple[str, ...] = SCALING_GRAPHS) -> Table:
    sweeps = SCALING_COLOR_SWEEPS[tier]
    table = Table(
        title=f"Figure 4 — PIM core scaling (tier={tier})",
        headers=["Graph", "Colors", "DPUs", "Total ms", "Speedup", "Exact?"],
        notes=(
            "Speedup is vs the fewest-core configuration of the same graph, "
            "total time includes setup (paper Fig. 4). Expect monotone gains "
            "on the larger graphs and an inversion on livejournal (smallest)."
        ),
    )
    for name in graphs:
        graph = get_dataset(name, tier)
        truth = ground_truth(name, tier)
        baseline_time = None
        for colors in sweeps:
            result = PimTriangleCounter(num_colors=colors, seed=seed).count(graph)
            total = result.total_seconds
            if baseline_time is None:
                baseline_time = total
            table.add_row(
                name,
                colors,
                num_triplets(colors),
                round(total * 1e3, 3),
                round(baseline_time / total, 3),
                result.count == truth,
            )
    return table
