"""Ablation: tasklet scaling inside one DPU (the PrIM saturation curve).

The paper fixes 16 tasklets per PIM core (Sec. 4.1).  The PrIM
characterization behind our cost model says the DPU pipeline saturates at
>= 11 resident tasklets — below that, issue slots go empty and throughput is
``T/11`` of peak.  This ablation sweeps tasklets-per-DPU on a fixed workload
and should show:

* near-linear count-time improvement from 1 to ~11 tasklets;
* a flat tail from 11 to 16 (the pipeline is already full);

i.e. the paper's choice of 16 buys head-room, not raw speed — and any future
DPU with a shorter pipeline would saturate earlier.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.api import PimTriangleCounter
from ..graph.datasets import get_dataset
from ..pimsim.config import DpuConfig, PimSystemConfig
from .common import DEFAULT_COLORS, ground_truth
from .tables import Table

__all__ = ["run", "TASKLET_SWEEP"]

TASKLET_SWEEP = (1, 2, 4, 8, 11, 16)


def run(
    tier: str = "small",
    seed: int = 0,
    graph_name: str = "orkut",
    sweep: tuple[int, ...] = TASKLET_SWEEP,
) -> Table:
    colors = DEFAULT_COLORS[tier]
    graph = get_dataset(graph_name, tier)
    truth = ground_truth(graph_name, tier)
    table = Table(
        title=f"Ablation — tasklets per DPU on {graph_name} (tier={tier}, C={colors})",
        headers=["Tasklets", "Count ms", "Speedup vs 1", "Exact?"],
        notes=(
            "PrIM saturation curve: near-linear gains up to ~11 tasklets, "
            "then flat — the 14-stage pipeline is already issuing every cycle."
        ),
    )
    base_ms = None
    for tasklets in sweep:
        config = PimSystemConfig(dpu=DpuConfig(num_tasklets=tasklets))
        result = PimTriangleCounter(
            num_colors=colors, seed=seed, system_config=config
        ).count(graph)
        count_ms = result.triangle_count_seconds * 1e3
        if base_ms is None:
            base_ms = count_ms
        table.add_row(
            tasklets,
            round(count_ms, 3),
            round(base_ms / count_ms, 3),
            result.count == truth,
        )
    return table
