"""Figure 6: PIM and GPU speedup over the CPU baseline, static graphs.

Methodology matches the paper: every platform counts the *exact* triangles of
a COO graph already resident in its memory.  The CPU's COO->CSR conversion is
excluded (as the paper does), so symmetrically the PIM side is measured on
its triangle-count phase (samples already in MRAM) and the GPU on its count
invocation (graph already ingested).

Expected shape (paper Fig. 6): GPU fastest everywhere; CPU second; PIM last —
*except* Human-Jung, where the huge triangle count and low max degree make
counting compute-dominated and the PIM system's parallelism wins.
"""

from __future__ import annotations

from ..baselines.cpu_csr import CpuCsrCounter
from ..baselines.gpu_like import GpuCounter
from ..core.api import PimTriangleCounter
from ..graph.datasets import DATASET_NAMES, get_dataset
from .common import ground_truth
from .tables import Table

__all__ = ["run", "FIG6_COLORS", "BEST_MG"]

#: Fig. 6 uses the paper's full configuration: 23 colors -> 2300 PIM cores.
FIG6_COLORS = {"tiny": 8, "small": 16, "bench": 23}

#: Per-graph best Misra-Gries parameters (paper Sec. 4.3: "the best performing
#: parameters ... will be used in the following evaluations").  Hub-dominated
#: graphs get the remap; low-max-degree graphs run without it.
BEST_MG = {
    "kronecker23": (1024, 16),
    "kronecker24": (1024, 16),
    "wikipedia": (1024, 64),
}


def run(tier: str = "small", seed: int = 0, num_colors: int | None = None) -> Table:
    colors = num_colors or FIG6_COLORS[tier]
    table = Table(
        title=f"Figure 6 — static speedup over CPU baseline (tier={tier}, C={colors})",
        headers=["Graph", "CPU ms", "PIM ms", "GPU ms", "PIM speedup", "GPU speedup", "Exact?"],
        notes=(
            "Speedup >1 means faster than CPU. Expect GPU > CPU > PIM on all "
            "graphs except humanjung where PIM > CPU (paper Fig. 6)."
        ),
    )
    cpu = CpuCsrCounter()
    gpu = GpuCounter()
    for name in DATASET_NAMES:
        graph = get_dataset(name, tier)
        truth = ground_truth(name, tier)
        cpu_res = cpu.count(graph, include_conversion=False)
        gpu_res = gpu.count(graph, include_ingest=False)
        mg_k, mg_t = BEST_MG.get(name, (0, 0))
        pim_res = PimTriangleCounter(
            num_colors=colors, seed=seed, misra_gries_k=mg_k, misra_gries_t=mg_t
        ).count(graph)
        pim_seconds = pim_res.triangle_count_seconds
        ok = cpu_res.count == gpu_res.count == pim_res.count == truth
        table.add_row(
            name,
            round(cpu_res.count_seconds * 1e3, 3),
            round(pim_seconds * 1e3, 3),
            round(gpu_res.count_seconds * 1e3, 3),
            round(cpu_res.count_seconds / pim_seconds, 3),
            round(cpu_res.count_seconds / gpu_res.count_seconds, 3),
            ok,
        )
    return table
