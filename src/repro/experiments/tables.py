"""Lightweight result tables for the experiment harness.

Every experiment returns a :class:`Table`: a title, column headers, rows, and
free-form notes recording how the run maps onto the paper's artifact.  The
text renderer produces the aligned rows that ``repro-experiments`` prints and
that EXPERIMENTS.md embeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Table"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """A rendered experiment result."""

    title: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list[Any]:
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def to_dict(self) -> dict[str, Any]:
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(r) for r in self.rows],
            "notes": self.notes,
        }

    def render(self) -> str:
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
            for i, h in enumerate(self.headers)
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.notes:
            lines.append(f"-- {self.notes}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavored markdown rendering (for generated reports)."""
        cells = [[_fmt(v) for v in row] for row in self.rows]
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in cells:
            lines.append("| " + " | ".join(row) + " |")
        if self.notes:
            lines.append("")
            lines.append(f"_{self.notes}_")
        return "\n".join(lines)

    def render_chart(
        self,
        value_column: str,
        label_columns: list[str] | None = None,
        width: int = 48,
        log_scale: bool = False,
    ) -> str:
        """Horizontal ASCII bar chart of one numeric column.

        The terminal stand-in for the paper's figures: each row becomes a bar
        scaled to the column maximum (optionally log-scaled, useful for the
        orders-of-magnitude spreads of Figs. 3 and 7).
        """
        import math

        labels = label_columns or [self.headers[0]]
        idx = self.headers.index(value_column)
        values = [float(row[idx]) for row in self.rows]
        if not values:
            return f"== {self.title} == (no rows)"

        def scaled(v: float) -> float:
            if log_scale:
                floor = min((x for x in values if x > 0), default=1.0)
                return math.log10(max(v, floor) / floor * 10.0)
            return v

        peak = max(scaled(v) for v in values) or 1.0
        label_cells = [
            " ".join(_fmt(row[self.headers.index(col)]) for col in labels)
            for row in self.rows
        ]
        label_width = max(len(c) for c in label_cells)
        lines = [f"== {self.title} == ({value_column})"]
        for cell, value in zip(label_cells, values):
            bar = "#" * max(1 if value > 0 else 0, round(width * scaled(value) / peak))
            lines.append(f"{cell.ljust(label_width)} | {bar} {_fmt(value)}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
