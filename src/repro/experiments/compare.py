"""Compare two experiment-result JSON dumps (regression detection).

Workflow::

    repro-experiments fig6 --tier bench --json --out before.json
    # ... change code ...
    repro-experiments fig6 --tier bench --json --out after.json
    python -m repro.experiments.compare before.json after.json --tolerance 0.05

Tables are matched by title prefix and compared cell-by-cell: numeric cells
must agree within the relative tolerance, non-numeric cells exactly.  Exit
status is non-zero on any drift, making it CI-friendly.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass

__all__ = ["Drift", "compare_tables", "main"]


@dataclass(frozen=True)
class Drift:
    """One detected difference."""

    location: str
    before: object
    after: object

    def __str__(self) -> str:
        return f"{self.location}: {self.before!r} -> {self.after!r}"


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare_tables(before: dict, after: dict, tolerance: float = 0.0) -> list[Drift]:
    """Cell-by-cell comparison of two ``Table.to_dict()`` payloads."""
    drifts: list[Drift] = []
    if before.get("headers") != after.get("headers"):
        drifts.append(Drift("headers", before.get("headers"), after.get("headers")))
        return drifts
    b_rows = before.get("rows", [])
    a_rows = after.get("rows", [])
    if len(b_rows) != len(a_rows):
        drifts.append(Drift("row count", len(b_rows), len(a_rows)))
        return drifts
    headers = before.get("headers", [])
    for r, (b_row, a_row) in enumerate(zip(b_rows, a_rows)):
        for c, (b_cell, a_cell) in enumerate(zip(b_row, a_row)):
            where = f"row {r} / {headers[c] if c < len(headers) else c}"
            if _is_number(b_cell) and _is_number(a_cell):
                scale = max(abs(float(b_cell)), abs(float(a_cell)), 1e-12)
                if abs(float(b_cell) - float(a_cell)) / scale > tolerance:
                    drifts.append(Drift(where, b_cell, a_cell))
            elif b_cell != a_cell:
                drifts.append(Drift(where, b_cell, a_cell))
    return drifts


def _load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-compare",
        description="Diff two experiment JSON dumps within a tolerance.",
    )
    parser.add_argument("before")
    parser.add_argument("after")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        help="relative tolerance for numeric cells (default: exact)",
    )
    args = parser.parse_args(argv)
    before = _load(args.before)
    after = _load(args.after)
    drifts = compare_tables(before, after, tolerance=args.tolerance)
    if not drifts:
        print(f"identical within tolerance {args.tolerance}")
        return 0
    print(f"{len(drifts)} drift(s):")
    for d in drifts:
        print(f"  {d}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
