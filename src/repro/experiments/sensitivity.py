"""Cost-model sensitivity ablation (beyond the paper).

Every simulated-time conclusion in this reproduction rests on calibration
constants (DESIGN.md Sec. 6).  This experiment perturbs each load-bearing
constant by 0.5x and 2x and re-checks the paper's most shape-critical claim —
the high-degree throughput collapse of Fig. 3 (hub graph at least 2x slower
per edge than the flat road-network analogue) — demonstrating that the
reproduced shapes are properties of the algorithm, not of any single
calibration value.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.api import PimTriangleCounter
from ..graph.datasets import get_dataset
from ..pimsim.config import PimSystemConfig
from .common import DEFAULT_COLORS
from .tables import Table

__all__ = ["run", "PERTURBED_CONSTANTS"]

#: CostModel fields whose value drives some reproduced shape.
PERTURBED_CONSTANTS = (
    "mram_read_bandwidth",
    "scatter_bandwidth",
    "rank_alloc_latency",
    "host_edge_cycles",
    "transfer_latency",
)


def _throughput(graph, colors: int, config: PimSystemConfig, seed: int) -> float:
    counter = PimTriangleCounter(num_colors=colors, seed=seed, system_config=config)
    return counter.count(graph).throughput_edges_per_ms()


def run(tier: str = "small", seed: int = 0) -> Table:
    colors = DEFAULT_COLORS[tier]
    flat = get_dataset("v1r", tier)
    hub = get_dataset("wikipedia", tier)
    table = Table(
        title=f"Ablation — cost-model sensitivity of the Fig. 3 shape (tier={tier})",
        headers=["Constant", "Factor", "v1r edges/ms", "wikipedia edges/ms", "Ratio", "Holds?"],
        notes=(
            "The hub graph must stay >= 2x slower per edge than the flat graph "
            "under every 0.5x/2x perturbation of each cost constant."
        ),
    )
    base = PimSystemConfig()
    configs = [("(baseline)", 1.0, base)]
    for constant in PERTURBED_CONSTANTS:
        for factor in (0.5, 2.0):
            value = getattr(base.cost, constant) * factor
            configs.append((constant, factor, base.with_cost(**{constant: value})))
    for constant, factor, config in configs:
        tp_flat = _throughput(flat, colors, config, seed)
        tp_hub = _throughput(hub, colors, config, seed)
        ratio = tp_flat / tp_hub
        table.add_row(
            constant,
            factor,
            round(tp_flat, 1),
            round(tp_hub, 1),
            round(ratio, 2),
            ratio >= 2.0,
        )
    return table
