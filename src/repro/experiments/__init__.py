"""Experiment harness: one module per paper table/figure plus ablations.

See the registry for the full artifact -> module map (also DESIGN.md Sec. 4).
"""

from .registry import EXPERIMENTS, Experiment, experiment_ids, run_experiment
from .tables import Table

__all__ = ["EXPERIMENTS", "Experiment", "experiment_ids", "run_experiment", "Table"]
