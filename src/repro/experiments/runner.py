"""Command-line experiment runner.

Regenerate any paper artifact::

    repro-experiments fig6 --tier bench
    repro-experiments all --tier small --out results.txt
    python -m repro.experiments.runner tab3

Output is the rendered table; ``--json`` dumps the structured form.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .registry import EXPERIMENTS, experiment_ids, run_experiment

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures on the simulated PIM system.",
    )
    parser.add_argument(
        "experiment",
        choices=experiment_ids() + ["all", "list"],
        help="experiment ID (paper artifact) or 'all'/'list'",
    )
    parser.add_argument("--tier", default="small", choices=("tiny", "small", "bench"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--batch-edges",
        type=int,
        default=None,
        metavar="B",
        help="run every pipeline the experiments build with streaming ingest "
             "in B-edge chunks (sets REPRO_BATCH_EDGES for this run); default: "
             "monolithic single-pass ingest",
    )
    parser.add_argument(
        "--partitioner",
        default=None,
        choices=("hash", "degree", "auto"),
        help="edge-partitioning strategy for every pipeline the experiments "
             "build (sets REPRO_PARTITIONER for this run); default: hash "
             "coloring as in the paper",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON instead of text")
    parser.add_argument(
        "--markdown", action="store_true", help="emit a markdown report instead of text"
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="append an ASCII bar chart of the experiment's headline column",
    )
    parser.add_argument("--out", default=None, help="also write output to this file")
    parser.add_argument(
        "--svg",
        default=None,
        metavar="DIR",
        help="also write an SVG figure per experiment into this directory",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write a telemetry JSON (one span per experiment run, plus the "
             "harness metrics registry) after all experiments finish",
    )
    parser.add_argument(
        "--chrome-trace",
        default=None,
        metavar="PATH",
        help="write a chrome://tracing / Perfetto trace of the harness run",
    )
    parser.add_argument(
        "--flamegraph",
        default=None,
        metavar="PATH",
        help="write a wall-clock flamegraph of the harness run (one frame "
             "per experiment); .svg for standalone SVG, else collapsed-stack "
             "text",
    )
    return parser


#: Headline (value column, log scale) per experiment for --chart.
_CHART_COLUMNS = {
    "tab1": ("Triangles", True),
    "tab2": ("Max degree", True),
    "fig3": ("Edges/ms", True),
    "fig4": ("Speedup", False),
    "fig5": ("Speedup vs no-MG", False),
    "fig6": ("PIM speedup", True),
    "fig7": ("PIM speedup vs CPU", False),
    "abl_coloring": ("Max-DPU ms", False),
    "abl_energy": ("Dynamic mJ", False),
    "abl_dynamic": ("PIM speedup", False),
}


def _headline_chart(exp_id: str, table) -> str | None:
    spec = _CHART_COLUMNS.get(exp_id)
    if spec is None:
        return None
    column, log_scale = spec
    try:
        return table.render_chart(column, log_scale=log_scale)
    except (ValueError, TypeError):
        return None


def main(argv: list[str] | None = None, telemetry=None) -> int:
    """Run experiments; an optional ``Telemetry`` records one span per run.

    A caller-supplied recorder (e.g. a service harness wrapping the runner)
    is used as-is; otherwise one is created on demand when ``--metrics-out``
    or ``--chrome-trace`` ask for exported telemetry.
    """
    args = _build_parser().parse_args(argv)
    if args.batch_edges is not None or args.partitioner is not None:
        # Same env-fallback channel PimTriangleCounter reads for the executor
        # knobs: every counter the experiment modules construct picks it up.
        import os

        if args.batch_edges is not None:
            os.environ["REPRO_BATCH_EDGES"] = str(args.batch_edges)
        if args.partitioner is not None:
            os.environ["REPRO_PARTITIONER"] = args.partitioner
    if args.experiment == "list":
        for exp in EXPERIMENTS.values():
            print(f"{exp.id:12s} {exp.paper_artifact:14s} {exp.description}")
        return 0
    if telemetry is None and (args.metrics_out or args.chrome_trace or args.flamegraph):
        from ..telemetry import Telemetry

        telemetry = Telemetry()
    ids = experiment_ids() if args.experiment == "all" else [args.experiment]
    chunks: list[str] = []
    for exp_id in ids:
        start = time.perf_counter()
        if telemetry is not None:
            with telemetry.span(exp_id) as span:
                table = run_experiment(exp_id, tier=args.tier, seed=args.seed)
                if span is not None:
                    span.attrs["tier"] = args.tier
                    span.attrs["rows"] = len(table.rows)
            telemetry.metrics.gauge(
                f"experiment.{exp_id}.rows", help="rows in the rendered table"
            ).set(len(table.rows))
            telemetry.metrics.counter(
                "experiment.runs", help="experiments executed"
            ).inc()
        else:
            table = run_experiment(exp_id, tier=args.tier, seed=args.seed)
        elapsed = time.perf_counter() - start
        if args.svg:
            from pathlib import Path

            from .svg import render_figure

            svg = render_figure(exp_id, table)
            if svg is not None:
                out_dir = Path(args.svg)
                out_dir.mkdir(parents=True, exist_ok=True)
                (out_dir / f"{exp_id}.svg").write_text(svg)
        if args.json:
            chunks.append(json.dumps(table.to_dict(), indent=2))
        elif args.markdown:
            chunks.append(table.to_markdown())
            chunks.append("")
        else:
            chunks.append(table.render())
            if args.chart:
                chart = _headline_chart(exp_id, table)
                if chart:
                    chunks.append("")
                    chunks.append(chart)
            chunks.append(f"[{exp_id} regenerated in {elapsed:.2f}s wall]")
        chunks.append("")
    text = "\n".join(chunks)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    if telemetry is not None and args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            json.dump(
                {
                    "schema": "repro-experiments-telemetry/1",
                    "tier": args.tier,
                    "seed": args.seed,
                    "spans": telemetry.to_dict(),
                    "metrics": telemetry.metrics.snapshot(),
                    "volatile_metrics": telemetry.metrics.snapshot(volatile=True),
                },
                fh,
                indent=2,
                sort_keys=True,
            )
            fh.write("\n")
    if telemetry is not None and args.chrome_trace:
        from ..telemetry import write_chrome_trace

        write_chrome_trace(args.chrome_trace, telemetry)
    if telemetry is not None and args.flamegraph:
        from ..telemetry import write_flamegraph

        # Harness spans carry no simulated clock, so the wall axis is the
        # informative one here.
        write_flamegraph(args.flamegraph, telemetry, axis="wall")
    return 0


if __name__ == "__main__":
    sys.exit(main())
