"""Table 1: the evaluation graphs — |E|, |V|, exact triangle count.

Paper values are for the full-scale public datasets; our rows describe the
scaled-down analogues (DESIGN.md Sec. 2) with the same structural profile.
"""

from __future__ import annotations

from ..graph.datasets import DATASET_NAMES, dataset_info, get_dataset
from ..graph.stats import compute_stats
from .common import ground_truth
from .tables import Table

__all__ = ["run"]


def run(tier: str = "small", seed: int = 0) -> Table:
    table = Table(
        title=f"Table 1 — graphs used in the evaluations (tier={tier})",
        headers=["Graph", "|E|", "|V|", "Triangles", "Stands in for"],
        notes=(
            "Analogue datasets: each preserves the paper graph's defining "
            "property at reduced scale (see DESIGN.md)."
        ),
    )
    for name in DATASET_NAMES:
        graph = get_dataset(name, tier)
        stats = compute_stats(graph, triangles=ground_truth(name, tier))
        paper_name, _ = dataset_info(name)
        table.add_row(name, stats.num_edges, stats.num_nodes, stats.triangles, paper_name)
    return table
