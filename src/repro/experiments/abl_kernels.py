"""Ablation: merge-based kernel (the paper's) vs binary-probe kernel.

DESIGN.md calls this design choice out: the paper picks the merge kernel, but
probe-style intersections are the common alternative in CPU/GPU counters.
Per edge the merge walks ``suffix(u) + deg+(v)`` sequential records while the
probe performs ``deg+(v) * log2(m)`` *random* touches — and on a DPU every
random MRAM touch pays the DMA setup latency that streaming amortizes away.

Finding (see EXPERIMENTS.md): the probe kernel loses on every graph, by 8x on
flat graphs and by ~50x on the hub graph — probing only avoids the hub's
suffix when the hub is the *first* endpoint, while paying the log factor and
the per-touch DMA latency everywhere.  This quantifies why the paper is right
to keep the DMA-friendly merge and attack the hub problem with the
Misra-Gries remap instead (the ``merge+MG`` column wins on all hub graphs).
"""

from __future__ import annotations

from ..core.api import PimTriangleCounter
from ..graph.datasets import get_dataset
from .common import DEFAULT_COLORS, ground_truth
from .tables import Table

__all__ = ["run", "KERNEL_GRAPHS"]

KERNEL_GRAPHS = ("v1r", "humanjung", "kronecker23", "wikipedia")


def run(tier: str = "small", seed: int = 0, graphs: tuple[str, ...] = KERNEL_GRAPHS) -> Table:
    colors = DEFAULT_COLORS[tier]
    table = Table(
        title=f"Ablation — merge vs probe counting kernels (tier={tier}, C={colors})",
        headers=["Graph", "Merge ms", "Probe ms", "Merge+MG ms", "Best", "Exact?"],
        notes=(
            "Count-phase times. Random MRAM probes pay the DMA setup latency "
            "per touch, so the streaming merge wins everywhere and "
            "merge+Misra-Gries wins on the hub graphs — the paper's design."
        ),
    )
    for name in graphs:
        graph = get_dataset(name, tier)
        truth = ground_truth(name, tier)
        merge = PimTriangleCounter(num_colors=colors, seed=seed).count(graph)
        probe = (
            PimTriangleCounter(num_colors=colors, seed=seed)
            .with_options(kernel_variant="probe")
            .count(graph)
        )
        merge_mg = PimTriangleCounter(
            num_colors=colors, seed=seed, misra_gries_k=1024, misra_gries_t=64
        ).count(graph)
        times = {
            "merge": merge.triangle_count_seconds,
            "probe": probe.triangle_count_seconds,
            "merge+MG": merge_mg.triangle_count_seconds,
        }
        best = min(times, key=times.get)
        ok = merge.count == probe.count == merge_mg.count == truth
        table.add_row(
            name,
            round(times["merge"] * 1e3, 3),
            round(times["probe"] * 1e3, 3),
            round(times["merge+MG"] * 1e3, 3),
            best,
            ok,
        )
    return table
