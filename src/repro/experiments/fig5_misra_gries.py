"""Figure 5: Misra-Gries parameter sweep (K and t).

``K`` controls the accuracy of heavy-hitter identification, ``t`` how many
top nodes are remapped inside the PIM cores.  Expected shape (paper Sec. 4.3):

* graphs with extreme hubs (wikipedia, kronecker*) speed up dramatically once
  the hubs are remapped, with diminishing returns in both K and t;
* low-max-degree graphs (humanjung, v1r, livejournal, orkut) see *no* benefit
  and a slight slowdown from the remap pass — the paper notes the remap is
  the most expensive part of the technique.
"""

from __future__ import annotations

from ..core.api import PimTriangleCounter
from ..graph.datasets import get_dataset
from .common import DEFAULT_COLORS, ground_truth
from .tables import Table

__all__ = ["run", "MG_SWEEP", "MG_GRAPHS"]

#: (K, t) grid; (0, 0) is the no-Misra-Gries baseline.
MG_SWEEP = ((0, 0), (64, 4), (256, 4), (256, 16), (1024, 16), (1024, 64))

#: Two hub-dominated graphs + two low-degree controls.
MG_GRAPHS = ("wikipedia", "kronecker23", "livejournal", "humanjung")


def run(
    tier: str = "small",
    seed: int = 0,
    graphs: tuple[str, ...] = MG_GRAPHS,
    sweep: tuple[tuple[int, int], ...] = MG_SWEEP,
) -> Table:
    colors = DEFAULT_COLORS[tier]
    table = Table(
        title=f"Figure 5 — Misra-Gries K/t sweep (tier={tier}, C={colors})",
        headers=["Graph", "K", "t", "Count ms", "Total ms", "Speedup vs no-MG", "Exact?"],
        notes=(
            "Expect large count-time gains on wikipedia/kronecker23 and a mild "
            "slowdown on livejournal/humanjung (remap cost, no hubs to fix)."
        ),
    )
    for name in graphs:
        graph = get_dataset(name, tier)
        truth = ground_truth(name, tier)
        base_count_ms = None
        for k, t in sweep:
            counter = PimTriangleCounter(
                num_colors=colors, seed=seed, misra_gries_k=k, misra_gries_t=t
            )
            result = counter.count(graph)
            count_ms = result.triangle_count_seconds * 1e3
            if base_count_ms is None:
                base_count_ms = count_ms
            table.add_row(
                name,
                k,
                t,
                round(count_ms, 3),
                round(result.seconds_without_setup * 1e3, 3),
                round(base_count_ms / count_ms, 3) if count_ms else float("inf"),
                result.count == truth,
            )
    return table
