"""Registry mapping experiment IDs to their runners.

IDs follow the paper's artifact numbering (``tab1`` .. ``fig7``) plus the
ablations DESIGN.md calls out.  Each runner has signature
``run(tier: str = ..., seed: int = 0, **kw) -> Table``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from . import (
    abl_dynamic,
    abl_host,
    abl_kernels,
    abl_tasklets,
    ablations,
    sensitivity,
    fig3_throughput,
    fig4_scaling,
    fig5_misra_gries,
    fig6_static,
    fig7_dynamic,
    tab1_graphs,
    tab2_stats,
    tab3_uniform,
    tab4_reservoir,
)
from .tables import Table

__all__ = ["Experiment", "EXPERIMENTS", "run_experiment", "experiment_ids"]


@dataclass(frozen=True)
class Experiment:
    id: str
    paper_artifact: str
    description: str
    runner: Callable[..., Table]


EXPERIMENTS: dict[str, Experiment] = {
    e.id: e
    for e in [
        Experiment("tab1", "Table 1", "Graph inventory: |E|, |V|, triangles", tab1_graphs.run),
        Experiment("tab2", "Table 2", "Max/avg degree, global clustering", tab2_stats.run),
        Experiment(
            "fig3", "Figure 3", "Throughput (edges/ms) ordered by max degree", fig3_throughput.run
        ),
        Experiment("fig4", "Figure 4", "PIM core scaling over color counts", fig4_scaling.run),
        Experiment("fig5", "Figure 5", "Misra-Gries K/t parameter sweep", fig5_misra_gries.run),
        Experiment("tab3", "Table 3", "Relative error vs uniform sampling p", tab3_uniform.run),
        Experiment("tab4", "Table 4", "Relative error vs reservoir fraction", tab4_reservoir.run),
        Experiment("fig6", "Figure 6", "Static speedup of PIM/GPU over CPU", fig6_static.run),
        Experiment("fig7", "Figure 7", "Dynamic updates: cumulative time", fig7_dynamic.run),
        Experiment(
            "abl_coloring",
            "(beyond paper)",
            "Coloring duplication vs parallelism",
            ablations.run_coloring,
        ),
        Experiment(
            "abl_compose",
            "(beyond paper)",
            "Uniform + reservoir sampling composition",
            ablations.run_compose,
        ),
        Experiment(
            "abl_energy", "(beyond paper)", "Energy ledger across color counts", ablations.run_energy
        ),
        Experiment(
            "abl_kernels",
            "(beyond paper)",
            "Merge vs probe counting kernels",
            abl_kernels.run,
        ),
        Experiment(
            "abl_dynamic",
            "(beyond paper)",
            "Dynamic update batch-size sweep",
            abl_dynamic.run,
        ),
        Experiment(
            "abl_tasklets",
            "(beyond paper)",
            "Tasklet scaling inside one DPU (PrIM saturation curve)",
            abl_tasklets.run,
        ),
        Experiment(
            "abl_host",
            "(beyond paper)",
            "Host thread-count sweep (paper fixes 32)",
            abl_host.run,
        ),
        Experiment(
            "abl_sensitivity",
            "(beyond paper)",
            "Cost-model sensitivity of the Fig. 3 shape",
            sensitivity.run,
        ),
    ]
}


def experiment_ids() -> list[str]:
    return list(EXPERIMENTS)


def run_experiment(exp_id: str, tier: str = "small", seed: int = 0, **kw) -> Table:
    if exp_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {exp_id!r}; known: {', '.join(EXPERIMENTS)}")
    return EXPERIMENTS[exp_id].runner(tier=tier, seed=seed, **kw)
