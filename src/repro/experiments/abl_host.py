"""Ablation: host thread count (the paper fixes 32 host threads, Sec. 4.1).

The host's work — streaming the COO file, hashing both endpoints, routing
into per-core batches, updating Misra-Gries — parallelizes across threads,
but the transfer and DPU phases do not care.  Sweeping the thread count shows
where the host stops being the bottleneck: sample-creation time falls roughly
linearly until transfers dominate, while the triangle-count phase is flat by
construction.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.api import PimTriangleCounter
from ..graph.datasets import get_dataset
from ..pimsim.config import PimSystemConfig
from .common import DEFAULT_COLORS, ground_truth
from .tables import Table

__all__ = ["run", "THREAD_SWEEP"]

THREAD_SWEEP = (1, 4, 8, 16, 32, 64)


def run(
    tier: str = "small",
    seed: int = 0,
    graph_name: str = "kronecker23",
    sweep: tuple[int, ...] = THREAD_SWEEP,
) -> Table:
    colors = DEFAULT_COLORS[tier]
    graph = get_dataset(graph_name, tier)
    truth = ground_truth(graph_name, tier)
    table = Table(
        title=f"Ablation — host threads on {graph_name} (tier={tier}, C={colors})",
        headers=["Threads", "Sample ms", "Count ms", "Sample speedup vs 1", "Exact?"],
        notes=(
            "Sample creation parallelizes with host threads until transfers "
            "dominate; the counting phase is host-thread-independent."
        ),
    )
    base_sample = None
    for threads in sweep:
        config = PimSystemConfig().with_cost(host_threads=threads)
        result = PimTriangleCounter(
            num_colors=colors, seed=seed, system_config=config
        ).count(graph)
        sample_ms = result.sample_creation_seconds * 1e3
        if base_sample is None:
            base_sample = sample_ms
        table.add_row(
            threads,
            round(sample_ms, 3),
            round(result.triangle_count_seconds * 1e3, 3),
            round(base_sample / sample_ms, 3),
            result.count == truth,
        )
    return table
