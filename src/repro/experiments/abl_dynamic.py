"""Ablation: dynamic-update batch-size study (DESIGN.md Sec. 7).

Fig. 7 fixes 10 update batches.  This study sweeps the batch count for the
same total edge stream: many small updates amortize the CPU's per-round
conversion *worse* (it reconverts the whole graph more often), while the PIM
side pays more fixed per-round costs (launch, gather, rank-padded scatter of
tiny batches).  The crossover in update granularity tells a system designer
when COO-native PIM counting pays off.
"""

from __future__ import annotations

from ..baselines.dynamic import CpuDynamicDriver
from ..core.dynamic import DynamicPimCounter
from ..graph.datasets import get_dataset
from .common import DEFAULT_COLORS, ground_truth
from .fig6_static import BEST_MG
from .tables import Table

__all__ = ["run", "BATCH_SWEEP"]

BATCH_SWEEP = (2, 5, 10, 25, 50)


def run(
    tier: str = "small",
    seed: int = 0,
    graph_name: str = "wikipedia",
    sweep: tuple[int, ...] = BATCH_SWEEP,
) -> Table:
    colors = DEFAULT_COLORS[tier]
    graph = get_dataset(graph_name, tier)
    truth = ground_truth(graph_name, tier)
    mg_k, mg_t = BEST_MG.get(graph_name, (0, 0))
    table = Table(
        title=(
            f"Ablation — dynamic batch-size sweep on {graph_name} "
            f"(tier={tier}, C={colors})"
        ),
        headers=[
            "Batches",
            "CPU cum ms",
            "PIM cum ms",
            "PIM speedup",
            "PIM ms/round",
            "Exact?",
        ],
        notes=(
            "Same total edge stream, different update granularity. The CPU's "
            "cumulative conversion cost grows with round count; PIM's "
            "per-round overhead grows too but from a much smaller base."
        ),
    )
    for batches in sweep:
        cpu = CpuDynamicDriver(graph.num_nodes)
        pim = DynamicPimCounter(
            graph.num_nodes,
            num_colors=colors,
            seed=seed,
            misra_gries_k=mg_k,
            misra_gries_t=mg_t,
        )
        for batch in graph.split_batches(batches):
            cpu.apply_update(batch)
            pim.apply_update(batch)
        ok = pim.triangles == truth
        table.add_row(
            batches,
            round(cpu.cumulative_seconds * 1e3, 3),
            round(pim.cumulative_seconds * 1e3, 3),
            round(cpu.cumulative_seconds / pim.cumulative_seconds, 3),
            round(pim.cumulative_seconds * 1e3 / batches, 3),
            ok,
        )
    return table
