"""Shared experiment parameters and helpers.

The harness runs every paper artifact at three dataset tiers.  ``tiny`` keeps
integration tests fast, ``small`` is the default interactive tier, ``bench``
is used by the pytest-benchmark suite and EXPERIMENTS.md.  Color counts scale
with tier so per-DPU sample sizes stay in the regime where the cost model's
trends (parallelism vs. transfer/alloc overhead) are visible.
"""

from __future__ import annotations

from functools import lru_cache

from ..graph.coo import COOGraph
from ..graph.datasets import get_dataset
from ..graph.triangles import count_triangles

__all__ = [
    "DEFAULT_COLORS",
    "SCALING_COLOR_SWEEPS",
    "ground_truth",
    "graph_for",
    "paper_graph_order_by_max_degree",
]

#: Default color count per tier (paper: 23 colors / 2300 DPUs at full scale).
DEFAULT_COLORS = {"tiny": 4, "small": 8, "bench": 12}

#: Fig. 4 color sweeps per tier.
SCALING_COLOR_SWEEPS = {
    "tiny": (1, 2, 3, 4),
    "small": (2, 4, 6, 8),
    "bench": (2, 4, 8, 12, 16),
}


def graph_for(name: str, tier: str) -> COOGraph:
    return get_dataset(name, tier)


@lru_cache(maxsize=64)
def ground_truth(name: str, tier: str) -> int:
    """Exact triangle count of one dataset (cached across experiments)."""
    return count_triangles(get_dataset(name, tier))


def paper_graph_order_by_max_degree(tier: str) -> list[str]:
    """Dataset names ordered by max degree ascending (Fig. 3's x-axis)."""
    from ..graph.datasets import DATASET_NAMES
    from ..graph.stats import degree_stats

    pairs = []
    for name in DATASET_NAMES:
        g = get_dataset(name, tier)
        max_deg, _ = degree_stats(g)
        pairs.append((max_deg, name))
    return [name for _, name in sorted(pairs)]
