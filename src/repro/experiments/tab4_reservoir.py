"""Table 4: relative error under reservoir sampling in the PIM cores.

Following the paper's methodology (Sec. 4.5): the maximum *expected* edges
assigned to one PIM core is ``(6 / C^2) |E|``; the per-core sample capacity is
limited to a fraction ``p`` of that, ``p in {0.5, 0.25, 0.1, 0.01}``, forcing
reservoir replacement.  Expected shape: errors stay low (reservoir sampling
is lower-variance than uniform sampling at equal budget because the sample is
as large as memory allows) except on the triangle-poor v1r.
"""

from __future__ import annotations

from ..core.api import PimTriangleCounter
from ..graph.datasets import DATASET_NAMES, get_dataset
from ..streaming.estimators import relative_error
from .common import DEFAULT_COLORS, ground_truth
from .tables import Table

__all__ = ["run", "RESERVOIR_FRACTIONS"]

RESERVOIR_FRACTIONS = (0.5, 0.25, 0.1, 0.01)


def run(
    tier: str = "small",
    seed: int = 0,
    fractions: tuple[float, ...] = RESERVOIR_FRACTIONS,
    trials: int = 3,
) -> Table:
    colors = DEFAULT_COLORS[tier]
    table = Table(
        title=f"Table 4 — relative error vs reservoir size fraction (tier={tier}, C={colors})",
        headers=["Graph"] + [f"p={f}" for f in fractions],
        notes=(
            "Per-core capacity M = fraction * (6/C^2)|E| (paper Table 4). "
            "Cells: mean relative error over trials."
        ),
    )
    for name in DATASET_NAMES:
        graph = get_dataset(name, tier)
        truth = ground_truth(name, tier)
        expected_max = 6.0 * graph.num_edges / colors**2
        errors = []
        for frac in fractions:
            capacity = max(3, int(frac * expected_max))
            errs = []
            for trial in range(trials):
                counter = PimTriangleCounter(
                    num_colors=colors,
                    reservoir_capacity=capacity,
                    seed=seed + 1000 * trial,
                )
                result = counter.count(graph)
                errs.append(relative_error(result.estimate, truth))
            errors.append(sum(errs) / len(errs))
        table.add_row(name, *[f"{100 * e:.3f}%" for e in errors])
    return table
