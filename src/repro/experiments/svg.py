"""Static SVG figure output for the experiment harness.

Pure-Python SVG emitters (no plotting dependency) so
``repro-experiments <id> --svg DIR`` regenerates the paper's figures as
files.  Visual rules follow the data-viz method with its validated reference
palette: categorical hues in fixed slot order (never cycled), a single-series
chart carries no legend (the title names it), multi-series line charts get a
legend plus end-of-line direct labels, marks are thin (2px lines, slim bars
with a 2px surface gap), grid and axes are recessive, and all text wears ink
tokens rather than series color.  Dark mode is not emitted — these are
print-oriented artifacts on the light surface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .tables import Table

__all__ = [
    "bar_chart_svg",
    "line_chart_svg",
    "heatmap_svg",
    "figure_spec_for",
    "render_figure",
]

#: Validated reference palette — categorical slots in fixed order (light mode).
PALETTE = (
    "#2a78d6",  # blue
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
    "#e87ba4",  # magenta
    "#eb6834",  # orange
)
SURFACE = "#fcfcfb"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
GRID = "#e7e6e2"


def _fmt_val(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 10000 or abs(v) < 0.01:
        return f"{v:.1e}"
    if abs(v) >= 100:
        return f"{v:.0f}"
    return f"{v:.3g}"


def _nice_ticks(lo: float, hi: float, n: int = 4) -> list[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    step = 10 ** math.floor(math.log10(span / n))
    for mult in (1, 2, 2.5, 5, 10):
        if span / (step * mult) <= n + 1:
            step *= mult
            break
    start = math.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + 1e-12:
        if t >= lo - 1e-12:
            ticks.append(round(t, 10))
        t += step
    return ticks or [lo, hi]


def _log_ticks(lo: float, hi: float) -> list[float]:
    lo = max(lo, 1e-12)
    ticks = []
    p = math.floor(math.log10(lo))
    while 10**p <= hi * 1.0001:
        if 10**p >= lo * 0.999:
            ticks.append(10.0**p)
        p += 1
    return ticks or [lo, hi]


@dataclass
class _Frame:
    """Shared chart geometry + scale helpers."""

    width: int
    height: int
    margin_left: int = 64
    margin_right: int = 24
    margin_top: int = 44
    margin_bottom: int = 40

    @property
    def plot_w(self) -> int:
        return self.width - self.margin_left - self.margin_right

    @property
    def plot_h(self) -> int:
        return self.height - self.margin_top - self.margin_bottom

    def x(self, frac: float) -> float:
        return self.margin_left + frac * self.plot_w

    def y(self, frac: float) -> float:
        return self.margin_top + (1.0 - frac) * self.plot_h


def _scale(values: Sequence[float], log_scale: bool):
    vmax = max(values) if values else 1.0
    if log_scale:
        positive = [v for v in values if v > 0]
        vmin = min(positive) if positive else 1.0
        lo = 10 ** math.floor(math.log10(vmin))
        hi = 10 ** math.ceil(math.log10(max(vmax, vmin * 10)))

        def to_frac(v: float) -> float:
            v = max(v, lo)
            return (math.log10(v) - math.log10(lo)) / (math.log10(hi) - math.log10(lo))

        return to_frac, _log_ticks(lo, hi)
    hi = vmax or 1.0

    def to_frac(v: float) -> float:
        return max(v, 0.0) / hi

    return to_frac, _nice_ticks(0.0, hi)


def _header(frame: _Frame, title: str, subtitle: str = "") -> list[str]:
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{frame.width}" '
        f'height="{frame.height}" viewBox="0 0 {frame.width} {frame.height}" '
        f'font-family="system-ui, sans-serif">',
        f'<rect width="{frame.width}" height="{frame.height}" fill="{SURFACE}"/>',
        f'<text x="{frame.margin_left}" y="20" font-size="14" font-weight="600" '
        f'fill="{TEXT_PRIMARY}">{title}</text>',
    ]
    if subtitle:
        parts.append(
            f'<text x="{frame.margin_left}" y="36" font-size="11" '
            f'fill="{TEXT_SECONDARY}">{subtitle}</text>'
        )
    return parts


def _grid_and_axis(frame: _Frame, ticks: list[float], to_frac) -> list[str]:
    parts = []
    for t in ticks:
        y = frame.y(to_frac(t))
        parts.append(
            f'<line x1="{frame.margin_left}" y1="{y:.1f}" '
            f'x2="{frame.margin_left + frame.plot_w}" y2="{y:.1f}" '
            f'stroke="{GRID}" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{frame.margin_left - 6}" y="{y + 3.5:.1f}" font-size="10" '
            f'text-anchor="end" fill="{TEXT_SECONDARY}">{_fmt_val(t)}</text>'
        )
    return parts


def bar_chart_svg(
    table: Table,
    value_column: str,
    label_column: str | None = None,
    log_scale: bool = False,
    width: int = 720,
    height: int = 360,
) -> str:
    """Single-series vertical bar chart (one value per row; no legend)."""
    label_column = label_column or table.headers[0]
    labels = [str(v) for v in table.column(label_column)]
    values = [float(v) for v in table.column(value_column)]
    frame = _Frame(width=width, height=height)
    to_frac, ticks = _scale(values, log_scale)
    subtitle = f"{value_column}" + (" (log scale)" if log_scale else "")
    parts = _header(frame, table.title, subtitle)
    parts += _grid_and_axis(frame, ticks, to_frac)

    n = max(len(values), 1)
    slot_w = frame.plot_w / n
    bar_w = max(6.0, min(48.0, slot_w * 0.62))
    baseline = frame.y(0.0)
    for i, (label, value) in enumerate(zip(labels, values)):
        cx = frame.x((i + 0.5) / n)
        top = frame.y(to_frac(value))
        h = max(baseline - top, 0.0)
        # Thin bar, rounded data end; clip so the rounding shows only at the top.
        parts.append(
            f'<clipPath id="bar{i}"><rect x="{cx - bar_w / 2:.1f}" y="{top:.1f}" '
            f'width="{bar_w:.1f}" height="{h:.1f}"/></clipPath>'
        )
        parts.append(
            f'<rect x="{cx - bar_w / 2:.1f}" y="{top:.1f}" width="{bar_w:.1f}" '
            f'height="{h + 4:.1f}" rx="4" fill="{PALETTE[0]}" clip-path="url(#bar{i})"/>'
        )
        parts.append(
            f'<text x="{cx:.1f}" y="{top - 5:.1f}" font-size="10" text-anchor="middle" '
            f'fill="{TEXT_PRIMARY}">{_fmt_val(value)}</text>'
        )
        parts.append(
            f'<text x="{cx:.1f}" y="{baseline + 14:.1f}" font-size="10" '
            f'text-anchor="middle" fill="{TEXT_SECONDARY}">{label}</text>'
        )
    parts.append(
        f'<line x1="{frame.margin_left}" y1="{baseline:.1f}" '
        f'x2="{frame.margin_left + frame.plot_w}" y2="{baseline:.1f}" '
        f'stroke="{TEXT_SECONDARY}" stroke-width="1"/>'
    )
    parts.append("</svg>")
    return "\n".join(parts)


def line_chart_svg(
    table: Table,
    x_column: str,
    y_columns: Sequence[str] | None = None,
    series_column: str | None = None,
    y_column: str | None = None,
    log_scale: bool = False,
    width: int = 720,
    height: int = 380,
) -> str:
    """Multi-series line chart.

    Series come either from multiple ``y_columns`` (e.g. Fig. 7's CPU/GPU/PIM
    cumulative columns) or from grouping rows by ``series_column`` with one
    ``y_column`` (e.g. Fig. 4's per-graph scaling curves).  Hues follow the
    fixed slot order; a legend is always present (>= 2 series) and each line
    is direct-labeled at its end.
    """
    if y_columns is None and (series_column is None or y_column is None):
        raise ValueError("need y_columns or (series_column + y_column)")
    series: list[tuple[str, list[float], list[float]]] = []
    if y_columns is not None:
        xs = [float(v) for v in table.column(x_column)]
        for name in y_columns:
            series.append((name, xs, [float(v) for v in table.column(name)]))
    else:
        groups: dict[str, tuple[list[float], list[float]]] = {}
        xi = table.headers.index(x_column)
        yi = table.headers.index(y_column)
        si = table.headers.index(series_column)
        for row in table.rows:
            name = str(row[si])
            groups.setdefault(name, ([], []))
            groups[name][0].append(float(row[xi]))
            groups[name][1].append(float(row[yi]))
        series = [(name, xs, ys) for name, (xs, ys) in groups.items()]
    if len(series) > len(PALETTE):
        raise ValueError("more series than fixed palette slots; aggregate first")

    frame = _Frame(width=width, height=height, margin_top=56)
    all_y = [v for _, _, ys in series for v in ys]
    all_x = [v for _, xs, _ in series for v in xs]
    to_frac_y, ticks = _scale(all_y, log_scale)
    x_lo, x_hi = (min(all_x), max(all_x)) if all_x else (0.0, 1.0)

    def to_frac_x(v: float) -> float:
        return 0.0 if x_hi == x_lo else (v - x_lo) / (x_hi - x_lo)

    subtitle = f"x: {x_column}" + (" — y log scale" if log_scale else "")
    parts = _header(frame, table.title, subtitle)
    parts += _grid_and_axis(frame, ticks, to_frac_y)

    # Legend row (always present for >= 2 series), under the subtitle.
    lx = frame.margin_left
    for slot, (name, _, _) in enumerate(series):
        color = PALETTE[slot]
        parts.append(
            f'<circle cx="{lx + 4}" cy="49" r="4" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{lx + 12}" y="52" font-size="10" fill="{TEXT_SECONDARY}">{name}</text>'
        )
        lx += 14 + 7 * len(name) + 16

    for slot, (name, xs, ys) in enumerate(series):
        color = PALETTE[slot]
        pts = " ".join(
            f"{frame.x(to_frac_x(x)):.1f},{frame.y(to_frac_y(y)):.1f}"
            for x, y in zip(xs, ys)
        )
        parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{color}" '
            f'stroke-width="2" stroke-linejoin="round"/>'
        )
        for x, y in zip(xs, ys):
            parts.append(
                f'<circle cx="{frame.x(to_frac_x(x)):.1f}" '
                f'cy="{frame.y(to_frac_y(y)):.1f}" r="4" fill="{color}" '
                f'stroke="{SURFACE}" stroke-width="2"/>'
            )
        # Direct label at the line's end; text stays in ink, not series color.
        end_x = frame.x(to_frac_x(xs[-1]))
        end_y = frame.y(to_frac_y(ys[-1]))
        parts.append(
            f'<text x="{min(end_x + 8, frame.width - 4):.1f}" y="{end_y + 3:.1f}" '
            f'font-size="10" fill="{TEXT_PRIMARY}">{name}</text>'
        )

    # X-axis tick labels at the series' x positions (deduplicated).
    baseline = frame.y(0.0) if not log_scale else frame.margin_top + frame.plot_h
    for x in sorted({v for v in all_x}):
        parts.append(
            f'<text x="{frame.x(to_frac_x(x)):.1f}" y="{baseline + 14:.1f}" '
            f'font-size="10" text-anchor="middle" fill="{TEXT_SECONDARY}">{_fmt_val(x)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def _blend(frac: float, base: str = SURFACE, accent: str = PALETTE[0]) -> str:
    """Linear blend surface -> accent; sequential single-hue cell shading."""
    frac = min(max(frac, 0.0), 1.0)
    b = tuple(int(base[i : i + 2], 16) for i in (1, 3, 5))
    a = tuple(int(accent[i : i + 2], 16) for i in (1, 3, 5))
    rgb = tuple(round(bc + (ac - bc) * frac) for bc, ac in zip(b, a))
    return f"#{rgb[0]:02x}{rgb[1]:02x}{rgb[2]:02x}"


def heatmap_svg(
    title: str,
    row_labels: Sequence[str],
    matrix: Sequence[Sequence[float]],
    subtitle: str = "",
    col_label: str = "column",
    width: int = 720,
    cell_h: int = 22,
) -> str:
    """Row-normalized heatmap: one row per metric, one column per entity.

    Each row is shaded independently against its own maximum (sequential
    single-hue ramp from the surface color to the first palette slot), so
    rows with different units — seconds next to bytes — stay comparable as
    *shapes*.  The per-row maximum is printed at the row's right edge; text
    stays in ink tokens, never in cell color.
    """
    rows = [list(map(float, r)) for r in matrix]
    n_rows = len(rows)
    n_cols = max((len(r) for r in rows), default=0)
    label_w = 8 + max((7 * len(str(lb)) for lb in row_labels), default=0)
    frame = _Frame(
        width=width,
        height=64 + n_rows * cell_h + 28,
        margin_left=min(max(label_w, 64), 220),
        margin_right=64,
        margin_top=56,
        margin_bottom=28,
    )
    parts = _header(frame, title, subtitle)
    cell_w = frame.plot_w / max(n_cols, 1)
    for ri, (label, values) in enumerate(zip(row_labels, rows)):
        top = frame.margin_top + ri * cell_h
        vmax = max(values) if values and max(values) > 0 else 1.0
        for ci, value in enumerate(values):
            x = frame.margin_left + ci * cell_w
            parts.append(
                f'<rect x="{x:.1f}" y="{top}" width="{cell_w + 0.5:.1f}" '
                f'height="{cell_h - 2}" fill="{_blend(value / vmax)}"/>'
            )
        parts.append(
            f'<text x="{frame.margin_left - 6}" y="{top + cell_h / 2 + 3:.1f}" '
            f'font-size="10" text-anchor="end" fill="{TEXT_SECONDARY}">{label}</text>'
        )
        parts.append(
            f'<text x="{frame.margin_left + frame.plot_w + 6}" '
            f'y="{top + cell_h / 2 + 3:.1f}" font-size="9" '
            f'fill="{TEXT_SECONDARY}">max {_fmt_val(vmax if values else 0.0)}</text>'
        )
    axis_y = frame.margin_top + n_rows * cell_h + 14
    # Sparse column ticks: first / quartiles / last, deduplicated.
    if n_cols:
        ticks = sorted({0, n_cols // 4, n_cols // 2, (3 * n_cols) // 4, n_cols - 1})
        for ci in ticks:
            x = frame.margin_left + (ci + 0.5) * cell_w
            parts.append(
                f'<text x="{x:.1f}" y="{axis_y}" font-size="9" text-anchor="middle" '
                f'fill="{TEXT_SECONDARY}">{ci}</text>'
            )
        parts.append(
            f'<text x="{frame.margin_left + frame.plot_w / 2:.1f}" y="{axis_y + 13}" '
            f'font-size="10" text-anchor="middle" '
            f'fill="{TEXT_SECONDARY}">{col_label}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


#: Per-experiment figure specification: (kind, kwargs).
_FIGURE_SPECS: dict[str, tuple[str, dict]] = {
    "tab1": ("bar", dict(value_column="Triangles", log_scale=True)),
    "tab2": ("bar", dict(value_column="Max degree", log_scale=True)),
    "fig3": ("bar", dict(value_column="Edges/ms", log_scale=True)),
    "fig4": (
        "line",
        dict(x_column="Colors", y_column="Total ms", series_column="Graph", log_scale=True),
    ),
    "fig6": ("bar", dict(value_column="PIM speedup", log_scale=True)),
    "fig7": (
        "line",
        dict(x_column="Round", y_columns=["CPU cum ms", "GPU cum ms", "PIM cum ms"]),
    ),
    "abl_coloring": ("bar", dict(value_column="Max-DPU ms")),
    "abl_energy": ("bar", dict(value_column="Dynamic mJ")),
    "abl_dynamic": ("line", dict(x_column="Batches", y_columns=["PIM speedup"])),
    "abl_tasklets": ("line", dict(x_column="Tasklets", y_columns=["Speedup vs 1"])),
}


def figure_spec_for(exp_id: str) -> tuple[str, dict] | None:
    return _FIGURE_SPECS.get(exp_id)


def render_figure(exp_id: str, table: Table) -> str | None:
    """SVG for one experiment's table, or None if no figure is specified."""
    spec = figure_spec_for(exp_id)
    if spec is None:
        return None
    kind, kwargs = spec
    try:
        if kind == "bar":
            return bar_chart_svg(table, **kwargs)
        return line_chart_svg(table, **kwargs)
    except (ValueError, KeyError):
        return None
