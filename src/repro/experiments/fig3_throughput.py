"""Figure 3: counting throughput (edges/ms), graphs ordered by max degree.

The paper's motivating observation for Sec. 3.5: the plain edge-iterator
kernel's throughput collapses on graphs whose maximum degree is orders of
magnitude above the rest, because an edge ``(u, v)`` with high-degree ``u``
drags a huge forward adjacency through every merge.  Misra-Gries is *off*
here — this figure motivates it; Fig. 5 then shows the cure.

Expected shape: the low-max-degree graphs (v1r, humanjung, livejournal,
orkut) sustain visibly higher edges/ms than the hub-dominated ones
(kronecker23/24, wikipedia).
"""

from __future__ import annotations

from ..core.api import PimTriangleCounter
from .common import DEFAULT_COLORS, ground_truth, paper_graph_order_by_max_degree
from .tables import Table

__all__ = ["run"]


def run(tier: str = "small", seed: int = 0, num_colors: int | None = None) -> Table:
    colors = num_colors or DEFAULT_COLORS[tier]
    table = Table(
        title=f"Figure 3 — throughput vs max degree (tier={tier}, C={colors})",
        headers=["Graph", "Max degree", "Edges/ms", "Count ms", "Exact?"],
        notes=(
            "Graphs ordered by max degree ascending; expect a throughput drop "
            "for the high-max-degree graphs on the right (paper Fig. 3)."
        ),
    )
    from ..graph.datasets import get_dataset
    from ..graph.stats import degree_stats

    counter = PimTriangleCounter(num_colors=colors, seed=seed)
    for name in paper_graph_order_by_max_degree(tier):
        graph = get_dataset(name, tier)
        max_deg, _ = degree_stats(graph)
        result = counter.count(graph)
        truth = ground_truth(name, tier)
        ok = result.count == truth
        table.add_row(
            name,
            max_deg,
            round(result.throughput_edges_per_ms(), 1),
            round(result.triangle_count_seconds * 1e3, 3),
            ok,
        )
    return table
