"""Render the imbalance ledger: text straggler report and per-DPU heatmap.

The text report is what ``repro-count --imbalance`` prints — skew statistics
per work dimension followed by the top-k straggler table, each straggler
attributed to its color triplet (the paper's N/3N/6N load class) and the
heaviest node of its stored sample, flagged when that node was Misra-Gries
remapped.  The SVG heatmap (``--imbalance-svg``) lays every work column over
the DPU axis so a straggler shows as a dark stripe in otherwise even rows.
"""

from __future__ import annotations

from .imbalance import SKEW_METRICS, ImbalanceLedger

__all__ = ["render_imbalance_report", "imbalance_heatmap_svg"]

#: Ledger columns drawn as heatmap rows, in display order.
_HEATMAP_ROWS: tuple[str, ...] = (
    "edges_routed",
    "merge_steps",
    "instructions",
    "mram_bytes",
    "insert_seconds",
    "count_seconds",
)


def render_imbalance_report(
    ledger: ImbalanceLedger, metric: str = "count_seconds", top_k: int = 5
) -> str:
    """The ``--imbalance`` text report: skew table + straggler attribution."""
    lines = [
        f"per-DPU load imbalance — {ledger.num_dpus} PIM cores, "
        f"C={ledger.num_colors}",
        "",
        f"{'metric':<16} {'max/mean':>9} {'p99/p50':>9} {'cv':>7} {'max':>12} {'mean':>12}",
    ]
    for name in SKEW_METRICS:
        s = ledger.skew(name)
        lines.append(
            f"{name:<16} {s.max_over_mean:>9.3f} {s.p99_over_p50:>9.3f} "
            f"{s.cv:>7.3f} {s.max:>12.4g} {s.mean:>12.4g}"
        )
    lines += [
        "",
        f"top {top_k} stragglers by {metric}:",
        f"{'dpu':>5} {'triplet':<12} {'cls':>3} {'value':>12} {'share':>7} "
        f"{'edges':>9} {'heavy node':>11} {'x':>5}  remapped",
    ]
    for row in ledger.stragglers(metric=metric, k=top_k):
        triplet = "(" + ",".join(str(c) for c in row["triplet"]) + ")"
        lines.append(
            f"{row['dpu']:>5} {triplet:<12} {row['distinct_colors']:>3} "
            f"{row['value']:>12.4g} {row['share'] * 100:>6.1f}% "
            f"{row['edges_routed']:>9} {row['heavy_node']:>11} "
            f"{row['heavy_node_multiplicity']:>5}  "
            f"{'yes' if row['heavy_node_remapped'] else 'no'}"
        )
    return "\n".join(lines)


def imbalance_heatmap_svg(ledger: ImbalanceLedger, title: str | None = None) -> str:
    """Per-DPU heatmap over the ledger's work columns (one row per metric).

    Reuses the experiments' SVG helpers so figure styling stays uniform
    across the repo's artifacts.
    """
    from ..experiments.svg import heatmap_svg

    skew = ledger.skew("count_seconds")
    return heatmap_svg(
        title or "Per-DPU work ledger",
        row_labels=list(_HEATMAP_ROWS),
        matrix=[ledger.column(m).tolist() for m in _HEATMAP_ROWS],
        subtitle=(
            f"{ledger.num_dpus} PIM cores, C={ledger.num_colors} — "
            f"count-time max/mean {skew.max_over_mean:.2f}, cv {skew.cv:.2f} "
            f"(each row shaded against its own max)"
        ),
        col_label="DPU id",
    )
