"""NDJSON structured event log for long-running counts (``--log-json``).

One JSON object per line, written and flushed as the run progresses so a
long count can be tailed (``tail -f run.ndjson | jq .``) or shipped to a log
aggregator.  Every line carries the same ``run_id`` that the CLI stamps into
the :class:`~repro.telemetry.export.RunReport`, so logs join to reports by
equality on that field.

Event vocabulary (the ``event`` field):

* ``run_start`` — graph name/size and the run configuration;
* ``span_start`` / ``span_end`` — one pair per telemetry span, including
  the paper's three phases (``path`` of depth 1) and, on the batched-ingest
  path, the per-chunk ``batch[k]`` spans (batch progress);
* ``estimate`` — the final triangle estimate with the phase ledger;
* ``run_end`` — exit status and total wall seconds.

Timestamps (``ts``) are wall-clock seconds since the Unix epoch; ``sim``
fields are simulated seconds from the cost model.  The logger only ever
*observes* — it is fed by the telemetry span hooks and writes no simulated
state, so enabling it cannot change any simulated number.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from typing import IO, Any

__all__ = ["NdjsonLogger", "new_run_id"]


def new_run_id() -> str:
    """A fresh opaque run identifier (joins NDJSON lines to the RunReport)."""
    return uuid.uuid4().hex


class NdjsonLogger:
    """Append-only NDJSON event writer bound to one ``run_id``.

    Usable as a context manager; every :meth:`event` call writes one line and
    flushes, so consumers see events as they happen rather than at close.
    """

    def __init__(self, path: str | os.PathLike, run_id: str | None = None) -> None:
        self.path = os.fspath(path)
        self.run_id = run_id or new_run_id()
        self._fh: IO[str] | None = open(self.path, "w")
        self.lines_written = 0

    # ------------------------------------------------------------------ events
    def event(self, event: str, **fields: Any) -> None:
        """Write one event line: ``{"ts": ..., "run_id": ..., "event": ...}``."""
        if self._fh is None:
            return
        record = {"ts": time.time(), "run_id": self.run_id, "event": event}
        record.update(fields)
        self._fh.write(json.dumps(record, sort_keys=True, default=_jsonify) + "\n")
        self._fh.flush()
        self.lines_written += 1

    def span_hook(self, kind: str, path: str, **fields: Any) -> None:
        """Adapter matching :attr:`repro.telemetry.spans.Telemetry.log_sink`.

        ``kind`` is ``"start"`` or ``"end"``; ``fields`` carry the span's
        wall/simulated durations on ``end``.
        """
        self.event(f"span_{kind}", path=path, **fields)

    # ------------------------------------------------------------------- close
    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "NdjsonLogger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _jsonify(value: Any):
    """Fallback serializer: NumPy scalars/arrays -> plain Python."""
    if hasattr(value, "item"):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    return str(value)
