"""NDJSON structured event log for long-running counts (``--log-json``).

One JSON object per line, written and flushed as the run progresses so a
long count can be tailed (``tail -f run.ndjson | jq .``) or shipped to a log
aggregator.  Every line carries the same ``run_id`` that the CLI stamps into
the :class:`~repro.telemetry.export.RunReport`, so logs join to reports by
equality on that field.

Event vocabulary (the ``event`` field):

* ``run_start`` — graph name/size and the run configuration;
* ``span_start`` / ``span_end`` — one pair per telemetry span, including
  the paper's three phases (``path`` of depth 1) and, on the batched-ingest
  path, the per-chunk ``batch[k]`` spans (batch progress);
* ``heartbeat`` — live progress of the batched ingest loop (chunk index,
  edges streamed/kept, peak routed bytes, and the ETA extrapolated from the
  :class:`~repro.core.ingest.DoubleBufferSchedule` recurrence);
* ``estimate`` — the final triangle estimate with the phase ledger;
* ``run_end`` — terminal event carrying the exit ``status`` (``"ok"`` or
  ``"error"`` with the exception type/message).  Streams are
  **join-complete**: the CLI emits ``run_end`` even when the pipeline
  raises, so consumers (``repro-watch``, the history ingester) can
  distinguish a crashed run from one still in flight by this line's
  presence alone (:func:`stream_status`).

Timestamps (``ts``) are wall-clock seconds since the Unix epoch; ``sim``
fields are simulated seconds from the cost model.  The logger only ever
*observes* — it is fed by the telemetry span hooks and writes no simulated
state, so enabling it cannot change any simulated number.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from typing import IO, Any

__all__ = [
    "NDJSON_EVENT_FIELDS",
    "NdjsonLogger",
    "NdjsonTailer",
    "load_ndjson",
    "new_run_id",
    "stream_status",
    "validate_ndjson_events",
]


def new_run_id() -> str:
    """A fresh opaque run identifier (joins NDJSON lines to the RunReport)."""
    return uuid.uuid4().hex


class NdjsonLogger:
    """Append-only NDJSON event writer bound to one ``run_id``.

    Usable as a context manager; every :meth:`event` call writes one line and
    flushes, so consumers see events as they happen rather than at close.
    """

    def __init__(self, path: str | os.PathLike, run_id: str | None = None) -> None:
        self.path = os.fspath(path)
        self.run_id = run_id or new_run_id()
        self._fh: IO[str] | None = open(self.path, "w")
        self.lines_written = 0

    # ------------------------------------------------------------------ events
    def event(self, event: str, **fields: Any) -> None:
        """Write one event line: ``{"ts": ..., "run_id": ..., "event": ...}``."""
        if self._fh is None:
            return
        record = {"ts": time.time(), "run_id": self.run_id, "event": event}
        record.update(fields)
        self._fh.write(json.dumps(record, sort_keys=True, default=_jsonify) + "\n")
        self._fh.flush()
        self.lines_written += 1

    def span_hook(self, kind: str, path: str, **fields: Any) -> None:
        """Adapter matching :attr:`repro.telemetry.spans.Telemetry.log_sink`.

        ``kind`` is ``"start"`` or ``"end"``; ``fields`` carry the span's
        wall/simulated durations on ``end``.
        """
        self.event(f"span_{kind}", path=path, **fields)

    # ------------------------------------------------------------------- close
    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "NdjsonLogger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _jsonify(value: Any):
    """Fallback serializer: NumPy scalars/arrays -> plain Python."""
    if hasattr(value, "item"):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    return str(value)


# ------------------------------------------------------------- event schema
#: Required fields per event type, beyond the envelope every line carries
#: (``ts``, ``run_id``, ``event``).  This is the NDJSON analogue of
#: :func:`repro.telemetry.export.validate_run_report` — dependency-free and
#: strict about the vocabulary, so external consumers (and ``repro-watch``)
#: can reject malformed or foreign streams.
NDJSON_EVENT_FIELDS: dict[str, tuple[str, ...]] = {
    "run_start": ("graph",),
    "span_start": ("path",),
    "span_end": ("path", "wall_seconds", "sim_seconds"),
    "heartbeat": (
        "batch",
        "batches_total",
        "edges_streamed",
        "peak_routed_bytes",
        "eta_sim_seconds",
    ),
    "estimate": ("estimate",),
    "run_end": ("status",),
}


def load_ndjson(path: str | os.PathLike) -> list[dict]:
    """Parse an NDJSON file into records, tolerating a partial final line.

    A stream being tailed mid-run may end in a half-written line; that line
    (and only that line) is skipped.  A malformed line elsewhere raises —
    the file is corrupt, not in flight.
    """
    records: list[dict] = []
    with open(os.fspath(path)) as fh:
        lines = fh.read().splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # in-flight partial write
            raise
    return records


class NdjsonTailer:
    """Incremental NDJSON reader that is safe to race a live writer.

    ``repro-watch --follow`` used to re-read the whole file each poll and
    feed every byte to the line parser; a poll landing *mid-append* could
    then see — and misparse — the half-written tail of a line the writer had
    not finished flushing.  The tailer closes that race by construction:

    * it consumes the file **incrementally** from a remembered offset and
      only ever parses lines terminated by ``\\n`` — a partial tail stays in
      an internal byte buffer until the writer completes it;
    * **truncation** (the file shrank under us — a writer restarted with
      ``open(..., "w")``) and **rotation** (the path now names a different
      inode) are detected per poll; the tailer restarts from offset 0 and
      counts the event in :attr:`restarts` rather than mixing two streams'
      bytes;
    * a *complete* line that still fails to parse is corruption, not an
      in-flight write, and raises — same contract as :func:`load_ndjson`.

    :meth:`poll` returns the newly completed records; :attr:`records`
    accumulates every record of the current stream incarnation (what
    :func:`stream_status`/render want).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self.records: list[dict] = []
        #: Truncation/rotation events survived (stream restarted each time).
        self.restarts = 0
        self._offset = 0
        self._buffer = b""
        self._inode: int | None = None

    def _restart(self) -> None:
        self.restarts += 1
        self.records = []
        self._offset = 0
        self._buffer = b""

    def poll(self) -> list[dict]:
        """Read newly completed lines; returns just the new records."""
        try:
            stat = os.stat(self.path)
        except FileNotFoundError:
            if self._inode is not None:
                self._restart()
                self._inode = None
            return []
        if self._inode is not None and stat.st_ino != self._inode:
            self._restart()  # rotated: a different file now holds the path
        elif stat.st_size < self._offset:
            self._restart()  # truncated: the writer started over
        self._inode = stat.st_ino
        with open(self.path, "rb") as fh:
            fh.seek(self._offset)
            data = fh.read()
            self._offset = fh.tell()
        self._buffer += data
        new: list[dict] = []
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                break  # incomplete tail: keep buffering until the writer flushes
            line, self._buffer = self._buffer[:newline], self._buffer[newline + 1:]
            if line.strip():
                new.append(json.loads(line.decode("utf-8")))
        self.records.extend(new)
        return new


def validate_ndjson_events(records: list[dict]) -> list[str]:
    """Structural check of an NDJSON event stream; one error per violation.

    Checks the envelope (``ts``/``run_id``/``event``), the per-event
    required fields of :data:`NDJSON_EVENT_FIELDS`, that every line shares
    one ``run_id``, and that nothing follows the terminal ``run_end``.
    An *absent* ``run_end`` is not an error — the stream may be in flight;
    use :func:`stream_status` to distinguish.
    """
    errors: list[str] = []
    run_ids = set()
    ended_at: int | None = None
    for i, record in enumerate(records):
        where = f"line {i + 1}"
        if not isinstance(record, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        if not isinstance(record.get("ts"), (int, float)):
            errors.append(f"{where}: missing numeric 'ts'")
        if not isinstance(record.get("run_id"), str):
            errors.append(f"{where}: missing string 'run_id'")
        else:
            run_ids.add(record["run_id"])
        event = record.get("event")
        if not isinstance(event, str):
            errors.append(f"{where}: missing string 'event'")
            continue
        if event not in NDJSON_EVENT_FIELDS:
            errors.append(f"{where}: unknown event {event!r}")
            continue
        for field in NDJSON_EVENT_FIELDS[event]:
            if field not in record:
                errors.append(f"{where}: {event} missing {field!r}")
        if ended_at is not None:
            errors.append(
                f"{where}: event after terminal run_end (line {ended_at + 1})"
            )
        if event == "run_end":
            ended_at = i
    if len(run_ids) > 1:
        errors.append(f"stream mixes {len(run_ids)} run_ids: {sorted(run_ids)}")
    return errors


def stream_status(records: list[dict]) -> str:
    """Terminal status of a stream: ``ok`` / ``error`` / ``in-flight`` / ``empty``.

    Join-completeness is what makes this decidable: every run writes a
    terminal ``run_end`` carrying its exit status — including the exception
    path out of :class:`~repro.core.host.PimTcPipeline` — so a stream
    without one is *still running* (or was killed hard), never silently
    finished.
    """
    if not records:
        return "empty"
    for record in reversed(records):
        if isinstance(record, dict) and record.get("event") == "run_end":
            status = record.get("status")
            return "ok" if status == "ok" else "error"
    return "in-flight"
