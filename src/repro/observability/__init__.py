"""Observability: per-DPU load-imbalance analysis and structured run logs.

The telemetry layer (:mod:`repro.telemetry`) records *what a run did*; this
package turns those recordings into the paper's central diagnosis — which
PIM cores are **stragglers**, why (which color triplet, which hub node), and
whether the Misra-Gries remap (Sec. 3.5) actually flattened the skew:

* :mod:`repro.observability.imbalance` — the per-DPU work ledger
  (:class:`ImbalanceLedger`) harvested from a finished run, plus
  :func:`skew_stats` (max/mean, p99/p50, CV) over any work column;
* :mod:`repro.observability.report` — the ``repro-count --imbalance`` text
  straggler report and the per-DPU SVG heatmap;
* :mod:`repro.observability.logjson` — NDJSON structured event logs
  (``repro-count --log-json``) carrying a ``run_id`` that joins log lines
  to the matching :class:`~repro.telemetry.export.RunReport`; streams are
  join-complete (terminal ``run_end`` with exit status, even on crash) and
  carry live ``heartbeat`` batch-progress events;
* :mod:`repro.observability.watch` — the ``repro-watch`` live monitor that
  tails and renders one NDJSON stream;
* :mod:`repro.observability.history` — the append-only sqlite run-history
  store (``repro-history``) and the rolling-window trend regression
  detector that extends the bench gate from point diffs to trajectories;
* :mod:`repro.observability.validate` — the ``repro-validate`` schema
  checker over RunReport JSON and NDJSON artifacts;
* :mod:`repro.observability.promtext` — Prometheus text / JSON rendering of
  the service's ``repro-service-metrics/1`` snapshot (the ``metrics``
  protocol op, ``repro-serve --metrics-out``);
* :mod:`repro.observability.top` — the ``repro-top`` live dashboard over a
  running server (metrics op + NDJSON stream tails).

Collection is **observation only**: it reads uncharged simulator state and
never touches the :class:`~repro.pimsim.kernel.SimClock`, the
:class:`~repro.pimsim.trace.Trace`, or any non-volatile metric, so every
simulated number stays bit-identical with or without it (pinned by the
differential parity grid).
"""

from .imbalance import (
    SKEW_METRICS,
    ImbalanceLedger,
    SkewStats,
    collect_ledger,
    skew_stats,
)
from .history import RunHistory, detect_trends, flatten_numeric
from .logjson import (
    NDJSON_EVENT_FIELDS,
    NdjsonLogger,
    NdjsonTailer,
    load_ndjson,
    new_run_id,
    stream_status,
    validate_ndjson_events,
)
from .promtext import (
    SERVICE_METRICS_SCHEMA,
    parse_prometheus,
    render_prometheus,
    write_snapshot,
)
from .report import imbalance_heatmap_svg, render_imbalance_report
from .top import render_top
from .watch import heartbeat_cell, render_stream, summarize_stream

__all__ = [
    "ImbalanceLedger",
    "SkewStats",
    "SKEW_METRICS",
    "collect_ledger",
    "skew_stats",
    "render_imbalance_report",
    "imbalance_heatmap_svg",
    "NdjsonLogger",
    "NdjsonTailer",
    "NDJSON_EVENT_FIELDS",
    "new_run_id",
    "load_ndjson",
    "stream_status",
    "validate_ndjson_events",
    "render_stream",
    "summarize_stream",
    "RunHistory",
    "detect_trends",
    "flatten_numeric",
    "SERVICE_METRICS_SCHEMA",
    "parse_prometheus",
    "render_prometheus",
    "write_snapshot",
    "render_top",
    "heartbeat_cell",
]
