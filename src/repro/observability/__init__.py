"""Observability: per-DPU load-imbalance analysis and structured run logs.

The telemetry layer (:mod:`repro.telemetry`) records *what a run did*; this
package turns those recordings into the paper's central diagnosis — which
PIM cores are **stragglers**, why (which color triplet, which hub node), and
whether the Misra-Gries remap (Sec. 3.5) actually flattened the skew:

* :mod:`repro.observability.imbalance` — the per-DPU work ledger
  (:class:`ImbalanceLedger`) harvested from a finished run, plus
  :func:`skew_stats` (max/mean, p99/p50, CV) over any work column;
* :mod:`repro.observability.report` — the ``repro-count --imbalance`` text
  straggler report and the per-DPU SVG heatmap;
* :mod:`repro.observability.logjson` — NDJSON structured event logs
  (``repro-count --log-json``) carrying a ``run_id`` that joins log lines
  to the matching :class:`~repro.telemetry.export.RunReport`.

Collection is **observation only**: it reads uncharged simulator state and
never touches the :class:`~repro.pimsim.kernel.SimClock`, the
:class:`~repro.pimsim.trace.Trace`, or any non-volatile metric, so every
simulated number stays bit-identical with or without it (pinned by the
differential parity grid).
"""

from .imbalance import (
    SKEW_METRICS,
    ImbalanceLedger,
    SkewStats,
    collect_ledger,
    skew_stats,
)
from .logjson import NdjsonLogger, new_run_id
from .report import imbalance_heatmap_svg, render_imbalance_report

__all__ = [
    "ImbalanceLedger",
    "SkewStats",
    "SKEW_METRICS",
    "collect_ledger",
    "skew_stats",
    "render_imbalance_report",
    "imbalance_heatmap_svg",
    "NdjsonLogger",
    "new_run_id",
]
