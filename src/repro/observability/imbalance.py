"""Per-DPU work ledger and skew statistics (the paper's load-imbalance story).

The paper's central performance observation (Sec. 4.3, Fig. 5) is that a
handful of *straggler* PIM cores — the ones whose samples contain the
high-degree nodes — dominate the Triangle Count phase until the Misra-Gries
remap (Sec. 3.5) empties those nodes' forward adjacency lists.  This module
turns the quantities the simulator already tracks into that diagnosis:

* :class:`ImbalanceLedger` — one column per work dimension (edges routed,
  merge/intersection steps, MRAM bytes, host<->core transfer bytes,
  simulated seconds per phase), one row per DPU, keyed by the DPU's color
  triplet;
* :func:`skew_stats` — max/mean, p99/p50, and coefficient of variation of
  any per-DPU vector (the numbers a regression gate can hold steady);
* :meth:`ImbalanceLedger.stragglers` — the top-k table attributing each
  straggler to its triplet and its heaviest sampled node, flagged when that
  node sits in the Misra-Gries remap table.

**Observation only.**  :func:`collect_ledger` reads DPU state through
uncharged paths (``mram.load(count_read=False)``, the lifetime charge
ledgers) and never touches the :class:`~repro.pimsim.kernel.SimClock` or the
:class:`~repro.pimsim.trace.Trace` — collection is invisible to every
simulated number, which the differential parity tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..coloring.triplets import TripletTable
from ..pimsim.system import DpuSet

__all__ = ["ImbalanceLedger", "SkewStats", "skew_stats", "collect_ledger"]

#: Ledger columns eligible for skew statistics, in report order.
SKEW_METRICS: tuple[str, ...] = (
    "edges_routed",
    "merge_steps",
    "mram_bytes",
    "count_seconds",
    "insert_seconds",
    "instructions",
)


@dataclass(frozen=True)
class SkewStats:
    """Skew summary of one per-DPU work vector."""

    max: float
    mean: float
    max_over_mean: float
    p50: float
    p99: float
    p99_over_p50: float
    #: Coefficient of variation: population std / mean (0 = perfectly even).
    cv: float

    def to_dict(self) -> dict:
        return {
            "max": self.max,
            "mean": self.mean,
            "max_over_mean": self.max_over_mean,
            "p50": self.p50,
            "p99": self.p99,
            "p99_over_p50": self.p99_over_p50,
            "cv": self.cv,
        }


def skew_stats(values: np.ndarray) -> SkewStats:
    """Skew statistics of a per-DPU work vector.

    Ratios are defined as 1.0 (no skew) when the denominator is zero, so an
    all-idle phase reads as perfectly balanced rather than dividing by zero.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return SkewStats(0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0)
    vmax = float(arr.max())
    mean = float(arr.mean())
    p50 = float(np.percentile(arr, 50))
    p99 = float(np.percentile(arr, 99))
    return SkewStats(
        max=vmax,
        mean=mean,
        max_over_mean=vmax / mean if mean > 0 else 1.0,
        p50=p50,
        p99=p99,
        p99_over_p50=p99 / p50 if p50 > 0 else 1.0,
        cv=float(arr.std() / mean) if mean > 0 else 0.0,
    )


@dataclass
class ImbalanceLedger:
    """Columnar per-DPU work record of one pipeline run.

    Every column has one entry per allocated PIM core (row index = DPU id).
    All values are engine-invariant (derived from charge ledgers, partition
    counts and simulated seconds), so the ledger — like the metrics
    snapshot — is bit-identical across the serial/thread/process engines.
    """

    num_colors: int
    #: ``(D, 3)`` color triplet per core (row index = DPU id).
    triplets: np.ndarray
    #: Distinct colors per triplet (1/2/3 — the paper's N/3N/6N load classes).
    kinds: np.ndarray
    edges_routed: np.ndarray
    #: Edges actually resident in the core's MRAM sample (post-reservoir).
    edges_stored: np.ndarray
    #: Merge/intersection steps charged by the counting kernel.
    merge_steps: np.ndarray
    #: Instructions charged over the core's lifetime (insert + count).
    instructions: np.ndarray
    #: MRAM DMA bytes moved over the core's lifetime.
    mram_bytes: np.ndarray
    #: Host<->core transfer payload bytes attributed to the core.
    xfer_bytes: np.ndarray
    #: Simulated seconds of the core's sample-insert work.
    insert_seconds: np.ndarray
    #: Simulated seconds of the core's counting-kernel execution.
    count_seconds: np.ndarray
    #: Most frequent node in the core's stored sample (-1 when empty).
    heavy_nodes: np.ndarray
    #: Occurrences of that node among the stored sample's endpoints.
    heavy_node_multiplicity: np.ndarray
    #: Whether that node sits in the broadcast Misra-Gries remap table.
    heavy_node_remapped: np.ndarray
    meta: dict = field(default_factory=dict)

    @property
    def num_dpus(self) -> int:
        return int(self.edges_routed.size)

    def column(self, metric: str) -> np.ndarray:
        if metric not in SKEW_METRICS:
            raise KeyError(f"unknown imbalance metric {metric!r}; one of {SKEW_METRICS}")
        return getattr(self, metric)

    def skew(self, metric: str = "count_seconds") -> SkewStats:
        """Skew statistics of one work column."""
        return skew_stats(self.column(metric))

    def triplet_of(self, dpu: int) -> tuple[int, int, int]:
        i, j, k = self.triplets[dpu].tolist()
        return (i, j, k)

    def stragglers(self, metric: str = "count_seconds", k: int = 5) -> list[dict]:
        """Top-``k`` cores by one work column, heaviest first.

        Each row attributes the straggler: its color triplet (and load
        class), its share of the system-wide total, and the heaviest node of
        its stored sample with the remapped flag — the paper's diagnosis of
        *why* that core is slow.
        """
        values = self.column(metric).astype(np.float64)
        order = np.argsort(-values, kind="stable")[: max(0, int(k))]
        total = float(values.sum())
        rows = []
        for d in order.tolist():
            rows.append(
                {
                    "dpu": int(d),
                    "triplet": list(self.triplet_of(d)),
                    "distinct_colors": int(self.kinds[d]),
                    "metric": metric,
                    "value": float(values[d]),
                    "share": float(values[d] / total) if total > 0 else 0.0,
                    "edges_routed": int(self.edges_routed[d]),
                    "merge_steps": int(self.merge_steps[d]),
                    "heavy_node": int(self.heavy_nodes[d]),
                    "heavy_node_multiplicity": int(self.heavy_node_multiplicity[d]),
                    "heavy_node_remapped": bool(self.heavy_node_remapped[d]),
                }
            )
        return rows

    def to_dict(self, top_k: int = 8) -> dict:
        """JSON form: the run report's ``imbalance`` section."""
        return {
            "num_dpus": self.num_dpus,
            "num_colors": int(self.num_colors),
            "skew": {m: self.skew(m).to_dict() for m in SKEW_METRICS},
            "stragglers": self.stragglers(k=top_k),
            "per_dpu": {
                "triplet": self.triplets.tolist(),
                "distinct_colors": self.kinds.tolist(),
                "edges_routed": self.edges_routed.tolist(),
                "edges_stored": self.edges_stored.tolist(),
                "merge_steps": self.merge_steps.tolist(),
                "instructions": self.instructions.tolist(),
                "mram_bytes": self.mram_bytes.tolist(),
                "xfer_bytes": self.xfer_bytes.tolist(),
                "insert_seconds": self.insert_seconds.tolist(),
                "count_seconds": self.count_seconds.tolist(),
                "heavy_node": self.heavy_nodes.tolist(),
                "heavy_node_multiplicity": self.heavy_node_multiplicity.tolist(),
                "heavy_node_remapped": self.heavy_node_remapped.tolist(),
            },
            "meta": dict(self.meta),
        }


def _heaviest_node(src: np.ndarray, dst: np.ndarray) -> tuple[int, int]:
    """Most frequent endpoint of one core's stored sample (node, multiplicity).

    Ties break toward the smallest node ID (``np.unique`` returns sorted
    nodes and ``argmax`` takes the first maximum), keeping the ledger
    deterministic.
    """
    if src.size == 0:
        return -1, 0
    nodes, counts = np.unique(np.concatenate([src, dst]), return_counts=True)
    best = int(np.argmax(counts))
    return int(nodes[best]), int(counts[best])


def collect_ledger(
    dpus: DpuSet,
    table: TripletTable,
    *,
    edges_routed: np.ndarray,
    seen: np.ndarray,
    capacity: int,
    insert_seconds: np.ndarray | None = None,
    remap_nodes: np.ndarray | None = None,
    dpu_of_triplet: np.ndarray | None = None,
) -> ImbalanceLedger:
    """Harvest the per-DPU work ledger from a finished (not yet freed) run.

    Must run after the counting launch and before ``dpus.free()``.  Reads
    only uncharged state — MRAM symbols via ``count_read=False``, the
    per-launch and lifetime charge ledgers, and the DpuSet's transfer-byte
    ledger — so harvesting adds no simulated time, no trace events, and no
    metric updates.

    ``dpu_of_triplet`` (triplet -> physical core, from between-batch
    rebalancing) keeps rows core-indexed: triplet labels and triplet-ordered
    inputs (``edges_routed``, ``seen``) are scattered onto the cores that
    actually hold them, so every row still describes one physical core.
    """
    d = len(dpus.dpus)
    merge_steps = np.zeros(d, dtype=np.int64)
    count_seconds = np.zeros(d, dtype=np.float64)
    instructions = np.zeros(d, dtype=np.float64)
    mram_bytes = np.zeros(d, dtype=np.int64)
    heavy = np.full(d, -1, dtype=np.int64)
    heavy_mult = np.zeros(d, dtype=np.int64)
    heavy_remapped = np.zeros(d, dtype=bool)
    remap_set = (
        set(np.asarray(remap_nodes).tolist()) if remap_nodes is not None else set()
    )
    for i, dpu in enumerate(dpus.dpus):
        # The per-launch ledger still holds the counting kernel's charges
        # (nothing resets them between the launch and the harvest).
        count_seconds[i] = dpu.compute_seconds()
        instructions[i] = float(dpu.lifetime_instructions)
        mram_bytes[i] = int(dpu.lifetime_dma_bytes)
        if dpu.mram.has("kernel_stats"):
            stats = dpu.mram.load("kernel_stats", count_read=False)
            if stats.size >= 3:
                merge_steps[i] = int(stats[2])
        if dpu.mram.has("sample_src"):
            s = dpu.mram.load("sample_src", count_read=False)
            t = dpu.mram.load("sample_dst", count_read=False)
            heavy[i], heavy_mult[i] = _heaviest_node(s, t)
            heavy_remapped[i] = heavy[i] in remap_set
    xfer = (
        dpus.dpu_xfer_bytes.copy()
        if dpus.dpu_xfer_bytes is not None
        else np.zeros(d, dtype=np.int64)
    )
    seen = np.asarray(seen, dtype=np.int64)
    triplets = table.triplets.copy()
    kinds = table.kind.copy()
    routed = np.asarray(edges_routed, dtype=np.int64).copy()
    stored = np.minimum(seen, int(capacity))
    if dpu_of_triplet is not None:
        perm = np.asarray(dpu_of_triplet, dtype=np.int64)
        triplets = np.empty_like(triplets)
        triplets[perm] = table.triplets
        kinds = np.empty_like(kinds)
        kinds[perm] = table.kind
        routed = np.zeros(d, dtype=np.int64)
        routed[perm] = np.asarray(edges_routed, dtype=np.int64)
        stored_in = stored
        stored = np.zeros(d, dtype=np.int64)
        stored[perm] = stored_in
    return ImbalanceLedger(
        num_colors=table.num_colors,
        triplets=triplets,
        kinds=kinds,
        edges_routed=routed,
        edges_stored=stored,
        merge_steps=merge_steps,
        instructions=instructions,
        mram_bytes=mram_bytes,
        xfer_bytes=xfer,
        insert_seconds=(
            np.asarray(insert_seconds, dtype=np.float64).copy()
            if insert_seconds is not None
            else np.zeros(d, dtype=np.float64)
        ),
        count_seconds=count_seconds,
        heavy_nodes=heavy,
        heavy_node_multiplicity=heavy_mult,
        heavy_node_remapped=heavy_remapped,
        meta={"reservoir_capacity": int(capacity)},
    )
