"""``repro-top`` — live terminal dashboard over a running ``repro-serve``.

Polls the service's ``metrics`` protocol op and renders the server-wide
header (uptime, open sessions, request and rejection totals) plus one table
row per session: pending queue depth, resident bytes, executed ops, p50/p99
op latency (combined across the per-op histograms in the snapshot), and —
when ``--event-dir`` points at the server's NDJSON directory — the last
heartbeat / ETA of each session's event stream, tailed incrementally with
:class:`~repro.observability.logjson.NdjsonTailer` (safe to race the
writer).

Scraping is observation-only by construction: the ``metrics`` op reads
instrument snapshots and never touches a counter, so watching a server
cannot change any simulated number.

Usage::

    repro-top 127.0.0.1:7707                      # refresh every 2s, ^C quits
    repro-top 127.0.0.1:7707 --event-dir events/  # + per-session heartbeats
    repro-top 127.0.0.1:7707 --once               # single snapshot (CI)
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from ..telemetry.metrics import quantile_from_snapshot
from .logjson import NdjsonTailer
from .watch import heartbeat_cell, summarize_stream

__all__ = ["main", "render_top"]

_CLEAR = "\x1b[H\x1b[2J"


def _combined_latency(metrics: dict, prefix: str) -> dict | None:
    """Merge the per-op latency histograms into one synthetic snapshot.

    All latency histograms share the same fixed buckets, so their counts add
    elementwise — the only sound way to get a session-wide p50/p99 without a
    dedicated all-ops histogram.
    """
    combined: dict | None = None
    for name, entry in (metrics or {}).items():
        if not name.startswith(prefix):
            continue
        if entry.get("kind") != "histogram" or not entry.get("count"):
            continue
        if combined is None:
            combined = {
                "buckets": list(entry["buckets"]),
                "counts": list(entry["counts"]),
                "sum": float(entry["sum"]),
                "count": int(entry["count"]),
                "min": entry.get("min"),
                "max": entry.get("max"),
            }
            continue
        combined["counts"] = [
            a + b for a, b in zip(combined["counts"], entry["counts"])
        ]
        combined["sum"] += float(entry["sum"])
        combined["count"] += int(entry["count"])
        for key, pick in (("min", min), ("max", max)):
            if entry.get(key) is not None:
                combined[key] = (
                    entry[key]
                    if combined[key] is None
                    else pick(combined[key], entry[key])
                )
    return combined


def _counter_totals(metrics: dict, prefix: str) -> dict[str, float]:
    """``{leaf: value}`` of every counter under a dotted prefix."""
    out: dict[str, float] = {}
    for name, entry in (metrics or {}).items():
        if name.startswith(prefix) and entry.get("kind") == "counter":
            out[name[len(prefix):]] = float(entry.get("value", 0.0))
    return out


def _ms(seconds: float | None) -> str:
    return "-" if seconds is None else f"{seconds * 1e3:.2f}"


def render_top(
    doc: dict,
    streams: dict[str, list[dict]] | None = None,
    now: float | None = None,
) -> str:
    """The dashboard body for one ``metrics`` snapshot (pure; unit-testable)."""
    streams = streams or {}
    service = doc.get("service") or {}
    requests = _counter_totals(service, "service.requests.")
    rejections = {
        code: int(v)
        for code, v in _counter_totals(service, "service.rejections.").items()
        if v
    }
    head = (
        f"repro-serve — up {float(doc.get('uptime_seconds', 0.0)):.0f}s  "
        f"sessions {doc.get('sessions_open', 0)}/{doc.get('max_sessions', '?')}  "
        f"requests {int(sum(requests.values()))}"
    )
    if rejections:
        head += "  rejections " + " ".join(
            f"{code}:{count}" for code, count in sorted(rejections.items())
        )
    lines = [head]
    if not doc.get("observability", True):
        lines.append("(observability plane disabled — no latency/trace data)")
    sessions = doc.get("sessions") or {}
    if not sessions:
        lines.append("(no open sessions)")
        return "\n".join(lines)
    header = (
        f"{'SESSION':<18} {'PENDING':>7} {'RESIDENT':>12} {'OPS':>6} "
        f"{'P50MS':>8} {'P99MS':>8}  HEARTBEAT"
    )
    lines.append(header)
    for name in sorted(sessions):
        block = sessions[name]
        metrics = block.get("metrics") or {}
        ops = int(sum(_counter_totals(metrics, "session.ops.").values()))
        combined = _combined_latency(metrics, "session.op_latency_seconds.")
        p50 = p99 = None
        if combined is not None:
            p50 = quantile_from_snapshot(combined, 0.50)
            p99 = quantile_from_snapshot(combined, 0.99)
        records = streams.get(name)
        cell = (
            heartbeat_cell(summarize_stream(records), now=now)
            if records
            else "-"
        )
        lines.append(
            f"{name:<18} {int(block.get('pending', 0)):>7} "
            f"{int(block.get('resident_bytes', 0)):>12,} {ops:>6} "
            f"{_ms(p50):>8} {_ms(p99):>8}  {cell}"
        )
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-top",
        description="Live dashboard over a running repro-serve: polls the "
        "metrics op and tails per-session NDJSON streams.",
    )
    parser.add_argument("url", help="server address (HOST:PORT or tcp://HOST:PORT)")
    parser.add_argument("--event-dir", default=None, metavar="DIR",
                        help="the server's --event-dir; adds per-session "
                             "heartbeat/ETA cells tailed from the NDJSON "
                             "streams")
    parser.add_argument("--interval", type=float, default=2.0, metavar="S",
                        help="refresh interval (default 2s)")
    parser.add_argument("--once", action="store_true",
                        help="print one snapshot and exit (CI mode)")
    parser.add_argument("--iterations", type=int, default=None, metavar="N",
                        help="exit after N refreshes (default: until ^C)")
    parser.add_argument("--timeout", type=float, default=10.0, metavar="S",
                        help="connect / per-request timeout (default 10s)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    # Imported here so repro.observability never drags the service package
    # (and its numpy-heavy session machinery) in at import time.
    from ..service.client import ServiceClient, ServiceError

    iterations = 1 if args.once else args.iterations
    tailers: dict[str, NdjsonTailer] = {}
    done = 0
    try:
        with ServiceClient(args.url, timeout=args.timeout) as client:
            while True:
                try:
                    doc = client.metrics()
                except ServiceError as exc:
                    print(f"repro-top: {exc}", file=sys.stderr)
                    return 1
                streams: dict[str, list[dict]] = {}
                if args.event_dir:
                    for name in doc.get("sessions") or {}:
                        if name not in tailers:
                            tailers[name] = NdjsonTailer(
                                os.path.join(args.event_dir, f"{name}.ndjson")
                            )
                    for name, tailer in tailers.items():
                        tailer.poll()
                        streams[name] = tailer.records
                body = render_top(doc, streams, now=time.time())
                if iterations == 1 or not sys.stdout.isatty():
                    print(body, flush=True)
                else:
                    print(_CLEAR + body, flush=True)
                done += 1
                if iterations is not None and done >= iterations:
                    return 0
                time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except (OSError, TimeoutError) as exc:
        print(f"repro-top: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
