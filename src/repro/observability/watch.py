"""``repro-watch`` — live terminal monitor for a run's NDJSON event stream.

A long chunked ingest (``repro-count … --batch-edges B --log-json run.ndjson``)
used to be a black box until it finished.  The batched ingest loop now emits
``heartbeat`` events (chunk index, edges streamed, peak routed bytes, and the
ETA extrapolated from the double-buffer recurrence), and this tool renders
them: point it at the NDJSON file of a running — or finished, or crashed —
run and it prints a progress view, optionally following the file like
``tail -f`` until the terminal ``run_end`` event lands.

Because streams are join-complete (every run writes ``run_end`` with its
exit status, even on the exception path), the watcher can tell a crashed
run (``run_end`` with ``status="error"``) from one still in flight (no
``run_end`` yet) without guessing from timestamps.

Usage::

    repro-watch run.ndjson                # one-shot summary
    repro-watch run.ndjson --follow       # poll until run_end (or --timeout)
"""

from __future__ import annotations

import argparse
import sys
import time

from .logjson import NdjsonTailer, load_ndjson, stream_status, validate_ndjson_events

__all__ = ["heartbeat_cell", "main", "render_stream", "summarize_stream"]


def summarize_stream(records: list[dict]) -> dict:
    """Fold an event stream into the latest-known view of the run."""
    view: dict = {
        "status": stream_status(records),
        "run_id": None,
        "graph": None,
        "num_edges": None,
        "heartbeat": None,
        "last_span": None,
        "spans_ended": 0,
        "estimates": [],
        "error": None,
        "last_ts": None,
        "first_ts": None,
    }
    for record in records:
        if not isinstance(record, dict):
            continue
        event = record.get("event")
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            view["last_ts"] = float(ts)
            if view["first_ts"] is None:
                view["first_ts"] = float(ts)
        if view["run_id"] is None and isinstance(record.get("run_id"), str):
            view["run_id"] = record["run_id"]
        if event == "run_start":
            view["graph"] = record.get("graph")
            view["num_edges"] = record.get("num_edges")
        elif event == "heartbeat":
            view["heartbeat"] = record
        elif event == "span_start":
            view["last_span"] = record.get("path")
        elif event == "span_end":
            view["spans_ended"] += 1
        elif event == "estimate":
            view["estimates"].append(record.get("estimate"))
        elif event == "run_end":
            if record.get("status") != "ok":
                view["error"] = record.get("error") or record.get("message")
    return view


def heartbeat_cell(view: dict, now: float | None = None) -> str:
    """One-cell heartbeat summary of a :func:`summarize_stream` view.

    The compact form the ``repro-top`` sessions table uses: batch progress,
    simulated-clock ETA, and (given ``now``) the age of the last event —
    or ``-`` when the stream has no heartbeat yet.
    """
    hb = view.get("heartbeat")
    if not hb:
        return "-"
    done = int(hb.get("batch", 0)) + 1
    total = int(hb.get("batches_total", done))
    eta = float(hb.get("eta_sim_seconds", 0.0))
    cell = f"batch {done}/{total} ETA {eta * 1e3:.2f}ms"
    if now is not None and view.get("last_ts") is not None:
        cell += f" ({max(0.0, now - view['last_ts']):.0f}s ago)"
    return cell


def _bar(done: int, total: int, width: int = 24) -> str:
    total = max(1, int(total))
    filled = round(width * min(int(done), total) / total)
    return "[" + "#" * filled + "." * (width - filled) + "]"


def render_stream(records: list[dict], now: float | None = None) -> str:
    """Multi-line progress view of one stream (the ``repro-watch`` body)."""
    view = summarize_stream(records)
    if view["status"] == "empty":
        return "(no events yet)"
    head = f"run {view['run_id'] or '<no id>'}"
    if view["graph"]:
        head += f" — {view['graph']}"
        if view["num_edges"] is not None:
            head += f" ({view['num_edges']} edges)"
    lines = [head]
    hb = view["heartbeat"]
    if hb is not None:
        done = int(hb.get("batch", 0)) + 1
        total = int(hb.get("batches_total", done))
        eta = float(hb.get("eta_sim_seconds", 0.0))
        lines.append(
            f"  {_bar(done, total)} batch {done}/{total}  "
            f"edges {hb.get('edges_streamed', '?')}/{hb.get('edges_total', '?')}  "
            f"peak routed {int(hb.get('peak_routed_bytes', 0)):,} B  "
            f"ETA {eta * 1e3:.3f}ms sim"
        )
    if view["last_span"] and view["status"] == "in-flight":
        lines.append(f"  in span: {view['last_span']}")
    for estimate in view["estimates"]:
        lines.append(f"  estimate: {estimate:g}")
    if view["status"] == "ok":
        lines.append(f"  status: completed ok ({view['spans_ended']} spans)")
    elif view["status"] == "error":
        lines.append(f"  status: CRASHED — {view['error'] or 'unknown error'}")
    else:
        age = ""
        if now is not None and view["last_ts"] is not None:
            age = f" (last event {max(0.0, now - view['last_ts']):.1f}s ago)"
        lines.append(f"  status: in flight{age}")
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-watch",
        description="Render (and optionally follow) a run's NDJSON event "
        "stream written by repro-count --log-json.",
    )
    parser.add_argument("path", help="NDJSON event log of one run")
    parser.add_argument("--follow", "-f", action="store_true",
                        help="poll the file until the terminal run_end event "
                             "(crashed runs end the watch too)")
    parser.add_argument("--interval", type=float, default=0.5, metavar="S",
                        help="polling interval with --follow (default 0.5s)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="give up following after S seconds (exit 2)")
    parser.add_argument("--validate", action="store_true",
                        help="also run the NDJSON event-schema check and "
                             "fail on violations")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if not args.follow:
        records = load_ndjson(args.path)
        if args.validate:
            errors = validate_ndjson_events(records)
            if errors:
                for error in errors:
                    print(f"invalid: {error}", file=sys.stderr)
                return 1
        print(render_stream(records, now=time.time()))
        return 0 if stream_status(records) != "error" else 1
    # Follow mode reads incrementally through the tailer: a poll racing the
    # writer mid-append buffers the incomplete final line instead of parsing
    # it, and a truncated/rotated file restarts the stream cleanly.
    deadline = None if args.timeout is None else time.monotonic() + args.timeout
    tailer = NdjsonTailer(args.path)
    while True:
        restarts_before = tailer.restarts
        tailer.poll()
        if tailer.restarts > restarts_before:
            print("stream restarted (file truncated or rotated)", file=sys.stderr)
        records = tailer.records
        if args.validate:
            errors = validate_ndjson_events(records)
            if errors:
                for error in errors:
                    print(f"invalid: {error}", file=sys.stderr)
                return 1
        status = stream_status(records)
        print(render_stream(records, now=time.time()))
        if status in ("ok", "error"):
            return 0 if status != "error" else 1
        if deadline is not None and time.monotonic() >= deadline:
            print("watch timed out before run_end", file=sys.stderr)
            return 2
        time.sleep(args.interval)


if __name__ == "__main__":
    sys.exit(main())
