"""``repro-validate`` — schema checks for run artifacts (reports + NDJSON).

One command validates everything a run can leave behind:

* ``*.json`` — :class:`~repro.telemetry.export.RunReport` documents, checked
  with :func:`~repro.telemetry.export.validate_run_report` (accepts schema
  v1 and v2);
* ``*.ndjson`` — NDJSON event streams, checked with
  :func:`~repro.observability.logjson.validate_ndjson_events` (envelope,
  event vocabulary, join-completeness ordering).

Accepts files and globs; exits non-zero if any input fails, printing one
line per violation — the shape CI wants::

    repro-validate report.json run.ndjson
    repro-validate 'artifacts/*.json' 'artifacts/*.ndjson'
    repro-validate run.ndjson --require-complete   # in-flight = failure
"""

from __future__ import annotations

import argparse
import glob as globlib
import json
import sys

from .logjson import load_ndjson, stream_status, validate_ndjson_events

__all__ = ["main", "validate_path"]


def validate_path(path: str, require_complete: bool = False) -> list[str]:
    """Validate one artifact file; returns error strings (empty == valid).

    Dispatch is by suffix: ``.ndjson`` streams get the event-schema check,
    everything else is parsed as a JSON document and checked as a
    :class:`RunReport`.  ``require_complete`` additionally rejects NDJSON
    streams with no terminal ``run_end`` (useful in CI, where an in-flight
    stream means the producing run died without its join-complete line).
    """
    if path.endswith(".ndjson"):
        try:
            records = load_ndjson(path)
        except (OSError, json.JSONDecodeError) as exc:
            return [f"unreadable NDJSON: {exc}"]
        errors = validate_ndjson_events(records)
        if require_complete and stream_status(records) in ("in-flight", "empty"):
            errors.append("stream has no terminal run_end event")
        return errors
    try:
        with open(path) as fh:
            document = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable JSON: {exc}"]
    from ..telemetry import validate_run_report

    return validate_run_report(document)


def _has_magic(pattern: str) -> bool:
    return any(ch in pattern for ch in "*?[")


def _expand(patterns: list[str]) -> tuple[list[str], list[str]]:
    """Expand globs; returns ``(paths, errors)``.

    A glob that matches nothing is an error, not a silent no-op — a CI line
    like ``repro-validate 'events/*.ndjson'`` must fail loudly when the run
    produced no streams instead of exiting 0 having validated nothing.
    Literal paths pass through and fail later as unreadable if missing.
    """
    paths: list[str] = []
    errors: list[str] = []
    for pattern in patterns:
        if _has_magic(pattern):
            matches = sorted(globlib.glob(pattern))
            if matches:
                paths.extend(matches)
            else:
                errors.append(f"glob {pattern!r} matched no files")
        else:
            paths.append(pattern)
    return paths, errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-validate",
        description="Validate RunReport JSON documents and NDJSON event "
        "streams against their schemas.",
    )
    parser.add_argument("paths", nargs="+",
                        help="artifact files or globs (.json reports, "
                             ".ndjson event streams)")
    parser.add_argument("--require-complete", action="store_true",
                        help="fail NDJSON streams that lack the terminal "
                             "run_end event (default: in-flight is valid)")
    parser.add_argument("--quiet", "-q", action="store_true",
                        help="print only failing files")
    args = parser.parse_args(argv)

    paths, expand_errors = _expand(args.paths)
    for error in expand_errors:
        print(f"FAIL {error}", file=sys.stderr)
    if not paths:
        print("no artifacts to validate", file=sys.stderr)
        return 2
    failed = 0
    for path in paths:
        errors = validate_path(path, require_complete=args.require_complete)
        if errors:
            failed += 1
            print(f"FAIL {path}")
            for error in errors:
                print(f"  {error}")
        elif not args.quiet:
            print(f"ok   {path}")
    if failed:
        print(f"{failed}/{len(paths)} artifacts invalid", file=sys.stderr)
    # An empty glob is fatal even when every expanded artifact validated.
    return 1 if (failed or expand_errors) else 0


if __name__ == "__main__":
    sys.exit(main())
