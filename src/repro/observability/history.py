"""Append-only run-history store and trajectory-based trend regression gate.

``tools/bench_diff.py`` (PR 5) compares one fresh benchmark artifact against
one committed baseline — a *point* diff.  The paper's evaluation, however, is
longitudinal: throughput and scaling tracked across graphs, DPU counts, and
kernel variants over many hardware runs.  This module gives the repro the
same longitudinal memory:

* :class:`RunHistory` — an append-only, stdlib-``sqlite3``-backed store that
  ingests :class:`~repro.telemetry.export.RunReport` documents
  (``repro-run-report/1`` and ``/2``) and every ``BENCH_*.json`` artifact
  (``repro-bench-*``) into queryable tables: one ``runs`` row per observed
  run, its per-phase simulated/wall seconds in ``phases``, and every numeric
  quantity (counts, clocks, throughput, imbalance skew columns, peak bytes)
  flattened into the ``samples`` table under a dotted metric name.  The raw
  source document is kept verbatim, so ingestion is lossless and
  round-trippable.
* :func:`detect_trends` — a rolling-window drift detector: for each
  ``(graph, metric)`` series it compares the latest sample against the
  **median of the previous N** samples, classifying drift with the same
  severity model as the point gate (simulated clocks / counts / skew ratios
  hard, wall-clock warn-only).  Until a series has accumulated ``min_runs``
  samples, hard verdicts are downgraded to warnings — a young history cannot
  brick CI.  This is what catches *slow* regressions: degree partitioning
  and MG remapping shift skew run-over-run in steps a 5% point diff never
  sees, while the median-of-window baseline does.
* ``repro-history`` — the CLI over the store: ``ingest`` / ``list`` /
  ``show`` / ``compare`` / ``trend``.

Everything here is observation-only by construction: the store consumes
finished artifacts (or :class:`RunReport` objects built *after* a run) and
never touches a pipeline, clock, or trace.
"""

from __future__ import annotations

import argparse
import glob as globlib
import json
import os
import re
import sqlite3
import statistics
import sys
import time
from dataclasses import dataclass
from typing import Any, Iterable

from ..telemetry.export import ACCEPTED_RUN_REPORT_SCHEMAS
from .promtext import SERVICE_METRICS_SCHEMA

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "TREND_RULES",
    "RunHistory",
    "TrendRule",
    "classify_metric",
    "detect_trends",
    "flatten_numeric",
    "render_trend_summary",
    "main",
]

#: Bumped when the table layout changes; stored in ``meta`` so a future
#: migration can detect old stores instead of mis-reading them.
HISTORY_SCHEMA_VERSION = 1

_TABLES = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id TEXT,
    schema TEXT NOT NULL,
    kind TEXT NOT NULL,
    graph TEXT NOT NULL,
    source TEXT NOT NULL DEFAULT '',
    ingested_at REAL NOT NULL,
    kernel TEXT,
    executor TEXT,
    partitioner TEXT,
    config TEXT NOT NULL DEFAULT '{}',
    document TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS phases (
    run_ref INTEGER NOT NULL REFERENCES runs(id),
    phase TEXT NOT NULL,
    sim_seconds REAL NOT NULL,
    wall_seconds REAL
);
CREATE TABLE IF NOT EXISTS samples (
    run_ref INTEGER NOT NULL REFERENCES runs(id),
    name TEXT NOT NULL,
    value REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_graph ON runs(graph, schema, id);
CREATE INDEX IF NOT EXISTS idx_samples_name ON samples(name, run_ref);
"""


# ------------------------------------------------------------------ flattening
def flatten_numeric(
    record: dict, prefix: str = "", skip: tuple[str, ...] = ("spans",)
) -> dict[str, float]:
    """Flatten every numeric leaf of ``record`` under dotted metric names.

    Booleans become 0.0/1.0 (so parity flags like ``counts_match`` are
    trendable as exact metrics); metric-registry entries
    (``{"kind": "counter", "value": ...}``) collapse to their value;
    histogram entries contribute their ``sum`` and ``count``; lists and
    the (huge, non-scalar) ``spans`` subtree are skipped.
    """
    out: dict[str, float] = {}
    for key, value in record.items():
        if key in skip:
            continue
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, bool):
            out[name] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            out[name] = float(value)
        elif isinstance(value, dict):
            kind = value.get("kind")
            if kind in ("counter", "gauge") and "value" in value:
                out[name] = float(value["value"])
            elif kind == "histogram" and "sum" in value and "count" in value:
                out[f"{name}.sum"] = float(value["sum"])
                out[f"{name}.count"] = float(value["count"])
            else:
                out.update(flatten_numeric(value, prefix=name, skip=skip))
    return out


def _phase_walls(spans: Any) -> dict[str, float]:
    """Per-phase wall seconds from a report's top-level spans (may be empty)."""
    if not isinstance(spans, dict):
        return {}
    walls: dict[str, float] = {}
    for node in spans.get("spans") or []:
        if isinstance(node, dict) and isinstance(
            node.get("wall_seconds"), (int, float)
        ):
            name = str(node.get("name", ""))
            walls[name] = walls.get(name, 0.0) + float(node["wall_seconds"])
    return walls


# ----------------------------------------------------------------------- store
class RunHistory:
    """Append-only sqlite-backed history of runs and benchmark records.

    Usable as a context manager.  ``path`` may be ``":memory:"`` for tests;
    real stores are single files safe to stash in a CI cache between runs.
    """

    def __init__(self, path: str | os.PathLike, busy_timeout: float = 30.0) -> None:
        self.path = os.fspath(path)
        self._db = sqlite3.connect(self.path, timeout=busy_timeout)
        # Parallel writers are now normal (service sessions appending run
        # reports, CI jobs sharing one cached store): WAL lets readers and a
        # writer coexist, and the busy timeout makes writer-vs-writer
        # contention a wait instead of an immediate "database is locked".
        self._db.execute(f"PRAGMA busy_timeout = {int(busy_timeout * 1000)}")
        if self.path != ":memory:":
            self._db.execute("PRAGMA journal_mode = WAL")
        self._db.executescript(_TABLES)
        self._db.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
            ("history_schema_version", str(HISTORY_SCHEMA_VERSION)),
        )
        self._db.commit()

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "RunHistory":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- ingestion
    def ingest(
        self,
        document: dict,
        source: str = "",
        ingested_at: float | None = None,
    ) -> list[int]:
        """Ingest one artifact; returns the new ``runs`` row ids.

        Dispatches on the document's ``schema`` tag: run reports become one
        row, ``BENCH_*`` artifacts one row per graph record.  Unknown
        schemas raise ``ValueError`` (the store never guesses at shapes).
        """
        schema = document.get("schema")
        stamp = time.time() if ingested_at is None else float(ingested_at)
        if schema in ACCEPTED_RUN_REPORT_SCHEMAS:
            return [self._ingest_report(document, schema, source, stamp)]
        if isinstance(schema, str) and schema.startswith("repro-bench-"):
            return self._ingest_bench(document, schema, source, stamp)
        if schema == SERVICE_METRICS_SCHEMA:
            return self._ingest_service(document, schema, source, stamp)
        raise ValueError(f"cannot ingest schema {schema!r}")

    def ingest_file(self, path: str, ingested_at: float | None = None) -> list[int]:
        with open(path) as fh:
            document = json.load(fh)
        return self.ingest(
            document, source=os.path.basename(path), ingested_at=ingested_at
        )

    def _insert_run(
        self,
        *,
        run_id: str | None,
        schema: str,
        kind: str,
        graph: str,
        source: str,
        stamp: float,
        kernel: str | None,
        executor: str | None,
        partitioner: str | None,
        config: dict,
        document: dict,
        phases: dict[str, float],
        phase_walls: dict[str, float],
        samples: dict[str, float],
    ) -> int:
        cur = self._db.execute(
            "INSERT INTO runs (run_id, schema, kind, graph, source, ingested_at,"
            " kernel, executor, partitioner, config, document)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                run_id, schema, kind, graph, source, stamp,
                kernel, executor, partitioner,
                json.dumps(config, sort_keys=True),
                json.dumps(document, sort_keys=True),
            ),
        )
        ref = int(cur.lastrowid)
        # Wall per phase is known for run reports (from the top-level spans);
        # bench records carry one whole-run wall number in samples instead.
        self._db.executemany(
            "INSERT INTO phases (run_ref, phase, sim_seconds, wall_seconds)"
            " VALUES (?, ?, ?, ?)",
            [
                (ref, phase, float(sim), phase_walls.get(phase))
                for phase, sim in sorted(phases.items())
            ],
        )
        self._db.executemany(
            "INSERT INTO samples (run_ref, name, value) VALUES (?, ?, ?)",
            [(ref, name, value) for name, value in sorted(samples.items())],
        )
        self._db.commit()
        return ref

    def _ingest_report(
        self, document: dict, schema: str, source: str, stamp: float
    ) -> int:
        result = document.get("result") or {}
        config = document.get("config") or {}
        graph = (document.get("graph") or {}).get("name") or "<unknown>"
        samples = flatten_numeric(result, prefix="result")
        samples.update(
            flatten_numeric(document.get("metrics") or {}, prefix="metrics")
        )
        imbalance = document.get("imbalance")
        if isinstance(imbalance, dict):
            samples.update(
                flatten_numeric(
                    imbalance.get("skew") or {}, prefix="imbalance.skew"
                )
            )
        phase_walls = _phase_walls(document.get("spans"))
        if phase_walls:
            samples["wall_seconds"] = sum(phase_walls.values())
        phases = {
            k: float(v)
            for k, v in (result.get("phases") or {}).items()
            if isinstance(v, (int, float))
        }
        meta = result.get("meta") or {}
        return self._insert_run(
            run_id=document.get("run_id"),
            schema=schema,
            kind="report",
            graph=graph,
            source=source,
            stamp=stamp,
            kernel=config.get("kernel"),
            executor=config.get("executor"),
            partitioner=meta.get("partitioner") or config.get("partitioner"),
            config=config,
            document=document,
            phases=phases,
            phase_walls=phase_walls,
            samples=samples,
        )

    def _ingest_bench(
        self, document: dict, schema: str, source: str, stamp: float
    ) -> list[int]:
        refs: list[int] = []
        config = {
            k: document[k] for k in ("tier", "seed", "colors") if k in document
        }
        for record in document.get("runs", []) or []:
            if not isinstance(record, dict):
                continue
            samples = flatten_numeric(record)
            phases = {
                k: float(v)
                for k, v in (record.get("phases") or {}).items()
                if isinstance(v, (int, float))
            }
            refs.append(
                self._insert_run(
                    run_id=None,
                    schema=schema,
                    kind="bench",
                    graph=str(record.get("graph", "<unknown>")),
                    source=source,
                    stamp=stamp,
                    kernel=None,
                    executor=None,
                    partitioner=None,
                    config=config,
                    document=record,
                    phases=phases,
                    phase_walls={},
                    samples=samples,
                )
            )
        return refs

    def _ingest_service(
        self, document: dict, schema: str, source: str, stamp: float
    ) -> list[int]:
        """One row for the server plus one per session block.

        Registry exports flatten exactly like run-report metrics (counters
        and gauges to their value, histograms to ``.sum``/``.count``); the
        precomputed ``latency`` summaries land as ``…latency.<op>.p50`` etc,
        which is what the service-latency trend rules gate.
        """
        samples = flatten_numeric(document.get("service") or {})
        samples.update(
            flatten_numeric(
                document.get("latency") or {}, prefix="service.latency"
            )
        )
        for key in ("uptime_seconds", "sessions_open", "max_sessions"):
            value = document.get(key)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                samples[f"service.{key}"] = float(value)
        refs = [
            self._insert_run(
                run_id=None,
                schema=schema,
                kind="service",
                graph="service",
                source=source,
                stamp=stamp,
                kernel=None,
                executor=None,
                partitioner=None,
                config={},
                document=document,
                phases={},
                phase_walls={},
                samples=samples,
            )
        ]
        for name, block in sorted((document.get("sessions") or {}).items()):
            if not isinstance(block, dict):
                continue
            session_samples = flatten_numeric(block.get("metrics") or {})
            session_samples.update(
                flatten_numeric(
                    block.get("latency") or {}, prefix="session.latency"
                )
            )
            for key in ("pending", "resident_bytes", "rounds"):
                value = block.get(key)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    session_samples[f"session.{key}"] = float(value)
            refs.append(
                self._insert_run(
                    run_id=None,
                    schema=schema,
                    kind="service-session",
                    graph=f"session:{name}",
                    source=source,
                    stamp=stamp,
                    kernel=None,
                    executor=None,
                    partitioner=None,
                    config={},
                    document=block,
                    phases={},
                    phase_walls={},
                    samples=session_samples,
                )
            )
        return refs

    # ---------------------------------------------------------------- queries
    def runs(
        self,
        graph: str | None = None,
        schema: str | None = None,
        limit: int | None = None,
    ) -> list[dict]:
        """Run rows (oldest first), optionally filtered by graph/schema."""
        query = (
            "SELECT id, run_id, schema, kind, graph, source, ingested_at,"
            " kernel, executor, partitioner FROM runs"
        )
        clauses, params = [], []
        if graph is not None:
            clauses.append("graph = ?")
            params.append(graph)
        if schema is not None:
            clauses.append("schema = ?")
            params.append(schema)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY id"
        rows = self._db.execute(query, params).fetchall()
        if limit is not None:
            rows = rows[-int(limit):]
        keys = (
            "id", "run_id", "schema", "kind", "graph", "source",
            "ingested_at", "kernel", "executor", "partitioner",
        )
        return [dict(zip(keys, row)) for row in rows]

    def run(self, ref: int) -> dict:
        """Full record of one run: row + phases + samples + source document."""
        row = self._db.execute(
            "SELECT id, run_id, schema, kind, graph, source, ingested_at,"
            " kernel, executor, partitioner, config, document"
            " FROM runs WHERE id = ?",
            (int(ref),),
        ).fetchone()
        if row is None:
            raise KeyError(f"no run with id {ref}")
        keys = (
            "id", "run_id", "schema", "kind", "graph", "source",
            "ingested_at", "kernel", "executor", "partitioner",
        )
        record = dict(zip(keys, row[:10]))
        record["config"] = json.loads(row[10])
        record["document"] = json.loads(row[11])
        record["phases"] = {
            phase: {"sim_seconds": sim, "wall_seconds": wall}
            for phase, sim, wall in self._db.execute(
                "SELECT phase, sim_seconds, wall_seconds FROM phases"
                " WHERE run_ref = ? ORDER BY phase",
                (int(ref),),
            )
        }
        record["samples"] = self.samples(ref)
        return record

    def samples(self, ref: int) -> dict[str, float]:
        """The flattened numeric metrics of one run."""
        return {
            name: value
            for name, value in self._db.execute(
                "SELECT name, value FROM samples WHERE run_ref = ? ORDER BY name",
                (int(ref),),
            )
        }

    def series(
        self, graph: str, metric: str, schema: str | None = None
    ) -> list[tuple[int, float]]:
        """``(run_ref, value)`` pairs of one metric over a graph's history."""
        query = (
            "SELECT s.run_ref, s.value FROM samples s JOIN runs r ON r.id ="
            " s.run_ref WHERE r.graph = ? AND s.name = ?"
        )
        params: list = [graph, metric]
        if schema is not None:
            query += " AND r.schema = ?"
            params.append(schema)
        query += " ORDER BY s.run_ref"
        return [(int(ref), float(v)) for ref, v in self._db.execute(query, params)]

    def graphs(self, schema: str | None = None) -> list[str]:
        query = "SELECT DISTINCT graph FROM runs"
        params: list = []
        if schema is not None:
            query += " WHERE schema = ?"
            params.append(schema)
        return [g for (g,) in self._db.execute(query + " ORDER BY graph", params)]

    def schemas(self) -> list[str]:
        return [
            s for (s,) in self._db.execute(
                "SELECT DISTINCT schema FROM runs ORDER BY schema"
            )
        ]

    def num_runs(self, graph: str | None = None, schema: str | None = None) -> int:
        query = "SELECT COUNT(*) FROM runs"
        clauses, params = [], []
        if graph is not None:
            clauses.append("graph = ?")
            params.append(graph)
        if schema is not None:
            clauses.append("schema = ?")
            params.append(schema)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        return int(self._db.execute(query, params).fetchone()[0])

    def compare(self, ref_a: int, ref_b: int) -> dict:
        """Metric-by-metric diff of two stored runs (shared metrics only)."""
        a, b = self.run(ref_a), self.run(ref_b)
        entries = []
        shared = sorted(set(a["samples"]) & set(b["samples"]))
        for name in shared:
            va, vb = a["samples"][name], b["samples"][name]
            rel = 0.0 if va == vb else (
                (vb - va) / abs(va) if va != 0 else float("inf")
            )
            entries.append(
                {"metric": name, "a": va, "b": vb, "rel_change": rel}
            )
        return {
            "a": {k: a[k] for k in ("id", "graph", "schema", "source")},
            "b": {k: b[k] for k in ("id", "graph", "schema", "source")},
            "entries": entries,
        }


# ----------------------------------------------------------------- trend gate
@dataclass(frozen=True)
class TrendRule:
    """Classification of one metric-name pattern for the trend detector."""

    pattern: re.Pattern
    #: "higher_worse" | "lower_worse" | "exact"
    direction: str
    #: "hard" fails the gate, "warn" only prints.
    severity: str


#: First match wins.  The same severity philosophy as ``tools/bench_diff.py``:
#: anything on the simulated clock (phases, seconds, skew ratios, peak bytes)
#: is engine-invariant and therefore hard; triangle counts and parity flags
#: are exact; wall-clock and speedup columns are honest timings and only
#: warn.  Metrics matching no rule are stored but not gated.
TREND_RULES: tuple[TrendRule, ...] = (
    # Service-latency series (repro-service-metrics/1) come first so the
    # generic exact rules below never claim them: every one is wall-derived
    # or depends on the op mix a smoke script happens to drive, so drift
    # only warns — same philosophy as wall_seconds.
    TrendRule(
        re.compile(
            r"(^|\.)(op_latency_seconds|op_sim_seconds|queue_wait_seconds"
            r"|requests|rejections|ops)\."
        ),
        "higher_worse",
        "warn",
    ),
    TrendRule(
        re.compile(r"(^|\.)latency\.[^.]+\.(n|mean|p50|p99)$"),
        "higher_worse",
        "warn",
    ),
    TrendRule(re.compile(r"(^|\.)counts_match"), "exact", "hard"),
    TrendRule(re.compile(r"(^|\.)simulated_identical$"), "exact", "hard"),
    TrendRule(re.compile(r"(^|\.)count(_monolithic|_batched)?$"), "exact", "hard"),
    TrendRule(re.compile(r"(^|\.)estimate$"), "exact", "hard"),
    TrendRule(re.compile(r"(^|\.)phases\."), "higher_worse", "hard"),
    TrendRule(re.compile(r"wall_seconds"), "higher_worse", "warn"),
    TrendRule(re.compile(r"(^|\.)speedup"), "lower_worse", "warn"),
    TrendRule(re.compile(r"throughput"), "lower_worse", "hard"),
    TrendRule(
        re.compile(r"(max_over_mean|p99_over_p50|\.cv)$"), "higher_worse", "hard"
    ),
    TrendRule(re.compile(r"(^|\.)load_balance$"), "higher_worse", "hard"),
    TrendRule(re.compile(r"peak_routed_bytes"), "higher_worse", "hard"),
    TrendRule(
        re.compile(r"(total|sample|sim)_seconds(_batched|_monolithic)?$"),
        "higher_worse",
        "hard",
    ),
    TrendRule(re.compile(r"kernel_(instructions|dma_\w+)$"), "higher_worse", "hard"),
    TrendRule(re.compile(r"overlap_saved_seconds"), "lower_worse", "warn"),
)


def classify_metric(name: str) -> TrendRule | None:
    """The first :data:`TREND_RULES` entry matching ``name`` (None: ungated)."""
    for rule in TREND_RULES:
        if rule.pattern.search(name):
            return rule
    return None


def detect_trends(
    history: RunHistory,
    graph: str | None = None,
    schema: str | None = None,
    window: int = 5,
    threshold: float = 0.05,
    min_runs: int = 5,
) -> dict:
    """Rolling-window drift check over every gated ``(graph, metric)`` series.

    For each series the latest sample is compared against the **median of
    the previous** ``window`` samples (fewer when the history is younger).
    Relative drift beyond ``threshold`` in the bad direction is a
    regression; for ``exact`` metrics any deviation from the median is.
    While a series holds fewer than ``min_runs`` samples, hard verdicts are
    downgraded to warnings — the gate stays warn-only until the history has
    accumulated enough runs to trust the median.

    Returns a ``repro-history-trend/1`` summary document mirroring the
    point-diff summary: ``entries`` (one per evaluated series), ``failures``,
    ``warnings``, and the overall ``failed`` flag.
    """
    entries: list[dict] = []
    failures: list[str] = []
    warnings: list[str] = []
    schemas = [schema] if schema is not None else history.schemas()
    for sch in schemas:
        for g in history.graphs(schema=sch):
            if graph is not None and g != graph:
                continue
            seen_metrics = sorted(
                {
                    name
                    for ref in (r["id"] for r in history.runs(graph=g, schema=sch))
                    for name in history.samples(ref)
                }
            )
            for metric in seen_metrics:
                rule = classify_metric(metric)
                if rule is None:
                    continue
                series = [v for _, v in history.series(g, metric, schema=sch)]
                if len(series) < 2:
                    continue
                latest = series[-1]
                baseline_window = series[max(0, len(series) - 1 - window):-1]
                median = statistics.median(baseline_window)
                if rule.direction == "exact":
                    drifted = latest != median
                    rel = 0.0 if not drifted else (
                        (latest - median) / abs(median) if median else float("inf")
                    )
                else:
                    rel = 0.0 if median == latest else (
                        (latest - median) / abs(median) if median else float("inf")
                    )
                    bad = rel if rule.direction == "higher_worse" else -rel
                    drifted = bad > threshold
                verdict = "ok"
                if drifted:
                    severity = rule.severity
                    if len(series) < min_runs:
                        severity = "warn"
                    verdict = "regression" if severity == "hard" else "warn"
                entry = {
                    "graph": g,
                    "schema": sch,
                    "metric": metric,
                    "runs": len(series),
                    "median": median,
                    "latest": latest,
                    "rel_change": rel,
                    "direction": rule.direction,
                    "severity": rule.severity,
                    "verdict": verdict,
                }
                entries.append(entry)
                line = (
                    f"{g}.{metric}: median({len(baseline_window)})="
                    f"{median:g} -> {latest:g} ({rel:+.1%})"
                )
                if verdict == "regression":
                    failures.append(line)
                elif verdict == "warn":
                    warnings.append(line)
    return {
        "schema": "repro-history-trend/1",
        "window": window,
        "threshold": threshold,
        "min_runs": min_runs,
        "entries": entries,
        "failures": failures,
        "warnings": warnings,
        "failed": bool(failures),
    }


def render_trend_summary(summary: dict) -> str:
    """Human-readable trend verdict for CI logs."""
    lines = [
        f"trend gate (window {summary['window']}, threshold "
        f"{summary['threshold']:.0%}, warn-only below {summary['min_runs']} runs):"
    ]
    flagged = [e for e in summary["entries"] if e["verdict"] != "ok"]
    for e in flagged:
        lines.append(
            f"  [{e['verdict']:<10}] {e['graph']}.{e['metric']}: "
            f"median {e['median']:g} -> {e['latest']:g} "
            f"({e['rel_change']:+.1%}, {e['runs']} runs)"
        )
    ok = sum(1 for e in summary["entries"] if e["verdict"] == "ok")
    lines.append(
        f"  {len(summary['entries'])} series: {ok} ok, "
        f"{len(summary['warnings'])} warnings, "
        f"{len(summary['failures'])} hard failures"
    )
    return "\n".join(lines)


# ------------------------------------------------------------------------ CLI
def _expand(patterns: Iterable[str]) -> list[str]:
    paths: list[str] = []
    for pattern in patterns:
        hits = sorted(globlib.glob(pattern))
        paths.extend(hits if hits else [pattern])
    return paths


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-history",
        description="Query and gate the append-only run-history store "
        "(see docs/observability.md §7).",
    )
    parser.add_argument("db", help="history database file (created on demand)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_ingest = sub.add_parser(
        "ingest", help="ingest RunReport / BENCH_*.json artifacts (globs ok)"
    )
    p_ingest.add_argument("artifacts", nargs="+", help="file paths or globs")

    p_list = sub.add_parser("list", help="list stored runs")
    p_list.add_argument("--graph", default=None)
    p_list.add_argument("--schema", default=None)
    p_list.add_argument("--limit", type=int, default=None)

    p_show = sub.add_parser("show", help="full record of one run")
    p_show.add_argument("ref", type=int, help="run id from 'list'")

    p_compare = sub.add_parser("compare", help="metric diff of two stored runs")
    p_compare.add_argument("ref_a", type=int)
    p_compare.add_argument("ref_b", type=int)

    p_trend = sub.add_parser(
        "trend", help="rolling-window drift check; exit 1 on hard regression"
    )
    p_trend.add_argument("--graph", default=None)
    p_trend.add_argument("--schema", default=None)
    p_trend.add_argument("--window", type=int, default=5,
                         help="median window size (default 5)")
    p_trend.add_argument("--threshold", type=float, default=0.05,
                         help="relative drift tolerance (default 5%%)")
    p_trend.add_argument("--min-runs", type=int, default=5,
                         help="series shorter than this only warn (default 5)")
    p_trend.add_argument("--out", default=None, metavar="PATH",
                         help="write the JSON trend summary (CI artifact)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    with RunHistory(args.db) as history:
        if args.command == "ingest":
            total = 0
            for path in _expand(args.artifacts):
                refs = history.ingest_file(path)
                total += len(refs)
                print(f"{path}: ingested {len(refs)} run(s) -> ids {refs}")
            print(f"{args.db}: {history.num_runs()} runs total (+{total})")
            return 0
        if args.command == "list":
            rows = history.runs(
                graph=args.graph, schema=args.schema, limit=args.limit
            )
            print(f"{'id':>5} {'graph':<14} {'schema':<26} {'kind':<7} source")
            for row in rows:
                print(
                    f"{row['id']:>5} {row['graph']:<14} {row['schema']:<26} "
                    f"{row['kind']:<7} {row['source']}"
                )
            print(f"{len(rows)} run(s)")
            return 0
        if args.command == "show":
            record = history.run(args.ref)
            print(json.dumps(record, indent=2, sort_keys=True))
            return 0
        if args.command == "compare":
            diff = history.compare(args.ref_a, args.ref_b)
            print(
                f"comparing run {diff['a']['id']} ({diff['a']['source']}) vs "
                f"run {diff['b']['id']} ({diff['b']['source']}) on "
                f"{diff['a']['graph']}:"
            )
            for e in diff["entries"]:
                marker = "" if e["a"] == e["b"] else "  *"
                print(
                    f"  {e['metric']:<44} {e['a']:>14g} {e['b']:>14g} "
                    f"({e['rel_change']:+.1%}){marker}"
                )
            return 0
        # trend
        summary = detect_trends(
            history,
            graph=args.graph,
            schema=args.schema,
            window=args.window,
            threshold=args.threshold,
            min_runs=args.min_runs,
        )
        print(render_trend_summary(summary))
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(summary, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"trend summary written to {args.out}")
        return 1 if summary["failed"] else 0


if __name__ == "__main__":
    sys.exit(main())
