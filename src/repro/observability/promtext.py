"""Prometheus text exposition for the service metrics snapshot.

The ``metrics`` protocol op (and ``repro-serve --metrics-out``) produce a
``repro-service-metrics/1`` JSON document: the server's
:meth:`~repro.telemetry.metrics.MetricsRegistry.export` plus one block per
open session.  This module renders that document in the Prometheus text
format — ``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket{le=…}``
histogram series, label-split families — so any off-the-shelf scraper can
ingest a snapshot file, and provides the minimal parser the CI smoke job
uses to prove the output is well-formed.

Name mapping: dotted registry names become underscore families under the
``repro_`` prefix, and the families that fan out per op / per error code
(``service.op_latency_seconds.count`` …) collapse into one family with an
``op=`` / ``code=`` label, which is the idiomatic Prometheus shape.
Session-level instruments additionally carry ``session="<name>"``.
"""

from __future__ import annotations

import json
import re
from typing import Any, Iterator

__all__ = [
    "SERVICE_METRICS_SCHEMA",
    "parse_prometheus",
    "render_json",
    "render_prometheus",
    "sanitize_metric_name",
    "write_snapshot",
]

#: Schema tag of the snapshot document (the ``metrics`` op result, the
#: ``--metrics-out`` file, and the run-history ingest branch all use it).
SERVICE_METRICS_SCHEMA = "repro-service-metrics/1"

#: Every family starts with this so scraped series are namespaced.
PROM_PREFIX = "repro_"

#: Registry-name prefixes whose last dotted component is a label, not part
#: of the family name (the per-op / per-code fan-outs).
LABEL_FAMILIES = {
    "service.requests": "op",
    "service.op_latency_seconds": "op",
    "service.rejections": "code",
    "session.ops": "op",
    "session.op_latency_seconds": "op",
    "session.op_sim_seconds": "op",
    "session.rejections": "code",
}

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_LABELS_OK = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*,?$'
)


def sanitize_metric_name(name: str) -> str:
    """Dotted registry name -> legal Prometheus metric name."""
    flat = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not flat or not _NAME_OK.match(flat):
        flat = "_" + flat
    return flat


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    v = float(value)
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return format(v, ".10g")


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(str(val))}"' for key, val in sorted(labels.items())
    )
    return "{" + body + "}"


def _split_family(name: str) -> tuple[str, dict[str, str]]:
    """Peel the per-op / per-code leaf off into a label when applicable."""
    prefix, _, leaf = name.rpartition(".")
    label = LABEL_FAMILIES.get(prefix)
    if label is not None and leaf:
        return prefix, {label: leaf}
    return name, {}


def _iter_entries(doc: dict) -> Iterator[tuple[str, dict[str, str], dict]]:
    """Yield ``(registry_name, base_labels, entry)`` across the document."""
    for name, entry in (doc.get("service") or {}).items():
        yield name, {}, entry
    for session, block in (doc.get("sessions") or {}).items():
        for name, entry in (block.get("metrics") or {}).items():
            yield name, {"session": session}, entry


def render_prometheus(doc: dict) -> str:
    """The snapshot document in Prometheus text exposition format."""
    families: dict[str, dict[str, Any]] = {}
    for name, base_labels, entry in _iter_entries(doc):
        kind = entry.get("kind", "gauge")
        family_key, split_labels = _split_family(name)
        prom = PROM_PREFIX + sanitize_metric_name(family_key.replace(".", "_"))
        if kind == "counter" and not prom.endswith("_total"):
            prom += "_total"
        family = families.setdefault(
            prom, {"type": kind, "help": entry.get("help", ""), "samples": []}
        )
        if not family["help"] and entry.get("help"):
            family["help"] = entry["help"]
        labels = {**base_labels, **split_labels}
        if kind == "histogram":
            cumulative = 0
            for bound, bucket_count in zip(entry["buckets"], entry["counts"]):
                cumulative += int(bucket_count)
                family["samples"].append(
                    (
                        prom + "_bucket",
                        {**labels, "le": _format_value(bound)},
                        cumulative,
                    )
                )
            family["samples"].append(
                (prom + "_bucket", {**labels, "le": "+Inf"}, int(entry["count"]))
            )
            family["samples"].append((prom + "_sum", labels, float(entry["sum"])))
            family["samples"].append((prom + "_count", labels, int(entry["count"])))
        else:
            family["samples"].append((prom, labels, float(entry.get("value", 0.0))))
    lines: list[str] = []
    for prom in sorted(families):
        family = families[prom]
        if family["help"]:
            lines.append(f"# HELP {prom} {family['help']}")
        lines.append(f"# TYPE {prom} {family['type']}")
        for sample_name, labels, value in family["samples"]:
            lines.append(
                f"{sample_name}{_format_labels(labels)} {_format_value(value)}"
            )
    return "\n".join(lines) + "\n"


def render_json(doc: dict) -> str:
    """The snapshot document as stable, diffable JSON."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def write_snapshot(path: str, doc: dict) -> None:
    """Write ``doc`` to ``path``; suffix picks the format.

    ``.prom`` / ``.txt`` / ``.text`` get the Prometheus text rendering,
    anything else the JSON snapshot (the form ``repro-history`` ingests).
    """
    lowered = path.lower()
    if lowered.endswith((".prom", ".txt", ".text")):
        payload = render_prometheus(doc)
    else:
        payload = render_json(doc)
    with open(path, "w") as fh:
        fh.write(payload)


_VALID_TYPES = frozenset({"counter", "gauge", "histogram", "summary", "untyped"})
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_prometheus(text: str) -> dict[str, dict]:
    """Minimal strict parser for the exposition format (the CI check).

    Returns ``{family: {"type", "help", "samples": [(name, labels, value)]}}``
    and raises :class:`ValueError` on any malformed line, unknown ``# TYPE``,
    unparsable sample value, or sample whose family was never typed — enough
    rigor to prove :func:`render_prometheus` emits what a real scraper eats.
    """
    families: dict[str, dict] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in _VALID_TYPES:
                    raise ValueError(f"line {lineno}: unknown TYPE {kind!r}")
                families.setdefault(
                    parts[2], {"type": kind, "help": "", "samples": []}
                )["type"] = kind
            elif len(parts) >= 3 and parts[1] == "HELP":
                families.setdefault(
                    parts[2], {"type": None, "help": "", "samples": []}
                )["help"] = parts[3] if len(parts) > 3 else ""
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: not a valid sample line: {line!r}")
        name = match.group("name")
        labels_src = match.group("labels") or ""
        if labels_src and not _LABELS_OK.match(labels_src):
            raise ValueError(f"line {lineno}: malformed labels {labels_src!r}")
        labels = dict(_LABEL_PAIR.findall(labels_src))
        value_src = match.group("value")
        try:
            value = float(value_src.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: unparsable sample value {value_src!r}"
            ) from None
        family = name
        if family not in families:
            for suffix in _HISTOGRAM_SUFFIXES:
                if name.endswith(suffix) and name[: -len(suffix)] in families:
                    family = name[: -len(suffix)]
                    break
        if family not in families or families[family]["type"] is None:
            raise ValueError(f"line {lineno}: sample {name!r} has no # TYPE")
        families[family]["samples"].append((name, labels, value))
    return families
