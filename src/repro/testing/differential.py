"""Differential runner: one graph, every implementation, identical answers.

The repo counts triangles in many independent ways — the slow reference
tasklet kernel, the vectorized kernel, the probe kernel, the full PIM
pipeline under three host execution engines, two CPU baseline models, and
two test-only references.  On the exact path (no sampling) all of them must
return *bit-identical* integer counts, and the three execution engines must
additionally produce bit-identical simulated clocks, charge ledgers, traces,
telemetry span trees and metric snapshots (the determinism contract of
:mod:`repro.pimsim.executor`; wall-clock span fields are excluded — they are
real measurements).

:class:`DifferentialRunner` executes the full
``kernel × executor × baseline`` grid on one graph and returns a
:class:`DifferentialReport` listing every computed count, every count
mismatch, and every executor-parity violation.  The fuzz driver
(:mod:`repro.testing.fuzz`) runs it on every generated case; targeted tests
use it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.cpu_coo import CpuCooCounter
from ..baselines.cpu_csr import CpuCsrCounter
from ..baselines.reference import count_triangles_dense, count_triangles_sets
from ..core.api import PimTriangleCounter
from ..core.host import PimTcOptions
from ..core.kernel_tc import count_triangles_reference
from ..core.kernel_tc_fast import fast_count
from ..core.kernel_tc_probe import probe_count
from ..core.kernel_tc_vec import vec_count
from ..core.result import TcResult
from ..graph.coo import COOGraph
from ..graph.triangles import count_triangles

__all__ = [
    "KERNEL_NAMES",
    "EXECUTOR_GRID",
    "BASELINE_NAMES",
    "PIPELINE_VARIANTS",
    "PARTITIONER_GRID",
    "DifferentialReport",
    "DifferentialRunner",
]

#: Kernel-level counters exercised on the raw edge arrays.
KERNEL_NAMES: tuple[str, ...] = ("reference", "fast", "fastvec", "probe")
#: Host execution engines the full pipeline is run under.
EXECUTOR_GRID: tuple[str, ...] = ("serial", "thread", "process")
#: Independent baseline implementations.
BASELINE_NAMES: tuple[str, ...] = ("reference_dense", "reference_sets", "cpu_coo", "cpu_csr")
#: Pipeline counting-kernel variants (PimTcOptions.kernel_variant).
PIPELINE_VARIANTS: tuple[str, ...] = ("merge", "fastvec", "probe")
#: Edge-partitioning strategies; any partition-coloring is exact under the
#: monochromatic correction, so every strategy must agree bit-for-bit.
PARTITIONER_GRID: tuple[str, ...] = ("hash", "degree", "auto")

#: Node-count ceiling for the dense trace(A^3) reference (it is O(n^2) memory).
_DENSE_LIMIT = 2000


@dataclass
class DifferentialReport:
    """Everything the grid computed on one graph, plus the disagreements."""

    graph_name: str
    truth: int
    counts: dict[str, int] = field(default_factory=dict)
    mismatches: list[str] = field(default_factory=list)
    parity_failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.parity_failures

    @property
    def failures(self) -> list[str]:
        return self.mismatches + self.parity_failures

    def record(self, label: str, count: int) -> None:
        self.counts[label] = int(count)
        if int(count) != self.truth:
            self.mismatches.append(
                f"{label}: counted {int(count)}, oracle says {self.truth}"
            )

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"differential[{self.graph_name}]: {len(self.counts)} implementations, "
            f"truth={self.truth}, {status}"
        )


def _trace_tuples(result: TcResult) -> list[tuple]:
    if result.trace is None:
        return []
    return [
        (e.phase, e.kind, e.seconds, e.payload_bytes, e.detail)
        for e in result.trace.events
    ]


def _span_signature(result: TcResult) -> list[tuple[str, float]]:
    """Span-tree shape + simulated seconds (wall times excluded on purpose)."""
    if result.telemetry is None:
        return []
    return result.telemetry.span_signature()


def _charge_signature(result: TcResult) -> tuple:
    k = result.kernel
    assert k is not None
    return (k.instructions, k.dma_requests, k.dma_bytes, k.max_dpu_compute_seconds)


def _ledger_signature(result: TcResult) -> dict:
    """Full imbalance-ledger dump: per-DPU simulated columns, skews, stragglers."""
    if result.imbalance is None:
        return {}
    return result.imbalance.to_dict()


@dataclass
class DifferentialRunner:
    """Run the full implementation grid on one (canonical) graph.

    Parameters
    ----------
    num_colors:
        ``C`` for the pipeline runs; small values keep fuzz iterations cheap.
    seed:
        Root seed for every pipeline run (exact path, so it only affects the
        coloring hash).
    jobs:
        Worker count for the thread/process engines.  2 forces real pools on
        multi-DPU runs; the process engine degrades safely where the platform
        forbids worker processes.
    executors / variants / kernels / baselines / partitioners:
        Grid axes; defaults cover everything except the partitioners axis,
        which defaults to hash alone (the paper's strategy) to keep fuzz
        iterations cheap — targeted tests widen it to
        :data:`PARTITIONER_GRID`.
    """

    num_colors: int = 3
    seed: int = 0
    jobs: int = 2
    executors: tuple[str, ...] = EXECUTOR_GRID
    variants: tuple[str, ...] = PIPELINE_VARIANTS
    kernels: tuple[str, ...] = KERNEL_NAMES
    baselines: tuple[str, ...] = BASELINE_NAMES
    partitioners: tuple[str, ...] = ("hash",)

    # ------------------------------------------------------------------ pieces
    def kernel_counts(self, graph: COOGraph) -> dict[str, int]:
        """Raw kernel-level counts over the graph's edge arrays."""
        out: dict[str, int] = {}
        if "reference" in self.kernels:
            out["kernel:reference"] = count_triangles_reference(
                graph.src, graph.dst
            ).triangles
        if "fast" in self.kernels:
            out["kernel:fast"] = fast_count(
                graph.src, graph.dst, graph.num_nodes
            ).triangles
        if "fastvec" in self.kernels:
            out["kernel:fastvec"] = vec_count(
                graph.src, graph.dst, graph.num_nodes
            ).triangles
        if "probe" in self.kernels:
            out["kernel:probe"] = probe_count(
                graph.src, graph.dst, graph.num_nodes
            ).triangles
        return out

    def baseline_counts(self, graph: COOGraph) -> dict[str, int]:
        """Counts from the independent baseline implementations."""
        out: dict[str, int] = {}
        if "reference_dense" in self.baselines and graph.num_nodes <= _DENSE_LIMIT:
            out["baseline:reference_dense"] = count_triangles_dense(graph)
        if "reference_sets" in self.baselines:
            out["baseline:reference_sets"] = count_triangles_sets(graph)
        if "cpu_coo" in self.baselines:
            out["baseline:cpu_coo"] = CpuCooCounter().count(graph).count
        if "cpu_csr" in self.baselines:
            out["baseline:cpu_csr"] = CpuCsrCounter().count(graph).count
        return out

    def pipeline_results(
        self, graph: COOGraph, variant: str, partitioner: str = "hash"
    ) -> dict[str, TcResult]:
        """Full-pipeline runs of one kernel variant under every engine."""
        results: dict[str, TcResult] = {}
        for engine in self.executors:
            options = PimTcOptions(
                num_colors=self.num_colors,
                seed=self.seed,
                kernel_variant=variant,
                partitioner=partitioner,
            )
            counter = PimTriangleCounter(
                options=options, executor=engine, jobs=self.jobs
            )
            results[engine] = counter.count(graph)
        return results

    # --------------------------------------------------------------------- run
    def run(self, graph: COOGraph, expected: int | None = None) -> DifferentialReport:
        """Execute the whole grid; ``expected`` overrides the oracle as truth."""
        g = graph if graph.is_canonical() else graph.canonicalize()
        truth = int(expected) if expected is not None else count_triangles(g)
        report = DifferentialReport(graph_name=g.name, truth=truth)
        report.counts["oracle"] = count_triangles(g)
        if report.counts["oracle"] != truth:
            report.mismatches.append(
                f"oracle: counted {report.counts['oracle']}, construction says {truth}"
            )

        for label, count in self.kernel_counts(g).items():
            report.record(label, count)
        for label, count in self.baseline_counts(g).items():
            report.record(label, count)

        serial_by_cell: dict[tuple[str, str], TcResult] = {}
        for variant in self.variants:
            for part in self.partitioners:
                results = self.pipeline_results(g, variant, part)
                # Hash (the paper's strategy) keeps the historical label so
                # existing fuzz corpora and report diffs stay comparable.
                tag = variant if part == "hash" else f"{variant}×{part}"
                for engine, result in results.items():
                    report.record(f"pipeline:{tag}×{engine}", result.count)
                self._check_parity(tag, results, report)
                if "serial" in results:
                    serial_by_cell[(variant, part)] = results["serial"]
        # Cross-variant anchor: fastvec differs from merge only in count
        # arithmetic, so its serial run must match the serial fast anchor on
        # every simulated artifact, per partitioner.
        for part in self.partitioners:
            merge = serial_by_cell.get(("merge", part))
            fastvec = serial_by_cell.get(("fastvec", part))
            if merge is not None and fastvec is not None:
                self._check_fastvec_anchor(part, merge, fastvec, report)
        return report

    def _check_parity(
        self,
        variant: str,
        results: dict[str, TcResult],
        report: DifferentialReport,
    ) -> None:
        """Engines must agree bit-for-bit on counts, clocks, charges, traces."""
        if "serial" in results:
            anchor_name = "serial"
        else:
            anchor_name = next(iter(results))
        anchor = results[anchor_name]
        for engine, result in results.items():
            if engine == anchor_name:
                continue
            prefix = f"parity[{variant}] {engine} vs {anchor_name}"
            if not np.array_equal(result.per_dpu_counts, anchor.per_dpu_counts):
                report.parity_failures.append(f"{prefix}: per-DPU counts differ")
            for phase in ("setup", "sample_creation", "triangle_count"):
                a = anchor.clock.get(phase)
                b = result.clock.get(phase)
                if a != b:
                    report.parity_failures.append(
                        f"{prefix}: simulated {phase} differs ({b!r} != {a!r})"
                    )
            if _charge_signature(result) != _charge_signature(anchor):
                report.parity_failures.append(
                    f"{prefix}: charge ledger differs "
                    f"({_charge_signature(result)} != {_charge_signature(anchor)})"
                )
            if _trace_tuples(result) != _trace_tuples(anchor):
                report.parity_failures.append(f"{prefix}: trace events differ")
            if _span_signature(result) != _span_signature(anchor):
                report.parity_failures.append(
                    f"{prefix}: telemetry span tree differs"
                )
            a_snap = anchor.telemetry.metrics.snapshot() if anchor.telemetry else {}
            b_snap = result.telemetry.metrics.snapshot() if result.telemetry else {}
            if a_snap != b_snap:
                report.parity_failures.append(
                    f"{prefix}: metrics snapshot differs"
                )
            if _ledger_signature(result) != _ledger_signature(anchor):
                report.parity_failures.append(
                    f"{prefix}: imbalance ledger differs"
                )

    def _check_fastvec_anchor(
        self,
        partitioner: str,
        merge: TcResult,
        fastvec: TcResult,
        report: DifferentialReport,
    ) -> None:
        """``fastvec`` vs the serial ``fast`` (merge) anchor: only the count
        arithmetic differs between the variants, so *every* simulated artifact
        — clocks, charges, traces, spans, metrics, the imbalance ledger —
        must be bit-identical, not just the counts.  This is the cross-variant
        leg of the determinism contract: wall-clock is the only thing the
        vectorized kernel is allowed to change.
        """
        prefix = f"parity[fastvec×{partitioner}] fastvec vs merge (serial)"
        if not np.array_equal(fastvec.per_dpu_counts, merge.per_dpu_counts):
            report.parity_failures.append(f"{prefix}: per-DPU counts differ")
        if dict(fastvec.clock.phases) != dict(merge.clock.phases):
            report.parity_failures.append(
                f"{prefix}: simulated phase totals differ "
                f"({dict(fastvec.clock.phases)!r} != {dict(merge.clock.phases)!r})"
            )
        if _charge_signature(fastvec) != _charge_signature(merge):
            report.parity_failures.append(f"{prefix}: charge ledger differs")
        if _trace_tuples(fastvec) != _trace_tuples(merge):
            report.parity_failures.append(f"{prefix}: trace events differ")
        if _span_signature(fastvec) != _span_signature(merge):
            report.parity_failures.append(f"{prefix}: telemetry span tree differs")
        a_snap = merge.telemetry.metrics.snapshot() if merge.telemetry else {}
        b_snap = fastvec.telemetry.metrics.snapshot() if fastvec.telemetry else {}
        if a_snap != b_snap:
            report.parity_failures.append(f"{prefix}: metrics snapshot differs")
        if _ledger_signature(fastvec) != _ledger_signature(merge):
            report.parity_failures.append(f"{prefix}: imbalance ledger differs")
