"""Seeded fuzz driver over the full correctness harness.

One fuzz *iteration* is fully determined by a single integer seed: it draws a
:class:`~repro.testing.strategies.GraphCase`, runs the differential grid
(:mod:`repro.testing.differential`) and every metamorphic relation
(:mod:`repro.testing.metamorphic`) on it, and reports any violation.  A run
of ``budget`` iterations with base seed ``s`` uses iteration seeds
``s, s+1, ..., s+budget-1`` — so a failure at iteration ``i`` names seed
``s+i`` and is reproduced, alone, by::

    repro-count --fuzz 1 --seed <printed seed>

or ``run_fuzz(1, seed=<printed seed>)`` from Python.  That reproduction
contract is pinned by ``tests/test_testing_fuzz.py``.

Entry points: the CLI (``repro-count --fuzz N``), the installation
self-check (:func:`repro.verify.verify_installation` runs a small budget),
and CI's ``fuzz-smoke`` job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..common.rng import RngFactory
from .differential import DifferentialRunner
from .metamorphic import ALL_RELATIONS, MetamorphicRelation
from .strategies import GraphCase, sample_case

__all__ = ["FuzzFailure", "FuzzReport", "fuzz_iteration", "run_fuzz"]

#: A checker takes (case, per-iteration RngFactory) and returns failure strings.
Checker = Callable[[GraphCase, RngFactory], list[str]]


@dataclass(frozen=True)
class FuzzFailure:
    """One failed iteration, with everything needed to reproduce it."""

    iteration: int
    seed: int
    family: str
    case_repr: str
    messages: tuple[str, ...]

    @property
    def repro_command(self) -> str:
        return f"repro-count --fuzz 1 --seed {self.seed}"

    def __str__(self) -> str:
        lines = [
            f"fuzz iteration {self.iteration} FAILED (seed={self.seed}, "
            f"family={self.family}) — reproduce with: {self.repro_command}",
            f"  case: {self.case_repr}",
        ]
        lines += [f"  - {m}" for m in self.messages]
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    budget: int
    base_seed: int
    failures: list[FuzzFailure] = field(default_factory=list)
    cases_by_family: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        families = ", ".join(
            f"{name}={count}" for name, count in sorted(self.cases_by_family.items())
        )
        status = "all ok" if self.ok else f"{len(self.failures)} FAILED"
        return (
            f"fuzz: {self.budget} iterations (seeds {self.base_seed}.."
            f"{self.base_seed + self.budget - 1}), {status}; cases: {families}"
        )

    def render(self) -> str:
        parts = [self.summary()]
        parts += [str(f) for f in self.failures]
        return "\n".join(parts)


# ------------------------------------------------------------------- checkers
def differential_checker(runner: DifferentialRunner | None = None) -> Checker:
    """Checker running the differential grid (truth = construction if known)."""

    def check(case: GraphCase, rngs: RngFactory) -> list[str]:
        r = runner or DifferentialRunner(seed=rngs.seed)
        report = r.run(case.graph, expected=case.exact)
        return [f"differential: {msg}" for msg in report.failures]

    return check


def metamorphic_checker(
    relations: Sequence[MetamorphicRelation] = ALL_RELATIONS,
) -> Checker:
    """Checker applying every metamorphic relation with a derived stream."""

    def check(case: GraphCase, rngs: RngFactory) -> list[str]:
        failures = []
        for relation in relations:
            result = relation.check(case.graph, rngs.stream(f"mr/{relation.name}"))
            if not result.ok:
                failures.append(f"metamorphic {relation.name}: {result.detail}")
        return failures

    return check


def default_checkers() -> list[Checker]:
    return [differential_checker(), metamorphic_checker()]


# ------------------------------------------------------------------ execution
def fuzz_iteration(
    iter_seed: int, checkers: Sequence[Checker] | None = None
) -> tuple[GraphCase, list[str]]:
    """Run one fully seeded iteration; returns (case, failure messages)."""
    rngs = RngFactory(iter_seed)
    case = sample_case(rngs.stream("case"))
    messages: list[str] = []
    for checker in checkers if checkers is not None else default_checkers():
        messages.extend(checker(case, rngs))
    return case, messages


def run_fuzz(
    budget: int,
    seed: int = 0,
    *,
    checkers: Sequence[Checker] | None = None,
    verbose: bool = False,
    fail_fast: bool = False,
) -> FuzzReport:
    """Run ``budget`` iterations with iteration seeds ``seed .. seed+budget-1``."""
    if budget < 1:
        raise ValueError("fuzz budget must be >= 1")
    report = FuzzReport(budget=budget, base_seed=seed)
    for i in range(budget):
        iter_seed = seed + i
        case, messages = fuzz_iteration(iter_seed, checkers)
        report.cases_by_family[case.family] = (
            report.cases_by_family.get(case.family, 0) + 1
        )
        if messages:
            failure = FuzzFailure(
                iteration=i,
                seed=iter_seed,
                family=case.family,
                case_repr=repr(case),
                messages=tuple(messages),
            )
            report.failures.append(failure)
            if verbose:
                print(str(failure))
            if fail_fast:
                break
        elif verbose:
            print(f"[ok ] fuzz seed={iter_seed} {case!r}")
    return report
