"""Statistical acceptance for the randomized estimators (seed sweeps + CIs).

The samplers — DOULION-style uniform edge sampling (Sec. 3.2), TRIÈST-style
per-DPU reservoirs (Sec. 3.3) — are *unbiased* but random: a single seed can
legitimately land far from the truth, so fixed-seed assertions with
hand-picked epsilons either flake or hide bias bugs.  This module replaces
them with a documented policy:

1. Run the estimator under ``n`` independent seeds (a *seed sweep*).
2. Accept iff the sweep mean lands within an interval ``±ε`` of the truth,
   where ``ε`` comes from a Chebyshev bound at an explicit failure
   probability ``δ``:  ``P(|mean − T| ≥ ε) ≤ Var(single) / (n ε²) = δ``,
   i.e. ``ε = sqrt(Var / (n δ))``.

Two variance sources:

* **Exact (binomial)** — on a graph whose triangles are pairwise
  edge-disjoint (the ``planted`` fuzz family), each triangle survives uniform
  sampling independently with probability ``p³``, so the per-seed estimate is
  ``Binomial(T, p³) / p³`` with variance ``T (1 − p³) / p³`` exactly.  The
  resulting bound is assumption-free: a false alarm happens with probability
  at most ``δ``, full stop.
* **Empirical (plug-in)** — where no closed form exists (reservoir path,
  arbitrary graphs), the sweep's sample variance stands in for ``Var``,
  inflated by a safety factor (default 2×) to absorb the plug-in error; the
  stated ``δ`` is then approximate.  A zero-variance sweep (degenerate or
  exact path) must match the truth exactly.

Both bounds catch the bugs that matter — a wrong correction factor shifts the
mean by a multiplicative constant, far outside any ``ε`` here — while the
printed ``δ`` makes the flake budget explicit instead of folklore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.api import PimTriangleCounter
from ..graph.coo import COOGraph
from ..graph.triangles import count_triangles
from ..streaming.estimators import relative_error

__all__ = [
    "AcceptanceBound",
    "SeedSweepResult",
    "binomial_uniform_bound",
    "empirical_chebyshev_bound",
    "seed_sweep",
    "sweep_uniform",
    "sweep_reservoir",
    "sweep_misra_gries",
]


@dataclass(frozen=True)
class AcceptanceBound:
    """An ``ε`` with its provenance: method, seeds, failure probability."""

    epsilon: float
    n_seeds: int
    delta: float
    method: str  # "binomial-chebyshev" | "empirical-chebyshev" | "exact"

    def describe(self) -> str:
        return (
            f"|mean - T| <= {self.epsilon:.3f} "
            f"({self.method}, n={self.n_seeds}, P[false alarm] <= {self.delta})"
        )


@dataclass(frozen=True)
class SeedSweepResult:
    """One estimator swept over ``n`` seeds, judged against a bound."""

    label: str
    truth: float
    estimates: np.ndarray
    bound: AcceptanceBound
    first_seed: int

    @property
    def mean(self) -> float:
        return float(np.mean(self.estimates))

    @property
    def std(self) -> float:
        return float(np.std(self.estimates, ddof=1)) if self.estimates.size > 1 else 0.0

    @property
    def mean_error(self) -> float:
        return abs(self.mean - self.truth)

    @property
    def relative_mean_error(self) -> float:
        return relative_error(self.mean, self.truth)

    @property
    def accepted(self) -> bool:
        return self.mean_error <= self.bound.epsilon

    def detail(self) -> str:
        return (
            f"{self.label}: truth={self.truth:g} mean={self.mean:.3f} "
            f"std={self.std:.3f} rel_err={self.relative_mean_error:.2%} "
            f"seeds={self.first_seed}..{self.first_seed + self.estimates.size - 1}; "
            f"{self.bound.describe()}"
        )

    def require(self) -> "SeedSweepResult":
        """Raise ``AssertionError`` with the full detail when not accepted."""
        if not self.accepted:
            raise AssertionError(f"statistical acceptance FAILED: {self.detail()}")
        return self


# -------------------------------------------------------------------- bounds
def binomial_uniform_bound(
    truth: int, p: float, n_seeds: int, delta: float
) -> AcceptanceBound:
    """Chebyshev ``ε`` for uniform sampling on an edge-disjoint-triangle graph.

    Per-seed estimate is ``Binomial(T, p³)/p³``; ``Var = T (1 − p³)/p³``.
    """
    if not (0.0 < p <= 1.0):
        raise ValueError("p must be in (0, 1]")
    if not (0.0 < delta < 1.0):
        raise ValueError("delta must be in (0, 1)")
    p3 = p**3
    var = truth * (1.0 - p3) / p3
    epsilon = float(np.sqrt(var / (n_seeds * delta)))
    return AcceptanceBound(
        epsilon=epsilon, n_seeds=n_seeds, delta=delta, method="binomial-chebyshev"
    )


def empirical_chebyshev_bound(
    estimates: np.ndarray, delta: float, inflation: float = 2.0
) -> AcceptanceBound:
    """Plug-in Chebyshev ``ε`` from the sweep's own sample variance.

    ``δ`` is approximate (the true variance is estimated); ``inflation``
    (default 2×) guards against the sample variance undershooting.  A
    zero-variance sweep yields ``ε = 0``: deterministic paths must be exact.
    """
    estimates = np.asarray(estimates, dtype=np.float64)
    n = int(estimates.size)
    var = float(np.var(estimates, ddof=1)) if n > 1 else 0.0
    epsilon = float(np.sqrt(inflation * var / (n * delta))) if var > 0 else 0.0
    return AcceptanceBound(
        epsilon=epsilon, n_seeds=n, delta=delta, method="empirical-chebyshev"
    )


# --------------------------------------------------------------------- sweeps
def seed_sweep(
    graph: COOGraph,
    make_counter: Callable[[int], PimTriangleCounter],
    n_seeds: int,
    first_seed: int = 0,
) -> np.ndarray:
    """Estimates of ``make_counter(seed).count(graph)`` over consecutive seeds."""
    return np.array(
        [
            make_counter(seed).count(graph).estimate
            for seed in range(first_seed, first_seed + n_seeds)
        ],
        dtype=np.float64,
    )


def sweep_uniform(
    graph: COOGraph,
    p: float,
    n_seeds: int = 40,
    *,
    delta: float = 0.02,
    num_colors: int = 3,
    first_seed: int = 0,
    edge_disjoint: bool = False,
) -> SeedSweepResult:
    """Seed-sweep acceptance of the uniform-sampling estimator.

    Set ``edge_disjoint=True`` only for graphs whose triangles share no edge
    (e.g. the ``planted`` fuzz family): that unlocks the exact binomial
    variance; otherwise the empirical plug-in bound is used.
    """
    truth = count_triangles(graph)
    estimates = seed_sweep(
        graph,
        lambda s: PimTriangleCounter(num_colors=num_colors, seed=s, uniform_p=p),
        n_seeds,
        first_seed,
    )
    if edge_disjoint:
        bound = binomial_uniform_bound(truth, p, n_seeds, delta)
    else:
        bound = empirical_chebyshev_bound(estimates, delta)
    return SeedSweepResult(
        label=f"uniform(p={p})",
        truth=float(truth),
        estimates=estimates,
        bound=bound,
        first_seed=first_seed,
    )


def sweep_reservoir(
    graph: COOGraph,
    capacity: int,
    n_seeds: int = 40,
    *,
    delta: float = 0.02,
    num_colors: int = 3,
    first_seed: int = 0,
) -> SeedSweepResult:
    """Seed-sweep acceptance of the reservoir estimator (empirical bound)."""
    truth = count_triangles(graph)
    estimates = seed_sweep(
        graph,
        lambda s: PimTriangleCounter(
            num_colors=num_colors, seed=s, reservoir_capacity=capacity
        ),
        n_seeds,
        first_seed,
    )
    bound = empirical_chebyshev_bound(estimates, delta)
    return SeedSweepResult(
        label=f"reservoir(M={capacity})",
        truth=float(truth),
        estimates=estimates,
        bound=bound,
        first_seed=first_seed,
    )


def sweep_misra_gries(
    graph: COOGraph,
    k: int,
    t: int,
    n_seeds: int = 10,
    *,
    num_colors: int = 3,
    first_seed: int = 0,
) -> SeedSweepResult:
    """The Misra-Gries remap path is exact: every seed must hit the truth.

    The randomness here (coloring hash, summary tie-breaks) must never leak
    into the count, so the acceptance interval is ``ε = 0`` with ``δ = 0``.
    """
    truth = count_triangles(graph)
    estimates = seed_sweep(
        graph,
        lambda s: PimTriangleCounter(
            num_colors=num_colors, seed=s, misra_gries_k=k, misra_gries_t=t
        ),
        n_seeds,
        first_seed,
    )
    bound = AcceptanceBound(epsilon=0.0, n_seeds=n_seeds, delta=0.0, method="exact")
    return SeedSweepResult(
        label=f"misra-gries(K={k},t={t})",
        truth=float(truth),
        estimates=estimates,
        bound=bound,
        first_seed=first_seed,
    )
