"""Metamorphic relations of triangle counting, as first-class checkables.

A metamorphic relation states how the triangle count must respond to a
structured transformation of the input — without knowing the count itself.
They catch bugs that point tests cannot: a counter that is wrong *and*
self-consistent on a fixed graph still violates, e.g., relabel invariance.

Relations shipped here (all provable from the definitions):

* **node-relabel invariance** — triangle count is a graph invariant; any
  permutation of node IDs preserves it.  Exercises the ID-ordered
  orientation, the region index and the coloring hash.
* **disjoint-union additivity** — ``T(G ⊔ H) = T(G) + T(H)``; a triangle
  cannot straddle components.
* **edge-orientation invariance** — flipping the stored ``(u, v)`` direction
  of arbitrary edges changes nothing: the graph is undirected.
* **color-count invariance** — the corrected total of the coloring partition
  (Sec. 3.1 + monochromatic correction) is *exact* for every ``C``, so it
  cannot depend on ``C``.
* **remap count-preservation** — any injective remap of node IDs into a
  fresh top range (the Misra-Gries optimization, Sec. 3.5) is a bijection on
  the touched IDs and preserves the count.

Each relation is a :class:`MetamorphicRelation` whose ``check`` returns a
:class:`RelationResult`; the fuzz driver (:mod:`repro.testing.fuzz`) and the
property tests iterate :data:`ALL_RELATIONS`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..coloring.partition import ColoringPartitioner
from ..core.remap import RemapTable, apply_remap
from ..graph.coo import COOGraph
from ..graph.triangles import count_triangles
from ..streaming.estimators import combine_dpu_counts

__all__ = [
    "RelationResult",
    "MetamorphicRelation",
    "ALL_RELATIONS",
    "RELATION_NAMES",
    "check_all_relations",
]


@dataclass(frozen=True)
class RelationResult:
    """Outcome of applying one relation to one graph."""

    relation: str
    ok: bool
    detail: str = ""

    def __bool__(self) -> bool:
        return self.ok


@dataclass(frozen=True)
class MetamorphicRelation:
    """A named, reusable relation ``check(graph, rng) -> RelationResult``."""

    name: str
    description: str
    check_fn: Callable[[COOGraph, np.random.Generator], tuple[bool, str]]

    def check(self, graph: COOGraph, rng: np.random.Generator) -> RelationResult:
        ok, detail = self.check_fn(graph, rng)
        return RelationResult(relation=self.name, ok=ok, detail=detail)


# ------------------------------------------------------------------- relations
def _relabel_invariance(graph: COOGraph, rng: np.random.Generator) -> tuple[bool, str]:
    base = count_triangles(graph)
    perm = rng.permutation(graph.num_nodes).astype(np.int64)
    relabeled = COOGraph(
        src=perm[graph.src], dst=perm[graph.dst], num_nodes=graph.num_nodes
    ).canonicalize()
    got = count_triangles(relabeled)
    return got == base, f"T(G)={base}, T(perm(G))={got}"


def _union_additivity(graph: COOGraph, rng: np.random.Generator) -> tuple[bool, str]:
    base = count_triangles(graph)
    # Second component: a shifted copy of the graph itself (IDs disjoint).
    shift = graph.num_nodes
    union = COOGraph(
        src=np.concatenate([graph.src, graph.src + shift]),
        dst=np.concatenate([graph.dst, graph.dst + shift]),
        num_nodes=2 * shift,
    )
    got = count_triangles(union)
    return got == 2 * base, f"T(G)={base}, T(G ⊔ G')={got} (want {2 * base})"


def _orientation_invariance(graph: COOGraph, rng: np.random.Generator) -> tuple[bool, str]:
    base = count_triangles(graph)
    flip = rng.random(graph.num_edges) < 0.5
    src = np.where(flip, graph.dst, graph.src)
    dst = np.where(flip, graph.src, graph.dst)
    flipped = COOGraph(src=src, dst=dst, num_nodes=graph.num_nodes).canonicalize()
    got = count_triangles(flipped)
    return got == base, f"T(G)={base}, T(flip(G))={got} ({int(flip.sum())} edges flipped)"


def _color_count_invariance(graph: COOGraph, rng: np.random.Generator) -> tuple[bool, str]:
    truth = count_triangles(graph)
    totals = []
    for c in (1, 2, 3, 5):
        partitioner = ColoringPartitioner(c, np.random.default_rng(rng.integers(2**32)))
        partition = partitioner.assign(graph)
        counts = np.array(
            [
                count_triangles(COOGraph(s.copy(), d.copy(), graph.num_nodes))
                for s, d in partition.per_dpu
            ],
            dtype=np.float64,
        )
        total = combine_dpu_counts(
            counts,
            np.ones_like(counts),
            partitioner.mono_mask(),
            num_colors=c,
        )
        totals.append(total)
    ok = all(t == truth for t in totals)
    return ok, f"truth={truth}, corrected totals per C∈(1,2,3,5): {totals}"


def _remap_preservation(graph: COOGraph, rng: np.random.Generator) -> tuple[bool, str]:
    base = count_triangles(graph)
    if graph.num_nodes == 0:
        return True, "empty graph, nothing to remap"
    t = int(rng.integers(1, min(graph.num_nodes, 8) + 1))
    nodes = rng.choice(graph.num_nodes, size=t, replace=False).astype(np.int64)
    table = RemapTable(nodes=nodes, num_nodes=graph.num_nodes)
    src, dst = apply_remap(table, graph.src, graph.dst)
    remapped = COOGraph(src=src, dst=dst, num_nodes=table.remapped_num_nodes)
    got = count_triangles(remapped)
    return got == base, f"T(G)={base}, T(remap(G))={got} (t={t})"


ALL_RELATIONS: tuple[MetamorphicRelation, ...] = (
    MetamorphicRelation(
        "relabel-invariance",
        "any permutation of node IDs preserves the triangle count",
        _relabel_invariance,
    ),
    MetamorphicRelation(
        "union-additivity",
        "the count of a disjoint union is the sum of the parts' counts",
        _union_additivity,
    ),
    MetamorphicRelation(
        "orientation-invariance",
        "flipping the stored direction of any edges preserves the count",
        _orientation_invariance,
    ),
    MetamorphicRelation(
        "color-count-invariance",
        "the monochromatic-corrected partition total is exact for every C",
        _color_count_invariance,
    ),
    MetamorphicRelation(
        "remap-preservation",
        "the Misra-Gries top-t ID remap is a bijection and preserves the count",
        _remap_preservation,
    ),
)

RELATION_NAMES: tuple[str, ...] = tuple(r.name for r in ALL_RELATIONS)


def check_all_relations(
    graph: COOGraph, rng: np.random.Generator
) -> list[RelationResult]:
    """Apply every shipped relation to ``graph``; one result per relation."""
    return [relation.check(graph, rng) for relation in ALL_RELATIONS]
