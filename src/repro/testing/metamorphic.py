"""Metamorphic relations of triangle counting, as first-class checkables.

A metamorphic relation states how the triangle count must respond to a
structured transformation of the input — without knowing the count itself.
They catch bugs that point tests cannot: a counter that is wrong *and*
self-consistent on a fixed graph still violates, e.g., relabel invariance.

Relations shipped here (all provable from the definitions):

* **node-relabel invariance** — triangle count is a graph invariant; any
  permutation of node IDs preserves it.  Exercises the ID-ordered
  orientation, the region index and the coloring hash.
* **disjoint-union additivity** — ``T(G ⊔ H) = T(G) + T(H)``; a triangle
  cannot straddle components.
* **edge-orientation invariance** — flipping the stored ``(u, v)`` direction
  of arbitrary edges changes nothing: the graph is undirected.
* **color-count invariance** — the corrected total of the coloring partition
  (Sec. 3.1 + monochromatic correction) is *exact* for every ``C``, so it
  cannot depend on ``C``.
* **remap count-preservation** — any injective remap of node IDs into a
  fresh top range (the Misra-Gries optimization, Sec. 3.5) is a bijection on
  the touched IDs and preserves the count.
* **batch-split invariance** — splitting the edge stream into chunks (the
  batched-ingest pipeline) leaves per-core routing, reservoir state and the
  Misra-Gries guarantees equivalent to one monolithic pass.

Each relation is a :class:`MetamorphicRelation` whose ``check`` returns a
:class:`RelationResult`; the fuzz driver (:mod:`repro.testing.fuzz`) and the
property tests iterate :data:`ALL_RELATIONS`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..coloring.partition import ColoringPartitioner
from ..core.ingest import iter_edge_batches
from ..core.remap import RemapTable, apply_remap
from ..graph.coo import COOGraph
from ..graph.triangles import count_triangles
from ..streaming.estimators import combine_dpu_counts
from ..streaming.misra_gries import MisraGries
from ..streaming.reservoir import EdgeReservoir

__all__ = [
    "RelationResult",
    "MetamorphicRelation",
    "ALL_RELATIONS",
    "RELATION_NAMES",
    "check_all_relations",
]


@dataclass(frozen=True)
class RelationResult:
    """Outcome of applying one relation to one graph."""

    relation: str
    ok: bool
    detail: str = ""

    def __bool__(self) -> bool:
        return self.ok


@dataclass(frozen=True)
class MetamorphicRelation:
    """A named, reusable relation ``check(graph, rng) -> RelationResult``."""

    name: str
    description: str
    check_fn: Callable[[COOGraph, np.random.Generator], tuple[bool, str]]

    def check(self, graph: COOGraph, rng: np.random.Generator) -> RelationResult:
        ok, detail = self.check_fn(graph, rng)
        return RelationResult(relation=self.name, ok=ok, detail=detail)


# ------------------------------------------------------------------- relations
def _relabel_invariance(graph: COOGraph, rng: np.random.Generator) -> tuple[bool, str]:
    base = count_triangles(graph)
    perm = rng.permutation(graph.num_nodes).astype(np.int64)
    relabeled = COOGraph(
        src=perm[graph.src], dst=perm[graph.dst], num_nodes=graph.num_nodes
    ).canonicalize()
    got = count_triangles(relabeled)
    return got == base, f"T(G)={base}, T(perm(G))={got}"


def _union_additivity(graph: COOGraph, rng: np.random.Generator) -> tuple[bool, str]:
    base = count_triangles(graph)
    # Second component: a shifted copy of the graph itself (IDs disjoint).
    shift = graph.num_nodes
    union = COOGraph(
        src=np.concatenate([graph.src, graph.src + shift]),
        dst=np.concatenate([graph.dst, graph.dst + shift]),
        num_nodes=2 * shift,
    )
    got = count_triangles(union)
    return got == 2 * base, f"T(G)={base}, T(G ⊔ G')={got} (want {2 * base})"


def _orientation_invariance(graph: COOGraph, rng: np.random.Generator) -> tuple[bool, str]:
    base = count_triangles(graph)
    flip = rng.random(graph.num_edges) < 0.5
    src = np.where(flip, graph.dst, graph.src)
    dst = np.where(flip, graph.src, graph.dst)
    flipped = COOGraph(src=src, dst=dst, num_nodes=graph.num_nodes).canonicalize()
    got = count_triangles(flipped)
    return got == base, f"T(G)={base}, T(flip(G))={got} ({int(flip.sum())} edges flipped)"


def _color_count_invariance(graph: COOGraph, rng: np.random.Generator) -> tuple[bool, str]:
    truth = count_triangles(graph)
    totals = []
    for c in (1, 2, 3, 5):
        partitioner = ColoringPartitioner(c, np.random.default_rng(rng.integers(2**32)))
        partition = partitioner.assign(graph)
        counts = np.array(
            [
                count_triangles(COOGraph(s.copy(), d.copy(), graph.num_nodes))
                for s, d in partition.per_dpu
            ],
            dtype=np.float64,
        )
        total = combine_dpu_counts(
            counts,
            np.ones_like(counts),
            partitioner.mono_mask(),
            num_colors=c,
        )
        totals.append(total)
    ok = all(t == truth for t in totals)
    return ok, f"truth={truth}, corrected totals per C∈(1,2,3,5): {totals}"


def _remap_preservation(graph: COOGraph, rng: np.random.Generator) -> tuple[bool, str]:
    base = count_triangles(graph)
    if graph.num_nodes == 0:
        return True, "empty graph, nothing to remap"
    t = int(rng.integers(1, min(graph.num_nodes, 8) + 1))
    nodes = rng.choice(graph.num_nodes, size=t, replace=False).astype(np.int64)
    table = RemapTable(nodes=nodes, num_nodes=graph.num_nodes)
    src, dst = apply_remap(table, graph.src, graph.dst)
    remapped = COOGraph(src=src, dst=dst, num_nodes=table.remapped_num_nodes)
    got = count_triangles(remapped)
    return got == base, f"T(G)={base}, T(remap(G))={got} (t={t})"


def _batch_split_invariance(graph: COOGraph, rng: np.random.Generator) -> tuple[bool, str]:
    """Chunked ingest must be equivalent to one monolithic pass.

    Three layers of the batched-ingest pipeline, three guarantees:

    * **routing** — the color hash is drawn at construction, so every edge
      copy lands on the same core regardless of chunking: per-core counts and
      the per-core edge *multisets* must match (the within-core order differs
      — monolithic groups copies by third color over the whole stream, the
      chunked pass per chunk — and triangle kernels are order-invariant);
    * **reservoir** — offers indexed by the global ``seen`` counter: before
      overflow any chunking stores the identical contents; after overflow the
      split may consume RNG draws in a different layout, but ``seen``/``size``/
      ``scale`` must still match and contents must come from the stream;
    * **Misra-Gries** — merged summaries are *not* split-invariant (the trim
      rule depends on chunk boundaries), so we check what the pipeline relies
      on: ``items_seen`` equality and the ``n / K`` heavy-hitter guarantee.
    """
    n = graph.num_edges
    if n == 0:
        return True, "empty graph, nothing to split"
    batch = int(rng.integers(1, n + 1))

    # --- routing: chunked assign_arrays == monolithic assign per core
    # (counts and edge multisets; within-core order is chunking-dependent).
    hash_seed = int(rng.integers(2**32))
    mono = ColoringPartitioner(3, np.random.default_rng(hash_seed))
    chunked = ColoringPartitioner(3, np.random.default_rng(hash_seed))
    full = mono.assign(graph)
    parts = [
        chunked.assign_arrays(s, d)
        for _, s, d in iter_edge_batches(graph.src, graph.dst, batch)
    ]
    cat_counts = np.sum([p.counts for p in parts], axis=0)
    if not np.array_equal(cat_counts, full.counts):
        return False, f"per-core routed counts differ (batch={batch})"
    for dpu in range(full.counts.size):
        cat_src = np.concatenate([p.per_dpu[dpu][0] for p in parts])
        cat_dst = np.concatenate([p.per_dpu[dpu][1] for p in parts])
        order_a = np.lexsort((cat_dst, cat_src))
        f_src, f_dst = full.per_dpu[dpu]
        order_b = np.lexsort((f_dst, f_src))
        if not (
            np.array_equal(cat_src[order_a], f_src[order_b])
            and np.array_equal(cat_dst[order_a], f_dst[order_b])
        ):
            return False, f"routing multiset differs on core {dpu} (batch={batch})"

    # --- reservoir: global-index offers across chunk boundaries.
    cap = int(rng.integers(3, 2 * n + 2))
    res_seed = int(rng.integers(2**32))
    one_shot = EdgeReservoir(cap, np.random.default_rng(res_seed))
    one_shot.offer_batch(graph.src, graph.dst)
    split = EdgeReservoir(cap, np.random.default_rng(res_seed))
    for _, s, d in iter_edge_batches(graph.src, graph.dst, batch):
        split.offer_batch(s, d)
    if (split.seen, split.size) != (one_shot.seen, one_shot.size):
        return False, (
            f"reservoir state differs: split (seen={split.seen}, size={split.size})"
            f" vs one-shot (seen={one_shot.seen}, size={one_shot.size})"
        )
    if split.scale() != one_shot.scale():
        return False, f"reservoir scale differs: {split.scale()} vs {one_shot.scale()}"
    if n <= cap:
        # Pre-overflow offers are pure appends with zero RNG draws.
        a_src, a_dst = split.edges()
        b_src, b_dst = one_shot.edges()
        if not (np.array_equal(a_src, b_src) and np.array_equal(a_dst, b_dst)):
            return False, f"no-overflow reservoir contents differ (cap={cap}, n={n})"
    else:
        # Post-overflow the draw layout differs; contents must still be edges
        # of the stream (same distribution is property-tested elsewhere).
        stream = set(zip(graph.src.tolist(), graph.dst.tolist()))
        s_src, s_dst = split.edges()
        if not all(e in stream for e in zip(s_src.tolist(), s_dst.tolist())):
            return False, "overflowed split reservoir holds an edge not in the stream"

    # --- Misra-Gries: n/K guarantee and items_seen survive chunking.
    k = int(rng.integers(2, 17))
    mg_mono = MisraGries(k)
    mg_mono.update_array(np.concatenate([graph.src, graph.dst]))
    mg_split = MisraGries(k)
    for _, s, d in iter_edge_batches(graph.src, graph.dst, batch):
        mg_split.update_array(np.concatenate([s, d]))
    if mg_split.items_seen != mg_mono.items_seen:
        return False, (
            f"MG items_seen differs: {mg_split.items_seen} vs {mg_mono.items_seen}"
        )
    nodes, freqs = np.unique(
        np.concatenate([graph.src, graph.dst]), return_counts=True
    )
    bound = mg_split.items_seen / k
    for node, freq in zip(nodes.tolist(), freqs.tolist()):
        if freq > bound and node not in mg_split.counters:
            return False, (
                f"chunked MG lost heavy hitter {node} (freq {freq} > n/K {bound:.1f})"
            )
        got = mg_split.counters.get(node, 0)
        if not (freq - bound <= got <= freq):
            return False, (
                f"chunked MG counter for {node} out of [freq - n/K, freq]: "
                f"{got} vs freq {freq}, n/K {bound:.1f}"
            )
    return True, (
        f"batch={batch}: routing multisets equal, reservoir state equal "
        f"(cap={cap}), MG n/K guarantee holds (K={k})"
    )


ALL_RELATIONS: tuple[MetamorphicRelation, ...] = (
    MetamorphicRelation(
        "relabel-invariance",
        "any permutation of node IDs preserves the triangle count",
        _relabel_invariance,
    ),
    MetamorphicRelation(
        "union-additivity",
        "the count of a disjoint union is the sum of the parts' counts",
        _union_additivity,
    ),
    MetamorphicRelation(
        "orientation-invariance",
        "flipping the stored direction of any edges preserves the count",
        _orientation_invariance,
    ),
    MetamorphicRelation(
        "color-count-invariance",
        "the monochromatic-corrected partition total is exact for every C",
        _color_count_invariance,
    ),
    MetamorphicRelation(
        "remap-preservation",
        "the Misra-Gries top-t ID remap is a bijection and preserves the count",
        _remap_preservation,
    ),
    MetamorphicRelation(
        "batch-split-invariance",
        "chunked ingest matches a monolithic pass: per-core routing, "
        "reservoir state, Misra-Gries guarantees",
        _batch_split_invariance,
    ),
)

RELATION_NAMES: tuple[str, ...] = tuple(r.name for r in ALL_RELATIONS)


def check_all_relations(
    graph: COOGraph, rng: np.random.Generator
) -> list[RelationResult]:
    """Apply every shipped relation to ``graph``; one result per relation."""
    return [relation.check(graph, rng) for relation in ALL_RELATIONS]
