"""Property-based and differential correctness harness for the TC pipeline.

The paper's headline numbers rest on stacked randomized estimators; this
package makes their correctness *cheap to trust* after any refactor:

* :mod:`~repro.testing.strategies` — graph fuzzers with known-by-construction
  counts (planted triangles, adversarial raw streams, stars, cliques, ...).
* :mod:`~repro.testing.metamorphic` — metamorphic relations (relabel /
  orientation / union / color-count / remap invariance) as checkable objects.
* :mod:`~repro.testing.differential` — one graph through every kernel ×
  executor × baseline, asserting bit-identical counts and trace parity.
* :mod:`~repro.testing.statistical` — seed-sweep Chebyshev acceptance for
  the samplers, with explicit failure probabilities.
* :mod:`~repro.testing.fuzz` — the seeded fuzz driver behind
  ``repro-count --fuzz N`` and the ``verify_installation`` smoke budget.
* :mod:`~repro.testing.pytest_plugin` — fixtures for test suites.

See ``docs/testing.md`` for the policy and how to reproduce fuzz failures.
"""

from .differential import DifferentialReport, DifferentialRunner
from .fuzz import FuzzFailure, FuzzReport, fuzz_iteration, run_fuzz
from .metamorphic import ALL_RELATIONS, MetamorphicRelation, RelationResult, check_all_relations
from .statistical import (
    AcceptanceBound,
    SeedSweepResult,
    binomial_uniform_bound,
    empirical_chebyshev_bound,
    seed_sweep,
    sweep_misra_gries,
    sweep_reservoir,
    sweep_uniform,
)
from .strategies import (
    CASE_FAMILIES,
    FAMILY_NAMES,
    GraphCase,
    adversarial_stream,
    graph_cases,
    make_case,
    planted_triangles,
    sample_case,
)

__all__ = [
    "DifferentialReport",
    "DifferentialRunner",
    "FuzzFailure",
    "FuzzReport",
    "fuzz_iteration",
    "run_fuzz",
    "ALL_RELATIONS",
    "MetamorphicRelation",
    "RelationResult",
    "check_all_relations",
    "AcceptanceBound",
    "SeedSweepResult",
    "binomial_uniform_bound",
    "empirical_chebyshev_bound",
    "seed_sweep",
    "sweep_misra_gries",
    "sweep_reservoir",
    "sweep_uniform",
    "CASE_FAMILIES",
    "FAMILY_NAMES",
    "GraphCase",
    "adversarial_stream",
    "graph_cases",
    "make_case",
    "planted_triangles",
    "sample_case",
]
