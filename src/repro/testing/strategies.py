"""Graph strategies and fuzzers for the correctness harness.

Every fuzz iteration and property test starts from a :class:`GraphCase`: a
graph plus, where the construction permits, its *known-by-construction* exact
triangle count.  Families cover the shapes that historically break triangle
counters:

* ``gnp`` — Erdős–Rényi G(n, m); count unknown, checked by cross-reference.
* ``powerlaw`` — configuration-model graph with a power-law degree sequence
  (the hub-heavy regime of the paper's Fig. 3 / Misra-Gries path).
* ``planted`` — ``k`` node-disjoint triangles scattered over a larger ID
  space (isolated nodes included); exactly ``k`` triangles by construction.
* ``adversarial`` — a planted case re-emitted as a messy raw stream with
  self-loops, duplicate and reversed edges, exercising canonicalization.
* ``star`` — one hub, many leaves: zero triangles, maximal degree skew.
* ``clique`` — ``K_n``: ``binom(n, 3)`` triangles, maximal density.
* ``clique_star`` — disjoint clique + star: known count with mixed shape.
* ``degenerate`` — empty graphs and single edges.

All constructions are deterministic in the supplied NumPy generator, so a
fuzz failure is reproducible from its seed alone (see
:mod:`repro.testing.fuzz`).  Hypothesis strategies over the same families are
provided for property tests (`graph_cases`, `edge_list_strategy`,
`graph_strategy`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..graph.coo import COOGraph
from ..graph.generators import (
    configuration_model,
    erdos_renyi,
    powerlaw_degree_sequence,
)
from ..graph.triangles import count_triangles

__all__ = [
    "GraphCase",
    "CASE_FAMILIES",
    "FAMILY_NAMES",
    "make_case",
    "sample_case",
    "planted_triangles",
    "adversarial_stream",
    "graph_cases",
    "edge_list_strategy",
    "graph_strategy",
]


@dataclass(frozen=True)
class GraphCase:
    """One fuzzer-generated input: a graph and what we know about it.

    Attributes
    ----------
    family:
        Name of the generating family (key into :data:`CASE_FAMILIES`).
    graph:
        The canonicalized graph every checker consumes.
    raw:
        The pre-canonicalization edge stream (may contain self-loops and
        duplicates for the ``adversarial`` family; equals ``graph`` otherwise).
    exact:
        Triangle count known *by construction*, or ``None`` when the family
        cannot know it (then checkers fall back to oracle cross-agreement).
    params:
        Generation parameters, for failure reports.
    """

    family: str
    graph: COOGraph
    raw: COOGraph
    exact: int | None = None
    params: dict = field(default_factory=dict)

    def fingerprint(self) -> tuple:
        """Cheap structural identity used to assert seed-reproducibility."""
        g = self.graph
        return (
            self.family,
            g.num_nodes,
            g.num_edges,
            int(g.src.sum()),
            int(g.dst.sum()),
        )

    def __repr__(self) -> str:
        return (
            f"GraphCase({self.family!r}, n={self.graph.num_nodes}, "
            f"m={self.graph.num_edges}, exact={self.exact}, params={self.params})"
        )


# --------------------------------------------------------------- constructions
def planted_triangles(
    num_triangles: int,
    num_nodes: int,
    rng: np.random.Generator,
    name: str = "planted",
) -> COOGraph:
    """``k`` node-disjoint triangles on random distinct IDs in ``[0, n)``.

    Needs ``n >= 3k``; the leftover IDs stay isolated, so the triangle count
    is exactly ``k`` whatever the ID placement.
    """
    if num_nodes < 3 * num_triangles:
        raise ValueError("planted_triangles needs num_nodes >= 3 * num_triangles")
    nodes = rng.choice(num_nodes, size=3 * num_triangles, replace=False).astype(np.int64)
    corners = nodes.reshape(num_triangles, 3)
    src = np.concatenate([corners[:, 0], corners[:, 1], corners[:, 0]])
    dst = np.concatenate([corners[:, 1], corners[:, 2], corners[:, 2]])
    return COOGraph(src=src, dst=dst, num_nodes=num_nodes, name=name)


def adversarial_stream(base: COOGraph, rng: np.random.Generator) -> COOGraph:
    """Re-emit ``base`` as a hostile raw stream: dupes, reversals, self-loops.

    Canonicalizing the result must recover exactly ``base``'s triangle count —
    the paper's preprocessing contract (Sec. 4.1).
    """
    copies = int(rng.integers(2, 4))
    src = [np.tile(base.src, copies), np.tile(base.dst, copies)]  # both orientations
    dst = [np.tile(base.dst, copies), np.tile(base.src, copies)]
    num_loops = int(rng.integers(1, 6))
    loops = rng.integers(0, base.num_nodes, size=num_loops).astype(np.int64)
    src.append(loops)
    dst.append(loops)
    s = np.concatenate(src)
    d = np.concatenate(dst)
    perm = rng.permutation(s.size)
    return COOGraph(src=s[perm], dst=d[perm], num_nodes=base.num_nodes, name="adversarial")


# --------------------------------------------------------------- case families
def _gnp_case(rng: np.random.Generator) -> GraphCase:
    n = int(rng.integers(8, 80))
    max_m = n * (n - 1) // 2
    m = int(rng.integers(1, min(max_m, 5 * n) + 1))
    g = erdos_renyi(n, m, rng, name="gnp").canonicalize()
    return GraphCase("gnp", g, g, exact=None, params={"n": n, "m": m})


def _powerlaw_case(rng: np.random.Generator) -> GraphCase:
    n = int(rng.integers(10, 70))
    exponent = float(rng.uniform(1.8, 3.0))
    degrees = powerlaw_degree_sequence(n, exponent, rng, min_degree=1)
    g = configuration_model(degrees, rng, name="powerlaw").canonicalize()
    return GraphCase(
        "powerlaw", g, g, exact=None, params={"n": n, "exponent": round(exponent, 3)}
    )


def _planted_case(rng: np.random.Generator) -> GraphCase:
    k = int(rng.integers(1, 12))
    n = int(rng.integers(3 * k, 3 * k + 40))
    raw = planted_triangles(k, n, rng)
    g = raw.canonicalize()
    return GraphCase("planted", g, raw, exact=k, params={"k": k, "n": n})


def _adversarial_case(rng: np.random.Generator) -> GraphCase:
    k = int(rng.integers(1, 8))
    n = int(rng.integers(3 * k, 3 * k + 25))
    base = planted_triangles(k, n, rng)
    raw = adversarial_stream(base, rng)
    g = raw.canonicalize()
    return GraphCase("adversarial", g, raw, exact=k, params={"k": k, "n": n})


def _star_case(rng: np.random.Generator) -> GraphCase:
    leaves = int(rng.integers(2, 60))
    g = COOGraph(
        src=np.zeros(leaves, dtype=np.int64),
        dst=np.arange(1, leaves + 1, dtype=np.int64),
        num_nodes=leaves + 1,
        name="star",
    ).canonicalize()
    return GraphCase("star", g, g, exact=0, params={"leaves": leaves})


def _clique_edges(n: int, offset: int = 0) -> tuple[np.ndarray, np.ndarray]:
    iu, iv = np.triu_indices(n, k=1)
    return iu.astype(np.int64) + offset, iv.astype(np.int64) + offset


def _clique_case(rng: np.random.Generator) -> GraphCase:
    n = int(rng.integers(3, 14))
    src, dst = _clique_edges(n)
    g = COOGraph(src=src, dst=dst, num_nodes=n, name="clique").canonicalize()
    exact = n * (n - 1) * (n - 2) // 6
    return GraphCase("clique", g, g, exact=exact, params={"n": n})


def _clique_star_case(rng: np.random.Generator) -> GraphCase:
    n = int(rng.integers(3, 10))
    leaves = int(rng.integers(2, 30))
    csrc, cdst = _clique_edges(n)
    hub = n
    ssrc = np.full(leaves, hub, dtype=np.int64)
    sdst = np.arange(hub + 1, hub + 1 + leaves, dtype=np.int64)
    g = COOGraph(
        src=np.concatenate([csrc, ssrc]),
        dst=np.concatenate([cdst, sdst]),
        num_nodes=hub + 1 + leaves,
        name="clique_star",
    ).canonicalize()
    exact = n * (n - 1) * (n - 2) // 6
    return GraphCase("clique_star", g, g, exact=exact, params={"n": n, "leaves": leaves})


def _degenerate_case(rng: np.random.Generator) -> GraphCase:
    if rng.random() < 0.5:
        n = int(rng.integers(0, 8))
        g = COOGraph(
            src=np.empty(0, dtype=np.int64),
            dst=np.empty(0, dtype=np.int64),
            num_nodes=n,
            name="empty",
        )
        return GraphCase("degenerate", g, g, exact=0, params={"shape": "empty", "n": n})
    g = COOGraph(
        src=np.array([0], dtype=np.int64),
        dst=np.array([1], dtype=np.int64),
        num_nodes=2,
        name="single_edge",
    )
    return GraphCase("degenerate", g, g, exact=0, params={"shape": "single_edge"})


#: Registry of fuzz families; each maps a generator to a :class:`GraphCase`.
CASE_FAMILIES: dict[str, Callable[[np.random.Generator], GraphCase]] = {
    "gnp": _gnp_case,
    "powerlaw": _powerlaw_case,
    "planted": _planted_case,
    "adversarial": _adversarial_case,
    "star": _star_case,
    "clique": _clique_case,
    "clique_star": _clique_star_case,
    "degenerate": _degenerate_case,
}

FAMILY_NAMES: tuple[str, ...] = tuple(CASE_FAMILIES)


def make_case(family: str, rng: np.random.Generator) -> GraphCase:
    """Build one case of the named family, checking the exact-count invariant."""
    case = CASE_FAMILIES[family](rng)
    if case.exact is not None:
        actual = count_triangles(case.graph)
        if actual != case.exact:
            raise AssertionError(
                f"strategy bug: family {family!r} promised {case.exact} triangles "
                f"but built {actual} ({case!r})"
            )
    return case


def sample_case(rng: np.random.Generator, families: tuple[str, ...] = FAMILY_NAMES) -> GraphCase:
    """Draw a family uniformly, then a case of that family."""
    family = families[int(rng.integers(0, len(families)))]
    return make_case(family, rng)


# -------------------------------------------------------- hypothesis strategies
def edge_list_strategy(max_nodes: int = 30, max_edges: int = 120):
    """Hypothesis strategy producing a random (possibly messy) edge list."""
    from hypothesis import strategies as st

    return st.integers(min_value=2, max_value=max_nodes).flatmap(
        lambda n: st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=0,
            max_size=max_edges,
        ).map(lambda edges: COOGraph.from_edges(edges, num_nodes=n))
    )


def graph_strategy(max_nodes: int = 30, max_edges: int = 120):
    """Canonicalized random graphs."""
    return edge_list_strategy(max_nodes, max_edges).map(lambda g: g.canonicalize())


def graph_cases(families: tuple[str, ...] = FAMILY_NAMES):
    """Hypothesis strategy over :class:`GraphCase` drawn from the fuzz families.

    Cases are derived from an integer seed, so every shrunk counterexample is
    reproducible outside hypothesis via ``make_case(family, default_rng(seed))``.
    """
    from hypothesis import strategies as st

    return st.tuples(
        st.sampled_from(families), st.integers(min_value=0, max_value=2**32 - 1)
    ).map(lambda fs: make_case(fs[0], np.random.default_rng(fs[1])))
