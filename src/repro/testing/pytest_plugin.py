"""Pytest fixtures exposing the correctness harness to test suites.

Import-star this module from a ``conftest.py`` to get the fixtures::

    from repro.testing.pytest_plugin import *  # noqa: F401,F403

Fixtures
--------
``graph_case``
    Parametrized over every fuzz family: each test using it runs once per
    family on a deterministic representative case.
``fuzz_rngs``
    A fresh :class:`~repro.common.rng.RngFactory` with a fixed root seed.
``differential_runner``
    A shared :class:`~repro.testing.differential.DifferentialRunner` covering
    the full kernel × executor × baseline grid.
``metamorphic_relations``
    The tuple of shipped metamorphic relations.
"""

from __future__ import annotations

import numpy as np
import pytest

from ..common.rng import RngFactory, derive_seed
from .differential import DifferentialRunner
from .metamorphic import ALL_RELATIONS, MetamorphicRelation
from .strategies import FAMILY_NAMES, GraphCase, make_case

__all__ = [
    "graph_case",
    "fuzz_rngs",
    "differential_runner",
    "metamorphic_relations",
]

#: Root seed of the fixture-provided cases; change to re-roll every fixture.
_FIXTURE_SEED = 20250806


@pytest.fixture(params=FAMILY_NAMES)
def graph_case(request) -> GraphCase:
    """One deterministic representative case per fuzz family."""
    family = request.param
    rng = np.random.default_rng(derive_seed(_FIXTURE_SEED, f"case/{family}"))
    return make_case(family, rng)


@pytest.fixture
def fuzz_rngs() -> RngFactory:
    return RngFactory(_FIXTURE_SEED)


@pytest.fixture(scope="session")
def differential_runner() -> DifferentialRunner:
    return DifferentialRunner()


@pytest.fixture(scope="session")
def metamorphic_relations() -> tuple[MetamorphicRelation, ...]:
    return ALL_RELATIONS
