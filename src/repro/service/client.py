"""Blocking client for the triangle-counting service.

A thin synchronous wrapper over the length-prefixed JSON protocol — the
shape a CLI tool or test wants: connect, call methods, get dicts back,
application errors raised as :class:`ServiceError` with the server's stable
error code attached.

    with ServiceClient("127.0.0.1:7707") as client:
        client.open_session("mygraph", num_nodes=1000, num_colors=4)
        client.insert("mygraph", src=[0, 1], dst=[1, 2])
        print(client.count("mygraph")["triangles"])
        client.close_session("mygraph")

One client drives one connection; requests on it are strictly sequential.
Open several clients for concurrency — per-session ordering is enforced
server-side by the session queue, so interleaving clients never changes a
session's final count.

Every request carries a ``trace_id`` (caller-supplied or generated here);
the server echoes it in the response and stamps it into the session's
NDJSON events, so one client-side log line joins against the server-side
stream.  A connection that dies mid-request — truncated frame, server EOF,
socket timeout — surfaces as ``ServiceError("connection_lost", …)`` with
the in-flight ``op`` and ``trace_id`` attached, never as a raw socket or
struct error.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Iterable

import numpy as np

from .protocol import ProtocolError, new_trace_id, recv_frame, send_frame

__all__ = ["ServiceClient", "ServiceError", "parse_url", "wait_ready"]


class ServiceError(Exception):
    """Application error from the server, carrying its protocol code.

    ``op`` and ``trace_id`` identify the request that failed (always set on
    ``connection_lost`` errors raised client-side, and on any error response
    to a traced request).
    """

    def __init__(
        self,
        code: str,
        message: str,
        op: str | None = None,
        trace_id: str | None = None,
    ) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.op = op
        self.trace_id = trace_id


def parse_url(url: str) -> tuple[str, int]:
    """``host:port`` or ``tcp://host:port`` -> ``(host, port)``."""
    spec = url[len("tcp://"):] if url.startswith("tcp://") else url
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected HOST:PORT or tcp://HOST:PORT, got {url!r}")
    return (host or "127.0.0.1", int(port))


def wait_ready(url: str, timeout: float = 10.0) -> None:
    """Block until the server accepts connections (startup races in scripts)."""
    host, port = parse_url(url)
    deadline = time.monotonic() + timeout
    while True:
        try:
            with socket.create_connection((host, port), timeout=1.0):
                return
        except OSError:
            if time.monotonic() >= deadline:
                raise TimeoutError(f"no service at {url} within {timeout}s") from None
            time.sleep(0.05)


def _edge_list(values: Iterable[int] | np.ndarray) -> list[int]:
    if isinstance(values, np.ndarray):
        return values.astype(np.int64, copy=False).tolist()
    return [int(v) for v in values]


class ServiceClient:
    """One blocking connection to a :class:`~repro.service.server.TriangleService`."""

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        self.url = url
        #: Connect timeout, and the default per-request deadline.
        self.timeout = timeout
        #: Trace id of the most recent request (echo-verified).
        self.last_trace_id: str | None = None
        host, port = parse_url(url)
        self._sock = socket.create_connection((host, port), timeout=timeout)

    # ------------------------------------------------------------------ plumbing
    def request(
        self, op: str, *, timeout: float | None = None, **fields: Any
    ) -> dict:
        """One request/response round trip; raises :class:`ServiceError`.

        ``timeout`` overrides the connect-time default for this request only
        (a count that drains a deep queue may deserve more patience than a
        ping).  Passes ``trace_id`` through when the caller set one and
        generates a fresh id otherwise; the server's echo is verified.
        """
        trace_id = fields.pop("trace_id", None) or new_trace_id()
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            send_frame(self._sock, {"op": op, "trace_id": trace_id, **fields})
            response = recv_frame(self._sock)
        except (ProtocolError, OSError) as exc:
            # The connection state is unknown mid-frame: poison it so the
            # next request fails fast instead of desynchronizing.
            self.close()
            raise ServiceError(
                "connection_lost",
                f"connection to {self.url} lost during {op!r}: "
                f"{type(exc).__name__}: {exc}",
                op=op,
                trace_id=trace_id,
            ) from exc
        finally:
            if timeout is not None:
                try:
                    self._sock.settimeout(self.timeout)
                except OSError:
                    pass  # already closed by the connection_lost path
        self.last_trace_id = trace_id
        echoed = response.get("trace_id")
        if echoed is not None and echoed != trace_id:
            raise ServiceError(
                "internal_error",
                f"server echoed trace_id {echoed!r} for request {trace_id!r}",
                op=op,
                trace_id=trace_id,
            )
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "internal_error"),
                response.get("message", "unspecified error"),
                op=op,
                trace_id=trace_id,
            )
        return response

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ----------------------------------------------------------------- protocol
    def ping(self) -> dict:
        return self.request("ping")

    def open_session(self, session: str, num_nodes: int, **options: Any) -> dict:
        """Options: num_colors, seed, misra_gries_k/t, batch_edges,
        memory_budget_bytes, max_queue_depth."""
        return self.request("open", session=session, num_nodes=int(num_nodes), **options)

    def insert(self, session: str, src, dst, *, timeout: float | None = None) -> dict:
        return self.request(
            "insert", session=session, src=_edge_list(src), dst=_edge_list(dst),
            timeout=timeout,
        )

    def delete(self, session: str, src, dst, *, timeout: float | None = None) -> dict:
        return self.request(
            "delete", session=session, src=_edge_list(src), dst=_edge_list(dst),
            timeout=timeout,
        )

    def insert_graph(
        self,
        session: str,
        graph,
        batch_edges: int = 10_000,
        *,
        timeout: float | None = None,
    ) -> list[dict]:
        """Stream a :class:`~repro.graph.coo.COOGraph` in bounded batches."""
        results = []
        for start in range(0, graph.num_edges, batch_edges):
            stop = min(start + batch_edges, graph.num_edges)
            results.append(
                self.insert(
                    session,
                    graph.src[start:stop],
                    graph.dst[start:stop],
                    timeout=timeout,
                )
            )
        return results

    def count(self, session: str, *, timeout: float | None = None) -> dict:
        return self.request("count", session=session, timeout=timeout)

    def stats(
        self, session: str | None = None, *, timeout: float | None = None
    ) -> dict:
        if session is None:
            return self.request("stats", timeout=timeout)
        return self.request("stats", session=session, timeout=timeout)

    def metrics(self, *, timeout: float | None = None) -> dict:
        """The server's ``repro-service-metrics/1`` observability snapshot."""
        return self.request("metrics", timeout=timeout)

    def close_session(self, session: str, *, timeout: float | None = None) -> dict:
        return self.request("close", session=session, timeout=timeout)
