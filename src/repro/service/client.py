"""Blocking client for the triangle-counting service.

A thin synchronous wrapper over the length-prefixed JSON protocol — the
shape a CLI tool or test wants: connect, call methods, get dicts back,
application errors raised as :class:`ServiceError` with the server's stable
error code attached.

    with ServiceClient("127.0.0.1:7707") as client:
        client.open_session("mygraph", num_nodes=1000, num_colors=4)
        client.insert("mygraph", src=[0, 1], dst=[1, 2])
        print(client.count("mygraph")["triangles"])
        client.close_session("mygraph")

One client drives one connection; requests on it are strictly sequential.
Open several clients for concurrency — per-session ordering is enforced
server-side by the session queue, so interleaving clients never changes a
session's final count.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Iterable

import numpy as np

from .protocol import recv_frame, send_frame

__all__ = ["ServiceClient", "ServiceError", "parse_url", "wait_ready"]


class ServiceError(Exception):
    """Application error from the server, carrying its protocol code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


def parse_url(url: str) -> tuple[str, int]:
    """``host:port`` or ``tcp://host:port`` -> ``(host, port)``."""
    spec = url[len("tcp://"):] if url.startswith("tcp://") else url
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected HOST:PORT or tcp://HOST:PORT, got {url!r}")
    return (host or "127.0.0.1", int(port))


def wait_ready(url: str, timeout: float = 10.0) -> None:
    """Block until the server accepts connections (startup races in scripts)."""
    host, port = parse_url(url)
    deadline = time.monotonic() + timeout
    while True:
        try:
            with socket.create_connection((host, port), timeout=1.0):
                return
        except OSError:
            if time.monotonic() >= deadline:
                raise TimeoutError(f"no service at {url} within {timeout}s") from None
            time.sleep(0.05)


def _edge_list(values: Iterable[int] | np.ndarray) -> list[int]:
    if isinstance(values, np.ndarray):
        return values.astype(np.int64, copy=False).tolist()
    return [int(v) for v in values]


class ServiceClient:
    """One blocking connection to a :class:`~repro.service.server.TriangleService`."""

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        self.url = url
        host, port = parse_url(url)
        self._sock = socket.create_connection((host, port), timeout=timeout)

    # ------------------------------------------------------------------ plumbing
    def request(self, op: str, **fields: Any) -> dict:
        """One request/response round trip; raises :class:`ServiceError`."""
        send_frame(self._sock, {"op": op, **fields})
        response = recv_frame(self._sock)
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "internal_error"),
                response.get("message", "unspecified error"),
            )
        return response

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ----------------------------------------------------------------- protocol
    def ping(self) -> dict:
        return self.request("ping")

    def open_session(self, session: str, num_nodes: int, **options: Any) -> dict:
        """Options: num_colors, seed, misra_gries_k/t, batch_edges,
        memory_budget_bytes, max_queue_depth."""
        return self.request("open", session=session, num_nodes=int(num_nodes), **options)

    def insert(self, session: str, src, dst) -> dict:
        return self.request(
            "insert", session=session, src=_edge_list(src), dst=_edge_list(dst)
        )

    def delete(self, session: str, src, dst) -> dict:
        return self.request(
            "delete", session=session, src=_edge_list(src), dst=_edge_list(dst)
        )

    def insert_graph(self, session: str, graph, batch_edges: int = 10_000) -> list[dict]:
        """Stream a :class:`~repro.graph.coo.COOGraph` in bounded batches."""
        results = []
        for start in range(0, graph.num_edges, batch_edges):
            stop = min(start + batch_edges, graph.num_edges)
            results.append(
                self.insert(session, graph.src[start:stop], graph.dst[start:stop])
            )
        return results

    def count(self, session: str) -> dict:
        return self.request("count", session=session)

    def stats(self, session: str | None = None) -> dict:
        if session is None:
            return self.request("stats")
        return self.request("stats", session=session)

    def close_session(self, session: str) -> dict:
        return self.request("close", session=session)
