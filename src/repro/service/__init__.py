"""Long-lived multi-session triangle-counting service (docs/service.md).

The host-side pipeline counts one run at a time; this package wraps the
dynamic counter in a service so many tenants can count concurrently:

* :mod:`repro.service.protocol` — length-prefixed JSON wire protocol;
* :mod:`repro.service.session` — :class:`GraphSession`: one tenant's
  counter, bounded batch queue, memory budget, NDJSON event stream;
* :mod:`repro.service.server` — :class:`TriangleService` and the
  ``repro-serve`` console entry (admission control, idle expiry);
* :mod:`repro.service.client` — the blocking :class:`ServiceClient` used by
  tests, ``repro-count --serve-url``, and the CI smoke driver.

Session counts are bit-identical to a standalone
:class:`~repro.core.dynamic.DynamicPimCounter` replaying the same batches —
the service adds scheduling and accounting around the counter, never
arithmetic.
"""

from .client import ServiceClient, ServiceError, parse_url, wait_ready
from .protocol import (
    CLIENT_ERROR_CODES,
    ERROR_CODES,
    MAX_FRAME_BYTES,
    ProtocolError,
    new_trace_id,
)
from .server import ServiceConfig, TriangleService
from .session import GraphSession, SessionError

__all__ = [
    "CLIENT_ERROR_CODES",
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "GraphSession",
    "ProtocolError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SessionError",
    "TriangleService",
    "new_trace_id",
    "parse_url",
    "wait_ready",
]
