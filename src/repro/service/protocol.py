"""Wire protocol of the triangle-counting service: length-prefixed JSON.

One message is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding one object.  Requests carry an ``op`` field and
op-specific arguments; responses carry ``ok`` (bool) plus either the result
fields or ``error`` (a stable machine-readable code from :data:`ERROR_CODES`)
and a human ``message``.  Edge batches travel as two parallel integer lists
``src``/``dst`` — small enough for JSON at the batch sizes the admission
layer accepts, and trivially portable to any client language.

The protocol is deliberately tiny (no streaming bodies, no multiplexing):
one request, one response, in order, per connection.  Concurrency comes from
opening several connections — each server-side session serializes its own
updates through a queue regardless of how many connections feed it, which is
what makes session counts bit-identical to a standalone
:class:`~repro.core.dynamic.DynamicPimCounter` replaying the same batches.

Request vocabulary (``op``):

``ping``
    Liveness probe; echoes ``server_time``.
``open``
    Create a named session: ``session``, ``num_nodes``, and optional
    ``num_colors``, ``seed``, ``misra_gries_k``/``misra_gries_t``,
    ``batch_edges``, ``memory_budget_bytes``.
``insert`` / ``delete``
    Apply one edge batch to ``session``: ``src``, ``dst`` lists.  Rejected
    with ``backpressure`` when the session's queue is full and with
    ``budget_exceeded`` when the routed footprint would break the budget.
``count``
    Current exact triangle count of ``session`` (drains pending batches
    first, so a count observes every batch accepted before it).
``stats``
    Per-session accounting (edges, rounds, bytes, simulated seconds), or
    the server-wide view when ``session`` is omitted.
``metrics``
    The server's observability snapshot (``repro-service-metrics/1``):
    per-op latency histograms, rejection counters by error code, and a
    per-session block with queue depth / resident bytes / latency
    summaries.  Purely observational — scraping never touches a counter.
``close``
    Graceful session end: frees the session's DPU state and finishes its
    NDJSON stream with a terminal ``run_end``.

**Request tracing.**  Any request may carry a ``trace_id`` string (the
client generates one via :func:`new_trace_id` when the caller does not);
the server echoes it verbatim in the response and stamps it into the
session's NDJSON ``heartbeat``/``estimate`` events, so one client log line
joins against the server-side stream.  Tracing is pure metadata: the
simulated numbers are bit-identical with or without it.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import uuid
from typing import Any

__all__ = [
    "CLIENT_ERROR_CODES",
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "encode_frame",
    "new_trace_id",
    "read_frame",
    "recv_frame",
    "send_frame",
    "write_frame",
]

#: Upper bound on one frame's JSON body; a frame header announcing more than
#: this is treated as a protocol violation (garbage or a foreign client), not
#: an allocation request.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: Stable error codes; clients switch on these, never on message text.
ERROR_CODES = (
    "admission_rejected",   # server at max_sessions, open refused
    "backpressure",         # session queue full, retry later
    "budget_exceeded",      # batch would break the session memory budget
    "connection_lost",      # client-side: socket dropped mid-request
    "duplicate_session",    # open with a name already in use
    "invalid_request",      # malformed frame/op/arguments
    "internal_error",       # unexpected server-side failure
    "session_closed",       # op raced a close/expiry
    "unknown_session",      # no session with that name
)

#: Codes only ever raised by the client library (the server cannot answer a
#: request whose connection is gone); the server's rejection counters cover
#: the rest of :data:`ERROR_CODES`.
CLIENT_ERROR_CODES = ("connection_lost",)


def new_trace_id() -> str:
    """A fresh request trace id (32 hex chars, collision-safe per client)."""
    return uuid.uuid4().hex


class ProtocolError(Exception):
    """Framing/shape violation on the wire (not an application error)."""


def encode_frame(obj: dict[str, Any]) -> bytes:
    """Serialize one message to its length-prefixed wire form."""
    body = json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


def _decode_body(body: bytes) -> dict[str, Any]:
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame body must be a JSON object")
    return obj


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame header announces {length} bytes (max {MAX_FRAME_BYTES})"
        )


# ------------------------------------------------------------------- asyncio
async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one message; ``None`` on clean EOF before a header."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection dropped mid-header") from exc
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection dropped mid-frame") from exc
    return _decode_body(body)


async def write_frame(writer: asyncio.StreamWriter, obj: dict[str, Any]) -> None:
    writer.write(encode_frame(obj))
    await writer.drain()


# ------------------------------------------------------------ blocking sockets
def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict[str, Any]:
    """Blocking read of one message (the sync client's receive path)."""
    (length,) = _HEADER.unpack(_recv_exactly(sock, _HEADER.size))
    _check_length(length)
    return _decode_body(_recv_exactly(sock, length))


def send_frame(sock: socket.socket, obj: dict[str, Any]) -> None:
    sock.sendall(encode_frame(obj))
