"""``repro-serve`` — the multi-session triangle-counting service.

A stdlib-``asyncio`` TCP server hosting many named
:class:`~repro.service.session.GraphSession`\\ s, each with its own simulated
PIM machine.  The server is the production consumer the ROADMAP's
"millions of users" direction asks for: concurrent clients open sessions,
stream insert/delete edge batches, and query exact counts, while the
admission layer keeps the host honest:

* ``max_sessions`` caps concurrent sessions (``admission_rejected``);
* each session's queue depth bounds buffered batches (``backpressure``);
* per-session memory budgets priced with the ``peak_routed_bytes``
  accounting reject oversized inserts (``budget_exceeded``);
* idle sessions past ``idle_timeout`` are reaped, freeing their DPU state —
  the same graceful path as an explicit ``close``.

With ``--event-dir``, every session writes a join-complete NDJSON stream
(``<dir>/<session>.ndjson``) in the ``repro-count --log-json`` schema, so a
live session can be tailed with ``repro-watch <dir>/<name>.ndjson --follow``
and audited afterwards with ``repro-validate --require-complete``.

Usage::

    repro-serve --port 7707 --max-sessions 16 --event-dir events/
    repro-serve --port 0 --ready-file addr.txt   # ephemeral port for CI
"""

from __future__ import annotations

import argparse
import asyncio
import os
import re
import signal
import sys
import time
from dataclasses import dataclass

from ..common.errors import ConfigurationError, GraphFormatError
from .protocol import ProtocolError, read_frame, write_frame
from .session import GraphSession, SessionError

__all__ = ["ServiceConfig", "TriangleService", "main"]

_SESSION_NAME = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}\Z")


@dataclass
class ServiceConfig:
    """Server-wide knobs (per-session limits are applied at ``open``)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands in `TriangleService.port`
    max_sessions: int = 8
    max_queue_depth: int = 8
    #: Default per-session memory budget; ``None`` = unbudgeted unless the
    #: ``open`` request names one.
    memory_budget_bytes: int | None = None
    #: Sessions idle longer than this many seconds are closed by the reaper;
    #: ``None`` disables expiry.
    idle_timeout: float | None = None
    #: Directory for per-session NDJSON event streams; ``None`` disables them.
    event_dir: str | None = None


class TriangleService:
    """Session registry + asyncio TCP front end."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.sessions: dict[str, GraphSession] = {}
        self.port: int | None = None
        self.started_at = time.time()
        self.sessions_opened = 0
        self.sessions_expired = 0
        self._server: asyncio.base_events.Server | None = None
        self._reaper: asyncio.Task | None = None
        self._connections: set[asyncio.Task] = set()

    # ---------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        if self.config.event_dir:
            os.makedirs(self.config.event_dir, exist_ok=True)
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.idle_timeout is not None:
            self._reaper = asyncio.get_running_loop().create_task(
                self._reap_idle(), name="session-reaper"
            )

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, then close every session."""
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass
            self._reaper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
            self._connections.clear()
        for name in list(self.sessions):
            session = self.sessions.pop(name)
            await session.close()

    async def _reap_idle(self) -> None:
        timeout = float(self.config.idle_timeout)
        interval = max(0.05, min(0.5, timeout / 4))
        while True:
            await asyncio.sleep(interval)
            for name, session in list(self.sessions.items()):
                if session.stats()["idle_seconds"] > timeout:
                    self.sessions.pop(name, None)
                    self.sessions_expired += 1
                    await session.close()

    # ----------------------------------------------------------------- clients
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as exc:
                    await write_frame(
                        writer,
                        {"ok": False, "error": "invalid_request", "message": str(exc)},
                    )
                    break
                if request is None:
                    break
                await write_frame(writer, await self._dispatch(request))
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None or (isinstance(op, str) and op.startswith("_")):
            return {
                "ok": False,
                "error": "invalid_request",
                "message": f"unknown op {op!r}",
            }
        try:
            result = await handler(request)
        except SessionError as exc:
            return {"ok": False, "error": exc.code, "message": exc.message}
        except (ConfigurationError, GraphFormatError, ValueError, TypeError) as exc:
            return {"ok": False, "error": "invalid_request", "message": str(exc)}
        except Exception as exc:  # keep the server alive on handler bugs
            return {
                "ok": False,
                "error": "internal_error",
                "message": f"{type(exc).__name__}: {exc}",
            }
        result.setdefault("ok", True)
        return result

    def _session(self, request: dict) -> GraphSession:
        name = request.get("session")
        session = self.sessions.get(name) if isinstance(name, str) else None
        if session is None:
            raise SessionError("unknown_session", f"no session named {name!r}")
        return session

    @staticmethod
    def _edge_arrays(request: dict) -> tuple[list, list]:
        src, dst = request.get("src"), request.get("dst")
        if not isinstance(src, list) or not isinstance(dst, list):
            raise SessionError(
                "invalid_request", "insert/delete need 'src' and 'dst' lists"
            )
        if len(src) != len(dst):
            raise SessionError(
                "invalid_request",
                f"src ({len(src)}) and dst ({len(dst)}) lengths differ",
            )
        return src, dst

    # --------------------------------------------------------------------- ops
    async def _op_ping(self, request: dict) -> dict:
        return {"server_time": time.time(), "sessions": len(self.sessions)}

    async def _op_open(self, request: dict) -> dict:
        name = request.get("session")
        if not isinstance(name, str) or not _SESSION_NAME.match(name):
            raise SessionError(
                "invalid_request",
                "session names are 1-64 chars of [A-Za-z0-9._-], "
                "starting alphanumeric",
            )
        if name in self.sessions:
            raise SessionError("duplicate_session", f"session {name!r} already open")
        if len(self.sessions) >= self.config.max_sessions:
            raise SessionError(
                "admission_rejected",
                f"server is at its {self.config.max_sessions}-session limit",
            )
        num_nodes = request.get("num_nodes")
        if not isinstance(num_nodes, int) or num_nodes < 1:
            raise SessionError("invalid_request", "open needs integer num_nodes >= 1")
        budget = request.get("memory_budget_bytes", self.config.memory_budget_bytes)
        event_log = (
            os.path.join(self.config.event_dir, f"{name}.ndjson")
            if self.config.event_dir
            else None
        )
        session = GraphSession(
            name,
            num_nodes,
            num_colors=int(request.get("num_colors", 4)),
            seed=int(request.get("seed", 0)),
            misra_gries_k=int(request.get("misra_gries_k", 0)),
            misra_gries_t=int(request.get("misra_gries_t", 0)),
            batch_edges=request.get("batch_edges"),
            memory_budget_bytes=budget,
            max_queue_depth=int(
                request.get("max_queue_depth", self.config.max_queue_depth)
            ),
            event_log=event_log,
        )
        session.start()
        self.sessions[name] = session
        self.sessions_opened += 1
        return {
            "session": name,
            "num_dpus": session.counter.partitioner.num_dpus,
            "event_log": event_log,
        }

    async def _op_insert(self, request: dict) -> dict:
        session = self._session(request)
        src, dst = self._edge_arrays(request)
        return await session.submit("insert", src, dst)

    async def _op_delete(self, request: dict) -> dict:
        session = self._session(request)
        src, dst = self._edge_arrays(request)
        return await session.submit("delete", src, dst)

    async def _op_count(self, request: dict) -> dict:
        return await self._session(request).count()

    async def _op_stats(self, request: dict) -> dict:
        if request.get("session") is not None:
            return self._session(request).stats()
        return {
            "sessions": sorted(self.sessions),
            "max_sessions": self.config.max_sessions,
            "sessions_opened": self.sessions_opened,
            "sessions_expired": self.sessions_expired,
            "uptime_seconds": time.time() - self.started_at,
        }

    async def _op_close(self, request: dict) -> dict:
        session = self._session(request)
        self.sessions.pop(session.name, None)
        return await session.close()


# ------------------------------------------------------------------ console
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve concurrent triangle-counting sessions over the "
        "length-prefixed JSON protocol (see docs/service.md).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7707,
                        help="TCP port; 0 picks an ephemeral port (printed, "
                             "and written to --ready-file)")
    parser.add_argument("--max-sessions", type=int, default=8,
                        help="admission control: concurrent session cap")
    parser.add_argument("--queue-depth", type=int, default=8,
                        help="per-session pending-batch cap before "
                             "backpressure rejections")
    parser.add_argument("--memory-budget", type=int, default=None, metavar="BYTES",
                        help="default per-session memory budget enforced "
                             "against the routed+resident byte accounting "
                             "(openers may override per session)")
    parser.add_argument("--idle-timeout", type=float, default=None, metavar="S",
                        help="reap sessions idle longer than S seconds")
    parser.add_argument("--event-dir", default=None, metavar="DIR",
                        help="write one join-complete NDJSON event stream "
                             "per session (tail with repro-watch)")
    parser.add_argument("--ready-file", default=None, metavar="PATH",
                        help="write HOST:PORT here once listening (lets "
                             "scripts find an ephemeral --port 0)")
    return parser


async def _serve(args) -> int:
    service = TriangleService(
        ServiceConfig(
            host=args.host,
            port=args.port,
            max_sessions=args.max_sessions,
            max_queue_depth=args.queue_depth,
            memory_budget_bytes=args.memory_budget,
            idle_timeout=args.idle_timeout,
            event_dir=args.event_dir,
        )
    )
    await service.start()
    print(f"repro-serve listening on {args.host}:{service.port}", flush=True)
    if args.ready_file:
        with open(args.ready_file, "w") as fh:
            fh.write(f"{args.host}:{service.port}\n")
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # non-Unix event loops
            pass
    await stop.wait()
    print("repro-serve shutting down", flush=True)
    await service.stop()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
