"""``repro-serve`` — the multi-session triangle-counting service.

A stdlib-``asyncio`` TCP server hosting many named
:class:`~repro.service.session.GraphSession`\\ s, each with its own simulated
PIM machine.  The server is the production consumer the ROADMAP's
"millions of users" direction asks for: concurrent clients open sessions,
stream insert/delete edge batches, and query exact counts, while the
admission layer keeps the host honest:

* ``max_sessions`` caps concurrent sessions (``admission_rejected``);
* each session's queue depth bounds buffered batches (``backpressure``);
* per-session memory budgets priced with the ``peak_routed_bytes``
  accounting reject oversized inserts (``budget_exceeded``);
* idle sessions past ``idle_timeout`` are reaped, freeing their DPU state —
  the same graceful path as an explicit ``close``.

With ``--event-dir``, every session writes a join-complete NDJSON stream
(``<dir>/<session>.ndjson``) in the ``repro-count --log-json`` schema, so a
live session can be tailed with ``repro-watch <dir>/<name>.ndjson --follow``
and audited afterwards with ``repro-validate --require-complete``.

Usage::

    repro-serve --port 7707 --max-sessions 16 --event-dir events/
    repro-serve --port 0 --ready-file addr.txt   # ephemeral port for CI
"""

from __future__ import annotations

import argparse
import asyncio
import os
import re
import signal
import sys
import time
from dataclasses import dataclass

from ..common.errors import ConfigurationError, GraphFormatError
from ..observability.promtext import SERVICE_METRICS_SCHEMA, write_snapshot
from ..telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    quantile_from_snapshot,
)
from .protocol import (
    CLIENT_ERROR_CODES,
    ERROR_CODES,
    ProtocolError,
    read_frame,
    write_frame,
)
from .session import GraphSession, SessionError

__all__ = ["ServiceConfig", "TriangleService", "main"]

_SESSION_NAME = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}\Z")


@dataclass
class ServiceConfig:
    """Server-wide knobs (per-session limits are applied at ``open``)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands in `TriangleService.port`
    max_sessions: int = 8
    max_queue_depth: int = 8
    #: Default per-session memory budget; ``None`` = unbudgeted unless the
    #: ``open`` request names one.
    memory_budget_bytes: int | None = None
    #: Sessions idle longer than this many seconds are closed by the reaper;
    #: ``None`` disables expiry.
    idle_timeout: float | None = None
    #: Directory for per-session NDJSON event streams; ``None`` disables them.
    event_dir: str | None = None
    #: ``False`` turns the observability plane off: no trace stamping into
    #: events, no metrics, no per-request timing — the parity baseline.
    observability: bool = True
    #: Write the metrics snapshot here on shutdown (and every
    #: ``metrics_interval`` seconds while serving).  ``.prom``/``.txt`` get
    #: Prometheus text format, anything else the JSON snapshot.
    metrics_out: str | None = None
    metrics_interval: float | None = None


class TriangleService:
    """Session registry + asyncio TCP front end."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.sessions: dict[str, GraphSession] = {}
        self.port: int | None = None
        self.started_at = time.time()
        self.sessions_opened = 0
        self.sessions_expired = 0
        self._server: asyncio.base_events.Server | None = None
        self._reaper: asyncio.Task | None = None
        self._metrics_writer: asyncio.Task | None = None
        self._connections: set[asyncio.Task] = set()
        self.metrics = MetricsRegistry()
        if self.config.observability:
            for code in ERROR_CODES:
                if code in CLIENT_ERROR_CODES:
                    continue  # the server never answers a dead connection
                self.metrics.counter(
                    f"service.rejections.{code}",
                    help="requests answered with this protocol error code",
                )
            self.metrics.gauge(
                "service.sessions_open", help="sessions currently registered"
            )
            self.metrics.counter("service.sessions_opened", help="sessions opened")
            self.metrics.counter(
                "service.sessions_expired", help="sessions reaped by idle expiry"
            )

    # ---------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        if self.config.event_dir:
            os.makedirs(self.config.event_dir, exist_ok=True)
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.idle_timeout is not None:
            self._reaper = asyncio.get_running_loop().create_task(
                self._reap_idle(), name="session-reaper"
            )
        if self.config.metrics_out and self.config.metrics_interval:
            self._metrics_writer = asyncio.get_running_loop().create_task(
                self._write_metrics_periodically(), name="metrics-writer"
            )

    async def _write_metrics_periodically(self) -> None:
        interval = max(0.05, float(self.config.metrics_interval))
        while True:
            await asyncio.sleep(interval)
            self.write_metrics()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, then close every session."""
        if self._metrics_writer is not None:
            self._metrics_writer.cancel()
            try:
                await self._metrics_writer
            except asyncio.CancelledError:
                pass
            self._metrics_writer = None
        # Final snapshot while sessions are still registered, so the written
        # document carries their per-session blocks.
        self.write_metrics()
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass
            self._reaper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
            self._connections.clear()
        for name in list(self.sessions):
            session = self.sessions.pop(name)
            await session.close()

    async def _reap_idle(self) -> None:
        timeout = float(self.config.idle_timeout)
        interval = max(0.05, min(0.5, timeout / 4))
        while True:
            await asyncio.sleep(interval)
            for name, session in list(self.sessions.items()):
                if session.stats()["idle_seconds"] > timeout:
                    self.sessions.pop(name, None)
                    self.sessions_expired += 1
                    if self.config.observability:
                        self.metrics.counter("service.sessions_expired").inc()
                        self.metrics.gauge("service.sessions_open").set(
                            len(self.sessions)
                        )
                    await session.close()

    # ----------------------------------------------------------------- clients
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as exc:
                    await write_frame(
                        writer,
                        {"ok": False, "error": "invalid_request", "message": str(exc)},
                    )
                    break
                if request is None:
                    break
                await write_frame(writer, await self._dispatch(request))
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: dict) -> dict:
        start = time.perf_counter()
        op = request.get("op")
        response = await self._dispatch_inner(op, request)
        if self.config.observability:
            self._observe_response(op, response, time.perf_counter() - start)
        trace_id = request.get("trace_id")
        if isinstance(trace_id, str):
            # Echo verbatim — on the error path too, so a rejected request
            # still joins against the client's log line.
            response["trace_id"] = trace_id
        return response

    async def _dispatch_inner(self, op, request: dict) -> dict:
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None or (isinstance(op, str) and op.startswith("_")):
            return {
                "ok": False,
                "error": "invalid_request",
                "message": f"unknown op {op!r}",
            }
        try:
            result = await handler(request)
        except SessionError as exc:
            return {"ok": False, "error": exc.code, "message": exc.message}
        except (ConfigurationError, GraphFormatError, ValueError, TypeError) as exc:
            return {"ok": False, "error": "invalid_request", "message": str(exc)}
        except Exception as exc:  # keep the server alive on handler bugs
            return {
                "ok": False,
                "error": "internal_error",
                "message": f"{type(exc).__name__}: {exc}",
            }
        result.setdefault("ok", True)
        return result

    def _observe_response(self, op, response: dict, elapsed: float) -> None:
        """Per-request server-side accounting (strictly observation-only)."""
        name = op if isinstance(op, str) and hasattr(self, f"_op_{op}") else "invalid"
        self.metrics.counter(
            f"service.requests.{name}", help="requests dispatched for this op"
        ).inc()
        self.metrics.histogram(
            f"service.op_latency_seconds.{name}",
            buckets=DEFAULT_LATENCY_BUCKETS,
            help="wall-clock dispatch latency for this op",
            volatile=True,
        ).observe(elapsed)
        if not response.get("ok"):
            code = response.get("error", "internal_error")
            self.metrics.counter(f"service.rejections.{code}").inc()

    def _session(self, request: dict) -> GraphSession:
        name = request.get("session")
        session = self.sessions.get(name) if isinstance(name, str) else None
        if session is None:
            raise SessionError("unknown_session", f"no session named {name!r}")
        return session

    @staticmethod
    def _edge_arrays(request: dict) -> tuple[list, list]:
        src, dst = request.get("src"), request.get("dst")
        if not isinstance(src, list) or not isinstance(dst, list):
            raise SessionError(
                "invalid_request", "insert/delete need 'src' and 'dst' lists"
            )
        if len(src) != len(dst):
            raise SessionError(
                "invalid_request",
                f"src ({len(src)}) and dst ({len(dst)}) lengths differ",
            )
        return src, dst

    # --------------------------------------------------------------------- ops
    async def _op_ping(self, request: dict) -> dict:
        return {"server_time": time.time(), "sessions": len(self.sessions)}

    async def _op_open(self, request: dict) -> dict:
        name = request.get("session")
        if not isinstance(name, str) or not _SESSION_NAME.match(name):
            raise SessionError(
                "invalid_request",
                "session names are 1-64 chars of [A-Za-z0-9._-], "
                "starting alphanumeric",
            )
        if name in self.sessions:
            raise SessionError("duplicate_session", f"session {name!r} already open")
        if len(self.sessions) >= self.config.max_sessions:
            raise SessionError(
                "admission_rejected",
                f"server is at its {self.config.max_sessions}-session limit",
            )
        num_nodes = request.get("num_nodes")
        if not isinstance(num_nodes, int) or num_nodes < 1:
            raise SessionError("invalid_request", "open needs integer num_nodes >= 1")
        budget = request.get("memory_budget_bytes", self.config.memory_budget_bytes)
        event_log = (
            os.path.join(self.config.event_dir, f"{name}.ndjson")
            if self.config.event_dir
            else None
        )
        session = GraphSession(
            name,
            num_nodes,
            num_colors=int(request.get("num_colors", 4)),
            seed=int(request.get("seed", 0)),
            misra_gries_k=int(request.get("misra_gries_k", 0)),
            misra_gries_t=int(request.get("misra_gries_t", 0)),
            batch_edges=request.get("batch_edges"),
            memory_budget_bytes=budget,
            max_queue_depth=int(
                request.get("max_queue_depth", self.config.max_queue_depth)
            ),
            event_log=event_log,
            observability=self.config.observability,
        )
        session.start()
        self.sessions[name] = session
        self.sessions_opened += 1
        if self.config.observability:
            self.metrics.counter("service.sessions_opened").inc()
            self.metrics.gauge("service.sessions_open").set(len(self.sessions))
        return {
            "session": name,
            "num_dpus": session.counter.partitioner.num_dpus,
            "event_log": event_log,
        }

    @staticmethod
    def _trace_id(request: dict) -> str | None:
        trace_id = request.get("trace_id")
        return trace_id if isinstance(trace_id, str) else None

    async def _op_insert(self, request: dict) -> dict:
        session = self._session(request)
        src, dst = self._edge_arrays(request)
        return await session.submit(
            "insert", src, dst, trace_id=self._trace_id(request)
        )

    async def _op_delete(self, request: dict) -> dict:
        session = self._session(request)
        src, dst = self._edge_arrays(request)
        return await session.submit(
            "delete", src, dst, trace_id=self._trace_id(request)
        )

    async def _op_count(self, request: dict) -> dict:
        return await self._session(request).count(trace_id=self._trace_id(request))

    async def _op_stats(self, request: dict) -> dict:
        if request.get("session") is not None:
            return self._session(request).stats()
        return {
            "sessions": sorted(self.sessions),
            "max_sessions": self.config.max_sessions,
            "sessions_opened": self.sessions_opened,
            "sessions_expired": self.sessions_expired,
            "uptime_seconds": time.time() - self.started_at,
        }

    async def _op_close(self, request: dict) -> dict:
        session = self._session(request)
        self.sessions.pop(session.name, None)
        if self.config.observability:
            self.metrics.gauge("service.sessions_open").set(len(self.sessions))
        return await session.close()

    async def _op_metrics(self, request: dict) -> dict:
        return self.metrics_snapshot()

    # ------------------------------------------------------------- exposition
    @staticmethod
    def _latency_summary(registry: MetricsRegistry, prefix: str) -> dict:
        """Per-op ``{n, mean, p50, p99}`` from the latency histograms.

        Plain floats on purpose: :func:`~repro.observability.history.flatten_numeric`
        turns them into trendable series (``…latency.<op>.p99``) without any
        histogram decoding.  The field is ``n`` rather than ``count`` so the
        op named ``count`` never produces a ``….count.count`` series that the
        generic exact-match trend rules would claim.
        """
        out: dict[str, dict] = {}
        for name in registry.names():
            if not name.startswith(prefix):
                continue
            instrument = registry.get(name)
            snap = instrument.snapshot()
            if snap.get("kind") != "histogram":
                continue
            out[name[len(prefix):]] = {
                "n": int(snap["count"]),
                "mean": float(instrument.mean),
                "p50": quantile_from_snapshot(snap, 0.50),
                "p99": quantile_from_snapshot(snap, 0.99),
            }
        return out

    def metrics_snapshot(self) -> dict:
        """The ``repro-service-metrics/1`` document the ``metrics`` op returns.

        Server-wide instruments plus one block per open session; latency
        histograms are accompanied by precomputed p50/p99 summaries so text
        consumers (``repro-top``, the trend gate) never decode buckets.
        """
        observing = self.config.observability
        if observing:
            self.metrics.gauge("service.sessions_open").set(len(self.sessions))
        sessions: dict[str, dict] = {}
        for name, session in sorted(self.sessions.items()):
            registry = session.telemetry.metrics
            pending = session._queue.qsize()
            resident = int(session.counter.resident_bytes)
            if session.observability:
                registry.gauge("session.queue_depth").set(pending)
                registry.gauge("session.resident_bytes").set(resident)
            sessions[name] = {
                "metrics": registry.export(),
                "latency": self._latency_summary(
                    registry, "session.op_latency_seconds."
                ),
                "pending": int(pending),
                "resident_bytes": resident,
                "rounds": int(session.batches_applied),
                "event_log": session.event_log_path,
            }
        return {
            "schema": SERVICE_METRICS_SCHEMA,
            "generated_at": time.time(),
            "uptime_seconds": time.time() - self.started_at,
            "observability": bool(observing),
            "max_sessions": int(self.config.max_sessions),
            "sessions_open": len(self.sessions),
            "service": self.metrics.export(),
            "latency": self._latency_summary(
                self.metrics, "service.op_latency_seconds."
            ),
            "sessions": sessions,
        }

    def write_metrics(self) -> str | None:
        """Write the snapshot to ``config.metrics_out`` (no-op when unset)."""
        if not self.config.metrics_out:
            return None
        write_snapshot(self.config.metrics_out, self.metrics_snapshot())
        return self.config.metrics_out


# ------------------------------------------------------------------ console
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve concurrent triangle-counting sessions over the "
        "length-prefixed JSON protocol (see docs/service.md).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7707,
                        help="TCP port; 0 picks an ephemeral port (printed, "
                             "and written to --ready-file)")
    parser.add_argument("--max-sessions", type=int, default=8,
                        help="admission control: concurrent session cap")
    parser.add_argument("--queue-depth", type=int, default=8,
                        help="per-session pending-batch cap before "
                             "backpressure rejections")
    parser.add_argument("--memory-budget", type=int, default=None, metavar="BYTES",
                        help="default per-session memory budget enforced "
                             "against the routed+resident byte accounting "
                             "(openers may override per session)")
    parser.add_argument("--idle-timeout", type=float, default=None, metavar="S",
                        help="reap sessions idle longer than S seconds")
    parser.add_argument("--event-dir", default=None, metavar="DIR",
                        help="write one join-complete NDJSON event stream "
                             "per session (tail with repro-watch)")
    parser.add_argument("--ready-file", default=None, metavar="PATH",
                        help="write HOST:PORT here once listening (lets "
                             "scripts find an ephemeral --port 0)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the metrics snapshot here on shutdown "
                             "(.prom/.txt = Prometheus text, else JSON); "
                             "combine with --metrics-interval for periodic "
                             "scrape files")
    parser.add_argument("--metrics-interval", type=float, default=None,
                        metavar="S",
                        help="rewrite --metrics-out every S seconds while "
                             "serving")
    parser.add_argument("--no-observability", action="store_true",
                        help="disable the observability plane (tracing, "
                             "metrics, per-request timing); counts are "
                             "bit-identical either way")
    return parser


async def _serve(args) -> int:
    service = TriangleService(
        ServiceConfig(
            host=args.host,
            port=args.port,
            max_sessions=args.max_sessions,
            max_queue_depth=args.queue_depth,
            memory_budget_bytes=args.memory_budget,
            idle_timeout=args.idle_timeout,
            event_dir=args.event_dir,
            observability=not args.no_observability,
            metrics_out=args.metrics_out,
            metrics_interval=args.metrics_interval,
        )
    )
    await service.start()
    print(f"repro-serve listening on {args.host}:{service.port}", flush=True)
    if args.ready_file:
        with open(args.ready_file, "w") as fh:
            fh.write(f"{args.host}:{service.port}\n")
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # non-Unix event loops
            pass
    await stop.wait()
    print("repro-serve shutting down", flush=True)
    await service.stop()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
