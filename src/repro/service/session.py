"""One named graph session of the triangle-counting service.

A :class:`GraphSession` owns a private :class:`~repro.core.dynamic.DynamicPimCounter`
(its own simulated PIM machine, coloring, and resident samples) plus the
machinery that makes it safe to drive from many concurrent connections:

* a bounded **edge-batch queue** — submissions beyond ``max_queue_depth``
  are rejected with ``backpressure`` instead of buffering unboundedly;
* an **admission check** run before a batch is queued: an insert whose
  routed footprint (``C`` replicas per edge, priced by the cost model's
  ``edge_bytes`` — the same accounting behind ``peak_routed_bytes``) would
  push the session past its ``memory_budget_bytes`` is rejected with
  ``budget_exceeded`` while already-accepted work proceeds untouched;
* a single **worker task** that applies queued batches in arrival order via
  ``asyncio.to_thread`` — per-session ordering is total, so the final count
  is bit-identical to a standalone counter replaying the same batches, while
  different sessions make progress concurrently;
* an optional **NDJSON event stream** (``run_start`` / per-batch
  ``heartbeat`` / ``estimate`` / terminal ``run_end``) in the exact schema
  of ``repro-count --log-json``, so ``repro-watch`` can tail a live session
  and ``repro-validate --require-complete`` can audit a finished one.

Counts requested through :meth:`count` travel through the same queue as the
edge batches, so a count observes every batch accepted before it — the
service's only ordering guarantee, and the one the tests pin.

**Observability plane.**  Each session carries its own
:class:`~repro.telemetry.spans.Telemetry`: every request becomes a span pair
(``queue_wait`` then ``execute``, wall clock plus the simulated seconds the
batch charged), its latency lands in per-op histograms, and admission
rejections increment counters keyed by protocol error code.  All of it is
observation-only — recorded *around* the counter, never inside it — so
counts and simulated clocks are bit-identical with the plane on or off
(``observability=False``), pinned by the differential parity test.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

import numpy as np

from ..core.dynamic import DynamicPimCounter
from ..graph.coo import COOGraph
from ..observability.logjson import NdjsonLogger
from ..telemetry.metrics import DEFAULT_LATENCY_BUCKETS
from ..telemetry.spans import SpanRecord, Telemetry

__all__ = ["GraphSession", "SessionError"]

#: Rolling window of per-request span pairs a session keeps in its tree
#: (histograms keep the full history; the tree is for recent-request drill-in).
MAX_TRACE_SPANS = 256

#: Error codes a session itself can reject with (subset of ERROR_CODES).
_SESSION_REJECT_CODES = (
    "backpressure", "budget_exceeded", "internal_error", "session_closed",
)


class SessionError(Exception):
    """Application-level rejection carrying a stable protocol error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


_CLOSE = object()  # queue sentinel: drain and stop the worker


class GraphSession:
    """A named, long-lived triangle-counting session."""

    def __init__(
        self,
        name: str,
        num_nodes: int,
        *,
        num_colors: int = 4,
        seed: int = 0,
        misra_gries_k: int = 0,
        misra_gries_t: int = 0,
        batch_edges: int | None = None,
        memory_budget_bytes: int | None = None,
        max_queue_depth: int = 8,
        event_log: str | None = None,
        observability: bool = True,
    ) -> None:
        self.name = name
        self.observability = bool(observability)
        self.telemetry = Telemetry(enabled=self.observability)
        if self.observability:
            metrics = self.telemetry.metrics
            for op in ("insert", "delete", "count"):
                metrics.counter(f"session.ops.{op}", help="requests executed")
                metrics.histogram(
                    f"session.op_latency_seconds.{op}",
                    buckets=DEFAULT_LATENCY_BUCKETS,
                    help="wall-clock execute time per request",
                    volatile=True,
                )
                metrics.histogram(
                    f"session.op_sim_seconds.{op}",
                    buckets=DEFAULT_LATENCY_BUCKETS,
                    help="simulated seconds charged per request",
                )
            metrics.histogram(
                "session.queue_wait_seconds",
                buckets=DEFAULT_LATENCY_BUCKETS,
                help="wall-clock time a request waited in the session queue",
                volatile=True,
            )
            for code in _SESSION_REJECT_CODES:
                metrics.counter(
                    f"session.rejections.{code}",
                    help="requests this session rejected with this error code",
                )
            metrics.gauge("session.queue_depth", help="pending queued requests")
            metrics.gauge(
                "session.resident_bytes", help="resident sample-set footprint"
            )
        self.counter = DynamicPimCounter(
            num_nodes,
            num_colors=num_colors,
            seed=seed,
            misra_gries_k=misra_gries_k,
            misra_gries_t=misra_gries_t,
            batch_edges=batch_edges,
        )
        self.memory_budget_bytes = (
            None if memory_budget_bytes is None else int(memory_budget_bytes)
        )
        self.max_queue_depth = int(max_queue_depth)
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=self.max_queue_depth)
        self._worker: asyncio.Task | None = None
        self._closing = False
        self._worker_error: BaseException | None = None
        #: Insert edges accepted but not yet applied (admission accounting).
        self._pending_insert_edges = 0
        self.batches_applied = 0
        self.edges_inserted = 0
        self.edges_removed = 0
        self.created_at = time.time()
        self.last_active = time.monotonic()
        self.logger = NdjsonLogger(event_log) if event_log else None
        if self.logger is not None:
            self.logger.event(
                "run_start",
                graph=name,
                num_nodes=int(num_nodes),
                num_edges=0,
                colors=int(num_colors),
                seed=int(seed),
            )

    # ----------------------------------------------------------------- worker
    def start(self) -> None:
        """Start the session's worker task (requires a running event loop)."""
        if self._worker is None:
            self._worker = asyncio.get_running_loop().create_task(
                self._run(), name=f"session:{self.name}"
            )

    async def _run(self) -> None:
        while True:
            item = await self._queue.get()
            if item is _CLOSE:
                break
            kind, payload, future, trace_id, enqueued_at = item
            queue_wait = time.perf_counter() - enqueued_at
            sim_before = self.counter.cumulative_seconds
            exec_start = time.perf_counter()
            try:
                if kind == "count":
                    result = self._count_now()
                else:
                    result = await asyncio.to_thread(self._apply, kind, payload)
            except BaseException as exc:  # resolve the waiter, then record
                self._worker_error = exc
                if not future.done():
                    future.set_exception(
                        SessionError("internal_error", f"{type(exc).__name__}: {exc}")
                    )
                if self.logger is not None:
                    self.logger.event(
                        "run_end", status="error", error=f"{type(exc).__name__}: {exc}"
                    )
                    self.logger.close()
                break
            timing = self._observe_request(
                kind,
                trace_id,
                queue_wait=queue_wait,
                exec_wall=time.perf_counter() - exec_start,
                sim_delta=self.counter.cumulative_seconds - sim_before,
            )
            self._emit_event(kind, result, trace_id, timing)
            if timing is not None:
                result = {**result, "timing": timing}
            if not future.done():
                future.set_result(result)

    def _observe_request(
        self,
        kind: str,
        trace_id: str | None,
        *,
        queue_wait: float,
        exec_wall: float,
        sim_delta: float,
    ) -> dict[str, float] | None:
        """Record one request's span pair + latency samples (no-op when off)."""
        if not self.observability:
            return None
        metrics = self.telemetry.metrics
        metrics.counter(f"session.ops.{kind}").inc()
        metrics.histogram(
            "session.queue_wait_seconds", buckets=DEFAULT_LATENCY_BUCKETS
        ).observe(queue_wait)
        metrics.histogram(
            f"session.op_latency_seconds.{kind}", buckets=DEFAULT_LATENCY_BUCKETS
        ).observe(exec_wall)
        metrics.histogram(
            f"session.op_sim_seconds.{kind}", buckets=DEFAULT_LATENCY_BUCKETS
        ).observe(sim_delta)
        metrics.gauge("session.queue_depth").set(self._queue.qsize())
        metrics.gauge("session.resident_bytes").set(self.counter.resident_bytes)
        attrs = {"op": kind}
        if trace_id:
            attrs["trace_id"] = trace_id
        self.telemetry.attach_records([
            SpanRecord("queue_wait", wall_seconds=queue_wait, attrs=attrs),
            SpanRecord(
                "execute",
                wall_seconds=exec_wall,
                sim_seconds=sim_delta,
                attrs=attrs,
            ),
        ])
        self.telemetry.prune(2 * MAX_TRACE_SPANS)
        return {
            "queue_wait_seconds": float(queue_wait),
            "execute_wall_seconds": float(exec_wall),
            "execute_sim_seconds": float(sim_delta),
        }

    def _emit_event(
        self,
        kind: str,
        result: dict[str, Any],
        trace_id: str | None,
        timing: dict[str, float] | None,
    ) -> None:
        """Write the request's NDJSON event (heartbeat for batches, estimate
        for counts), stamped with the trace id and latency when the
        observability plane is on — extra keys only, never changed ones."""
        if self.logger is None:
            return
        extra: dict[str, Any] = {}
        if self.observability:
            if trace_id:
                extra["trace_id"] = trace_id
            if timing is not None:
                extra["queue_wait_seconds"] = timing["queue_wait_seconds"]
                extra["execute_wall_seconds"] = timing["execute_wall_seconds"]
        if kind == "count":
            self.logger.event("estimate", estimate=float(result["triangles"]), **extra)
            return
        pending = self._queue.qsize()
        cumulative = float(result["cumulative_seconds"])
        rounds = max(1, int(result["round_index"]))
        self.logger.event(
            "heartbeat",
            batch=self.batches_applied - 1,
            batches_total=self.batches_applied + pending,
            edges_streamed=int(self.edges_inserted),
            edges_total=int(self.edges_inserted),
            peak_routed_bytes=int(self.counter.peak_routed_bytes),
            sim_elapsed_seconds=cumulative,
            eta_sim_seconds=float(pending * cumulative / rounds),
            **extra,
        )

    def _apply(self, kind: str, batch: COOGraph) -> dict[str, Any]:
        """Apply one batch on the worker thread; returns the round's view."""
        if kind == "insert":
            update = self.counter.apply_update(batch)
            self.edges_inserted += batch.num_edges
            self._pending_insert_edges -= batch.num_edges
        else:
            update = self.counter.apply_deletion(batch)
            self.edges_removed += update.removed_edges
        self.batches_applied += 1
        self.last_active = time.monotonic()
        return update.to_dict()

    def _count_now(self) -> dict[str, Any]:
        view = {
            "triangles": int(self.counter.triangles),
            "cumulative_edges": int(self.counter.cumulative_edges),
            "rounds": int(self.batches_applied),
            "sim_seconds": float(self.counter.cumulative_seconds),
        }
        self.last_active = time.monotonic()
        return view

    # -------------------------------------------------------------- admission
    def _reject(self, code: str, message: str) -> SessionError:
        """Count (when observing) and build one admission rejection."""
        if self.observability:
            self.telemetry.metrics.counter(f"session.rejections.{code}").inc()
        return SessionError(code, message)

    def _check_admission(self, kind: str, num_edges: int) -> None:
        if self._closing or self.counter.closed:
            raise self._reject(
                "session_closed", f"session {self.name!r} is closing"
            )
        if self._worker_error is not None:
            raise self._reject(
                "internal_error", f"session {self.name!r} worker died: "
                f"{type(self._worker_error).__name__}: {self._worker_error}"
            )
        if kind == "insert" and self.memory_budget_bytes is not None:
            projected = self.counter.resident_bytes + self.counter.routed_bytes_for(
                self._pending_insert_edges + num_edges
            )
            if projected > self.memory_budget_bytes:
                raise self._reject(
                    "budget_exceeded",
                    f"insert of {num_edges} edges would put session "
                    f"{self.name!r} at {projected} routed+resident bytes "
                    f"(budget {self.memory_budget_bytes})",
                )

    def _enqueue(
        self, kind: str, payload: Any, trace_id: str | None
    ) -> asyncio.Future:
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait(
                (kind, payload, future, trace_id, time.perf_counter())
            )
        except asyncio.QueueFull:
            raise self._reject(
                "backpressure",
                f"session {self.name!r} queue is full "
                f"({self.max_queue_depth} pending); retry later",
            ) from None
        return future

    # ------------------------------------------------------------- public ops
    async def submit(
        self,
        kind: str,
        src: np.ndarray,
        dst: np.ndarray,
        trace_id: str | None = None,
    ) -> dict:
        """Queue one edge batch (``kind`` is ``insert`` or ``delete``)."""
        batch = COOGraph(
            np.asarray(src, dtype=np.int64),
            np.asarray(dst, dtype=np.int64),
            self.counter.num_nodes,
            name=f"{self.name}:batch",
        )
        self._check_admission(kind, batch.num_edges)
        future = self._enqueue(kind, batch, trace_id)
        if kind == "insert":
            self._pending_insert_edges += batch.num_edges
        return await future

    async def count(self, trace_id: str | None = None) -> dict:
        """Exact triangle count after every batch accepted before this call."""
        self._check_admission("count", 0)
        return await self._enqueue("count", None, trace_id)

    def stats(self) -> dict:
        """Accounting snapshot (admission state, budgets, simulated time)."""
        return {
            "session": self.name,
            "num_nodes": int(self.counter.num_nodes),
            "num_colors": int(self.counter.num_colors),
            "num_dpus": int(self.counter.partitioner.num_dpus),
            "rounds": int(self.batches_applied),
            "pending": int(self._queue.qsize()),
            "max_queue_depth": self.max_queue_depth,
            "edges_inserted": int(self.edges_inserted),
            "edges_removed": int(self.edges_removed),
            "cumulative_edges": int(self.counter.cumulative_edges),
            "resident_bytes": int(self.counter.resident_bytes),
            "peak_routed_bytes": int(self.counter.peak_routed_bytes),
            "memory_budget_bytes": self.memory_budget_bytes,
            "sim_seconds": float(self.counter.cumulative_seconds),
            "created_at": self.created_at,
            "idle_seconds": max(0.0, time.monotonic() - self.last_active),
            "closed": bool(self._closing or self.counter.closed),
        }

    @property
    def event_log_path(self) -> str | None:
        return None if self.logger is None else self.logger.path

    async def close(self) -> dict:
        """Drain pending work, free the DPU state, finish the event stream."""
        if not self._closing:
            self._closing = True
            while self._worker is not None and not self._worker.done():
                try:
                    self._queue.put_nowait(_CLOSE)
                    break
                except asyncio.QueueFull:
                    # Worker is draining a full queue; yield until a slot opens.
                    await asyncio.sleep(0.01)
            if self._worker is not None:
                await self._worker
            # A crashed worker leaves queued futures unresolved; fail them so
            # no submitter hangs on a session that will never apply its batch.
            while not self._queue.empty():
                item = self._queue.get_nowait()
                if item is not _CLOSE and not item[2].done():
                    item[2].set_exception(
                        SessionError(
                            "session_closed",
                            f"session {self.name!r} closed before this batch ran",
                        )
                    )
            final = int(self.counter.triangles)
            if not self.counter.closed:
                self.counter.close()
            if self.logger is not None:
                # No-op if the crash path already wrote its error run_end.
                self.logger.event("run_end", status="ok", estimate=float(final))
                self.logger.close()
        return {"session": self.name, "triangles": int(self.counter.triangles)}
