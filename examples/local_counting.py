#!/usr/bin/env python
"""Local (per-node) triangle counting — the TRIEST-style extension.

Local counts answer the questions the paper's intro motivates (spam/sybil
detection, motif analysis): not just *how many* triangles, but *whose*.  The
coloring partition supports them unchanged: the same monochromatic,
reservoir, and uniform corrections apply element-wise to the per-node vector.

This example finds the most triangle-dense users of a social-network
analogue, exactly and under sampling, and derives local clustering
coefficients.

Run:  python examples/local_counting.py
"""

from __future__ import annotations

import numpy as np

from repro import PimTriangleCounter
from repro.graph import count_triangles_per_node, get_dataset, local_clustering


def main() -> None:
    graph = get_dataset("livejournal", tier="small")
    print(f"{graph.name}: {graph.num_nodes} nodes, {graph.num_edges} edges\n")

    counter = PimTriangleCounter(num_colors=6, seed=11)
    result = counter.count_local(graph)
    oracle = count_triangles_per_node(graph)
    assert np.array_equal(result.local_counts(), oracle)

    print(f"global count (= sum/3): {result.count}")
    print(f"gather-heavy count phase: {result.triangle_count_seconds * 1e3:.2f} ms\n")

    deg = graph.degrees()
    cc = local_clustering(graph, oracle)
    print("top nodes by triangle participation:")
    print(f"{'node':>8} {'triangles':>10} {'degree':>8} {'local clustering':>17}")
    for node, value in result.top_nodes(8):
        print(f"{node:>8} {value:>10.0f} {deg[node]:>8} {cc[node]:>17.3f}")

    # Under uniform sampling the per-node estimates stay unbiased in aggregate.
    approx = counter.with_options(uniform_p=0.25).count_local(graph)
    top_true = {n for n, _ in result.top_nodes(20)}
    top_est = {n for n, _ in approx.top_nodes(20)}
    overlap = len(top_true & top_est)
    print(
        f"\nuniform p=0.25: global estimate {approx.estimate:,.0f} "
        f"(truth {result.count:,}), top-20 overlap {overlap}/20 — "
        "heavy participants survive aggressive sampling."
    )


if __name__ == "__main__":
    main()
