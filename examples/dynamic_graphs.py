#!/usr/bin/env python
"""Dynamic graphs: why COO-native counting wins on update streams (Fig. 7).

Splits a hub-heavy graph into 10 update batches and processes them on three
platforms:

* CPU baseline — must re-convert the whole cumulative COO list to CSR before
  every counting round;
* GPU baseline — ingests COO directly, pays only per-round overhead;
* PIM implementation — routes only the new edges to the cores, merges them
  into each core's sorted sample, counts incrementally (with a streaming
  Misra-Gries remap keeping the hub penalty away).

Run:  python examples/dynamic_graphs.py
"""

from __future__ import annotations

from repro import DynamicPimCounter
from repro.baselines import CpuDynamicDriver, GpuDynamicDriver
from repro.graph import count_triangles, get_dataset


def main() -> None:
    graph = get_dataset("wikipedia", tier="small")
    batches = graph.split_batches(10)
    print(
        f"{graph.name}: {graph.num_edges} edges in {len(batches)} update batches\n"
    )

    cpu = CpuDynamicDriver(graph.num_nodes)
    gpu = GpuDynamicDriver(graph.num_nodes)
    pim = DynamicPimCounter(
        graph.num_nodes, num_colors=8, seed=3, misra_gries_k=1024, misra_gries_t=64
    )

    print(
        f"{'round':>5} {'edges':>8} {'triangles':>10} "
        f"{'CPU cum':>10} {'GPU cum':>10} {'PIM cum':>10}"
    )
    for batch in batches:
        c = cpu.apply_update(batch)
        g = gpu.apply_update(batch)
        p = pim.apply_update(batch)
        assert c.triangles_total == p.triangles_total
        print(
            f"{c.round_index:>5} {c.cumulative_edges:>8} {c.triangles_total:>10} "
            f"{c.cumulative_seconds * 1e3:>8.2f}ms {g.cumulative_seconds * 1e3:>8.2f}ms "
            f"{p.cumulative_seconds * 1e3:>8.2f}ms"
        )

    assert pim.triangles == count_triangles(graph)
    print(
        f"\nfinal: PIM {pim.cumulative_seconds * 1e3:.2f}ms vs "
        f"CPU {cpu.cumulative_seconds * 1e3:.2f}ms "
        f"({cpu.cumulative_seconds / pim.cumulative_seconds:.2f}x speedup) — "
        "the CPU's per-round CSR conversion is what the paper's Fig. 7 punishes."
    )


if __name__ == "__main__":
    main()
