#!/usr/bin/env python
"""High-degree nodes and the Misra-Gries cure (Figs. 3 and 5).

The ID-ordered edge-iterator kernel slows down badly on graphs with extreme
hubs: an edge (u, v) with a hub u drags the hub's whole forward adjacency
through every merge.  This example shows the effect and the fix:

1. throughput collapse on a hub graph vs a flat graph of equal size (Fig. 3);
2. a (K, t) sweep of the Misra-Gries remap restoring the throughput (Fig. 5);
3. a peek inside: the hub's forward degree before and after remapping.

Run:  python examples/high_degree_remap.py
"""

from __future__ import annotations

import numpy as np

from repro import PimTriangleCounter
from repro.common.rng import RngFactory
from repro.core import apply_remap, build_region_index, orient_and_sort, RemapTable
from repro.graph import erdos_renyi, hub_graph


def main() -> None:
    rngs = RngFactory(5)
    n, m = 30_000, 30_000
    flat = erdos_renyi(n, m, rngs.stream("flat"), name="flat").canonicalize()
    hubby = hub_graph(
        n, m - 3 * 9_000, 3, 9_000, rngs.stream("hub"), name="hubby"
    ).canonicalize()
    print(
        f"flat:  {flat.num_edges} edges, max degree {flat.degrees().max()}\n"
        f"hubby: {hubby.num_edges} edges, max degree {hubby.degrees().max()}\n"
    )

    # --- Fig. 3 in miniature: same size, very different throughput ----------
    counter = PimTriangleCounter(num_colors=6, seed=2)
    for g in (flat, hubby):
        r = counter.count(g)
        print(
            f"{g.name:<6} throughput {r.throughput_edges_per_ms():>10,.0f} edges/ms "
            f"(count phase {r.triangle_count_seconds * 1e3:.2f} ms)"
        )

    # --- Fig. 5 in miniature: sweep K and t on the hub graph ----------------
    print("\nMisra-Gries sweep on the hub graph:")
    base_ms = None
    for k, t in ((0, 0), (64, 1), (256, 4), (1024, 16)):
        c = PimTriangleCounter(num_colors=6, seed=2, misra_gries_k=k, misra_gries_t=t)
        r = c.count(hubby)
        ms = r.triangle_count_seconds * 1e3
        base_ms = base_ms or ms
        print(
            f"  K={k:<5} t={t:<3} count {ms:7.2f} ms  "
            f"speedup {base_ms / ms:5.2f}x  (T={r.count})"
        )

    # --- Why it works: the hub's forward adjacency empties ------------------
    hub = int(np.argmax(hubby.degrees()))
    u, v, _ = orient_and_sort(hubby.src, hubby.dst)
    before = int(build_region_index(u).degrees_of(np.array([hub]))[0])
    table = RemapTable(nodes=np.array([hub]), num_nodes=hubby.num_nodes)
    ru, rv = apply_remap(table, hubby.src, hubby.dst)
    u2, v2, _ = orient_and_sort(ru, rv)
    after = int(
        build_region_index(u2).degrees_of(np.array([table.remapped_num_nodes - 1]))[0]
    )
    print(
        f"\nhub node {hub}: forward degree {before} before remap, {after} after "
        "(highest ID = nothing left to iterate)."
    )


if __name__ == "__main__":
    main()
