#!/usr/bin/env python
"""Quickstart: count triangles on the simulated UPMEM PIM system.

Builds a small social-network-like graph, runs the exact PIM pipeline, and
prints the paper's three-phase time breakdown next to the ground truth.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import PimTriangleCounter
from repro.common.rng import RngFactory
from repro.common.units import fmt_time
from repro.graph import barabasi_albert, count_triangles, triadic_closure

def main() -> None:
    # 1. Build a graph (any COO edge list works; see repro.graph.io for files).
    rngs = RngFactory(seed=42)
    graph = barabasi_albert(5_000, 5, rngs.stream("build"), name="demo-social")
    graph = triadic_closure(graph, 8_000, rngs.stream("closure"))
    graph = graph.shuffle(rngs.stream("shuffle"))  # COO stream order
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # 2. Ground truth from the exact oracle.
    truth = count_triangles(graph)
    print(f"oracle triangle count: {truth}")

    # 3. The paper's algorithm: C colors -> binom(C+2,3) PIM cores,
    #    communication-free counting, monochromatic correction.
    counter = PimTriangleCounter(num_colors=6, seed=7)
    print(f"PIM cores used: {counter.num_dpus} (of {counter.system.config.total_dpus})")
    result = counter.count(graph)

    # 4. Result + the paper's phase breakdown (Sec. 4.1).
    print(f"PIM triangle count: {result.count}  (exact: {result.is_exact})")
    assert result.count == truth
    print(f"  setup:          {fmt_time(result.setup_seconds)}")
    print(f"  sample creation:{fmt_time(result.sample_creation_seconds):>12}")
    print(f"  triangle count: {fmt_time(result.triangle_count_seconds):>12}")
    print(f"  throughput:     {result.throughput_edges_per_ms():,.0f} edges/ms")


if __name__ == "__main__":
    main()
