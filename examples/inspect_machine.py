#!/usr/bin/env python
"""Looking inside the simulated machine: trace timeline + energy ledger.

Every run records an operation-level trace (allocation, kernel load,
transfers, launches) and per-DPU instruction/DMA ledgers.  This example
prints a run's timeline the way a profiler would, then compares the energy
ledger of two color configurations.

Run:  python examples/inspect_machine.py
"""

from __future__ import annotations

from repro import PimTriangleCounter
from repro.graph import get_dataset
from repro.pimsim import EnergyModel, render_timeline


def main() -> None:
    graph = get_dataset("kronecker23", tier="small")
    counter = PimTriangleCounter(num_colors=6, seed=1, misra_gries_k=256, misra_gries_t=8)
    result = counter.count(graph)
    print(f"{graph.name}: T = {result.count}\n")

    print("operation timeline (simulated time):")
    print(render_timeline(result.trace))

    print("\nDPU-side aggregate work:")
    k = result.kernel
    print(f"  instructions: {k.instructions / 1e6:.1f} M")
    print(f"  DMA traffic:  {k.dma_bytes / (1 << 20):.1f} MiB in {k.dma_requests} requests")
    print(f"  slowest core: {k.max_dpu_compute_seconds * 1e3:.2f} ms")
    print(f"  load balance (max/mean edges per core): {result.load_balance():.2f}")

    model = EnergyModel()
    print("\nenergy ledger across color counts (dynamic terms only):")
    print(f"{'C':>3} {'cores':>6} {'instr (M)':>10} {'mJ':>8} {'count ms':>9}")
    for colors in (2, 4, 8):
        r = PimTriangleCounter(num_colors=colors, seed=1).count(graph)
        energy = (
            r.kernel.instructions * model.instruction_j
            + r.kernel.dma_bytes * model.mram_byte_j
        )
        print(
            f"{colors:>3} {r.num_dpus:>6} {r.kernel.instructions / 1e6:>10.1f} "
            f"{energy * 1e3:>8.3f} {r.triangle_count_seconds * 1e3:>9.2f}"
        )
    print(
        "\nMore cores burn more total instructions (the C-fold edge duplication)"
        " but finish far sooner — the coloring's trade in one table."
    )


if __name__ == "__main__":
    main()
