#!/usr/bin/env python
"""Scaling study: colors, PIM cores, and machine shape (Fig. 4 + beyond).

Sweeps the color count C — the algorithm's only parallelism knob, using
binom(C+2, 3) PIM cores — on two graphs of different sizes, then sweeps the
*machine* (rank count) at fixed C to separate algorithmic scaling from
hardware scaling.

Run:  python examples/scaling_study.py
"""

from __future__ import annotations

from repro import PimTriangleCounter
from repro.coloring import num_triplets
from repro.graph import get_dataset
from repro.pimsim.config import PimSystemConfig


def sweep_colors(name: str, colors: tuple[int, ...]) -> None:
    graph = get_dataset(name, tier="small")
    print(f"\n{name} ({graph.num_edges} edges): color sweep")
    print(f"{'C':>3} {'DPUs':>5} {'setup':>9} {'sample':>9} {'count':>9} {'total':>9} {'speedup':>8}")
    base = None
    for c in colors:
        r = PimTriangleCounter(num_colors=c, seed=1).count(graph)
        base = base or r.total_seconds
        print(
            f"{c:>3} {num_triplets(c):>5} "
            f"{r.setup_seconds * 1e3:>7.2f}ms {r.sample_creation_seconds * 1e3:>7.2f}ms "
            f"{r.triangle_count_seconds * 1e3:>7.2f}ms {r.total_seconds * 1e3:>7.2f}ms "
            f"{base / r.total_seconds:>7.2f}x"
        )


def sweep_machine(name: str) -> None:
    """Same C, different rank granularity: the 56 allocated cores span more
    (smaller) ranks, changing both the allocation cost and how parallel
    transfers pad batches to the largest buffer per rank."""
    graph = get_dataset(name, tier="small")
    print(f"\n{name}: machine-shape sweep at C=6 (56 PIM cores)")
    print(f"{'shape':>12} {'ranks used':>11} {'setup':>9} {'sample':>9} {'total':>10}")
    for ranks, per_rank in ((56, 1), (7, 8), (4, 16), (1, 64)):
        config = PimSystemConfig(num_ranks=ranks, dpus_per_rank=per_rank)
        if config.total_dpus < num_triplets(6):
            continue
        r = PimTriangleCounter(num_colors=6, seed=1, system_config=config).count(graph)
        used = -(-num_triplets(6) // per_rank)
        print(
            f"{f'{ranks}x{per_rank}':>12} {used:>11} {r.setup_seconds * 1e3:>7.2f}ms "
            f"{r.sample_creation_seconds * 1e3:>7.2f}ms {r.total_seconds * 1e3:>8.2f}ms"
        )


def main() -> None:
    # Big graph: more cores keep helping.  Small graph: the paper's
    # LiveJournal inversion — overhead eventually wins (Fig. 4).
    sweep_colors("kronecker23", (2, 4, 6, 8, 12))
    sweep_colors("livejournal", (2, 4, 6, 8, 12))
    sweep_machine("kronecker23")


if __name__ == "__main__":
    main()
