#!/usr/bin/env python
"""Approximate counting: uniform sampling, reservoir sampling, and both.

Reproduces the paper's Secs. 3.2/3.3 trade-offs on one graph:

* uniform sampling (DOULION) discards edges at the host -> smaller transfers
  and faster counting, error grows as p falls (Table 3);
* reservoir sampling caps each PIM core's memory -> exactness degrades only
  as far as the memory forces it (Table 4);
* the two compose, shrinking transfers *and* memory at once.

Run:  python examples/approximate_counting.py
"""

from __future__ import annotations

from repro import PimTriangleCounter
from repro.graph import count_triangles, get_dataset
from repro.streaming import relative_error


def main() -> None:
    graph = get_dataset("kronecker23", tier="small")
    truth = count_triangles(graph)
    colors = 6
    print(f"{graph.name}: {graph.num_edges} edges, {truth} triangles\n")

    header = f"{'config':<34} {'estimate':>12} {'rel err':>9} {'samp+count':>11}"
    print(header)
    print("-" * len(header))

    def report(label: str, counter: PimTriangleCounter) -> None:
        result = counter.count(graph)
        err = relative_error(result.estimate, truth)
        active_ms = result.seconds_without_setup * 1e3
        print(f"{label:<34} {result.estimate:>12.0f} {err:>8.2%} {active_ms:>9.2f}ms")

    report("exact", PimTriangleCounter(colors, seed=1))

    # Uniform sampling sweep (Table 3's parameter).
    for p in (0.5, 0.25, 0.1):
        report(f"uniform p={p}", PimTriangleCounter(colors, uniform_p=p, seed=1))

    # Reservoir sweep: capacity as a fraction of the expected max per-core
    # load (6/C^2)|E| (Table 4's parameter).
    expected_max = 6 * graph.num_edges / colors**2
    for frac in (0.5, 0.25, 0.1):
        cap = max(3, int(frac * expected_max))
        report(
            f"reservoir f={frac} (M={cap})",
            PimTriangleCounter(colors, reservoir_capacity=cap, seed=1),
        )

    # Composition (the paper notes both can run concurrently).
    cap = max(3, int(0.25 * expected_max))
    report(
        f"uniform 0.25 + reservoir (M={cap})",
        PimTriangleCounter(colors, uniform_p=0.25, reservoir_capacity=cap, seed=1),
    )


if __name__ == "__main__":
    main()
