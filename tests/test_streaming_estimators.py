"""Correction algebra combining the three estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streaming.estimators import (
    CountCorrection,
    combine_dpu_counts,
    relative_error,
)


class TestCombine:
    def test_exact_path_sums(self):
        raw = np.array([3, 4, 5])
        ones = np.ones(3)
        mono = np.array([False, False, False])
        assert combine_dpu_counts(raw, ones, mono, num_colors=2) == 12.0

    def test_mono_correction(self):
        """C=3: each single-color core's count is subtracted C-1 = 2 times."""
        raw = np.array([10.0, 1.0, 2.0])
        mono = np.array([False, True, True])
        out = combine_dpu_counts(raw, np.ones(3), mono, num_colors=3)
        assert out == 13.0 - 2 * 3.0

    def test_single_color_no_double_count(self):
        """C=1: one core, its count IS the answer (subtract 0 times)."""
        raw = np.array([42.0])
        out = combine_dpu_counts(raw, np.ones(1), np.array([True]), num_colors=1)
        assert out == 42.0

    def test_reservoir_scaling_per_dpu(self):
        raw = np.array([10.0, 10.0])
        scales = np.array([1.0, 0.5])
        mono = np.array([False, False])
        out = combine_dpu_counts(raw, scales, mono, num_colors=2)
        assert out == 10.0 + 20.0

    def test_uniform_correction_applied_last(self):
        raw = np.array([8.0])
        out = combine_dpu_counts(
            raw, np.ones(1), np.array([False]), num_colors=2, uniform_p=0.5
        )
        assert out == pytest.approx(8.0 / 0.125)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            combine_dpu_counts(np.ones(2), np.ones(3), np.zeros(2, bool), num_colors=2)

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(ValueError):
            combine_dpu_counts(
                np.ones(1), np.zeros(1), np.zeros(1, bool), num_colors=2
            )

    def test_nan_raw_count_rejected(self):
        """A corrupt gather must fail loudly, not poison the estimate."""
        raw = np.array([3.0, np.nan, 5.0])
        with pytest.raises(ValueError, match="finite"):
            combine_dpu_counts(raw, np.ones(3), np.zeros(3, bool), num_colors=2)

    def test_inf_raw_count_rejected(self):
        raw = np.array([np.inf])
        with pytest.raises(ValueError, match="finite"):
            combine_dpu_counts(raw, np.ones(1), np.zeros(1, bool), num_colors=2)

    def test_nonfinite_scale_rejected(self):
        raw = np.array([3.0, 4.0])
        scales = np.array([1.0, np.nan])
        with pytest.raises(ValueError, match="finite"):
            combine_dpu_counts(raw, scales, np.zeros(2, bool), num_colors=2)
        with pytest.raises(ValueError, match="finite"):
            combine_dpu_counts(
                raw, np.array([1.0, np.inf]), np.zeros(2, bool), num_colors=2
            )

    @pytest.mark.parametrize("p", (np.nan, np.inf, 0.0, -0.5))
    def test_degenerate_uniform_p_rejected(self, p):
        with pytest.raises(ValueError):
            combine_dpu_counts(
                np.ones(1), np.ones(1), np.zeros(1, bool), num_colors=2, uniform_p=p
            )

    def test_dataclass_front_end(self):
        c = CountCorrection(num_colors=2, uniform_p=1.0)
        out = c.finalize(np.array([5.0]), np.ones(1), np.array([False]))
        assert out == 5.0


class TestRelativeError:
    def test_exact(self):
        assert relative_error(100, 100) == 0.0

    def test_basic(self):
        assert relative_error(90, 100) == pytest.approx(0.1)

    def test_zero_truth_zero_estimate(self):
        assert relative_error(0, 0) == 0.0

    def test_zero_truth_nonzero_estimate_is_100pct(self):
        assert relative_error(5, 0) == 1.0

    def test_symmetric_in_magnitude(self):
        assert relative_error(110, 100) == relative_error(90, 100)
