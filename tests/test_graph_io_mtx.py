"""Matrix Market reader (SuiteSparse format, the paper's V1r source)."""

from __future__ import annotations

import io

import pytest

from repro.common.errors import GraphFormatError
from repro.graph.io import read_matrix_market
from repro.graph.triangles import count_triangles

MTX_TRIANGLE = """%%MatrixMarket matrix coordinate pattern symmetric
% a triangle plus a pendant edge
4 4 4
1 2
2 3
1 3
3 4
"""


class TestReadMatrixMarket:
    def test_parses_triangle(self):
        g = read_matrix_market(io.StringIO(MTX_TRIANGLE))
        assert g.num_nodes == 4
        assert g.num_edges == 4
        assert count_triangles(g) == 1

    def test_indices_shifted_to_zero_based(self):
        g = read_matrix_market(io.StringIO(MTX_TRIANGLE))
        assert g.src.min() == 0

    def test_values_ignored(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 3.75\n"
        g = read_matrix_market(io.StringIO(text))
        assert g.num_edges == 1

    def test_rejects_empty(self):
        with pytest.raises(GraphFormatError):
            read_matrix_market(io.StringIO("% only comments\n"))

    def test_rejects_bad_size_line(self):
        with pytest.raises(GraphFormatError):
            read_matrix_market(io.StringIO("4 4\n1 2\n"))

    def test_rejects_wrong_entry_count(self):
        with pytest.raises(GraphFormatError):
            read_matrix_market(io.StringIO("3 3 2\n1 2\n"))

    def test_rejects_zero_based_input(self):
        with pytest.raises(GraphFormatError):
            read_matrix_market(io.StringIO("3 3 1\n0 2\n"))

    def test_rejects_non_integer(self):
        with pytest.raises(GraphFormatError):
            read_matrix_market(io.StringIO("3 3 1\na b\n"))

    def test_from_file(self, tmp_path):
        path = tmp_path / "v1r_like.mtx"
        path.write_text(MTX_TRIANGLE)
        g = read_matrix_market(path)
        assert g.name == "v1r_like"

    def test_rectangular_uses_max_dim(self):
        text = "%%MatrixMarket matrix coordinate pattern general\n2 5 1\n1 2\n"
        g = read_matrix_market(io.StringIO(text))
        assert g.num_nodes == 5
