"""Batched streaming ingestion (``batch_edges``): parity, bounds, telemetry.

The contract under test (see docs/architecture.md, "Batched ingest"):

* batched runs produce **bit-identical estimates** to the monolithic pass on
  the differential grid (both kernels x every execution engine), because the
  uniform keep-mask is drawn from one stream chunk-by-chunk, routing uses one
  fixed color hash, and reservoir offers index by the global ``seen`` counter;
* host routed-buffer memory is bounded: ``peak_routed_bytes`` tracks at most
  two chunks' routed copies (double buffering), not the whole stream's;
* the overlap model charges ``max(host, device)`` per steady-state batch, so
  the batched simulated time never exceeds host+device serialization;
* telemetry grows one ``batch[k]`` span per chunk plus ingest counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PimTriangleCounter
from repro.common.errors import ConfigurationError
from repro.core.host import PimTcOptions
from repro.core.ingest import DoubleBufferSchedule, iter_edge_batches, num_batches
from repro.graph.coo import COOGraph
from repro.graph.triangles import count_triangles
from repro.pimsim.config import EXECUTOR_NAMES
from repro.telemetry import Telemetry


def _count(graph, *, batch_edges=None, executor=None, telemetry=None, **opts):
    options = PimTcOptions(
        num_colors=opts.pop("num_colors", 3),
        seed=opts.pop("seed", 1),
        batch_edges=batch_edges,
        **opts,
    )
    counter = PimTriangleCounter(
        options=options, executor=executor, jobs=2, telemetry=telemetry
    )
    return counter.count(graph)


# --------------------------------------------------------------- ingest module
class TestIterEdgeBatches:
    def test_views_cover_stream_in_order(self):
        src = np.arange(10, dtype=np.int64)
        dst = np.arange(10, 20, dtype=np.int64)
        chunks = list(iter_edge_batches(src, dst, 4))
        assert [k for k, _, _ in chunks] == [0, 1, 2]
        assert [s.size for _, s, _ in chunks] == [4, 4, 2]
        assert np.array_equal(np.concatenate([s for _, s, _ in chunks]), src)
        assert np.array_equal(np.concatenate([d for _, _, d in chunks]), dst)
        # Views, not copies: no memory beyond the caller's arrays.
        assert all(s.base is src for _, s, _ in chunks)

    def test_empty_stream_yields_nothing(self):
        empty = np.empty(0, dtype=np.int64)
        assert list(iter_edge_batches(empty, empty, 5)) == []

    def test_rejects_nonpositive_batch(self):
        e = np.arange(3)
        with pytest.raises(ConfigurationError):
            list(iter_edge_batches(e, e, 0))
        with pytest.raises(ConfigurationError):
            num_batches(3, -1)

    def test_num_batches_is_ceil_division(self):
        assert num_batches(0, 4) == 0
        assert num_batches(4, 4) == 1
        assert num_batches(5, 4) == 2


class TestDoubleBufferSchedule:
    def test_steady_state_is_max_of_host_and_device(self):
        # h=2, d=3 per batch: after warm-up every step costs max(h, d) = 3.
        sched = DoubleBufferSchedule()
        deltas = [sched.step(2.0, 3.0) for _ in range(5)]
        assert deltas[0] == pytest.approx(5.0)  # first batch: no overlap yet
        for delta in deltas[1:]:
            assert delta == pytest.approx(3.0)
        assert sched.elapsed == pytest.approx(5.0 + 4 * 3.0)
        assert sched.serial_seconds == pytest.approx(5 * 5.0)
        assert sched.saved_seconds == pytest.approx(5 * 5.0 - sched.elapsed)

    def test_never_faster_than_either_resource(self):
        rng = np.random.default_rng(3)
        sched = DoubleBufferSchedule()
        hs, ds = rng.random(20), rng.random(20)
        for h, d in zip(hs, ds):
            sched.step(float(h), float(d))
        assert sched.elapsed >= float(hs.sum()) - 1e-12
        assert sched.elapsed >= float(ds.sum()) - 1e-12
        assert sched.elapsed <= sched.serial_seconds + 1e-12


# ---------------------------------------------------------- end-to-end parity
class TestBatchedMonolithicParity:
    @pytest.mark.parametrize("kernel", ("merge", "probe"))
    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    def test_differential_grid_bit_identical(self, small_graph, kernel, executor):
        mono = _count(small_graph, executor=executor, kernel_variant=kernel)
        batched = _count(
            small_graph, batch_edges=48, executor=executor, kernel_variant=kernel
        )
        assert batched.estimate == mono.estimate == count_triangles(small_graph)
        assert np.array_equal(batched.per_dpu_counts, mono.per_dpu_counts)

    @pytest.mark.parametrize("batch", (1, 7, 64, 10**9))
    def test_any_chunking_same_estimate(self, small_graph, batch):
        mono = _count(small_graph)
        batched = _count(small_graph, batch_edges=batch)
        assert batched.estimate == mono.estimate

    def test_uniform_sampling_parity(self, small_graph):
        # Chunked keep-mask draws are consecutive draws from the same stream:
        # estimates match bitwise even though each run keeps a random subset.
        mono = _count(small_graph, uniform_p=0.5)
        batched = _count(small_graph, batch_edges=37, uniform_p=0.5)
        assert batched.estimate == mono.estimate
        assert batched.meta["edges_kept"] == mono.meta["edges_kept"]

    def test_misra_gries_parity(self, small_graph):
        mono = _count(small_graph, misra_gries_k=64, misra_gries_t=8)
        batched = _count(
            small_graph, batch_edges=50, misra_gries_k=64, misra_gries_t=8
        )
        assert batched.estimate == mono.estimate

    def test_overflow_engine_invariance(self, small_graph):
        # Reservoir overflow draws RNG in a chunk-dependent layout, so batched
        # vs monolithic is distribution- (not bit-) identical — but across
        # engines the batched run must stay bit-identical.
        runs = [
            _count(small_graph, batch_edges=64, executor=ex, reservoir_capacity=100)
            for ex in EXECUTOR_NAMES
        ]
        estimates = {r.estimate for r in runs}
        assert len(estimates) == 1
        totals = {r.total_seconds for r in runs}
        assert len(totals) == 1

    def test_local_counts_parity(self, small_graph):
        counter = PimTriangleCounter(num_colors=3, seed=1)
        mono = counter.count_local(small_graph)
        batched = PimTriangleCounter(num_colors=3, seed=1, batch_edges=40).count_local(
            small_graph
        )
        assert batched.estimate == mono.estimate
        assert np.array_equal(batched.local_estimates, mono.local_estimates)

    def test_empty_graph(self):
        g = COOGraph.from_edges([], num_nodes=0)
        result = _count(g, batch_edges=8)
        assert result.estimate == 0.0
        assert result.meta["ingest_batches"] == 0


# --------------------------------------------------------------- memory bound
class TestBoundedMemory:
    def test_peak_routed_bytes_bounded_by_two_windows(self, small_graph):
        batch = 32
        result = _count(small_graph, batch_edges=batch)
        opts = PimTcOptions(num_colors=3)
        # Double buffering: at most two chunks resident, each duplicated at
        # most C-fold, edge_bytes per routed copy.
        bound = 2 * batch * 3 * opts.kernel_costs.edge_bytes
        assert 0 < result.meta["peak_routed_bytes"] <= bound

    def test_peak_shrinks_with_batch_size(self, small_graph):
        mono = _count(small_graph)
        batched = _count(small_graph, batch_edges=32)
        assert batched.meta["peak_routed_bytes"] < mono.meta["peak_routed_bytes"]
        assert mono.meta["ingest_batches"] == 1
        assert batched.meta["ingest_batches"] == num_batches(small_graph.num_edges, 32)


# ----------------------------------------------------------------- telemetry
class TestIngestTelemetry:
    def test_per_batch_spans_and_counters(self, small_graph):
        tel = Telemetry()
        result = _count(small_graph, batch_edges=100, telemetry=tel)
        paths = [path for path, _ in tel.span_signature()]
        batches = result.meta["ingest_batches"]
        for k in range(batches):
            assert any(path.endswith(f"batch[{k}]") for path in paths), paths
        snap = tel.metrics.snapshot()
        assert snap["host.ingest.batches"]["value"] == batches
        assert snap["host.ingest.peak_routed_bytes"]["value"] == (
            result.meta["peak_routed_bytes"]
        )
        assert snap["host.ingest.overlap_saved_seconds"]["value"] >= 0.0

    def test_batch_spans_carry_timing_attrs(self, small_graph):
        tel = Telemetry()
        _count(small_graph, batch_edges=100, telemetry=tel)
        batch_spans = [s for s in tel.root.walk() if s.name.startswith("batch[")]
        assert batch_spans
        for span in batch_spans:
            assert span.attrs["host_seconds"] > 0
            assert span.attrs["device_seconds"] > 0
            assert span.attrs["routed_bytes"] > 0


# ------------------------------------------------------------------- plumbing
class TestConfiguration:
    def test_options_validation(self):
        with pytest.raises(ConfigurationError):
            PimTcOptions(batch_edges=0)
        assert PimTcOptions().batch_edges is None

    def test_env_fallback(self, small_graph, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_EDGES", "64")
        counter = PimTriangleCounter(num_colors=3, seed=1)
        assert counter.options.batch_edges == 64
        result = counter.count(small_graph)
        assert result.meta["ingest_batches"] == num_batches(small_graph.num_edges, 64)

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_EDGES", "64")
        counter = PimTriangleCounter(num_colors=3, batch_edges=7)
        assert counter.options.batch_edges == 7

    def test_cli_flag(self, small_graph, tmp_path, capsys):
        from repro.cli import main
        from repro.graph.io import write_edge_list

        path = tmp_path / "g.el"
        write_edge_list(small_graph, path)
        assert main([str(path), "--colors", "3", "--batch-edges", "64"]) == 0
        out = capsys.readouterr().out
        assert f"triangles (exact): {count_triangles(small_graph)}" in out
