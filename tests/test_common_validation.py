"""Argument validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.validation import (
    check_int_array,
    check_positive,
    check_probability,
    require,
)


class TestRequire:
    def test_passes(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ConfigurationError, match="boom"):
            require(False, "boom")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 5) == 5

    def test_accepts_numpy_integer(self):
        assert check_positive("x", np.int64(5)) == 5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", 0)

    def test_accepts_zero_when_not_strict(self):
        assert check_positive("x", 0, strict=False) == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", -1, strict=False)

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", 1.5)


class TestCheckProbability:
    def test_accepts_one(self):
        assert check_probability("p", 1.0) == 1.0

    def test_accepts_small(self):
        assert check_probability("p", 0.01) == 0.01

    def test_rejects_zero_by_default(self):
        with pytest.raises(ConfigurationError):
            check_probability("p", 0.0)

    def test_allows_zero_when_asked(self):
        assert check_probability("p", 0.0, allow_zero=True) == 0.0

    def test_rejects_above_one(self):
        with pytest.raises(ConfigurationError):
            check_probability("p", 1.01)

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            check_probability("p", "half")


class TestCheckIntArray:
    def test_passes_int_array(self):
        out = check_int_array("a", np.array([1, 2, 3]))
        assert out.dtype.kind == "i"

    def test_converts_integral_floats(self):
        out = check_int_array("a", np.array([1.0, 2.0]))
        assert out.dtype == np.int64

    def test_rejects_fractional(self):
        with pytest.raises(ConfigurationError):
            check_int_array("a", np.array([1.5]))

    def test_rejects_wrong_rank(self):
        with pytest.raises(ConfigurationError):
            check_int_array("a", np.zeros((2, 2)))

    def test_rank_override(self):
        out = check_int_array("a", np.zeros((2, 2), dtype=np.int64), ndim=2)
        assert out.shape == (2, 2)
