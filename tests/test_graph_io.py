"""Edge-list and binary graph IO."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.common.errors import GraphFormatError
from repro.graph.io import load_npz, read_edge_list, save_npz, write_edge_list


class TestReadEdgeList:
    def test_basic(self):
        g = read_edge_list(io.StringIO("0 1\n1 2\n"))
        assert g.num_edges == 2
        assert g.num_nodes == 3

    def test_comments_and_blanks(self):
        text = "# comment\n% matrix-market style\n\n0 1\n"
        g = read_edge_list(io.StringIO(text))
        assert g.num_edges == 1

    def test_extra_fields_ignored(self):
        g = read_edge_list(io.StringIO("0 1 3.5 1200\n"))
        assert g.num_edges == 1

    def test_explicit_num_nodes(self):
        g = read_edge_list(io.StringIO("0 1\n"), num_nodes=10)
        assert g.num_nodes == 10

    def test_rejects_single_field(self):
        with pytest.raises(GraphFormatError, match="line 1"):
            read_edge_list(io.StringIO("42\n"))

    def test_rejects_non_integer(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(io.StringIO("a b\n"))

    def test_from_file(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1\n2 3\n")
        g = read_edge_list(path)
        assert g.num_edges == 2
        assert g.name == "graph"


class TestRoundTrips:
    def test_text_round_trip(self, tmp_path, small_graph):
        path = tmp_path / "g.txt"
        write_edge_list(small_graph, path)
        back = read_edge_list(path, num_nodes=small_graph.num_nodes)
        np.testing.assert_array_equal(back.src, small_graph.src)
        np.testing.assert_array_equal(back.dst, small_graph.dst)

    def test_npz_round_trip(self, tmp_path, small_graph):
        path = tmp_path / "g.npz"
        save_npz(small_graph, path)
        back = load_npz(path)
        np.testing.assert_array_equal(back.src, small_graph.src)
        np.testing.assert_array_equal(back.dst, small_graph.dst)
        assert back.num_nodes == small_graph.num_nodes
        assert back.name == small_graph.name

    def test_write_without_header(self, tmp_path, triangle_graph):
        path = tmp_path / "g.txt"
        write_edge_list(triangle_graph, path, header=False)
        assert not path.read_text().startswith("#")
