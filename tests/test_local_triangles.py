"""Local (per-node) triangle counting: oracle, kernel, pipeline."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings

from repro import PimTriangleCounter
from repro.core.local import local_counts_from_arrays
from repro.core.result import LocalTcResult
from repro.graph.coo import COOGraph
from repro.graph.datasets import get_dataset
from repro.graph.generators import erdos_renyi, hub_graph
from repro.graph.local_triangles import count_triangles_per_node, local_clustering
from repro.graph.triangles import count_triangles

from conftest import graph_strategy


def nx_locals(g: COOGraph) -> np.ndarray:
    G = nx.Graph()
    G.add_nodes_from(range(g.num_nodes))
    G.add_edges_from(g.edges().tolist())
    return np.array([t for _, t in sorted(nx.triangles(G).items())])


class TestOracle:
    def test_triangle_plus_pendant(self, triangle_graph):
        assert count_triangles_per_node(triangle_graph).tolist() == [1, 1, 1, 0]

    def test_sum_is_three_times_global(self, small_graph):
        local = count_triangles_per_node(small_graph)
        assert local.sum() == 3 * count_triangles(small_graph)

    def test_empty(self):
        g = COOGraph.from_edges([], num_nodes=5)
        assert count_triangles_per_node(g).tolist() == [0] * 5

    @pytest.mark.parametrize("seed", range(3))
    def test_vs_networkx(self, rngs, seed):
        g = erdos_renyi(60, 320, rngs.stream("l", seed)).canonicalize()
        np.testing.assert_array_equal(count_triangles_per_node(g), nx_locals(g))

    @settings(max_examples=25, deadline=None)
    @given(g=graph_strategy(max_nodes=20, max_edges=70))
    def test_property_vs_networkx(self, g):
        np.testing.assert_array_equal(count_triangles_per_node(g), nx_locals(g))

    def test_chunking_invariant(self, small_graph):
        full = count_triangles_per_node(small_graph)
        tiny = count_triangles_per_node(small_graph, chunk_nnz=64)
        np.testing.assert_array_equal(full, tiny)


class TestLocalClustering:
    def test_triangle_node_coefficients(self, triangle_graph):
        cc = local_clustering(triangle_graph)
        # Nodes 0,1 have degree 2 and 1 triangle -> 1.0; node 2 deg 3 -> 1/3.
        assert cc[0] == pytest.approx(1.0)
        assert cc[2] == pytest.approx(1 / 3)
        assert cc[3] == 0.0

    def test_bounded_by_one(self, small_graph):
        assert local_clustering(small_graph).max() <= 1.0 + 1e-12

    def test_vs_networkx(self, rngs):
        g = erdos_renyi(50, 250, rngs.stream("cc")).canonicalize()
        G = nx.Graph()
        G.add_nodes_from(range(g.num_nodes))
        G.add_edges_from(g.edges().tolist())
        ref = np.array([c for _, c in sorted(nx.clustering(G).items())])
        np.testing.assert_allclose(local_clustering(g), ref, atol=1e-12)


class TestKernelHelper:
    def test_matches_oracle_on_sample(self, small_graph):
        got = local_counts_from_arrays(
            small_graph.src, small_graph.dst, small_graph.num_nodes
        )
        np.testing.assert_array_equal(got, count_triangles_per_node(small_graph))

    def test_unoriented_input(self):
        g = COOGraph.from_edges([(1, 0), (2, 1), (0, 2)], num_nodes=3)
        got = local_counts_from_arrays(g.src, g.dst, 3)
        assert got.tolist() == [1, 1, 1]


class TestPimLocalPipeline:
    @pytest.mark.parametrize("colors", [1, 2, 4])
    def test_exact_local_counts(self, small_graph, colors):
        result = PimTriangleCounter(num_colors=colors, seed=3).count_local(small_graph)
        assert isinstance(result, LocalTcResult)
        np.testing.assert_array_equal(
            result.local_counts(), count_triangles_per_node(small_graph)
        )
        assert result.count == count_triangles(small_graph)

    def test_with_remap_exact(self, rngs):
        g = hub_graph(400, 600, 1, 200, rngs.stream("lr")).canonicalize()
        result = PimTriangleCounter(
            num_colors=3, seed=3, misra_gries_k=64, misra_gries_t=2
        ).count_local(g)
        np.testing.assert_array_equal(result.local_counts(), count_triangles_per_node(g))

    def test_uniform_sampling_estimates(self, rngs):
        g = erdos_renyi(150, 2500, rngs.stream("lu")).canonicalize()
        result = PimTriangleCounter(num_colors=3, seed=3, uniform_p=0.5).count_local(g)
        truth = count_triangles(g)
        assert abs(result.estimate - truth) / truth < 0.5
        assert result.local_estimates.sum() == pytest.approx(3 * result.estimate)

    def test_reservoir_estimates(self, rngs):
        g = erdos_renyi(150, 2500, rngs.stream("lres")).canonicalize()
        cap = int(0.5 * 6 * g.num_edges / 9)
        result = PimTriangleCounter(
            num_colors=3, seed=4, reservoir_capacity=cap
        ).count_local(g)
        truth = count_triangles(g)
        assert abs(result.estimate - truth) / truth < 0.5

    def test_top_nodes_ordering(self):
        g = get_dataset("wikipedia", "tiny")
        result = PimTriangleCounter(num_colors=3, seed=1).count_local(g)
        top = result.top_nodes(5)
        values = [v for _, v in top]
        assert values == sorted(values, reverse=True)
        oracle = count_triangles_per_node(g)
        assert oracle[top[0][0]] == oracle.max()

    def test_local_gather_is_heavier_than_global(self, small_graph):
        counter = PimTriangleCounter(num_colors=3, seed=1)
        glob = counter.count(small_graph)
        loc = counter.count_local(small_graph)
        assert loc.triangle_count_seconds > glob.triangle_count_seconds

    def test_scalar_gather_cost_parity_with_global(self, small_graph):
        """The local path reads ``triangle_count`` through the same gather as
        the global path — not a free ``mram.load`` — so it must emit the
        identical transfer event (same simulated seconds and payload bytes).
        """

        def scalar_gathers(result):
            return [
                (e.seconds, e.payload_bytes)
                for e in result.trace.events
                if e.phase == "triangle_count"
                and e.kind == "gather"
                and e.detail == "triangle_count"
            ]

        glob = PimTriangleCounter(num_colors=3, seed=1).count(small_graph)
        loc = PimTriangleCounter(num_colors=3, seed=1).count_local(small_graph)
        glob_events = scalar_gathers(glob)
        loc_events = scalar_gathers(loc)
        assert len(glob_events) == 1
        assert loc_events == glob_events
        # And the totals it transported are the global path's, element-wise.
        assert np.array_equal(loc.per_dpu_counts, glob.per_dpu_counts)

    def test_scalar_gather_charges_mram_reads(self, small_graph):
        """Gathering the count must bump the device-side read accounting
        (the old ``count_read=False`` path left it untouched)."""
        loc = PimTriangleCounter(num_colors=3, seed=1).count_local(small_graph)
        gathers = [
            e
            for e in loc.trace.events
            if e.kind == "gather" and e.detail == "triangle_count"
        ]
        assert gathers and all(e.seconds > 0 and e.payload_bytes > 0 for e in gathers)
