"""The fuzz families themselves: promised counts, determinism, adversity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.triangles import count_triangles
from repro.testing.strategies import (
    CASE_FAMILIES,
    FAMILY_NAMES,
    adversarial_stream,
    graph_cases,
    make_case,
    planted_triangles,
    sample_case,
)


class TestFamilies:
    @pytest.mark.parametrize("family", FAMILY_NAMES)
    def test_known_counts_hold(self, family):
        """make_case itself asserts exact == oracle; run it across seeds."""
        for seed in range(8):
            case = make_case(family, np.random.default_rng(seed))
            assert case.graph.is_canonical()
            if case.exact is not None:
                assert count_triangles(case.graph) == case.exact

    @pytest.mark.parametrize("family", FAMILY_NAMES)
    def test_deterministic_in_seed(self, family):
        a = make_case(family, np.random.default_rng(99))
        b = make_case(family, np.random.default_rng(99))
        assert a.fingerprint() == b.fingerprint()
        np.testing.assert_array_equal(a.graph.src, b.graph.src)
        np.testing.assert_array_equal(a.graph.dst, b.graph.dst)

    def test_sample_case_covers_every_family(self):
        seen = set()
        rng = np.random.default_rng(0)
        for _ in range(400):
            seen.add(sample_case(rng).family)
            if seen == set(FAMILY_NAMES):
                break
        assert seen == set(FAMILY_NAMES)

    def test_registry_consistent(self):
        assert FAMILY_NAMES == tuple(CASE_FAMILIES)


class TestPlantedTriangles:
    def test_exact_count_by_construction(self):
        rng = np.random.default_rng(5)
        g = planted_triangles(7, 40, rng).canonicalize()
        assert count_triangles(g) == 7
        assert g.num_edges == 21  # 3 disjoint edges per triangle

    def test_rejects_too_few_nodes(self):
        with pytest.raises(ValueError):
            planted_triangles(4, 11, np.random.default_rng(0))


class TestAdversarialStream:
    def test_messy_but_count_preserving(self):
        rng = np.random.default_rng(1)
        base = planted_triangles(3, 12, rng)
        raw = adversarial_stream(base, rng)
        # Hostile on purpose: more stored tuples than real edges, self-loops.
        assert raw.num_edges > base.num_edges
        assert bool((raw.src == raw.dst).any())
        assert count_triangles(raw.canonicalize()) == 3


class TestHypothesisIntegration:
    @settings(max_examples=25, deadline=None)
    @given(case=graph_cases())
    def test_graph_cases_strategy_sound(self, case):
        assert case.family in FAMILY_NAMES
        assert case.graph.is_canonical()
        if case.exact is not None:
            assert count_triangles(case.graph) == case.exact

    @settings(max_examples=15, deadline=None)
    @given(
        family=st.sampled_from(FAMILY_NAMES),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_case_reproducible_from_family_and_seed(self, family, seed):
        a = make_case(family, np.random.default_rng(seed))
        b = make_case(family, np.random.default_rng(seed))
        assert a.fingerprint() == b.fingerprint()
