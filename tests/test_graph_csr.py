"""CSR structure and COO->CSR conversion."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.common.errors import GraphFormatError
from repro.graph.coo import COOGraph
from repro.graph.csr import CSRGraph, coo_to_csr, forward_csr

from conftest import graph_strategy


class TestCsrGraph:
    def test_rejects_bad_indptr_length(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(indptr=np.array([0, 1]), indices=np.array([1]), num_nodes=3)

    def test_rejects_inconsistent_indptr(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(indptr=np.array([0, 5]), indices=np.array([1]), num_nodes=1)

    def test_neighbors_and_degree(self, triangle_graph):
        csr, _ = coo_to_csr(triangle_graph)
        assert csr.neighbors(2).tolist() == [0, 1, 3]
        assert csr.degree(2) == 3
        assert csr.degrees().tolist() == [2, 2, 3, 1]

    def test_nbytes(self, triangle_graph):
        csr, _ = coo_to_csr(triangle_graph)
        assert csr.nbytes() == csr.indptr.nbytes + csr.indices.nbytes


class TestCooToCsr:
    def test_symmetrized_entry_count(self, small_graph):
        csr, _ = coo_to_csr(small_graph, symmetrize=True)
        assert csr.num_entries == 2 * small_graph.num_edges

    def test_directed_entry_count(self, small_graph):
        csr, _ = coo_to_csr(small_graph, symmetrize=False)
        assert csr.num_entries == small_graph.num_edges

    def test_neighbors_sorted(self, small_graph):
        csr, _ = coo_to_csr(small_graph)
        for u in range(csr.num_nodes):
            nbrs = csr.neighbors(u)
            assert np.all(np.diff(nbrs) >= 0)

    def test_stats_populated(self, small_graph):
        _, stats = coo_to_csr(small_graph)
        assert stats.edges_scanned == 2 * small_graph.num_edges
        assert stats.bytes_moved > 0
        assert stats.sort_ops > 0

    @settings(max_examples=30, deadline=None)
    @given(g=graph_strategy())
    def test_degrees_match_coo(self, g):
        csr, _ = coo_to_csr(g, symmetrize=True)
        np.testing.assert_array_equal(csr.degrees(), g.degrees())


class TestForwardCsr:
    def test_only_forward_edges(self, small_graph):
        fwd = forward_csr(small_graph)
        assert fwd.num_entries == small_graph.num_edges
        for u in range(fwd.num_nodes):
            nbrs = fwd.neighbors(u)
            assert np.all(nbrs > u)

    def test_handles_unoriented_input(self):
        g = COOGraph.from_edges([(2, 0), (1, 0), (1, 1)], num_nodes=3)
        fwd = forward_csr(g)
        assert fwd.num_entries == 2  # self-loop dropped

    @settings(max_examples=30, deadline=None)
    @given(g=graph_strategy())
    def test_total_forward_degree_is_edge_count(self, g):
        fwd = forward_csr(g)
        assert int(fwd.degrees().sum()) == g.num_edges
