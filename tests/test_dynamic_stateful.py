"""Stateful property test: the dynamic PIM counter vs a model graph.

Hypothesis drives arbitrary interleavings of edge-batch insertions and
deletions against :class:`DynamicPimCounter`; after every step the counter's
triangle count must equal the oracle's count of the model edge set.  This is
the fully-dynamic correctness argument in executable form.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro.core.dynamic import DynamicPimCounter
from repro.graph.coo import COOGraph
from repro.graph.triangles import count_triangles

NUM_NODES = 14


def edge_batch():
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=NUM_NODES - 1),
            st.integers(min_value=0, max_value=NUM_NODES - 1),
        ).filter(lambda e: e[0] != e[1]),
        min_size=1,
        max_size=10,
    )


class DynamicCounterMachine(RuleBasedStateMachine):
    @initialize(colors=st.integers(min_value=1, max_value=4), seed=st.integers(0, 50))
    def setup(self, colors, seed):
        self.counter = DynamicPimCounter(NUM_NODES, num_colors=colors, seed=seed)
        self.model: set[tuple[int, int]] = set()

    def _model_graph(self) -> COOGraph:
        if not self.model:
            return COOGraph.from_edges([], num_nodes=NUM_NODES)
        return COOGraph.from_edges(sorted(self.model), num_nodes=NUM_NODES)

    @rule(edges=edge_batch())
    def insert(self, edges):
        canonical = {(min(u, v), max(u, v)) for u, v in edges}
        fresh = canonical - self.model
        if not fresh:
            return  # resending resident edges would duplicate sample entries
        self.model |= fresh
        batch = COOGraph.from_edges(sorted(fresh), num_nodes=NUM_NODES)
        self.counter.apply_update(batch)

    @rule(edges=edge_batch())
    def delete(self, edges):
        canonical = {(min(u, v), max(u, v)) for u, v in edges}
        self.model -= canonical
        batch = COOGraph.from_edges(sorted(canonical), num_nodes=NUM_NODES)
        self.counter.apply_deletion(batch)

    @invariant()
    def count_matches_oracle(self):
        if not hasattr(self, "counter"):
            return
        assert self.counter.triangles == count_triangles(self._model_graph())

    @invariant()
    def time_never_regresses(self):
        if not hasattr(self, "counter"):
            return
        assert self.counter.cumulative_seconds >= 0.0


DynamicCounterMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
TestDynamicCounterStateful = DynamicCounterMachine.TestCase
