"""Graph statistics (Tables 1 and 2 quantities)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graph.coo import COOGraph
from repro.graph.generators import erdos_renyi
from repro.graph.stats import compute_stats, degree_stats


class TestDegreeStats:
    def test_triangle_plus_pendant(self, triangle_graph):
        max_deg, avg_deg = degree_stats(triangle_graph)
        assert max_deg == 3
        assert avg_deg == pytest.approx(2 * 4 / 4)

    def test_ignores_isolated_nodes(self):
        g = COOGraph.from_edges([(0, 1)], num_nodes=100)
        max_deg, avg_deg = degree_stats(g)
        assert max_deg == 1
        assert avg_deg == pytest.approx(1.0)

    def test_empty(self):
        assert degree_stats(COOGraph.from_edges([], num_nodes=3)) == (0, 0.0)


class TestClustering:
    def test_triangle_graph_value(self, triangle_graph):
        stats = compute_stats(triangle_graph)
        # 1 triangle, 5 wedges -> 3/5.
        assert stats.global_clustering == pytest.approx(0.6)

    def test_complete_graph_is_one(self):
        edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        g = COOGraph.from_edges(edges, num_nodes=5)
        assert compute_stats(g).global_clustering == pytest.approx(1.0)

    def test_triangle_free_is_zero(self):
        path = COOGraph.from_edges([(0, 1), (1, 2)], num_nodes=3)
        assert compute_stats(path).global_clustering == 0.0

    @pytest.mark.parametrize("seed", range(3))
    def test_vs_networkx_transitivity(self, rngs, seed):
        g = erdos_renyi(50, 250, rngs.stream("t", seed)).canonicalize()
        G = nx.Graph()
        G.add_nodes_from(range(g.num_nodes))
        G.add_edges_from(g.edges().tolist())
        assert compute_stats(g).global_clustering == pytest.approx(nx.transitivity(G))


class TestComputeStats:
    def test_rows_have_expected_shape(self, small_graph):
        stats = compute_stats(small_graph)
        name, e, v, t = stats.table1_row()
        assert e == small_graph.num_edges
        assert v <= small_graph.num_nodes
        name2, maxd, avgd, gcc = stats.table2_row()
        assert name2 == name
        assert maxd >= avgd / 2

    def test_cached_triangles_respected(self, triangle_graph):
        stats = compute_stats(triangle_graph, triangles=1)
        assert stats.triangles == 1
