"""Telemetry spans: nesting, clock attribution, worker-record stitching."""

from __future__ import annotations

import pytest

from repro.pimsim.kernel import SimClock
from repro.telemetry import Span, SpanRecord, Telemetry


class TestSpanTree:
    def test_nesting_builds_paths(self):
        tel = Telemetry()
        with tel.span("sample_creation"):
            with tel.span("scatter"):
                pass
            with tel.span("insert"):
                pass
        (top,) = tel.root.children
        assert top.path == "sample_creation"
        assert [c.path for c in top.children] == [
            "sample_creation/scatter",
            "sample_creation/insert",
        ]

    def test_clock_attribution(self):
        tel = Telemetry()
        clock = SimClock()
        with tel.span("sample_creation", clock=clock):
            clock.advance("sample_creation", 0.5)
            with tel.span("scatter", clock=clock):
                clock.advance("sample_creation", 0.25)
        top = tel.find("sample_creation")
        child = tel.find("sample_creation/scatter")
        assert top.sim_seconds == pytest.approx(0.75)
        assert child.sim_seconds == pytest.approx(0.25)
        assert top.sim_self_seconds == pytest.approx(0.5)

    def test_wall_clock_measured(self):
        tel = Telemetry()
        with tel.span("x"):
            pass
        span = tel.find("x")
        assert span.wall_seconds >= 0.0
        assert span.wall_start >= 0.0

    def test_span_reraises_and_closes(self):
        tel = Telemetry()
        with pytest.raises(ValueError):
            with tel.span("x"):
                raise ValueError("boom")
        assert tel.current() is tel.root
        assert tel.find("x").wall_seconds >= 0.0

    def test_disabled_telemetry_records_nothing(self):
        tel = Telemetry(enabled=False)
        with tel.span("x") as span:
            assert span is None
        tel.attach_records([SpanRecord(name="dpu0", wall_seconds=1.0)])
        assert tel.root.children == []

    def test_attach_records_in_order(self):
        tel = Telemetry()
        with tel.span("launch"):
            tel.attach_records(
                [
                    SpanRecord(name=f"dpu{i}", wall_seconds=0.1, sim_seconds=0.2)
                    for i in range(3)
                ]
            )
        launch = tel.find("launch")
        assert [c.name for c in launch.children] == ["dpu0", "dpu1", "dpu2"]
        assert launch.children[0].path == "launch/dpu0"
        assert launch.children[0].sim_seconds == pytest.approx(0.2)

    def test_self_time_clamped_for_parallel_children(self):
        """Concurrent children (per-DPU spans) may out-sum the parent."""
        tel = Telemetry()
        clock = SimClock()
        with tel.span("launch", clock=clock):
            clock.advance("p", 1.0)
            tel.attach_records(
                [SpanRecord(name=f"dpu{i}", wall_seconds=0.0, sim_seconds=0.9)
                 for i in range(3)]
            )
        launch = tel.find("launch")
        assert launch.sim_seconds == pytest.approx(1.0)
        assert launch.sim_self_seconds == 0.0


class TestQueries:
    def _populated(self) -> Telemetry:
        tel = Telemetry()
        clock = SimClock()
        for phase, seconds in (("setup", 0.1), ("triangle_count", 0.2)):
            with tel.span(phase, clock=clock):
                clock.advance(phase, seconds)
        return tel

    def test_phase_totals(self):
        totals = self._populated().phase_totals()
        assert totals == {
            "setup": pytest.approx(0.1),
            "triangle_count": pytest.approx(0.2),
        }

    def test_phase_totals_sum_repeated_runs(self):
        tel = Telemetry()
        clock = SimClock()
        for _ in range(2):
            with tel.span("setup", clock=clock):
                clock.advance("setup", 0.1)
        assert tel.phase_totals()["setup"] == pytest.approx(0.2)

    def test_span_signature_excludes_wall(self):
        tel = self._populated()
        sig = tel.span_signature()
        assert ("setup", pytest.approx(0.1)) in sig
        assert all(len(entry) == 2 for entry in sig)

    def test_find_missing_returns_none(self):
        assert self._populated().find("nope") is None

    def test_to_dict_roundtrips_shape(self):
        data = self._populated().to_dict()
        assert data["enabled"] is True
        assert [s["path"] for s in data["spans"]] == ["setup", "triangle_count"]
        assert data["spans"][0]["children"] == []

    def test_walk_depth_first(self):
        root = Span(name="a", path="a")
        root.children.append(Span(name="b", path="a/b"))
        root.children[0].children.append(Span(name="c", path="a/b/c"))
        root.children.append(Span(name="d", path="a/d"))
        assert [s.path for s in root.walk()] == ["a", "a/b", "a/b/c", "a/d"]


class TestPrune:
    def test_keeps_newest_completed_spans(self):
        tel = Telemetry()
        for i in range(6):
            with tel.span(f"req{i}"):
                pass
        assert tel.prune(4) == 2
        assert [c.name for c in tel.root.children] == [
            "req2", "req3", "req4", "req5",
        ]

    def test_under_cap_is_a_no_op(self):
        tel = Telemetry()
        with tel.span("only"):
            pass
        assert tel.prune(4) == 0
        assert [c.name for c in tel.root.children] == ["only"]

    def test_open_spans_survive(self):
        tel = Telemetry()
        for i in range(4):
            with tel.span(f"req{i}"):
                pass
        with tel.span("live"):
            # `live` is open on the stack: pruning past the cap removes only
            # the four completed spans and keeps the in-flight one.
            assert tel.prune(1) == 4
            names = [c.name for c in tel.root.children]
        assert names == ["live"]

    def test_bounds_a_long_lived_session(self):
        tel = Telemetry()
        for i in range(100):
            tel.attach_records([SpanRecord(name=f"r{i}", wall_seconds=0.0)])
            tel.prune(8)
        assert len(tel.root.children) == 8
        assert tel.root.children[-1].name == "r99"
