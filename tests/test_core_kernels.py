"""Kernel equivalence: reference tasklet kernel == fast kernel == oracle,
and the fast kernel's cost charges soundly bound the reference's real work."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernel_tc import count_triangles_reference
from repro.core.kernel_tc_fast import (
    KernelCosts,
    TriangleCountKernel,
    _count_forward_sparse,
    fast_count,
)
from repro.core.orient import orient_and_sort
from repro.graph.generators import erdos_renyi, hub_graph
from repro.graph.triangles import count_triangles

from conftest import graph_strategy


class TestReferenceKernel:
    def test_single_triangle(self, triangle_graph):
        ref = count_triangles_reference(triangle_graph.src, triangle_graph.dst)
        assert ref.triangles == 1
        assert ref.binary_searches == 4

    def test_empty(self):
        ref = count_triangles_reference(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert ref.triangles == 0

    def test_buffer_size_does_not_change_count(self, small_graph):
        a = count_triangles_reference(small_graph.src, small_graph.dst, buffer_edges=4)
        b = count_triangles_reference(small_graph.src, small_graph.dst, buffer_edges=512)
        assert a.triangles == b.triangles
        assert a.merge_steps == b.merge_steps


class TestFastKernel:
    def test_matches_oracle(self, small_graph):
        fast = fast_count(small_graph.src, small_graph.dst, small_graph.num_nodes)
        assert fast.triangles == count_triangles(small_graph)

    def test_empty_sample(self):
        res = fast_count(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64), 4
        )
        assert res.triangles == 0
        assert res.per_tasklet_instr.sum() == 0

    def test_cost_vectors_shapes(self, small_graph):
        res = fast_count(small_graph.src, small_graph.dst, small_graph.num_nodes, num_tasklets=12)
        assert res.per_tasklet_instr.shape == (12,)
        assert res.per_tasklet_dma_bytes.shape == (12,)

    def test_all_tasklets_get_work_on_large_samples(self, rngs):
        g = erdos_renyi(300, 6000, rngs.stream("w")).canonicalize()
        res = fast_count(g.src, g.dst, g.num_nodes)
        assert np.all(res.per_tasklet_instr > 0)

    @pytest.mark.parametrize("seed", range(4))
    def test_agreement_with_reference(self, rngs, seed):
        g = erdos_renyi(70, 350, rngs.stream("a", seed)).canonicalize()
        ref = count_triangles_reference(g.src, g.dst)
        fast = fast_count(g.src, g.dst, g.num_nodes)
        assert fast.triangles == ref.triangles
        # The analytic merge-cost (suffix + deg) upper-bounds the real steps.
        assert fast.merge_steps_charged >= ref.merge_steps

    @settings(max_examples=25, deadline=None)
    @given(g=graph_strategy(max_nodes=22, max_edges=80))
    def test_property_equivalence(self, g):
        ref = count_triangles_reference(g.src, g.dst)
        fast = fast_count(g.src, g.dst, g.num_nodes)
        assert fast.triangles == ref.triangles == count_triangles(g)
        assert fast.merge_steps_charged >= ref.merge_steps

    def test_hub_graph_costs_more_per_edge(self, rngs):
        """The Fig. 3 effect in miniature: at equal edge counts, the hub graph's
        charged merge work far exceeds the flat graph's."""
        flat = erdos_renyi(2000, 6000, rngs.stream("flat")).canonicalize()
        hubby = hub_graph(2000, 4000, 2, 1000, rngs.stream("hub")).canonicalize()
        rf = fast_count(flat.src, flat.dst, flat.num_nodes)
        rh = fast_count(hubby.src, hubby.dst, hubby.num_nodes)
        per_edge_flat = rf.merge_steps_charged / rf.edges
        per_edge_hub = rh.merge_steps_charged / rh.edges
        assert per_edge_hub > 3 * per_edge_flat


class TestSparseCounting:
    def test_chunked_equals_unchunked(self, rngs):
        g = erdos_renyi(150, 2000, rngs.stream("c")).canonicalize()
        u, v, _ = orient_and_sort(g.src, g.dst)
        full = _count_forward_sparse(u, v, g.num_nodes, chunk_nnz=1 << 24)
        tiny = _count_forward_sparse(u, v, g.num_nodes, chunk_nnz=128)
        assert full == tiny == count_triangles(g)

    def test_empty(self):
        assert _count_forward_sparse(np.array([], dtype=np.int64), np.array([], dtype=np.int64), 5) == 0


class TestKernelOnDpu:
    def make_dpu(self):
        from repro.pimsim.config import CostModel, DpuConfig
        from repro.pimsim.dpu import Dpu

        return Dpu(dpu_id=0, config=DpuConfig(), cost=CostModel())

    def test_run_stores_count_and_stats(self, small_graph):
        dpu = self.make_dpu()
        dpu.mram.store("sample_src", small_graph.src.astype(np.int32), count_write=False)
        dpu.mram.store("sample_dst", small_graph.dst.astype(np.int32), count_write=False)
        kernel = TriangleCountKernel(num_nodes=small_graph.num_nodes)
        kernel.run(dpu)
        assert int(dpu.mram.load("triangle_count")[0]) == count_triangles(small_graph)
        stats = dpu.mram.load("kernel_stats")
        assert stats[0] == small_graph.num_edges
        assert dpu.compute_seconds() > 0

    def test_missing_sample_raises(self):
        from repro.common.errors import KernelLaunchError

        dpu = self.make_dpu()
        with pytest.raises(KernelLaunchError):
            TriangleCountKernel(num_nodes=4).run(dpu)

    def test_remap_does_not_change_count(self, rngs):
        g = hub_graph(500, 800, 1, 300, rngs.stream("r")).canonicalize()
        truth = count_triangles(g)
        deg = g.degrees()
        top = np.argsort(-deg)[:4].astype(np.int64)

        dpu = self.make_dpu()
        dpu.mram.store("sample_src", g.src.astype(np.int32), count_write=False)
        dpu.mram.store("sample_dst", g.dst.astype(np.int32), count_write=False)
        dpu.mram.store("remap_table", top, count_write=False)
        TriangleCountKernel(num_nodes=g.num_nodes).run(dpu)
        assert int(dpu.mram.load("triangle_count")[0]) == truth

    def test_remap_reduces_hub_merge_cost(self, rngs):
        g = hub_graph(500, 800, 1, 300, rngs.stream("r2")).canonicalize()
        deg = g.degrees()
        top = np.argsort(-deg)[:2].astype(np.int64)

        plain = self.make_dpu()
        plain.mram.store("sample_src", g.src.astype(np.int32), count_write=False)
        plain.mram.store("sample_dst", g.dst.astype(np.int32), count_write=False)
        TriangleCountKernel(num_nodes=g.num_nodes).run(plain)

        remapped = self.make_dpu()
        remapped.mram.store("sample_src", g.src.astype(np.int32), count_write=False)
        remapped.mram.store("sample_dst", g.dst.astype(np.int32), count_write=False)
        remapped.mram.store("remap_table", top, count_write=False)
        TriangleCountKernel(num_nodes=g.num_nodes).run(remapped)

        plain_steps = int(plain.mram.load("kernel_stats")[2])
        remap_steps = int(remapped.mram.load("kernel_stats")[2])
        assert remap_steps < plain_steps / 2


class TestKernelCosts:
    def test_buffer_capacity(self):
        costs = KernelCosts(edge_buffer_bytes=1024, edge_bytes=8)
        assert costs.edge_buffer_edges == 128

    def test_default_plan_is_paper_shaped(self):
        costs = KernelCosts()
        # 3 KiB per tasklet x 16 + shared fits in the 64-KiB WRAM.
        assert 16 * (
            costs.edge_buffer_bytes + costs.region_buffer_bytes + costs.stack_bytes
        ) + 2048 <= 64 * 1024
