"""Execution trace: event recording and timeline rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PimTriangleCounter
from repro.pimsim import PimSystem, PimSystemConfig, Trace, render_timeline


class TestTrace:
    def test_record_and_query(self):
        t = Trace()
        t.record("setup", "alloc", 0.01)
        t.record("sample_creation", "scatter", 0.002, payload_bytes=4096)
        assert len(t) == 2
        assert t.kinds() == ["alloc", "scatter"]
        assert t.total_seconds("scatter") == pytest.approx(0.002)
        assert t.total_bytes() == 4096

    def test_disabled_trace_records_nothing(self):
        t = Trace(enabled=False)
        t.record("x", "y", 1.0)
        assert len(t) == 0

    def test_render_timeline_cumulative(self):
        t = Trace()
        t.record("setup", "alloc", 0.010, detail="4 DPUs")
        t.record("setup", "load_kernel", 0.001, detail="tc")
        text = render_timeline(t)
        assert "alloc" in text and "4 DPUs" in text
        assert "11.000 ms" in text  # cumulative on the second line

    def test_render_timeline_header_and_columns(self):
        t = Trace()
        t.record("sample_creation", "scatter", 0.002, payload_bytes=4096, detail="r0")
        lines = render_timeline(t).splitlines()
        assert lines[0].split() == ["t", "(cum)", "dt", "phase", "op", "payload", "detail"]
        row = lines[1]
        assert "sample_creation" in row
        assert "scatter" in row
        assert "4.0 KiB" in row  # payload formatted via fmt_bytes
        assert row.rstrip().endswith("r0")

    def test_render_timeline_dash_for_zero_payload(self):
        t = Trace()
        t.record("setup", "alloc", 0.01)
        row = render_timeline(t).splitlines()[1]
        assert " - " in f"{row} "  # compute-only events show '-' not '0 B'

    def test_render_timeline_empty_trace_is_header_only(self):
        assert len(render_timeline(Trace()).splitlines()) == 1

    def test_merge_appends_in_order(self):
        a, b = Trace(), Trace()
        a.record("setup", "alloc", 0.01)
        b.record("triangle_count", "launch", 0.02)
        a.merge(b)
        assert a.kinds() == ["alloc", "launch"]
        assert a.counts_by_kind() == {"alloc": 1, "launch": 1}

    def test_merge_respects_enabled(self):
        """A disabled trace must stay empty even when sub-runs merge into it."""
        sink = Trace(enabled=False)
        sub = Trace()
        sub.record("triangle_count", "launch", 0.02)
        sink.merge(sub)
        assert len(sink) == 0


class TestDpuSetTracing:
    def test_operation_sequence(self):
        system = PimSystem(PimSystemConfig(num_ranks=1, dpus_per_rank=4))
        dpus = system.allocate(2)
        dpus.broadcast("t", np.arange(3))
        dpus.gather("t")
        dpus.free()
        assert dpus.trace.kinds() == ["alloc", "broadcast", "gather", "free"]

    def test_pipeline_trace_attached_to_result(self, small_graph):
        result = PimTriangleCounter(num_colors=3, seed=1).count(small_graph)
        kinds = result.trace.kinds()
        assert kinds[0] == "alloc"
        assert "load_kernel" in kinds
        assert "scatter" in kinds
        assert "launch" in kinds
        assert "gather" in kinds
        assert kinds[-1] == "free"

    def test_trace_times_consistent_with_clock(self, small_graph):
        """Traced transfer+launch seconds are a subset of the clocked total."""
        result = PimTriangleCounter(num_colors=3, seed=1).count(small_graph)
        assert result.trace.total_seconds() <= result.total_seconds + 1e-12

    def test_timeline_renders_for_full_run(self, small_graph):
        result = PimTriangleCounter(num_colors=3, seed=1).count(small_graph)
        text = render_timeline(result.trace)
        assert "scatter" in text and "triangle_count" in text
