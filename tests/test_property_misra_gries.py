"""Misra-Gries deterministic guarantee, property-tested over fuzzed streams.

The guarantee the paper's Sec. 3.5 pipeline relies on: after processing a
stream of ``m`` items with a summary of size ``K``, **every item whose true
frequency exceeds ``m / K`` is present in the summary**.  This must hold for
the textbook one-item rule, the batch (mergeable-summaries) path, and the
multi-thread chunk-and-merge combination the host actually runs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import powerlaw_degree_sequence
from repro.streaming.misra_gries import MisraGries


def _stream_from_degrees(degrees: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """A node stream where node ``i`` appears ``degrees[i]`` times, shuffled."""
    stream = np.repeat(np.arange(degrees.size, dtype=np.int64), degrees)
    rng.shuffle(stream)
    return stream


def _heavy_hitters(stream: np.ndarray, k: int) -> list[int]:
    values, counts = np.unique(stream, return_counts=True)
    threshold = stream.size / k
    return values[counts > threshold].tolist()


def _assert_guarantee(mg: MisraGries, stream: np.ndarray, k: int, path: str) -> None:
    assert mg.items_seen == stream.size
    assert mg.size <= k
    for item in _heavy_hitters(stream, k):
        assert item in mg.counters, (
            f"{path}: node {item} has frequency > m/K = {stream.size / k:.1f} "
            f"but is missing from the summary (K={k}, m={stream.size})"
        )


#: Strategy: a skewed degree sequence, as (num_nodes, seed, K, chunks).
_degree_cases = st.tuples(
    st.integers(min_value=2, max_value=60),  # nodes
    st.integers(min_value=0, max_value=2**31 - 1),  # rng seed
    st.integers(min_value=1, max_value=16),  # K
    st.integers(min_value=1, max_value=8),  # merge chunks
)


class TestGuaranteeOnFuzzedDegreeSequences:
    @settings(max_examples=40, deadline=None)
    @given(params=_degree_cases)
    def test_one_item_rule(self, params):
        n, seed, k, _ = params
        rng = np.random.default_rng(seed)
        degrees = powerlaw_degree_sequence(n, 2.2, rng, min_degree=1)
        stream = _stream_from_degrees(degrees, rng)
        mg = MisraGries(k)
        for item in stream.tolist():
            mg.update(item)
        _assert_guarantee(mg, stream, k, "update")

    @settings(max_examples=40, deadline=None)
    @given(params=_degree_cases)
    def test_batch_path(self, params):
        n, seed, k, _ = params
        rng = np.random.default_rng(seed)
        degrees = powerlaw_degree_sequence(n, 2.2, rng, min_degree=1)
        stream = _stream_from_degrees(degrees, rng)
        mg = MisraGries(k)
        mg.update_array(stream)
        _assert_guarantee(mg, stream, k, "update_array")

    @settings(max_examples=40, deadline=None)
    @given(params=_degree_cases)
    def test_chunked_merge_path(self, params):
        """The host's per-thread summaries merged together keep the bound."""
        n, seed, k, chunks = params
        rng = np.random.default_rng(seed)
        degrees = powerlaw_degree_sequence(n, 2.2, rng, min_degree=1)
        stream = _stream_from_degrees(degrees, rng)
        merged = MisraGries(k)
        for chunk in np.array_split(stream, chunks):
            local = MisraGries(k)
            local.update_array(chunk)
            merged.merge(local)
        _assert_guarantee(merged, stream, k, f"merge({chunks} chunks)")


class TestAdversarialStreams:
    def test_single_dominating_node(self):
        """One node is half the stream: must survive any K >= 2."""
        rng = np.random.default_rng(0)
        tail = rng.integers(1, 50, size=200)
        stream = np.concatenate([np.zeros(200, dtype=np.int64), tail])
        rng.shuffle(stream)
        for k in (2, 3, 8):
            mg = MisraGries(k)
            mg.update_array(stream)
            _assert_guarantee(mg, stream, k, f"dominating/K={k}")

    def test_uniform_stream_may_keep_nothing(self):
        """No heavy hitter above m/K: the guarantee is vacuous, never wrong."""
        stream = np.arange(100, dtype=np.int64)  # all frequencies 1
        mg = MisraGries(5)
        mg.update_array(stream)
        assert _heavy_hitters(stream, 5) == []
        assert mg.size <= 5

    def test_error_bound_reported(self):
        mg = MisraGries(10)
        mg.update_array(np.zeros(50, dtype=np.int64))
        assert mg.error_bound() == pytest.approx(5.0)
