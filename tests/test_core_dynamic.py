"""Dynamic PIM counter: incremental correctness and time accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.core.dynamic import DynamicPimCounter
from repro.graph.datasets import get_dataset
from repro.graph.generators import erdos_renyi
from repro.graph.triangles import count_triangles


class TestValidation:
    def test_rejects_zero_colors(self):
        with pytest.raises(ConfigurationError):
            DynamicPimCounter(10, num_colors=0)

    def test_mg_params_must_pair(self):
        with pytest.raises(ConfigurationError):
            DynamicPimCounter(10, num_colors=2, misra_gries_k=8)


class TestIncrementalCorrectness:
    @pytest.mark.parametrize("colors", [1, 2, 4])
    def test_final_count_matches_oracle(self, small_graph, colors):
        dyn = DynamicPimCounter(small_graph.num_nodes, num_colors=colors, seed=2)
        for batch in small_graph.split_batches(5):
            dyn.apply_update(batch)
        assert dyn.triangles == count_triangles(small_graph)

    def test_every_round_matches_prefix_count(self, small_graph):
        dyn = DynamicPimCounter(small_graph.num_nodes, num_colors=3, seed=1)
        batches = small_graph.split_batches(4)
        cumulative = None
        for batch in batches:
            cumulative = batch if cumulative is None else cumulative.concat(batch)
            result = dyn.apply_update(batch)
            assert result.triangles_total == count_triangles(cumulative)

    def test_added_triangles_sum_to_total(self, small_graph):
        dyn = DynamicPimCounter(small_graph.num_nodes, num_colors=2, seed=5)
        added = [dyn.apply_update(b).triangles_added for b in small_graph.split_batches(6)]
        assert sum(added) == count_triangles(small_graph)

    def test_with_misra_gries_still_exact(self):
        g = get_dataset("wikipedia", "tiny")
        dyn = DynamicPimCounter(
            g.num_nodes, num_colors=3, seed=2, misra_gries_k=128, misra_gries_t=4
        )
        for batch in g.split_batches(4):
            dyn.apply_update(batch)
        assert dyn.triangles == count_triangles(g)

    def test_single_batch_equals_static(self, small_graph):
        dyn = DynamicPimCounter(small_graph.num_nodes, num_colors=3, seed=0)
        dyn.apply_update(small_graph)
        assert dyn.triangles == count_triangles(small_graph)


class TestChunkedUpdates:
    """``batch_edges`` streams each update in chunks; counts must not move."""

    def test_rejects_zero_batch_edges(self):
        with pytest.raises(ConfigurationError):
            DynamicPimCounter(10, num_colors=2, batch_edges=0)

    @pytest.mark.parametrize("chunk", [1, 13, 10**6])
    def test_counts_match_monolithic(self, small_graph, chunk):
        mono = DynamicPimCounter(small_graph.num_nodes, num_colors=3, seed=2)
        chunked = DynamicPimCounter(
            small_graph.num_nodes, num_colors=3, seed=2, batch_edges=chunk
        )
        for batch in small_graph.split_batches(4):
            a = mono.apply_update(batch)
            b = chunked.apply_update(batch)
            assert b.triangles_total == a.triangles_total
            assert b.triangles_added == a.triangles_added
        assert chunked.triangles == count_triangles(small_graph)

    def test_with_misra_gries_matches_monolithic(self):
        g = get_dataset("wikipedia", "tiny")
        mono = DynamicPimCounter(
            g.num_nodes, num_colors=3, seed=2, misra_gries_k=128, misra_gries_t=4
        )
        chunked = DynamicPimCounter(
            g.num_nodes,
            num_colors=3,
            seed=2,
            misra_gries_k=128,
            misra_gries_t=4,
            batch_edges=17,
        )
        for batch in g.split_batches(3):
            assert (
                chunked.apply_update(batch).triangles_total
                == mono.apply_update(batch).triangles_total
            )
        assert chunked.triangles == count_triangles(g)

    def test_deletion_after_chunked_inserts(self, small_graph):
        dyn = DynamicPimCounter(
            small_graph.num_nodes, num_colors=3, seed=1, batch_edges=29
        )
        dyn.apply_update(small_graph)
        drop = small_graph.split_batches(8)[0]
        dyn.apply_deletion(drop)
        remaining = [
            (int(u), int(v))
            for u, v in zip(small_graph.src, small_graph.dst)
            if (int(u), int(v)) not in set(zip(drop.src.tolist(), drop.dst.tolist()))
        ]
        from repro.graph.coo import COOGraph

        expect = count_triangles(
            COOGraph.from_edges(remaining, num_nodes=small_graph.num_nodes)
        )
        assert dyn.triangles == expect


class TestTimeAccounting:
    def test_setup_excluded_from_rounds(self, small_graph):
        dyn = DynamicPimCounter(small_graph.num_nodes, num_colors=2, seed=1)
        assert dyn.setup_seconds > 0
        assert dyn.cumulative_seconds == 0.0
        result = dyn.apply_update(small_graph.split_batches(2)[0])
        assert result.cumulative_seconds == pytest.approx(result.round_seconds)

    def test_cumulative_monotone(self, small_graph):
        dyn = DynamicPimCounter(small_graph.num_nodes, num_colors=2, seed=1)
        last = 0.0
        for batch in small_graph.split_batches(5):
            result = dyn.apply_update(batch)
            assert result.round_seconds > 0
            assert result.cumulative_seconds > last
            last = result.cumulative_seconds

    def test_round_metadata(self, small_graph):
        dyn = DynamicPimCounter(small_graph.num_nodes, num_colors=2, seed=1)
        batches = small_graph.split_batches(3)
        r1 = dyn.apply_update(batches[0])
        r2 = dyn.apply_update(batches[1])
        assert (r1.round_index, r2.round_index) == (1, 2)
        assert r2.cumulative_edges == batches[0].num_edges + batches[1].num_edges
        assert "round=2" in repr(r2)

    def test_mg_remap_cheapens_hub_rounds(self):
        """On the hub graph, Misra-Gries lowers total dynamic time."""
        g = get_dataset("wikipedia", "tiny")
        plain = DynamicPimCounter(g.num_nodes, num_colors=3, seed=2)
        remap = DynamicPimCounter(
            g.num_nodes, num_colors=3, seed=2, misra_gries_k=256, misra_gries_t=8
        )
        for batch in g.split_batches(5):
            plain.apply_update(batch)
            remap.apply_update(batch)
        assert remap.triangles == plain.triangles
        assert remap.cumulative_seconds < plain.cumulative_seconds


class TestEmptyBatches:
    def test_empty_batch_is_noop_for_count(self, small_graph):
        from repro.graph.coo import COOGraph

        dyn = DynamicPimCounter(small_graph.num_nodes, num_colors=2, seed=1)
        dyn.apply_update(small_graph)
        before = dyn.triangles
        result = dyn.apply_update(COOGraph.from_edges([], num_nodes=small_graph.num_nodes))
        assert result.triangles_added == 0
        assert dyn.triangles == before
