"""CPU/GPU baseline models and their dynamic drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    CpuCooCounter,
    CpuCsrCounter,
    CpuDynamicDriver,
    CpuModel,
    GpuCounter,
    GpuDynamicDriver,
    GpuModel,
)
from repro.graph.datasets import get_dataset
from repro.graph.triangles import count_triangles


class TestCpuCsr:
    def test_count_correct(self, small_graph):
        res = CpuCsrCounter().count(small_graph)
        assert res.count == count_triangles(small_graph)

    def test_conversion_included_when_asked(self, small_graph):
        counter = CpuCsrCounter()
        without = counter.count(small_graph, include_conversion=False)
        with_conv = counter.count(small_graph, include_conversion=True)
        assert with_conv.seconds > without.seconds
        assert with_conv.breakdown["convert"] > 0

    def test_rates_positive(self):
        model = CpuModel()
        assert model.count_rate() > 0
        assert model.conversion_seconds(1000) > 0

    def test_conversion_linear(self):
        model = CpuModel()
        assert model.conversion_seconds(2000) == pytest.approx(
            2 * model.conversion_seconds(1000)
        )

    def test_count_rate_capped_by_memory(self):
        fast_compute = CpuModel(steps_per_cycle=100.0, parallel_efficiency=1.0)
        assert fast_compute.count_rate() == pytest.approx(
            fast_compute.mem_bandwidth / fast_compute.bytes_per_step
        )


class TestCpuCoo:
    def test_count_correct(self, small_graph):
        res = CpuCooCounter().count(small_graph)
        assert res.count == count_triangles(small_graph)

    def test_slower_than_csr_counting(self, small_graph):
        """The COO-native strawman pays per-probe hashing; CSR merge wins."""
        coo = CpuCooCounter().count(small_graph)
        csr = CpuCsrCounter().count(small_graph, include_conversion=False)
        assert coo.seconds > csr.count_seconds


class TestGpu:
    def test_count_correct(self, small_graph):
        res = GpuCounter().count(small_graph)
        assert res.count == count_triangles(small_graph)

    def test_overhead_floor(self):
        from repro.graph.coo import COOGraph

        g = COOGraph.from_edges([(0, 1), (1, 2), (0, 2)], num_nodes=3)
        res = GpuCounter().count(g)
        assert res.count_seconds >= GpuModel().invocation_overhead

    def test_triangle_density_throttles_gpu(self):
        """Dense triangle counts dominate GPU time (the Human-Jung effect).

        Compare the triangle-accumulation term directly (the fixed invocation
        overhead would mask it at the tiny tier).
        """
        hj = get_dataset("humanjung", "tiny")
        wiki = get_dataset("wikipedia", "tiny")
        model = GpuModel()
        overhead = model.invocation_overhead
        hj_s = GpuCounter().count(hj).count_seconds - overhead
        wiki_s = GpuCounter().count(wiki).count_seconds - overhead
        # humanjung has >40x the triangles; its variable GPU time dominates.
        assert hj_s > 5 * wiki_s

    def test_ingest_accounted_separately(self, small_graph):
        res = GpuCounter().count(small_graph, include_ingest=True)
        assert res.seconds == pytest.approx(
            res.breakdown["count"] + res.breakdown["ingest"]
        )


class TestDynamicDrivers:
    def test_cpu_rounds_track_oracle(self, small_graph):
        driver = CpuDynamicDriver(small_graph.num_nodes)
        cumulative = None
        for batch in small_graph.split_batches(4):
            cumulative = batch if cumulative is None else cumulative.concat(batch)
            result = driver.apply_update(batch)
            assert result.triangles_total == count_triangles(cumulative)

    def test_gpu_rounds_track_oracle(self, small_graph):
        driver = GpuDynamicDriver(small_graph.num_nodes)
        total = 0.0
        for batch in small_graph.split_batches(3):
            result = driver.apply_update(batch)
            assert result.cumulative_seconds > total
            total = result.cumulative_seconds
        assert result.triangles_total == count_triangles(small_graph)

    def test_cpu_conversion_charged_every_round(self, small_graph):
        driver = CpuDynamicDriver(small_graph.num_nodes)
        rounds = [driver.apply_update(b) for b in small_graph.split_batches(4)]
        converts = [r.breakdown["convert"] for r in rounds]
        # Conversion grows with the cumulative graph size.
        assert converts == sorted(converts)
        assert converts[-1] > converts[0]

    def test_gpu_avoids_conversion(self, small_graph):
        driver = GpuDynamicDriver(small_graph.num_nodes)
        result = driver.apply_update(small_graph)
        assert "convert" not in result.breakdown

    def test_duplicate_edges_across_batches_ignored(self, small_graph):
        """Re-sending the same edges must not change counts (canonicalize)."""
        driver = CpuDynamicDriver(small_graph.num_nodes)
        driver.apply_update(small_graph)
        result = driver.apply_update(small_graph)
        assert result.triangles_total == count_triangles(small_graph)
        assert result.cumulative_edges == small_graph.num_edges
