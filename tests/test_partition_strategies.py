"""Strategy selection end-to-end: exactness, skew, rebalancing, wiring.

The pluggable balancing layer must never change the answer — any
partition-coloring is exact under the monochromatic correction — while the
degree strategy must visibly *reduce* routing skew on the graph families the
paper's straggler story is about (hubs and power-law tails).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import PimTriangleCounter
from repro.graph.datasets import get_dataset
from repro.graph.triangles import count_triangles
from repro.testing.differential import DifferentialRunner, PARTITIONER_GRID


@pytest.fixture(scope="module")
def hub_tiny():
    return get_dataset("wikipedia", "tiny").canonicalize()


@pytest.fixture(scope="module")
def powerlaw_tiny():
    return get_dataset("kronecker24", "tiny").canonicalize()


class TestCountParity:
    """hash / degree / auto x three executors: identical exact counts."""

    def test_differential_grid_with_all_strategies(self, hub_tiny):
        runner = DifferentialRunner(
            num_colors=4, partitioners=PARTITIONER_GRID, variants=("merge",)
        )
        report = runner.run(hub_tiny)
        assert report.ok, report.failures
        # every strategy appears in the grid under every engine
        for part in ("degree", "auto"):
            for engine in ("serial", "thread", "process"):
                assert f"pipeline:merge×{part}×{engine}" in report.counts

    @pytest.mark.parametrize("partitioner", PARTITIONER_GRID)
    def test_each_strategy_is_exact(self, powerlaw_tiny, partitioner):
        truth = count_triangles(powerlaw_tiny)
        result = PimTriangleCounter(
            num_colors=4, seed=0, partitioner=partitioner
        ).count(powerlaw_tiny)
        assert result.count == truth
        assert result.meta["partitioner"] in ("hash", "degree")

    def test_auto_records_decision(self, hub_tiny):
        result = PimTriangleCounter(
            num_colors=4, seed=0, partitioner="auto"
        ).count(hub_tiny)
        auto = result.meta["autotune"]
        assert auto["strategy"] == result.meta["partitioner"]
        assert [s["rule"] for s in auto["trace"]] == [
            "strategy", "colors", "misra_gries", "expected_load",
        ]

    def test_local_counts_follow_strategy(self, hub_tiny):
        truth = count_triangles(hub_tiny)
        local = PimTriangleCounter(
            num_colors=4, seed=0, partitioner="degree"
        ).count_local(hub_tiny)
        assert local.estimate == truth
        assert local.local_estimates.sum() == pytest.approx(3 * truth)


class TestSkewReduction:
    """Degree partitioning strictly reduces skew on hub/power-law families."""

    @pytest.mark.parametrize("name", ["wikipedia", "kronecker24"])
    def test_max_over_mean_drops(self, name):
        graph = get_dataset(name, "tiny").canonicalize()
        base = PimTriangleCounter(num_colors=4, seed=0).count(graph)
        deg = PimTriangleCounter(
            num_colors=4, seed=0, partitioner="degree"
        ).count(graph)
        assert deg.count == base.count
        base_skew = base.imbalance.skew("edges_routed")
        deg_skew = deg.imbalance.skew("edges_routed")
        assert deg_skew.max_over_mean < base_skew.max_over_mean
        assert deg_skew.p99_over_p50 <= base_skew.p99_over_p50

    def test_ledger_labels_strategy(self, hub_tiny):
        deg = PimTriangleCounter(
            num_colors=4, seed=0, partitioner="degree"
        ).count(hub_tiny)
        assert deg.imbalance.meta["partitioner"] == "degree"


class TestRebalancing:
    """Between-batch triplet->core reassignment: same answer, events logged."""

    def test_forced_rebalance_keeps_counts(self, hub_tiny):
        truth = count_triangles(hub_tiny)
        plain = PimTriangleCounter(
            num_colors=4, seed=0, batch_edges=500
        ).count(hub_tiny)
        moved = PimTriangleCounter(
            num_colors=4, seed=0, batch_edges=500, rebalance_cv=0.0
        ).count(hub_tiny)
        assert plain.count == moved.count == truth
        np.testing.assert_array_equal(plain.per_dpu_counts, moved.per_dpu_counts)
        events = moved.meta["rebalances"]
        assert len(events) >= 1
        for e in events:
            assert e["moved_triplets"] > 0
            assert e["moved_bytes"] > 0
            assert e["cv"] >= 0.0
        assert moved.imbalance.meta["rebalances"] == len(events)

    def test_disabled_by_default(self, hub_tiny):
        result = PimTriangleCounter(
            num_colors=4, seed=0, batch_edges=500
        ).count(hub_tiny)
        assert result.meta["rebalances"] == []

    def test_high_threshold_never_fires(self, hub_tiny):
        plain = PimTriangleCounter(
            num_colors=4, seed=0, batch_edges=500
        ).count(hub_tiny)
        gated = PimTriangleCounter(
            num_colors=4, seed=0, batch_edges=500, rebalance_cv=1e9
        ).count(hub_tiny)
        assert gated.meta["rebalances"] == []
        assert gated.clock.phases == plain.clock.phases

    @pytest.mark.parametrize("engine", ["serial", "thread", "process"])
    def test_engine_invariant_under_rebalance(self, hub_tiny, engine):
        result = PimTriangleCounter(
            num_colors=4, seed=0, batch_edges=400, rebalance_cv=0.0,
            partitioner="degree", executor=engine, jobs=2,
        ).count(hub_tiny)
        assert result.count == count_triangles(hub_tiny)

    def test_rebalance_migration_is_charged(self, hub_tiny):
        moved = PimTriangleCounter(
            num_colors=4, seed=0, batch_edges=500, rebalance_cv=0.0
        ).count(hub_tiny)
        plain = PimTriangleCounter(
            num_colors=4, seed=0, batch_edges=500
        ).count(hub_tiny)
        # migration scatters resident samples: simulated ingest time goes up
        assert moved.sample_creation_seconds > plain.sample_creation_seconds


class TestEnvWiring:
    def test_env_var_selects_strategy(self, hub_tiny, monkeypatch):
        monkeypatch.setenv("REPRO_PARTITIONER", "degree")
        counter = PimTriangleCounter(num_colors=4, seed=0)
        assert counter.options.partitioner == "degree"

    def test_env_var_sets_rebalance_cv(self, monkeypatch):
        monkeypatch.setenv("REPRO_REBALANCE_CV", "0.25")
        counter = PimTriangleCounter(num_colors=4, seed=0)
        assert counter.options.rebalance_cv == 0.25

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARTITIONER", "degree")
        counter = PimTriangleCounter(num_colors=4, seed=0, partitioner="hash")
        assert counter.options.partitioner == "hash"

    def test_invalid_strategy_rejected(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            PimTriangleCounter(num_colors=4, partitioner="nope")
