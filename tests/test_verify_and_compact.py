"""Self-verification module and sparse-ID compaction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.coo import COOGraph
from repro.graph.triangles import count_triangles
from repro.verify import verify_installation


class TestVerifyInstallation:
    def test_all_checks_pass(self):
        checks = verify_installation(seed=3)
        assert len(checks) == 7
        for check in checks:
            assert check.passed, f"{check.name}: {check.detail}"

    def test_check_names_cover_pillars(self):
        names = [c.name for c in verify_installation(seed=1)]
        assert any("coloring" in n for n in names)
        assert any("kernel" in n for n in names)
        assert any("local" in n for n in names)

    def test_cli_verify_flag(self, capsys):
        from repro.cli import main

        assert main(["dataset:v1r", "--tier", "tiny", "--colors", "2", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "[ok ]" in out


class TestCompact:
    def test_sparse_ids_relabelled(self):
        g = COOGraph.from_edges(
            [(10**9, 2 * 10**9), (2 * 10**9, 3 * 10**9), (10**9, 3 * 10**9)],
            num_nodes=3 * 10**9 + 1,
        )
        compact, mapping = g.compact()
        assert compact.num_nodes == 3
        assert mapping.tolist() == [10**9, 2 * 10**9, 3 * 10**9]
        assert count_triangles(compact) == 1

    def test_mapping_recovers_original(self, small_graph):
        compact, mapping = small_graph.compact()
        np.testing.assert_array_equal(mapping[compact.src], small_graph.src)
        np.testing.assert_array_equal(mapping[compact.dst], small_graph.dst)

    def test_isolated_nodes_dropped(self):
        g = COOGraph.from_edges([(0, 5)], num_nodes=100)
        compact, mapping = g.compact()
        assert compact.num_nodes == 2
        assert mapping.tolist() == [0, 5]

    def test_triangle_count_invariant(self, small_graph):
        compact, _ = small_graph.compact()
        assert count_triangles(compact) == count_triangles(small_graph)

    def test_empty_graph(self):
        g = COOGraph.from_edges([], num_nodes=50)
        compact, mapping = g.compact()
        assert compact.num_nodes == 0
        assert mapping.size == 0

    def test_cli_auto_compacts_sparse_files(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "sparse.el"
        path.write_text("1000000000 2000000000\n2000000000 3000000000\n1000000000 3000000000\n")
        assert main([str(path), "--colors", "2"]) == 0
        out = capsys.readouterr().out
        assert "3 nodes" in out
        assert "triangles (exact): 1" in out
