"""Deterministic named RNG streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.rng import RngFactory, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "coloring") == derive_seed(42, "coloring")

    def test_name_sensitivity(self):
        assert derive_seed(42, "coloring") != derive_seed(42, "uniform")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")


class TestRngFactory:
    def test_same_stream_reproduces(self):
        a = RngFactory(7).stream("s").random(16)
        b = RngFactory(7).stream("s").random(16)
        np.testing.assert_array_equal(a, b)

    def test_different_names_independent(self):
        a = RngFactory(7).stream("a").random(16)
        b = RngFactory(7).stream("b").random(16)
        assert not np.array_equal(a, b)

    def test_indexed_streams_differ(self):
        f = RngFactory(7)
        a = f.stream("dpu", index=0).random(16)
        b = f.stream("dpu", index=1).random(16)
        assert not np.array_equal(a, b)

    def test_indexed_streams_reproduce(self):
        a = RngFactory(7).stream("dpu", index=17).random(8)
        b = RngFactory(7).stream("dpu", index=17).random(8)
        np.testing.assert_array_equal(a, b)

    def test_child_factory_differs_from_parent(self):
        f = RngFactory(7)
        child = f.child("nested")
        assert child.seed != f.seed
        assert isinstance(child, RngFactory)

    def test_child_deterministic(self):
        assert RngFactory(7).child("x").seed == RngFactory(7).child("x").seed

    def test_rejects_non_int_seed(self):
        with pytest.raises(TypeError):
            RngFactory("not-a-seed")  # type: ignore[arg-type]

    def test_many_dpu_streams_distinct(self):
        """First draws of 256 per-DPU streams should look independent."""
        f = RngFactory(0)
        first = [f.stream("reservoir", index=i).random() for i in range(256)]
        assert len(set(first)) == 256
