"""Orient + lexicographic sort (the DPU kernel's preparation pass)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings

from repro.core.orient import orient_and_sort

from conftest import edge_list_strategy


class TestOrientAndSort:
    def test_orientation(self):
        u, v, _ = orient_and_sort(np.array([5, 1]), np.array([2, 7]))
        assert np.all(u < v)

    def test_lexicographic_order(self):
        src = np.array([3, 1, 3, 2])
        dst = np.array([0, 5, 4, 9])
        u, v, _ = orient_and_sort(src, dst)
        keys = list(zip(u.tolist(), v.tolist()))
        assert keys == sorted(keys)

    def test_drops_self_loops(self):
        u, v, stats = orient_and_sort(np.array([1, 2]), np.array([1, 3]))
        assert u.size == 1
        assert stats.edges == 1

    def test_keeps_self_loops_when_asked(self):
        u, v, _ = orient_and_sort(
            np.array([1, 2]), np.array([1, 3]), drop_self_loops=False
        )
        assert u.size == 2

    def test_empty(self):
        u, v, stats = orient_and_sort(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert u.size == 0
        assert stats.sort_steps == 0
        assert stats.mram_passes == 0

    def test_single_edge_stats(self):
        _, _, stats = orient_and_sort(np.array([1]), np.array([0]))
        assert stats.sort_steps == 0
        assert stats.mram_passes == 1

    def test_sort_steps_nlogn(self):
        m = 1024
        src = np.arange(m)
        dst = np.arange(m) + 1
        _, _, stats = orient_and_sort(src, dst)
        assert stats.sort_steps == m * 10  # log2(1024) = 10

    def test_more_passes_for_smaller_wram(self):
        src = np.arange(10_000)
        dst = np.arange(10_000) + 1
        _, _, big = orient_and_sort(src, dst, wram_run_edges=4096)
        _, _, small = orient_and_sort(src, dst, wram_run_edges=64)
        assert small.mram_passes > big.mram_passes

    @settings(max_examples=30, deadline=None)
    @given(g=edge_list_strategy())
    def test_preserves_undirected_multiset(self, g):
        u, v, _ = orient_and_sort(g.src, g.dst)
        n = g.num_nodes
        got = sorted((u * n + v).tolist())
        lo = np.minimum(g.src, g.dst)
        hi = np.maximum(g.src, g.dst)
        keep = lo != hi
        expected = sorted((lo[keep] * n + hi[keep]).tolist())
        assert got == expected
