"""Golden tests of the kernel cost accounting.

Every figure's *shape* flows from these charges, so they are locked against a
hand-computed tiny sample: any change to the cost formulas must consciously
update these numbers (and EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernel_tc_fast import KernelCosts, fast_count
from repro.core.kernel_tc_probe import probe_count
from repro.core.orient import orient_and_sort
from repro.core.region_index import build_region_index

# The worked sample from docs/algorithm.md: 6 nodes, 8 edges, 2 triangles.
EDGES = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5), (1, 5)]


@pytest.fixture
def sample():
    src = np.array([e[0] for e in EDGES], dtype=np.int64)
    dst = np.array([e[1] for e in EDGES], dtype=np.int64)
    return src, dst


class TestHandComputedQuantities:
    """Every intermediate quantity computed by hand for the worked sample."""

    def test_sorted_sample(self, sample):
        u, v, stats = orient_and_sort(*sample)
        assert list(zip(u.tolist(), v.tolist())) == [
            (0, 1), (0, 2), (1, 2), (1, 5), (2, 3), (2, 4), (3, 4), (4, 5),
        ]
        # m=8 -> sort steps = 8 * ceil(log2 8) = 24; one WRAM run -> 1 pass.
        assert stats.sort_steps == 24
        assert stats.mram_passes == 1

    def test_region_table(self, sample):
        u, v, _ = orient_and_sort(*sample)
        idx = build_region_index(u)
        assert idx.nodes.tolist() == [0, 1, 2, 3, 4]
        assert idx.starts.tolist() == [0, 2, 4, 6, 7]
        assert idx.ends.tolist() == [2, 4, 6, 7, 8]
        # 5 regions -> ceil(log2 6) = 3 binary-search steps.
        assert idx.search_steps() == 3

    def test_merge_steps_charged(self, sample):
        """Charged merge work = sum over edges of (suffix(u) + deg+(v)), with
        d_v = 0 edges skipped.

        Per sorted edge: (0,1): 1+2; (0,2): 0+2; (1,2): 1+2; (1,5): 0+0 skip;
        (2,3): 1+1; (2,4): 0+1; (3,4): 0+1; (4,5): 0+0 skip -> total 12.
        """
        res = fast_count(*sample, num_nodes=6)
        assert res.triangles == 2
        assert res.merge_steps_charged == 12
        assert res.binary_searches == 8
        assert res.regions == 5

    def test_instruction_total(self, sample):
        """Full per-DPU instruction charge assembled from the defaults.

        per-edge: 8 edges * (edge_loop 8 + binsearch 3*8) = 256
        merge:    12 steps * 5                             = 60
        balanced: orient 8*4 + sort 24*6 + region 8*3 + tri 2*2 = 204
        total                                              = 520
        """
        res = fast_count(*sample, num_nodes=6)
        assert float(res.per_tasklet_instr.sum()) == pytest.approx(520.0)

    def test_probe_quantities(self, sample):
        """Probe kernel: probes = sum d_v = 9; steps = 9 * ceil(log2 9) = 36."""
        res = probe_count(*sample, num_nodes=6)
        assert res.triangles == 2
        assert res.probes == 9
        assert res.probe_steps == 9 * 4

    def test_dma_bytes_scale_with_edge_bytes(self, sample):
        small = fast_count(*sample, num_nodes=6, costs=KernelCosts(edge_bytes=8))
        big = fast_count(*sample, num_nodes=6, costs=KernelCosts(edge_bytes=16))
        assert float(big.per_tasklet_dma_bytes.sum()) == pytest.approx(
            2 * float(small.per_tasklet_dma_bytes.sum())
        )


class TestTaskletAssignment:
    def test_blocks_deal_round_robin(self):
        """With a 2-edge buffer and 4 tasklets, 8 blocks of a 16-edge sample
        land 2 blocks per tasklet."""
        m = 16
        src = np.arange(m, dtype=np.int64)
        dst = src + 1
        costs = KernelCosts(edge_buffer_bytes=16, edge_bytes=8)  # 2 edges/buffer
        res = fast_count(src, dst, num_nodes=m + 1, costs=costs, num_tasklets=4)
        # Path graph: no merges (all d_v = 1? deg+ of dst...) — instr evenly split.
        per = res.per_tasklet_instr
        assert per.max() / per.min() < 1.6

    def test_single_tasklet_gets_everything(self, ):
        src = np.array([0, 1, 0], dtype=np.int64)
        dst = np.array([1, 2, 2], dtype=np.int64)
        res = fast_count(src, dst, num_nodes=3, num_tasklets=1)
        assert res.per_tasklet_instr.shape == (1,)
        assert res.per_tasklet_instr[0] > 0
