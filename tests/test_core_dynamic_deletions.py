"""Fully-dynamic updates: edge deletions (TRIEST-FD-style extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamic import DynamicPimCounter
from repro.graph.coo import COOGraph
from repro.graph.triangles import count_triangles


@pytest.fixture
def counter_with_graph(small_graph):
    dyn = DynamicPimCounter(small_graph.num_nodes, num_colors=3, seed=4)
    dyn.apply_update(small_graph)
    return dyn, small_graph


class TestDeletions:
    def test_delete_subset_matches_oracle(self, counter_with_graph, rng):
        dyn, graph = counter_with_graph
        drop = rng.choice(graph.num_edges, size=graph.num_edges // 3, replace=False)
        mask = np.zeros(graph.num_edges, dtype=bool)
        mask[drop] = True
        deleted = COOGraph(graph.src[mask], graph.dst[mask], graph.num_nodes)
        remaining = COOGraph(graph.src[~mask], graph.dst[~mask], graph.num_nodes)
        result = dyn.apply_deletion(deleted)
        assert result.op == "delete"
        assert dyn.triangles == count_triangles(remaining)
        assert result.triangles_added <= 0

    def test_delete_everything(self, counter_with_graph):
        dyn, graph = counter_with_graph
        result = dyn.apply_deletion(graph)
        assert dyn.triangles == 0
        assert result.cumulative_edges == 0

    def test_delete_missing_edges_is_noop(self, counter_with_graph):
        dyn, graph = counter_with_graph
        before = dyn.triangles
        # Edges between nodes that are never adjacent in an ER sample of this
        # density are unlikely; build guaranteed-absent self-ish pairs.
        absent = COOGraph.from_edges([(0, 1), (1, 2)], num_nodes=graph.num_nodes)
        keys = set(graph.edge_keys().tolist())
        absent_mask = [
            (min(u, v) * graph.num_nodes + max(u, v)) not in keys
            for u, v in absent.iter_edges()
        ]
        if all(absent_mask):
            result = dyn.apply_deletion(absent)
            assert dyn.triangles == before
            assert result.triangles_added == 0

    def test_reinsertion_after_deletion(self, counter_with_graph):
        dyn, graph = counter_with_graph
        truth = count_triangles(graph)
        half = graph.slice(0, graph.num_edges // 2)
        dyn.apply_deletion(half)
        dyn.apply_update(half)
        assert dyn.triangles == truth

    def test_interleaved_sequence_matches_oracle(self, small_graph):
        dyn = DynamicPimCounter(small_graph.num_nodes, num_colors=2, seed=9)
        batches = small_graph.split_batches(4)
        dyn.apply_update(batches[0])
        dyn.apply_update(batches[1])
        dyn.apply_deletion(batches[0])
        dyn.apply_update(batches[2])
        current = batches[1].concat(batches[2])
        assert dyn.triangles == count_triangles(current)
        dyn.apply_update(batches[3])
        dyn.apply_update(batches[0])
        assert dyn.triangles == count_triangles(small_graph)

    def test_deletion_charges_time(self, counter_with_graph):
        dyn, graph = counter_with_graph
        before = dyn.cumulative_seconds
        result = dyn.apply_deletion(graph.slice(0, 20))
        assert result.round_seconds > 0
        assert dyn.cumulative_seconds > before

    def test_mono_correction_survives_deletions(self, small_graph):
        """Deleting must keep the monochromatic bookkeeping consistent for
        every color count, including C=1."""
        for c in (1, 3, 5):
            dyn = DynamicPimCounter(small_graph.num_nodes, num_colors=c, seed=c)
            dyn.apply_update(small_graph)
            third = small_graph.slice(0, small_graph.num_edges // 3)
            dyn.apply_deletion(third)
            remaining = small_graph.slice(small_graph.num_edges // 3, small_graph.num_edges)
            assert dyn.triangles == count_triangles(remaining)
