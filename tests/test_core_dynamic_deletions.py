"""Fully-dynamic updates: edge deletions (TRIEST-FD-style extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamic import DynamicPimCounter
from repro.graph.coo import COOGraph
from repro.graph.triangles import count_triangles


@pytest.fixture
def counter_with_graph(small_graph):
    dyn = DynamicPimCounter(small_graph.num_nodes, num_colors=3, seed=4)
    dyn.apply_update(small_graph)
    return dyn, small_graph


class TestDeletions:
    def test_delete_subset_matches_oracle(self, counter_with_graph, rng):
        dyn, graph = counter_with_graph
        drop = rng.choice(graph.num_edges, size=graph.num_edges // 3, replace=False)
        mask = np.zeros(graph.num_edges, dtype=bool)
        mask[drop] = True
        deleted = COOGraph(graph.src[mask], graph.dst[mask], graph.num_nodes)
        remaining = COOGraph(graph.src[~mask], graph.dst[~mask], graph.num_nodes)
        result = dyn.apply_deletion(deleted)
        assert result.op == "delete"
        assert dyn.triangles == count_triangles(remaining)
        assert result.triangles_added <= 0

    def test_delete_everything(self, counter_with_graph):
        dyn, graph = counter_with_graph
        result = dyn.apply_deletion(graph)
        assert dyn.triangles == 0
        assert result.cumulative_edges == 0

    def test_delete_missing_edges_is_noop(self, counter_with_graph):
        dyn, graph = counter_with_graph
        before = dyn.triangles
        # Edges between nodes that are never adjacent in an ER sample of this
        # density are unlikely; build guaranteed-absent self-ish pairs.
        absent = COOGraph.from_edges([(0, 1), (1, 2)], num_nodes=graph.num_nodes)
        keys = set(graph.edge_keys().tolist())
        absent_mask = [
            (min(u, v) * graph.num_nodes + max(u, v)) not in keys
            for u, v in absent.iter_edges()
        ]
        if all(absent_mask):
            result = dyn.apply_deletion(absent)
            assert dyn.triangles == before
            assert result.triangles_added == 0

    def test_reinsertion_after_deletion(self, counter_with_graph):
        dyn, graph = counter_with_graph
        truth = count_triangles(graph)
        half = graph.slice(0, graph.num_edges // 2)
        dyn.apply_deletion(half)
        dyn.apply_update(half)
        assert dyn.triangles == truth

    def test_interleaved_sequence_matches_oracle(self, small_graph):
        dyn = DynamicPimCounter(small_graph.num_nodes, num_colors=2, seed=9)
        batches = small_graph.split_batches(4)
        dyn.apply_update(batches[0])
        dyn.apply_update(batches[1])
        dyn.apply_deletion(batches[0])
        dyn.apply_update(batches[2])
        current = batches[1].concat(batches[2])
        assert dyn.triangles == count_triangles(current)
        dyn.apply_update(batches[3])
        dyn.apply_update(batches[0])
        assert dyn.triangles == count_triangles(small_graph)

    def test_deletion_charges_time(self, counter_with_graph):
        dyn, graph = counter_with_graph
        before = dyn.cumulative_seconds
        result = dyn.apply_deletion(graph.slice(0, 20))
        assert result.round_seconds > 0
        assert dyn.cumulative_seconds > before

    def test_mono_correction_survives_deletions(self, small_graph):
        """Deleting must keep the monochromatic bookkeeping consistent for
        every color count, including C=1."""
        for c in (1, 3, 5):
            dyn = DynamicPimCounter(small_graph.num_nodes, num_colors=c, seed=c)
            dyn.apply_update(small_graph)
            third = small_graph.slice(0, small_graph.num_edges // 3)
            dyn.apply_deletion(third)
            remaining = small_graph.slice(small_graph.num_edges // 3, small_graph.num_edges)
            assert dyn.triangles == count_triangles(remaining)


class TestDeletionAccounting:
    """``cumulative_edges`` counts *logical* edges, attributed on each edge's
    canonical home core (``lut[cu, cv, 0]``) — never derived by dividing the
    replica-drop total by the replication factor."""

    @pytest.mark.parametrize("colors", [1, 2, 3, 4, 5])
    def test_insert_then_delete_all_restores_zero(self, small_graph, colors):
        dyn = DynamicPimCounter(small_graph.num_nodes, num_colors=colors, seed=colors)
        dyn.apply_update(small_graph)
        assert dyn.cumulative_edges == small_graph.num_edges
        result = dyn.apply_deletion(small_graph)
        assert result.removed_edges == small_graph.num_edges
        assert result.cumulative_edges == 0
        assert dyn.cumulative_edges == 0
        assert dyn.triangles == 0

    @pytest.mark.parametrize("colors", [2, 4])
    def test_multi_batch_delete_all(self, small_graph, colors):
        """Deleting in awkward chunk sizes (not multiples of anything) still
        lands exactly on zero, with per-batch removed_edges summing to m."""
        dyn = DynamicPimCounter(small_graph.num_nodes, num_colors=colors, seed=7)
        dyn.apply_update(small_graph)
        removed = 0
        for start in range(0, small_graph.num_edges, 37):
            stop = min(start + 37, small_graph.num_edges)
            result = dyn.apply_deletion(small_graph.slice(start, stop))
            assert result.removed_edges == stop - start
            removed += result.removed_edges
            assert dyn.cumulative_edges == small_graph.num_edges - removed
        assert dyn.cumulative_edges == 0
        assert dyn.triangles == 0

    def test_absent_edges_do_not_decrement(self, counter_with_graph):
        """Tombstones that match nothing remove zero logical edges."""
        dyn, graph = counter_with_graph
        before = dyn.cumulative_edges
        keys = set(graph.edge_keys().tolist())
        absent = [
            (u, v)
            for u in range(graph.num_nodes)
            for v in range(u + 1, min(u + 3, graph.num_nodes))
            if (u * graph.num_nodes + v) not in keys
        ][:5]
        assert absent, "ER sample unexpectedly complete"
        result = dyn.apply_deletion(
            COOGraph.from_edges(absent, num_nodes=graph.num_nodes)
        )
        assert result.removed_edges == 0
        assert dyn.cumulative_edges == before

    def test_mixed_present_and_absent_batch(self, counter_with_graph):
        dyn, graph = counter_with_graph
        present = graph.slice(0, 10)
        keys = set(graph.edge_keys().tolist())
        absent = [
            (u, u + 1)
            for u in range(graph.num_nodes - 1)
            if (u * graph.num_nodes + u + 1) not in keys
        ][:10]
        batch = COOGraph(
            np.concatenate([present.src, np.array([u for u, _ in absent])]),
            np.concatenate([present.dst, np.array([v for _, v in absent])]),
            graph.num_nodes,
        )
        result = dyn.apply_deletion(batch)
        assert result.removed_edges == 10
        assert dyn.cumulative_edges == graph.num_edges - 10


class TestUpdateResultSchema:
    def test_insert_result_fields(self, small_graph):
        dyn = DynamicPimCounter(small_graph.num_nodes, num_colors=3, seed=1)
        result = dyn.apply_update(small_graph)
        assert result.op == "insert"
        assert result.new_edges == small_graph.num_edges
        assert result.removed_edges == 0
        assert "edges=" in repr(result)

    def test_delete_result_fields(self, counter_with_graph):
        dyn, graph = counter_with_graph
        result = dyn.apply_deletion(graph.slice(0, 25))
        assert result.op == "delete"
        assert result.new_edges == 0
        assert result.removed_edges == 25
        assert "removed=25" in repr(result)

    def test_to_dict_round_trips_both_ops(self, counter_with_graph):
        import json

        from repro.core.dynamic import DynamicUpdateResult

        dyn, graph = counter_with_graph
        for result in (
            dyn.apply_deletion(graph.slice(0, 15)),
            dyn.apply_update(graph.slice(0, 15)),
        ):
            payload = json.loads(json.dumps(result.to_dict()))
            rebuilt = DynamicUpdateResult(**payload)
            assert rebuilt.to_dict() == result.to_dict()
            assert rebuilt.op == result.op
            assert rebuilt.new_edges == result.new_edges
            assert rebuilt.removed_edges == result.removed_edges


class TestMisraGriesDecay:
    def test_deleted_hub_leaves_the_top(self, small_graph):
        """A hub whose star is deleted must stop dominating the remap slots;
        exact counts stay exact throughout (remap is a bijection)."""
        n = small_graph.num_nodes + 1
        hub = n - 1
        spokes = np.arange(small_graph.num_nodes, dtype=np.int64)
        star = COOGraph(np.full(spokes.size, hub, dtype=np.int64), spokes, n)
        dyn = DynamicPimCounter(n, num_colors=3, seed=3,
                                misra_gries_k=8, misra_gries_t=2)
        base = COOGraph(small_graph.src, small_graph.dst, n)
        dyn.apply_update(base)
        dyn.apply_update(star)
        assert hub in dyn._mg.top(2)
        assert dyn.triangles == count_triangles(base.concat(star))
        dyn.apply_deletion(star)
        assert hub not in dyn._mg.top(2)
        assert dyn._mg.frequency_lower_bound(hub) == 0
        assert dyn.triangles == count_triangles(base)

    def test_decay_matches_insert_then_delete_counts(self, small_graph):
        """With MG enabled, insert-all-then-delete-all still pins zero."""
        dyn = DynamicPimCounter(small_graph.num_nodes, num_colors=2, seed=5,
                                misra_gries_k=6, misra_gries_t=2)
        dyn.apply_update(small_graph)
        dyn.apply_deletion(small_graph)
        assert dyn.triangles == 0
        assert dyn.cumulative_edges == 0
        assert dyn._mg.items_seen == 0
