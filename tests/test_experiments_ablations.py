"""New ablation experiments: kernels, dynamic batches, sensitivity."""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment


class TestAblKernels:
    @pytest.fixture(scope="class")
    def table(self):
        return run_experiment("abl_kernels", tier="tiny")

    def test_all_exact(self, table):
        assert all(table.column("Exact?"))

    def test_merge_beats_probe_everywhere(self, table):
        """Random MRAM probing pays per-touch DMA latency: merge always wins."""
        for row in table.rows:
            assert row[1] < row[2], f"merge should beat probe on {row[0]}"

    def test_mg_wins_on_hub_graphs(self, table):
        rows = {r[0]: r for r in table.rows}
        assert rows["wikipedia"][4] == "merge+MG"


class TestAblDynamic:
    @pytest.fixture(scope="class")
    def table(self):
        return run_experiment("abl_dynamic", tier="tiny")

    def test_all_exact(self, table):
        assert all(table.column("Exact?"))

    def test_pim_per_round_cost_amortizes(self, table):
        per_round = table.column("PIM ms/round")
        assert per_round[-1] < per_round[0]

    def test_pim_speedup_improves_with_granularity(self, table):
        """More update rounds punish the CPU's repeated conversion harder."""
        speedups = table.column("PIM speedup")
        assert speedups[-1] > speedups[0]


class TestAblSensitivity:
    def test_shape_holds_under_all_perturbations(self):
        table = run_experiment("abl_sensitivity", tier="tiny")
        assert all(table.column("Holds?"))
        assert len(table.rows) == 11
